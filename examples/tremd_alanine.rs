//! T-REMD sampling of the alanine-dipeptide torsional landscape with real
//! dynamics, followed by a free-energy surface from the 300 K-ish window.
//!
//! This is the workload the paper's introduction motivates: enhanced
//! sampling of a rugged (φ, ψ) landscape via temperature exchange. We run
//! the same simulation twice — with and without exchanges — and compare how
//! much of the torus the coldest window explores.
//!
//! ```sh
//! cargo run --release -p repex-examples --bin tremd_alanine
//! ```

use analysis::fes::{render_ascii, unbiased_fes};
use analysis::Histogram2D;
use repex::config::SimulationConfig;
use repex::simulation::RemdSimulation;

fn coldest_window_samples(report: &repex::SimulationReport) -> Vec<(f64, f64)> {
    report
        .window_samples
        .iter()
        .min_by(|a, b| a.temperature.partial_cmp(&b.temperature).unwrap())
        .map(|w| w.samples.clone())
        .unwrap_or_default()
}

fn coverage(samples: &[(f64, f64)], bins: usize) -> f64 {
    let mut h = Histogram2D::new(bins);
    h.add_all(samples);
    h.occupied_bins() as f64 / (bins * bins) as f64
}

fn run(no_exchange: bool) -> repex::SimulationReport {
    let mut cfg = SimulationConfig::t_remd(12, 1500, 12);
    cfg.title = if no_exchange { "MD only".into() } else { "T-REMD".into() };
    cfg.dimensions = vec![repex::DimensionConfig::Temperature {
        min_k: 280.0,
        max_k: 600.0, // a wide ladder so the hot end hops barriers
        count: 12,
    }];
    cfg.resource.backend = "local".into();
    cfg.resource.cluster = "small:16".into();
    cfg.sample_stride = 25;
    cfg.no_exchange = no_exchange;
    cfg.seed = 7;
    RemdSimulation::new(cfg).expect("valid config").run().expect("run")
}

fn main() {
    println!("Sampling alanine dipeptide: T-REMD vs plain MD (local backend, real dynamics)\n");
    let remd = run(false);
    let plain = run(true);

    let bins = 12;
    let remd_cold = coldest_window_samples(&remd);
    let plain_cold = coldest_window_samples(&plain);
    let c_remd = coverage(&remd_cold, bins);
    let c_plain = coverage(&plain_cold, bins);

    println!("{}", remd.summary());
    println!("{}\n", plain.summary());
    println!(
        "Coldest-window torus coverage: T-REMD {:.0}% vs MD-only {:.0}% ({} vs {} samples)",
        c_remd * 100.0,
        c_plain * 100.0,
        remd_cold.len(),
        plain_cold.len()
    );
    println!(
        "T-REMD acceptance: {:.0}%; round trips: {}",
        remd.acceptance[0].1.ratio() * 100.0,
        remd.round_trips
    );

    println!("\nF(phi, psi) at the coldest window from T-REMD samples (kcal/mol contours):");
    let fes = unbiased_fes(&remd_cold, 280.0, bins);
    print!("{}", render_ascii(&fes, &[0.5, 1.0, 1.5, 2.0, 3.0, 4.0]));
    let (lo, hi) = fes.finite_range();
    println!("range: {:.1} .. {:.1} kcal/mol ('?' = never visited)", lo, hi);
}
