//! Fault tolerance: inject task failures into a simulated 64-replica T-REMD
//! run and compare the two recovery policies the paper describes — continue
//! without the failed replica vs relaunch it.
//!
//! ```sh
//! cargo run --release -p repex-examples --bin fault_tolerance
//! ```

use hpc::fault::FaultModel;
use repex::config::{FaultPolicy, SimulationConfig};
use repex::simulation::RemdSimulation;

fn run(policy: FaultPolicy, mtbf: f64) -> repex::SimulationReport {
    let mut cfg = SimulationConfig::t_remd(64, 6000, 4);
    cfg.title = format!("{policy:?}");
    cfg.fault_policy = policy;
    cfg.surrogate_steps = 10;
    cfg.seed = 11;
    RemdSimulation::new(cfg)
        .expect("valid config")
        .with_faults(FaultModel::new(mtbf).expect("valid MTBF"))
        .expect("pilot")
        .run()
        .expect("the simulation must survive task failures")
}

fn main() {
    // MD segments are ~140 virtual seconds; MTBF 600 s means roughly one in
    // five tasks dies.
    let mtbf = 600.0;
    println!("Injecting task failures (MTBF {mtbf}s vs ~140s tasks), 64 replicas, 4 cycles.\n");

    let cont = run(FaultPolicy::Continue, mtbf);
    let relaunch = run(FaultPolicy::Relaunch { max_retries: 10 }, mtbf);

    println!("--- policy: Continue ---");
    println!("{}", cont.summary());
    println!(
        "  failed tasks: {} (those replicas sat out their cycle's exchange)\n",
        cont.failed_tasks
    );

    println!("--- policy: Relaunch {{ max_retries: 10 }} ---");
    println!("{}", relaunch.summary());
    println!(
        "  failed tasks: {}, relaunched: {} (cycles stretched to absorb retries)",
        relaunch.failed_tasks, relaunch.relaunched_tasks
    );

    let tc_cont = cont.average_tc();
    let tc_relaunch = relaunch.average_tc();
    println!(
        "\nAverage cycle time: Continue {:.1}s vs Relaunch {:.1}s — relaunching pays\n\
         wall time for completeness; neither policy ever aborts the simulation\n\
         (the paper's key fault-tolerance property).",
        tc_cont, tc_relaunch
    );
    assert!(cont.failed_tasks > 0, "fault injection should produce failures");
    assert!(relaunch.relaunched_tasks > 0);
    assert!(tc_relaunch >= tc_cont * 0.9);
}
