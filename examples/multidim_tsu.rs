//! Multi-dimensional REMD at paper scale on the virtual cluster: a TSU
//! (temperature × salt × umbrella) simulation with 512 replicas on
//! Stampede, shown twice — Execution Mode I (512 cores) and Execution
//! Mode II (64 cores) — from the *same* configuration, changing only the
//! core count. This is the decoupling the paper's design is about.
//!
//! ```sh
//! cargo run --release -p repex-examples --bin multidim_tsu
//! ```

use repex::config::{DimensionConfig, SimulationConfig};
use repex::simulation::RemdSimulation;

fn base_config() -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(8, 6000, 2);
    cfg.title = "TSU 8x8x8".into();
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 8 },
        DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: 8 },
        DimensionConfig::Umbrella { dihedral: "phi".into(), count: 8, k_deg: 0.02 },
    ];
    cfg.resource.cluster = "stampede".into();
    cfg.surrogate_steps = 10;
    cfg
}

fn main() {
    println!("TSU-REMD, 512 replicas, simulated Stampede backend.\n");
    for cores in [None, Some(64)] {
        let mut cfg = base_config();
        cfg.resource.cores = cores;
        let label = match cores {
            None => "Execution Mode I  (512 cores)".to_string(),
            Some(c) => format!("Execution Mode II ({c} cores)"),
        };
        let report = RemdSimulation::new(cfg).expect("valid config").run().expect("run");
        println!("--- {label} ---");
        println!("{}", report.summary());
        let avg = report.average_timing();
        println!("  MD: {:.1}s across 3 dimension passes", avg.t_md);
        for (kind, t) in &avg.t_ex {
            println!("  {} exchange: {:.1}s", kind.letter(), t);
        }
        for (letter, acc) in &report.acceptance {
            println!("  {letter} acceptance: {:.0}%", acc.ratio() * 100.0);
        }
        println!();
    }
    println!(
        "Same simulation, same physics — only `resource.cores` changed. The pilot's\n\
         core timeline batches the replicas into waves automatically in Mode II."
    );
}
