//! pH-exchange REMD — the extension the paper proposes in Section 5
//! ("a number of additional exchange parameters can be added … for example
//! pH exchange"), implemented end to end.
//!
//! The dipeptide model carries two titratable sites whose effective charges
//! follow the Henderson–Hasselbalch protonation fraction at the replica's
//! solvent pH; pH exchange is a Hamiltonian exchange over those charges,
//! with the `solvph` keyword flowing through the Amber-style input files.
//!
//! ```sh
//! cargo run --release -p repex-examples --bin ph_remd
//! ```

use repex::config::{DimensionConfig, SimulationConfig};
use repex::simulation::RemdSimulation;

fn main() {
    let mut cfg = SimulationConfig::t_remd(8, 600, 6);
    cfg.title = "pH-REMD, 8 windows pH 3..10".into();
    cfg.dimensions = vec![DimensionConfig::Ph { min_ph: 3.0, max_ph: 10.0, count: 8 }];
    cfg.resource.backend = "local".into();
    cfg.resource.cluster = "small:16".into();
    cfg.seed = 5;

    println!("Running {} (local backend, titratable dipeptide)...", cfg.title);
    let report = RemdSimulation::new(cfg).expect("valid config").run().expect("run");

    println!("\n{}", report.summary());
    let (letter, acc) = &report.acceptance[0];
    println!(
        "pH-exchange dimension '{letter}': {}/{} accepted ({:.0}%)",
        acc.accepted,
        acc.attempts,
        acc.ratio() * 100.0
    );
    println!("pH-ladder round trips: {}", report.round_trips);

    // Show the physics: the same configuration has different energies at
    // the ladder's two ends because the titratable sites (de)protonate.
    use mdsim::engine::{MdEngine, SanderEngine};
    use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
    let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
    let sys = alanine_dipeptide();
    let acid = engine.single_point_with(&sys, 0.0, 3.0, &[]).total();
    let basic = engine.single_point_with(&sys, 0.0, 10.0, &[]).total();
    println!(
        "\nSingle-point energy of one configuration: {acid:.3} kcal/mol at pH 3 vs \
         {basic:.3} at pH 10\n(the titratable sites' effective charges shift with the \
         Henderson-Hasselbalch fraction)"
    );
    assert!((acid - basic).abs() > 1e-6);
    assert!(acc.attempts > 0);
}
