//! Quickstart: an 8-replica temperature-exchange REMD simulation on real
//! threads (the local backend — actual molecular dynamics, no virtual
//! cluster), in about thirty lines.
//!
//! ```sh
//! cargo run --release -p repex-examples --bin quickstart
//! ```

use repex::config::SimulationConfig;
use repex::simulation::RemdSimulation;

fn main() {
    // 8 temperature rungs, 273-373 K geometric; 500 MD steps between
    // exchange attempts; 4 cycles.
    let mut cfg = SimulationConfig::t_remd(8, 500, 4);
    cfg.title = "quickstart T-REMD".into();
    cfg.resource.backend = "local".into(); // real threads, real MD
    cfg.resource.cluster = "small:16".into();
    cfg.sample_stride = 50;

    println!("Running {} (8 replicas, local backend)...", cfg.title);
    let report = RemdSimulation::new(cfg).expect("valid config").run().expect("run");

    println!("\n{}", report.summary());
    println!("\nPer-cycle decomposition:");
    for c in &report.cycles {
        println!(
            "  cycle {}: MD {:.3}s + exchange {:.3}s  (wall, measured)",
            c.cycle,
            c.timing.t_md,
            c.timing.t_ex_total()
        );
    }
    let (letter, acc) = &report.acceptance[0];
    println!(
        "\nExchange acceptance ({letter} dimension): {}/{} = {:.0}%",
        acc.accepted,
        acc.attempts,
        acc.ratio() * 100.0
    );
    println!("Ladder round trips: {}", report.round_trips);
    assert!(report.cycles.len() == 4, "all cycles completed");
}
