//! Engine independence: the identical REMD configuration run through three
//! AMMs — Amber, NAMD and GROMACS. The framework code is the same; only the
//! `engine` field changes, and underneath the AMMs genuinely write different
//! input-file formats (Amber `mdin`/DISANG vs NAMD config vs GROMACS
//! `.mdp`).
//!
//! ```sh
//! cargo run --release -p repex-examples --bin engine_swap
//! ```

use repex::config::{EngineChoice, SimulationConfig};
use repex::simulation::RemdSimulation;

fn main() {
    println!("Same U-REMD simulation through three MD engines (local backend).\n");
    for engine in [EngineChoice::Amber, EngineChoice::Namd, EngineChoice::Gromacs] {
        let mut cfg = SimulationConfig::t_remd(6, 300, 3);
        cfg.title = format!("U-REMD via {engine:?}");
        cfg.dimensions = vec![repex::DimensionConfig::Umbrella {
            dihedral: "phi".into(),
            count: 6,
            k_deg: 0.02,
        }];
        cfg.engine = engine;
        cfg.resource.backend = "local".into();
        cfg.resource.cluster = "small:8".into();
        cfg.sample_stride = 50;
        cfg.seed = 3;

        let report = RemdSimulation::new(cfg).expect("valid config").run().expect("run");
        println!("--- {engine:?} ---");
        println!("{}", report.summary());
        let (letter, acc) = &report.acceptance[0];
        println!(
            "  {} exchange acceptance: {:.0}% over {} attempts",
            letter,
            acc.ratio() * 100.0,
            acc.attempts
        );
        println!(
            "  windows sampled: {} (each staged its own engine-native input files)\n",
            report.window_samples.len()
        );
    }
    println!(
        "Input preparation differed per engine (mdin + DISANG vs NAMD config vs\n\
         GROMACS .mdp); the RE pattern, execution mode and exchange logic were\n\
         reused unchanged — the paper's core design claim."
    );
}
