//! Integration: the pre-flight plan linter end to end.
//!
//! Covers the shared severity convention (one test per level), that every
//! shipped example config lints without error-level findings, and that the
//! round-trip-coverage rule (L501/L502) agrees with what a simulated run
//! actually measures via `exchange::stats`.

use lint::{lint_config, LintOptions, Severity};
use repex::config::{DimensionConfig, SimulationConfig};
use repex::simulation::RemdSimulation;

fn codes(diags: &[lint::Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn example_configs_lint_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/configs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let cfg = SimulationConfig::from_json(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        cfg.validate().unwrap_or_else(|e| panic!("{path:?}: {e}"));
        let diags = lint_config(&cfg, &LintOptions::default());
        assert!(!repex::diag::has_errors(&diags), "{path:?} has error findings: {diags:?}");
        checked += 1;
    }
    assert!(checked >= 5, "expected the shipped example configs, found {checked}");
}

#[test]
fn clean_plan_produces_no_findings() {
    let diags = lint_config(&SimulationConfig::t_remd(8, 6000, 2), &LintOptions::default());
    assert!(diags.is_empty(), "{diags:?}");
}

/// Info level: Mode II batching is worth knowing about, not a problem.
#[test]
fn info_level_mode_ii_plan() {
    let mut cfg = SimulationConfig::t_remd(16, 6000, 4);
    cfg.resource.cores = Some(8);
    let diags = lint_config(&cfg, &LintOptions::default());
    assert!(codes(&diags).contains(&"L001"), "{diags:?}");
    assert_eq!(repex::diag::max_severity(&diags), Some(Severity::Info), "{diags:?}");
}

/// Warning level: the plan runs but won't do what the user wants.
#[test]
fn warning_level_single_cycle_plan() {
    let diags = lint_config(&SimulationConfig::t_remd(8, 6000, 1), &LintOptions::default());
    assert!(codes(&diags).contains(&"L501"), "{diags:?}");
    assert_eq!(repex::diag::max_severity(&diags), Some(Severity::Warning), "{diags:?}");
}

/// Error level: the plan cannot work as configured.
#[test]
fn error_level_underprovisioned_salt_plan() {
    let mut cfg = SimulationConfig::t_remd(4, 6000, 2);
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 4 },
        DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: 4 },
    ];
    cfg.resource.cores = Some(2);
    let diags = lint_config(&cfg, &LintOptions::default());
    assert!(codes(&diags).contains(&"L201"), "{diags:?}");
    assert_eq!(repex::diag::max_severity(&diags), Some(Severity::Error), "{diags:?}");
}

/// A 1-rung ladder: the linter warns it can never exchange (L502), and a
/// real run indeed measures zero round trips.
#[test]
fn single_rung_ladder_lint_agrees_with_simulation() {
    let mut cfg = SimulationConfig::t_remd(1, 600, 2);
    cfg.dimensions = vec![DimensionConfig::TemperatureList { temps_k: vec![300.0] }];
    cfg.surrogate_steps = 5;
    let diags = lint_config(&cfg, &LintOptions::default());
    assert!(codes(&diags).contains(&"L502"), "{diags:?}");

    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.round_trips, 0);
    assert!(report.acceptance.iter().all(|(_, a)| a.attempts == 0), "nothing to pair with");
}

/// An odd-count ladder under a single cycle: alternating pairing only ever
/// forms even-parity bonds, the linter predicts disconnected blocks
/// (L501), and the simulated run confirms zero round trips.
#[test]
fn single_cycle_odd_ladder_lint_agrees_with_simulation() {
    let mut cfg = SimulationConfig::t_remd(5, 600, 1);
    cfg.surrogate_steps = 5;
    let diags = lint_config(&cfg, &LintOptions::default());
    assert!(codes(&diags).contains(&"L501"), "{diags:?}");

    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.round_trips, 0, "blocks [0,1] [2,3] [4] cannot round-trip");
}

/// With both parities in play the linter is satisfied, and a long enough
/// run on a short ladder measures actual round trips — the rule's clean
/// verdict is not vacuous.
#[test]
fn multi_cycle_ladder_round_trips_where_lint_is_quiet() {
    let mut cfg = SimulationConfig::t_remd(3, 600, 100);
    cfg.surrogate_steps = 5;
    let diags = lint_config(&cfg, &LintOptions::default());
    assert!(!codes(&diags).contains(&"L501"), "{diags:?}");
    assert!(!codes(&diags).contains(&"L502"), "{diags:?}");

    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert!(report.round_trips > 0, "100 cycles on a 3-rung ladder must round-trip");
}
