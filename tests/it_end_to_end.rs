//! Cross-crate end-to-end tests: a full REMD simulation through config →
//! pilot → EMM/AMM/RAM → report, with invariants checked on the result.

use integration::quick_tremd;
use repex::simulation::RemdSimulation;

#[test]
fn sync_tremd_full_pipeline_invariants() {
    let report = RemdSimulation::new(quick_tremd(16, 4)).unwrap().run().unwrap();

    // Structure.
    assert_eq!(report.n_replicas, 16);
    assert_eq!(report.pilot_cores, 16);
    assert_eq!(report.execution_mode, 1);
    assert_eq!(report.cycles.len(), 4);

    // Eq. 1 consistency: every cycle's total equals the component sum.
    for c in &report.cycles {
        let t = &c.timing;
        let sum = t.t_md + t.t_ex_total() + t.t_data + t.t_repex_over + t.t_rp_over;
        assert!((t.total() - sum).abs() < 1e-9);
        assert!(t.t_md > 0.0);
    }

    // The virtual makespan must be at least the sum of per-cycle totals
    // (cycles are serialized by the barrier).
    let tc_sum: f64 = report.cycles.iter().map(|c| c.timing.total()).sum();
    assert!(report.makespan >= 0.95 * tc_sum, "{} vs {}", report.makespan, tc_sum);

    // Utilization is a sane percentage and reflects overheads.
    assert!(report.utilization_percent > 20.0 && report.utilization_percent < 100.0);

    // Exchange statistics exist and are consistent.
    let (letter, acc) = &report.acceptance[0];
    assert_eq!(*letter, 'T');
    assert!(acc.attempts > 0);
    assert!(acc.accepted <= acc.attempts);

    // Samples recorded under every window.
    assert_eq!(report.window_samples.len(), 16);
    assert!(report.window_samples.iter().all(|w| !w.samples.is_empty()));

    // No faults were injected.
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(report.relaunched_tasks, 0);
}

#[test]
fn replica_microstates_evolve_and_stay_finite() {
    use repex::simulation::build_ctx;

    let mut ctx = build_ctx(quick_tremd(6, 3)).unwrap();
    let initial: Vec<_> =
        ctx.replicas.iter().map(|r| r.system.lock().state.positions.clone()).collect();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    for (r, init) in ctx.replicas.iter().zip(&initial) {
        let sys = r.system.lock();
        assert!(sys.state.is_finite());
        assert_ne!(&sys.state.positions, init, "replica {} never moved", r.id);
        assert_eq!(sys.state.step, 3 * 10, "3 cycles x 10 surrogate steps");
    }
}

#[test]
fn staging_area_holds_engine_files_after_run() {
    use repex::simulation::build_ctx;

    let mut ctx = build_ctx(quick_tremd(4, 2)).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    let staging = &ctx.pilot.staging;
    // Every replica/cycle staged mdin + restart + mdinfo.
    for r in 0..4 {
        for c in 0..2 {
            let base = format!("r{r:05}_c{c:04}");
            assert!(staging.contains(&format!("{base}.mdin")), "{base}.mdin");
            assert!(staging.contains(&format!("{base}.rst7")), "{base}.rst7");
            assert!(staging.contains(&format!("{base}.mdinfo")), "{base}.mdinfo");
        }
    }
    // And the staged files parse with the real format parsers.
    let mdin = staging.get_text("r00000_c0000.mdin").unwrap();
    let ctl = mdsim::io::mdin::MdinControl::parse(&mdin).unwrap();
    assert_eq!(ctl.nstlim, 600);
    let info = staging.get_text("r00000_c0001.mdinfo").unwrap();
    assert!(mdsim::io::mdinfo::MdInfo::parse(&info).is_ok());
    let rst = staging.get_text("r00003_c0001.rst7").unwrap();
    let state = mdsim::io::restart::read_restart(&rst).unwrap();
    assert_eq!(state.n_atoms(), mdsim::models::BACKBONE_ATOMS);
}

#[test]
fn slot_assignment_stays_a_permutation_under_many_exchanges() {
    use repex::simulation::build_ctx;

    let mut cfg = quick_tremd(12, 12);
    cfg.steps_per_cycle = 400;
    let mut ctx = build_ctx(cfg).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    let mut owners = ctx.slot_owner.clone();
    owners.sort_unstable();
    assert_eq!(owners, (0..12).collect::<Vec<_>>());
    // slot_owner and replica.slot agree.
    for (slot, &owner) in ctx.slot_owner.iter().enumerate() {
        assert_eq!(ctx.replicas[owner].slot, slot);
    }
    // With 12 cycles on a 12-rung ladder and the reduced model's high
    // acceptance, the assignment must have changed from the identity.
    assert_ne!(ctx.slot_owner, (0..12).collect::<Vec<_>>(), "no exchange ever moved a replica");
}

#[test]
fn rung_history_is_recorded_and_analyzable() {
    let mut cfg = quick_tremd(6, 8);
    cfg.steps_per_cycle = 400;
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.rung_history.len(), 6);
    for walk in &report.rung_history {
        assert_eq!(walk.len(), 8, "one rung per cycle");
        assert!(walk.iter().all(|&r| r < 6));
    }
    // Each cycle's rung assignment is a permutation of 0..6.
    for cycle in 0..8 {
        let mut rungs: Vec<usize> = report.rung_history.iter().map(|w| w[cycle]).collect();
        rungs.sort_unstable();
        assert_eq!(rungs, (0..6).collect::<Vec<_>>());
    }
    // The analysis toolkit consumes the history directly.
    for walk in &report.rung_history {
        let _ = analysis::timeseries::round_trip_times(walk, 6);
    }
}

#[test]
fn minimize_first_lowers_starting_energy() {
    use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
    use repex::simulation::build_ctx;

    let mut cfg = quick_tremd(4, 1);
    cfg.minimize_first = true;
    let ctx = build_ctx(cfg).unwrap();
    let ff = dipeptide_forcefield();
    let raw = ff.energy(&alanine_dipeptide()).total();
    for r in &ctx.replicas {
        let sys = r.system.lock();
        // Compare potential with velocities ignored: the minimized start
        // must be strictly below the raw builder geometry.
        let e = ff.energy(&sys).total();
        assert!(e < raw, "replica {} not minimized: {e} vs {raw}", r.id);
    }
}
