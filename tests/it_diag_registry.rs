//! Diagnostic-code registry: the workspace-wide invariants every `Xnnn`
//! code must satisfy.
//!
//! This test walks `crates/*/src` for *emitted* codes (both the
//! `Diagnostic::error("X123", …)` constructor family — which rustfmt may
//! split across lines — and the `code: "X123"` struct-literal form the
//! telemetry rules use) and then enforces:
//!
//! 1. every emitted code appears in the DESIGN.md catalog (en-dash ranges
//!    like `C030–C038` count as enumerations),
//! 2. no two crates emit the same code, except the deliberately shared
//!    boundary codes (`C002` config-assembly and `P010` budget-admission
//!    are raised both by the library that owns them and by the surfaces
//!    that re-check them),
//! 3. every code is exercised by at least one test — a quoted reference
//!    anywhere in `tests/`, `crates/*/tests/`, or a `#[cfg(test)]` module.
//!
//! Adding a diagnostic without documenting and testing it fails here, not
//! in review.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/..")).to_path_buf()
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// `X123` — one uppercase letter, three ASCII digits.
fn is_code(s: &str) -> bool {
    let b = s.as_bytes();
    b.len() == 4 && b[0].is_ascii_uppercase() && b[1..].iter().all(u8::is_ascii_digit)
}

/// The part of a source file that compiles into the library: everything
/// before the first `#[cfg(test)]`. Codes constructed in test modules are
/// references, not emissions.
fn production_slice(text: &str) -> &str {
    match text.find("#[cfg(test)]") {
        Some(i) => &text[..i],
        None => text,
    }
}

fn test_slice(text: &str) -> &str {
    match text.find("#[cfg(test)]") {
        Some(i) => &text[i..],
        None => "",
    }
}

/// Codes a source fragment emits. The constructor form tolerates
/// whitespace (rustfmt line breaks) between `(` and the code literal; the
/// struct-literal form requires the quote to follow `code: ` directly.
fn emitted_codes(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let markers: [(&str, bool); 4] = [
        ("Diagnostic::error(", true),
        ("Diagnostic::warning(", true),
        ("Diagnostic::info(", true),
        ("code: \"", false),
    ];
    for (marker, skip_to_quote) in markers {
        let mut rest = text;
        while let Some(pos) = rest.find(marker) {
            rest = &rest[pos + marker.len()..];
            let candidate = if skip_to_quote {
                match rest.trim_start().strip_prefix('"') {
                    Some(c) => c,
                    // Dynamic code argument — not a literal emission site.
                    None => continue,
                }
            } else {
                rest
            };
            if candidate.len() > 4 && is_code(&candidate[..4]) && candidate.as_bytes()[4] == b'"' {
                out.insert(candidate[..4].to_string());
            }
        }
    }
    out
}

/// Codes the DESIGN.md catalog declares: bare `X123` tokens plus en-dash
/// ranges `X123–X456`, expanded inclusively.
fn cataloged_codes(text: &str) -> BTreeSet<String> {
    let chars: Vec<char> = text.chars().collect();
    let code_at = |i: usize| -> Option<String> {
        if i + 4 > chars.len() {
            return None;
        }
        let tok: String = chars[i..i + 4].iter().collect();
        if !is_code(&tok) {
            return None;
        }
        if i > 0 && chars[i - 1].is_ascii_alphanumeric() {
            return None;
        }
        if chars.get(i + 4).is_some_and(|c| c.is_ascii_digit()) {
            return None;
        }
        Some(tok)
    };
    let mut out = BTreeSet::new();
    let mut i = 0;
    while i < chars.len() {
        let Some(start) = code_at(i) else {
            i += 1;
            continue;
        };
        let mut consumed = 4;
        if chars.get(i + 4) == Some(&'–') {
            if let Some(end) = code_at(i + 5) {
                if end.as_bytes()[0] == start.as_bytes()[0] {
                    let letter = &start[..1];
                    let lo: u32 = start[1..].parse().unwrap_or(0);
                    let hi: u32 = end[1..].parse().unwrap_or(0);
                    for n in lo..=hi {
                        out.insert(format!("{letter}{n:03}"));
                    }
                    consumed = 9;
                }
            }
        }
        out.insert(start);
        i += consumed;
    }
    out
}

struct Registry {
    /// code → crates that emit it from production code.
    emitted: BTreeMap<String, BTreeSet<String>>,
    /// Concatenated test code: tests/, crates/*/tests/, `#[cfg(test)]` tails.
    test_corpus: String,
}

fn scan_workspace() -> Registry {
    let root = repo_root();
    let mut emitted: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut test_corpus = String::new();

    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir).expect("crates/ must exist").flatten() {
        let crate_dir = entry.path();
        let crate_name = entry.file_name().to_string_lossy().into_owned();
        let mut files = Vec::new();
        walk_rs(&crate_dir.join("src"), &mut files);
        for file in files {
            let text = std::fs::read_to_string(&file).expect("readable source");
            for code in emitted_codes(production_slice(&text)) {
                emitted.entry(code).or_default().insert(crate_name.clone());
            }
            test_corpus.push_str(test_slice(&text));
            test_corpus.push('\n');
        }
        let mut crate_tests = Vec::new();
        walk_rs(&crate_dir.join("tests"), &mut crate_tests);
        for file in crate_tests {
            test_corpus.push_str(&std::fs::read_to_string(&file).expect("readable test"));
            test_corpus.push('\n');
        }
    }
    let mut ws_tests = Vec::new();
    walk_rs(&root.join("tests"), &mut ws_tests);
    for file in ws_tests {
        test_corpus.push_str(&std::fs::read_to_string(&file).expect("readable test"));
        test_corpus.push('\n');
    }
    Registry { emitted, test_corpus }
}

#[test]
fn every_emitted_code_is_cataloged_in_design_md() {
    let reg = scan_workspace();
    assert!(
        reg.emitted.len() >= 60,
        "scanner found only {} codes — the emission patterns have drifted",
        reg.emitted.len()
    );
    let design = std::fs::read_to_string(repo_root().join("DESIGN.md")).expect("DESIGN.md");
    let catalog = cataloged_codes(&design);
    let missing: Vec<&String> = reg.emitted.keys().filter(|c| !catalog.contains(*c)).collect();
    assert!(missing.is_empty(), "codes emitted but absent from the DESIGN.md catalog: {missing:?}");
}

#[test]
fn no_code_is_emitted_by_two_crates_without_a_shared_boundary_contract() {
    // C002 (config/grid assembly) and P010 (predicted-cost admission) are
    // raised both by the owning library and the surfaces that re-check
    // them; everything else must have exactly one emitting crate.
    let allow_shared: BTreeSet<&str> = ["C002", "P010"].into_iter().collect();
    let reg = scan_workspace();
    let duplicated: Vec<String> = reg
        .emitted
        .iter()
        .filter(|(code, crates)| crates.len() > 1 && !allow_shared.contains(code.as_str()))
        .map(|(code, crates)| format!("{code} emitted by {crates:?}"))
        .collect();
    assert!(duplicated.is_empty(), "duplicate code ownership: {duplicated:?}");
}

#[test]
fn every_emitted_code_is_referenced_by_at_least_one_test() {
    let reg = scan_workspace();
    let unreferenced: Vec<&String> = reg
        .emitted
        .keys()
        .filter(|code| !reg.test_corpus.contains(&format!("\"{code}\"")))
        .collect();
    assert!(unreferenced.is_empty(), "codes with no quoted test reference: {unreferenced:?}");
}

#[test]
fn range_expansion_understands_the_catalog_notation() {
    let got = cataloged_codes("| L201–L203 | lanes |\nplus C050 and the W205 row.");
    let want: BTreeSet<String> =
        ["L201", "L202", "L203", "C050", "W205"].map(String::from).into_iter().collect();
    assert_eq!(got, want);
    // Boundary guards: no match inside identifiers or longer digit runs.
    assert!(cataloged_codes("xC050 C0505").is_empty());
}
