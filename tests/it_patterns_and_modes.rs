//! RE patterns × Execution Modes: the four combinations the paper's design
//! space spans, checked for consistent physics and the expected timing
//! relationships.

use integration::quick_tremd;
use repex::config::Pattern;
use repex::simulation::RemdSimulation;

#[test]
fn mode_ii_slows_cycles_but_preserves_physics() {
    let n = 32;
    let run = |cores: Option<usize>| {
        let mut cfg = quick_tremd(n, 2);
        cfg.resource.cores = cores;
        RemdSimulation::new(cfg).unwrap().run().unwrap()
    };
    let mode1 = run(None);
    let mode2 = run(Some(8));
    assert_eq!(mode1.execution_mode, 1);
    assert_eq!(mode2.execution_mode, 2);
    // 4x fewer cores -> ~4x longer MD phase.
    let md1 = mode1.average_timing().t_md;
    let md2 = mode2.average_timing().t_md;
    assert!(md2 > 3.2 * md1 && md2 < 5.0 * md1, "md1={md1} md2={md2}");
    // Physics unchanged: exchanges still happen in both.
    assert!(mode1.acceptance[0].1.attempts > 0);
    assert!(mode2.acceptance[0].1.attempts > 0);
}

#[test]
fn async_pattern_avoids_the_global_barrier() {
    let n = 16;
    let run = |pattern| {
        let mut cfg = quick_tremd(n, 3);
        cfg.pattern = pattern;
        RemdSimulation::new(cfg).unwrap().run().unwrap()
    };
    let sync = run(Pattern::Synchronous);
    let asynch = run(Pattern::Asynchronous { tick_fraction: 0.25 });
    // Both complete the same number of MD segments per replica; async's
    // makespan cannot be wildly longer than sync's.
    assert!(asynch.makespan < 1.5 * sync.makespan, "{} vs {}", asynch.makespan, sync.makespan);
    assert!(asynch.acceptance[0].1.attempts > 0, "async exchanges happened");
}

#[test]
fn async_mode_ii_combination_works() {
    // The paper: "for large replica counts in Execution Mode II, the
    // asynchronous RE pattern will out-perform synchronous" — we at least
    // verify the combination runs and produces exchanges.
    let mut cfg = quick_tremd(24, 2);
    cfg.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
    cfg.resource.cores = Some(8);
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.execution_mode, 2);
    assert!(report.makespan > 0.0);
    assert!(report.acceptance[0].1.attempts > 0);
}

#[test]
fn async_outperforms_sync_under_heavy_stragglers_in_mode_ii() {
    // The quantitative version of the paper's conjecture, using the
    // straggler knob directly.
    use repex::simulation::build_ctx;
    let utilization = |pattern| {
        let mut cfg = quick_tremd(32, 3);
        cfg.pattern = pattern;
        cfg.resource.cores = Some(16);
        let mut ctx = build_ctx(cfg).unwrap();
        ctx.perf.noise.md_sigma = 0.35; // heavy performance mismatch
        match pattern {
            Pattern::Synchronous => repex::emm::sync::run_sync(&mut ctx).map(|_| ()),
            Pattern::Asynchronous { .. } => {
                repex::emm::asynchronous::run_async(&mut ctx).map(|_| ())
            }
        }
        .unwrap();
        let makespan = ctx.pilot.executor.now().as_secs();
        ctx.md_core_seconds / (ctx.pilot.cores() as f64 * makespan)
    };
    let sync_u = utilization(Pattern::Synchronous);
    let async_u = utilization(Pattern::Asynchronous { tick_fraction: 0.25 });
    assert!(
        async_u > sync_u,
        "async should win under heavy noise in Mode II: async {async_u:.3} vs sync {sync_u:.3}"
    );
}

#[test]
fn multicore_replicas_shorten_md_time() {
    let run = |cores_per_replica: usize| {
        let mut cfg = quick_tremd(8, 1);
        cfg.cost_atoms = Some(64_366);
        cfg.steps_per_cycle = 2000;
        cfg.resource.cores_per_replica = cores_per_replica;
        RemdSimulation::new(cfg).unwrap().run().unwrap().average_timing().t_md
    };
    let serial = run(1);
    let wide = run(16);
    assert!(wide < serial / 6.0, "16-core replicas must be much faster: {serial} vs {wide}");
}
