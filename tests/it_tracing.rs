//! Integration tests for the structured tracing/metrics layer: the exported
//! trace must agree with the simulation report, and the Chrome trace of an
//! asynchronous run must lay out cleanly (one row per replica, no
//! overlapping MD segments within a row).

use integration::quick_tremd;
use obs::{Event, Recorder};
use repex::config::{FaultPolicy, Pattern};
use repex::simulation::RemdSimulation;
use repex::timing::timing_from_breakdown;

#[test]
fn sync_report_timing_equals_event_aggregation() {
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(quick_tremd(8, 3))
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
    let breakdowns = recorder.cycle_breakdowns();
    assert_eq!(breakdowns.len(), report.cycles.len());
    for (cycle, b) in report.cycles.iter().zip(&breakdowns) {
        let derived = timing_from_breakdown(b);
        assert!(
            (cycle.timing.total() - derived.total()).abs() < 1e-9,
            "cycle {}: {} vs {}",
            cycle.cycle,
            cycle.timing.total(),
            derived.total()
        );
        assert_eq!(cycle.timing, derived, "cycle {}", cycle.cycle);
    }
}

#[test]
fn sync_event_counts_match_report_totals() {
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(quick_tremd(6, 2))
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
    let events = recorder.events();
    let md_ok = events.iter().filter(|e| matches!(e, Event::MdSegment { ok: true, .. })).count();
    assert_eq!(md_ok, 6 * 2, "one successful segment per replica per cycle");
    let windows = events.iter().filter(|e| matches!(e, Event::ExchangeWindow { .. })).count();
    assert_eq!(windows, report.cycles.len(), "one exchange window per cycle per dim");
    let counters = recorder.counters();
    assert_eq!(counters["tasks.failed"], report.failed_tasks);
    assert_eq!(counters["exchange.T.attempts"], report.acceptance[0].1.attempts);
    assert_eq!(counters["exchange.T.accepted"], report.acceptance[0].1.accepted);
    // Every submitted unit was counted by the executor: N MD per cycle plus
    // one exchange per cycle.
    assert_eq!(counters["pilot.units_submitted"], (6 + 1) * 2);
}

#[test]
fn metrics_track_failures_and_relaunches() {
    let mut cfg = quick_tremd(16, 2);
    cfg.fault_policy = FaultPolicy::Relaunch { max_retries: 25 };
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg)
        .unwrap()
        .with_recorder(recorder.clone())
        .with_faults(hpc::fault::FaultModel::new(40.0).expect("test MTBF is valid"))
        .unwrap()
        .run()
        .unwrap();
    assert!(report.failed_tasks > 0, "fault model must produce failures");
    let counters = recorder.counters();
    assert_eq!(counters["tasks.failed"], report.failed_tasks);
    assert_eq!(counters["tasks.relaunched"], report.relaunched_tasks);
    let events = recorder.events();
    let relaunches =
        events.iter().filter(|e| matches!(e, Event::TaskRelaunch { .. })).count() as u64;
    assert_eq!(relaunches, report.relaunched_tasks);
    let md_failed =
        events.iter().filter(|e| matches!(e, Event::MdSegment { ok: false, .. })).count() as u64;
    assert!(md_failed <= report.failed_tasks, "exchange failures are not MD segments");
}

#[test]
fn async_chrome_trace_has_clean_per_replica_rows() {
    let mut cfg = quick_tremd(8, 3);
    cfg.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg).unwrap().with_recorder(recorder.clone()).run().unwrap();
    assert_eq!(report.pattern, "async");

    let doc: serde_json::Value = serde_json::from_str(&recorder.chrome_trace_json())
        .expect("exported trace must be valid JSON");
    let trace_events = doc["traceEvents"].as_array().unwrap();

    // Collect MD spans (pid 0 = the replicas process) per row.
    let mut rows: std::collections::BTreeMap<u64, Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    for e in trace_events {
        if e["ph"] == "X" && e["pid"] == 0 {
            let tid = e["tid"].as_u64().unwrap();
            let ts = e["ts"].as_f64().unwrap();
            let dur = e["dur"].as_f64().unwrap();
            rows.entry(tid).or_default().push((ts, ts + dur));
        }
    }
    assert_eq!(rows.len(), 8, "one trace row per replica");
    assert_eq!(rows.keys().copied().collect::<Vec<_>>(), (0..8).collect::<Vec<_>>());
    for (tid, spans) in &mut rows {
        assert_eq!(spans.len(), 3, "replica {tid} ran 3 segments");
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for pair in spans.windows(2) {
            // Microsecond timestamps are rounded to 3 decimals on export, so
            // allow a hundredth of a microsecond of slack.
            assert!(pair[1].0 >= pair[0].1 - 0.01, "replica {tid}: spans overlap: {pair:?}");
        }
    }
}
