//! Integration: the multi-tenant campaign service (`crates/svc`).
//!
//! The acceptance path drives three-plus concurrent campaigns over one
//! shared virtual cluster through the HTTP API end-to-end and asserts that
//! every campaign's final report is **bit-identical** to the same config
//! run standalone through `RemdSimulation` — the service adds scheduling,
//! not physics — and that the shared pool was genuinely shared (the busy
//! high-water mark hits the pool size, and per-tenant busy-core integrals
//! track the configured fair-share weights).

use integration::quick_tremd;
use repex::config::{DimensionConfig, Pattern, SimulationConfig};
use repex::simulation::RemdSimulation;
use svc::{CampaignService, ServiceConfig};

const CLUSTER: &str = "small:16";

fn service_config(tag: &str, cluster: &str, slice: u64) -> ServiceConfig {
    let spool = std::env::temp_dir().join(format!("repex-it-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let mut cfg = ServiceConfig::new(spool);
    cfg.cluster = cluster.into();
    cfg.slice_cycles = slice;
    cfg
}

/// A campaign config sized for the shared pool: `n` replicas, 6 cycles.
fn campaign_cfg(title: &str, n: usize, cluster: &str) -> SimulationConfig {
    let mut cfg = quick_tremd(n, 6);
    cfg.title = title.into();
    cfg.resource.cluster = cluster.into();
    cfg
}

fn get(addr: &str, path: &str) -> (u16, serde_json::Value) {
    let (status, body) = svc::http::request(addr, "GET", path, None).unwrap();
    (status, serde_json::from_slice(&body).unwrap())
}

fn submit(
    addr: &str,
    id: &str,
    tenant: &str,
    weight: f64,
    cfg: &SimulationConfig,
) -> (u16, serde_json::Value) {
    let body = serde_json::json!({
        "campaign": id,
        "tenant": tenant,
        "weight": weight,
        "config": serde_json::from_str::<serde_json::Value>(&cfg.to_json()).unwrap(),
    });
    let (status, resp) =
        svc::http::request(addr, "POST", "/campaigns", Some(body.to_string().as_bytes())).unwrap();
    (status, serde_json::from_slice(&resp).unwrap())
}

/// Poll a campaign until it reaches `want` (panics on `failed` or timeout).
fn wait_state(addr: &str, id: &str, want: &str) -> serde_json::Value {
    for _ in 0..600 {
        let (status, doc) = get(addr, &format!("/campaigns/{id}"));
        assert_eq!(status, 200, "{doc}");
        let state = doc["state"].as_str().unwrap_or("?").to_string();
        if state == want {
            return doc;
        }
        assert_ne!(state, "failed", "campaign {id} failed: {:?}", doc["error"]);
        assert!(
            !(want != "done" && state == "done"),
            "campaign {id} finished before reaching {want}"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    panic!("campaign {id} never reached {want}");
}

/// The canonical report document of a standalone uninterrupted run — the
/// byte string `repex run --json` writes.
fn standalone_doc(cfg: &SimulationConfig) -> String {
    let report = RemdSimulation::new(cfg.clone()).unwrap().run().unwrap();
    serde_json::to_string_pretty(&report.to_json_doc()).unwrap()
}

#[test]
fn concurrent_tenants_share_one_cluster_and_results_are_bit_identical() {
    let service = CampaignService::start(service_config("accept", CLUSTER, 2)).unwrap();
    let addr = service.addr().to_string();

    // Three synchronous campaigns fill the 16-core pool exactly
    // (8 + 4 + 4); tenant a's weight is twice b's and c's, matching its
    // doubled allocation. A fourth, asynchronous campaign queues behind
    // them and runs when cores free up.
    let cfg_a = campaign_cfg("svc-a", 8, CLUSTER);
    let cfg_b = campaign_cfg("svc-b", 4, CLUSTER);
    let cfg_c = campaign_cfg("svc-c", 4, CLUSTER);
    let mut cfg_d = campaign_cfg("svc-d", 4, CLUSTER);
    cfg_d.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
    let (status, doc) = submit(&addr, "svc-a", "tenant-a", 2.0, &cfg_a);
    assert_eq!(status, 201, "{doc}");
    assert_eq!(doc["cores"], 8);
    for (id, cfg) in [("svc-b", &cfg_b), ("svc-c", &cfg_c), ("svc-d", &cfg_d)] {
        let (status, doc) = submit(&addr, id, &id.replace("svc", "tenant"), 1.0, cfg);
        assert_eq!(status, 201, "{doc}");
    }

    let mut results = std::collections::HashMap::new();
    for id in ["svc-a", "svc-b", "svc-c", "svc-d"] {
        wait_state(&addr, id, "done");
        let (status, doc) = get(&addr, &format!("/campaigns/{id}/results"));
        assert_eq!(status, 200, "{doc}");
        results.insert(id, doc);
    }

    // The pool was genuinely shared: at some point every core was leased.
    let (_, list) = get(&addr, "/campaigns");
    assert_eq!(
        list["pool"]["peak_leased_cores"], 16,
        "the three synchronous campaigns ran concurrently over one pool"
    );
    assert_eq!(list["pool"]["free_cores"], 16, "all cores returned");

    // Bit-identical to the standalone twin, for every campaign — the
    // sliced, checkpoint-resumed service run reproduces the exact bytes
    // `repex run --json` would have written.
    for (id, cfg) in [("svc-a", &cfg_a), ("svc-b", &cfg_b), ("svc-c", &cfg_c), ("svc-d", &cfg_d)] {
        let served = serde_json::to_string_pretty(&results[id]["report"]).unwrap();
        assert_eq!(served, standalone_doc(cfg), "campaign {id} diverged from its twin");
    }

    // Fair share: tenant-a (weight 2) holds 8 of 16 cores, b and c
    // (weight 1 each) hold 4 — so a's busy-core integral tracks 2x b's
    // and c's. The integrals come from the reports' utilization identity
    // and agree with the recorded event trace.
    let busy = |id: &str| results[id]["service"]["md_busy_core_seconds"].as_f64().unwrap();
    for id in ["svc-a", "svc-b", "svc-c"] {
        let trace = results[id]["service"]["trace_md_busy_core_seconds"].as_f64().unwrap();
        let rel = (busy(id) - trace).abs() / trace.max(1e-9);
        assert!(rel < 0.05, "campaign {id}: report busy {} vs trace {trace}", busy(id));
    }
    for (id, expect) in [("svc-b", 2.0), ("svc-c", 2.0)] {
        let ratio = busy("svc-a") / busy(id);
        assert!(
            (ratio - expect).abs() / expect < 0.3,
            "busy-core ratio a/{id} = {ratio}, want ~{expect} (weights 2:1)"
        );
    }

    service.stop();
}

#[test]
fn shared_spool_restart_resumes_each_campaign_and_stays_bit_identical() {
    let svc_cfg = service_config("restart", "small:8", 1);
    let spool = svc_cfg.spool.clone();
    let service = CampaignService::start(svc_cfg.clone()).unwrap();
    let addr = service.addr().to_string();

    // Two distinct campaigns share the spool: different titles, sizes and
    // cycle counts, so any cross-contamination is visible.
    let mut cfg_a = campaign_cfg("resume-a", 4, "small:8");
    cfg_a.n_cycles = 8;
    let mut cfg_b = campaign_cfg("resume-b", 2, "small:8");
    cfg_b.n_cycles = 10;
    assert_eq!(submit(&addr, "r-a", "t1", 1.0, &cfg_a).0, 201);
    assert_eq!(submit(&addr, "r-b", "t2", 1.0, &cfg_b).0, 201);

    // Wait until both have checkpointed at least one slice, then stop the
    // service mid-campaign: running slices checkpoint and re-queue.
    for _ in 0..600 {
        let a = spool.join("r-a/checkpoint/checkpoint.json").exists();
        let b = spool.join("r-b/checkpoint/checkpoint.json").exists();
        if a && b {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    service.stop();

    // The spool keeps the two campaigns fully separate, and each
    // checkpoint belongs to its own campaign's config.
    for (dir, title) in [("r-a", "resume-a"), ("r-b", "resume-b")] {
        let ckpt = spool.join(dir).join("checkpoint/checkpoint.json");
        assert!(ckpt.exists(), "{dir} checkpointed before the stop");
        let text = std::fs::read_to_string(&ckpt).unwrap();
        assert!(text.contains(title), "{dir}'s checkpoint holds {title}'s config");
        let record: serde_json::Value = serde_json::from_str(
            &std::fs::read_to_string(spool.join(dir).join("job.json")).unwrap(),
        )
        .unwrap();
        assert_eq!(record["campaign"], dir, "record and directory agree");
        assert_ne!(record["state"], "running", "stop left no job stranded as running");
    }

    // A fresh service over the same spool picks each campaign up where its
    // checkpoint left it and finishes both — to the same bytes as
    // uninterrupted standalone runs.
    let service = CampaignService::start(svc_cfg).unwrap();
    let addr = service.addr().to_string();
    for (id, cfg) in [("r-a", &cfg_a), ("r-b", &cfg_b)] {
        wait_state(&addr, id, "done");
        let (status, doc) = get(&addr, &format!("/campaigns/{id}/results"));
        assert_eq!(status, 200, "{doc}");
        let served = serde_json::to_string_pretty(&doc["report"]).unwrap();
        assert_eq!(served, standalone_doc(cfg), "campaign {id} diverged across the restart");
    }

    // The merged exposition carries both campaigns with disjoint series:
    // no `(metric, labels)` pair appears twice, and each campaign label
    // survives the merge.
    let (status, body) = svc::http::request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("campaign=\"r-a\""), "{text}");
    assert!(text.contains("campaign=\"r-b\""), "{text}");
    let mut seen = std::collections::HashSet::new();
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.trim().is_empty()) {
        let series = line.rsplit_once(' ').map_or(line, |(s, _)| s);
        assert!(seen.insert(series.to_string()), "duplicate series {series}");
    }

    service.stop();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn admission_is_lint_gated_with_typed_diagnostics() {
    let service = CampaignService::start(service_config("admit", "small:8", 0)).unwrap();
    let addr = service.addr().to_string();
    let good = campaign_cfg("admit-ok", 4, "small:8");

    // S001: the campaign id must be label- and path-safe.
    let (status, doc) = submit(&addr, "bad/../id", "t", 1.0, &good);
    assert_eq!(status, 400);
    assert_eq!(doc["diagnostics"][0]["code"], "S001", "{doc}");

    // S006: nonsense weights.
    let (status, doc) = submit(&addr, "w", "t", 0.0, &good);
    assert_eq!(status, 400);
    assert_eq!(doc["diagnostics"][0]["code"], "S006", "{doc}");

    // S003: the config must target the service's shared cluster.
    let elsewhere = campaign_cfg("admit-elsewhere", 4, "stampede");
    let (status, doc) = submit(&addr, "elsewhere", "t", 1.0, &elsewhere);
    assert_eq!(status, 422);
    assert_eq!(doc["diagnostics"][0]["code"], "S003", "{doc}");

    // S004: a pilot larger than the whole pool can never be scheduled.
    let mut huge = campaign_cfg("admit-huge", 4, "small:8");
    huge.resource.cores = Some(64);
    let (status, doc) = submit(&addr, "huge", "t", 1.0, &huge);
    assert_eq!(status, 422);
    assert_eq!(doc["diagnostics"][0]["code"], "S004", "{doc}");

    // Lint gate: the same pass as `repex run`, rejecting error findings
    // with the full diagnostics array (L201: Salt exchange groups need
    // more cores than the pilot has).
    let mut underprovisioned = campaign_cfg("admit-lint", 4, "small:8");
    underprovisioned.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 4 },
        DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: 4 },
    ];
    underprovisioned.resource.cores = Some(2);
    let (status, doc) = submit(&addr, "linted", "t", 1.0, &underprovisioned);
    assert_eq!(status, 422);
    assert!(doc["diagnostics"].as_array().unwrap().iter().any(|d| d["code"] == "L201"), "{doc}");

    // S002: duplicate ids conflict; unknown ids are 404.
    let (status, _) = submit(&addr, "dup", "t", 1.0, &good);
    assert_eq!(status, 201);
    let (status, doc) = submit(&addr, "dup", "t", 1.0, &good);
    assert_eq!(status, 409);
    assert_eq!(doc["diagnostics"][0]["code"], "S002", "{doc}");
    let (status, _) = get(&addr, "/campaigns/nope");
    assert_eq!(status, 404);
    let (status, doc) = get(&addr, "/campaigns/nope/results");
    assert_eq!(status, 404, "{doc}");

    service.stop();
}

#[test]
fn predictive_admission_rejects_over_budget_campaigns_with_p010() {
    let cfg = campaign_cfg("budgeted", 4, "small:8");
    // Price the campaign with the same model the service uses, then run
    // one service whose budget is below the prediction and one above.
    let predicted = lint::plan::predicted_core_seconds(&cfg).unwrap();
    assert!(predicted > 0.0, "planner must price a schedulable campaign");

    let mut tight = service_config("budget-tight", "small:8", 0);
    tight.budget_core_seconds = predicted / 2.0;
    let service = CampaignService::start(tight).unwrap();
    let addr = service.addr().to_string();
    let (status, doc) = submit(&addr, "pricey", "t", 1.0, &cfg);
    assert_eq!(status, 422, "{doc}");
    assert_eq!(doc["diagnostics"][0]["code"], "P010", "{doc}");
    assert_eq!(doc["diagnostics"][0]["severity"], "error", "{doc}");
    service.stop();

    let mut roomy = service_config("budget-roomy", "small:8", 0);
    roomy.budget_core_seconds = predicted * 2.0;
    let service = CampaignService::start(roomy).unwrap();
    let addr = service.addr().to_string();
    let (status, doc) = submit(&addr, "affordable", "t", 1.0, &cfg);
    assert_eq!(status, 201, "{doc}");
    wait_state(&addr, "affordable", "done");
    service.stop();
}

#[test]
fn a_full_queue_applies_backpressure() {
    // max_queue = 0: every submission beyond the running set bounces with
    // the typed backpressure diagnostic.
    let mut svc_cfg = service_config("backpressure", "small:8", 0);
    svc_cfg.max_queue = 0;
    let service = CampaignService::start(svc_cfg).unwrap();
    let addr = service.addr().to_string();
    let (status, doc) = submit(&addr, "bp", "t", 1.0, &campaign_cfg("bp", 4, "small:8"));
    assert_eq!(status, 429);
    assert_eq!(doc["diagnostics"][0]["code"], "S010", "{doc}");
    service.stop();
}

#[test]
fn cancellation_checkpoints_and_frees_cores_within_a_tick() {
    let service = CampaignService::start(service_config("cancel", "small:8", 0)).unwrap();
    let addr = service.addr().to_string();

    // A long campaign holding the whole pool.
    let mut cfg = campaign_cfg("cancel-me", 8, "small:8");
    cfg.n_cycles = 10_000;
    assert_eq!(submit(&addr, "longrun", "t", 1.0, &cfg).0, 201);
    wait_state(&addr, "longrun", "running");

    let (status, doc) = svc::http::request(&addr, "DELETE", "/campaigns/longrun", None).unwrap();
    let doc: serde_json::Value = serde_json::from_slice(&doc).unwrap();
    assert_eq!(status, 202, "{doc}");
    let doc = wait_state(&addr, "longrun", "cancelled");
    assert_eq!(
        doc["checkpoint_exists"], true,
        "cancellation ends with a final checkpoint for post-mortems"
    );

    // The freed cores immediately schedule the next tenant's campaign.
    let (_, list) = get(&addr, "/campaigns");
    assert_eq!(list["pool"]["free_cores"], 8, "cancelled campaign released its lease");
    assert_eq!(submit(&addr, "next", "t2", 1.0, &campaign_cfg("next", 8, "small:8")).0, 201);
    wait_state(&addr, "next", "done");

    // Cancelling a terminal campaign is a conflict, not a state change.
    let (status, _) = svc::http::request(&addr, "DELETE", "/campaigns/longrun", None).unwrap();
    assert_eq!(status, 409);

    service.stop();
}
