//! Integration: the predictive campaign planner (`lint::plan`) versus the
//! discrete-event simulator it claims to predict.
//!
//! The planner is only useful if it is *honest*: every tolerance asserted
//! here is also documented in DESIGN.md §14, and the suite runs the real
//! simulator — the same virtual-cluster charge sequence `repex run`
//! uses — against the closed-form Eq. 1 prediction:
//!
//! | regime | tolerance | why |
//! |--------|-----------|-----|
//! | synchronous makespan     | 8 % relative  | same charge formulas, lognormal noise only |
//! | asynchronous makespan    | 50 % relative | min-ready cohort dynamics are not modeled |
//! | fault / scenario makespan| 35 % relative | stochastic failure draws vs closed-form mean |
//! | utilization (sync)       | 15 points     | numerator shares the same model |
//! | ladder mean acceptance   | 0.25 absolute | energy-overlap proxy vs Metropolis sampling |
//!
//! The acceptance comparison is quantitative on moderately spaced ladders
//! and directional (ordering only) on extreme ones, where the equipartition
//! proxy and the anharmonic surrogate diverge the most.

use lint::plan::{plan_config, PlanOptions, PlanReport};
use repex::config::{DimensionConfig, FaultPolicy, SimulationConfig};
use repex::simulation::RemdSimulation;

fn predict(cfg: &SimulationConfig) -> PlanReport {
    let opts = PlanOptions { search: false, ..PlanOptions::default() };
    let out = plan_config(cfg, &opts);
    out.report.unwrap_or_else(|| panic!("planner refused a runnable config: {:?}", out.diagnostics))
}

fn rel_err(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured.max(1e-9)
}

/// Every shipped example config: predicted makespan within the documented
/// tolerance of the simulated one. `surrogate-steps` is physics fidelity
/// only — it does not touch the virtual clock — so the runs stay fast.
#[test]
fn predicted_makespan_tracks_the_simulator_on_every_example_config() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../examples/configs");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let mut cfg = SimulationConfig::from_json(&text).unwrap();
        cfg.surrogate_steps = 10;
        let report = predict(&cfg);
        let sync = report.cost.pattern == "synchronous";
        let tolerance = if sync { 0.08 } else { 0.50 };

        let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
        let err = rel_err(report.cost.makespan_seconds, run.makespan);
        assert!(
            err <= tolerance,
            "{path:?}: predicted {:.1} s vs simulated {:.1} s (rel {err:.3} > {tolerance})",
            report.cost.makespan_seconds,
            run.makespan,
        );
        assert_eq!(
            report.cost.execution_mode, run.execution_mode,
            "{path:?}: planner and simulator disagree on the execution mode"
        );
        if sync {
            let du = (report.cost.utilization_percent - run.utilization_percent).abs();
            assert!(
                du <= 15.0,
                "{path:?}: predicted utilization {:.1} % vs simulated {:.1} %",
                report.cost.utilization_percent,
                run.utilization_percent,
            );
        }
        checked += 1;
    }
    assert!(checked >= 5, "expected the shipped example configs, found {checked}");
}

/// Mode II: the wave count and the per-core scheduling tax are real, not
/// just modeled — halving the pilot roughly doubles the simulated MD phase,
/// and the prediction keeps tracking it.
#[test]
fn mode_ii_prediction_tracks_a_packed_pilot() {
    let mut cfg = SimulationConfig::t_remd(16, 6000, 3);
    cfg.surrogate_steps = 10;
    cfg.resource.cores = Some(8);
    let report = predict(&cfg);
    assert_eq!(report.cost.execution_mode, 2);
    assert_eq!(report.cost.waves, 2);
    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let err = rel_err(report.cost.makespan_seconds, run.makespan);
    assert!(err <= 0.08, "Mode II rel error {err:.3}: {:?}", report.cost);
}

/// Relaunch-on-failure: the closed-form expected inflation stays within the
/// stochastic band of actual failure draws, and never under-predicts the
/// clean (fault-free) floor.
#[test]
fn relaunch_inflation_prediction_brackets_the_simulated_makespan() {
    let mut cfg = SimulationConfig::t_remd(8, 6000, 4);
    cfg.surrogate_steps = 10;
    cfg.fault_mtbf_seconds = Some(1500.0);
    cfg.fault_policy = FaultPolicy::Relaunch { max_retries: 3 };
    let report = predict(&cfg);
    assert!(report.cost.relaunch_inflation > 1.0);

    let mut clean = cfg.clone();
    clean.fault_mtbf_seconds = None;
    clean.fault_policy = FaultPolicy::Continue;
    let clean_predicted = predict(&clean).cost.makespan_seconds;
    assert!(report.cost.makespan_seconds > clean_predicted);

    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert!(run.relaunched_tasks > 0, "MTBF 1500 s on 139.6 s tasks must relaunch some");
    let err = rel_err(report.cost.makespan_seconds, run.makespan);
    assert!(
        err <= 0.35,
        "fault-inflated rel error {err:.3}: predicted {:.1} vs simulated {:.1}",
        report.cost.makespan_seconds,
        run.makespan,
    );
}

/// Straggler scenario: worst-of-wave inflation is what the barrier actually
/// pays, and the closed-form expectation stays within tolerance.
#[test]
fn straggler_scenario_prediction_stays_within_tolerance() {
    let mut cfg = SimulationConfig::t_remd(8, 6000, 6);
    cfg.surrogate_steps = 10;
    cfg.scenario = Some(hpc::Scenario::Stragglers { fraction: 0.25, slowdown: 2.0 });
    let report = predict(&cfg);
    assert!(report.cost.scenario_inflation > 1.5, "{:?}", report.cost);

    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let err = rel_err(report.cost.makespan_seconds, run.makespan);
    assert!(
        err <= 0.35,
        "straggler rel error {err:.3}: predicted {:.1} vs simulated {:.1}",
        report.cost.makespan_seconds,
        run.makespan,
    );
}

/// Failure storms under the `continue` policy do not stretch the barrier
/// (failed tasks just drop out), so the makespan prediction stays tight
/// while utilization absorbs the loss.
#[test]
fn failure_storm_under_continue_keeps_makespan_and_costs_utilization() {
    let mut cfg = SimulationConfig::t_remd(8, 6000, 4);
    cfg.surrogate_steps = 10;
    cfg.scenario = Some(hpc::Scenario::FailureStorm {
        storm_mtbf_seconds: 200.0,
        period_seconds: 400.0,
        storm_fraction: 0.5,
    });
    let report = predict(&cfg);
    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert!(run.failed_tasks > 0, "a 200 s-MTBF storm must kill some 139.6 s tasks");
    let err = rel_err(report.cost.makespan_seconds, run.makespan);
    assert!(
        err <= 0.35,
        "storm rel error {err:.3}: predicted {:.1} vs simulated {:.1}",
        report.cost.makespan_seconds,
        run.makespan,
    );
    assert!(
        report.cost.utilization_percent < 100.0,
        "failures must show up in the predicted utilization"
    );
}

/// Quantitative acceptance cross-validation on a moderately spaced ladder:
/// the equipartition overlap proxy and the measured Metropolis rate agree
/// within the documented 0.25 absolute band, and both clear the
/// exchangeable floor.
#[test]
fn predicted_acceptance_tracks_measured_exchange_stats() {
    let mut cfg = SimulationConfig::t_remd(8, 600, 30);
    cfg.surrogate_steps = 40;
    let report = predict(&cfg);
    let predicted = report.ladders[0].mean_acceptance.unwrap();

    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let stats = &run.acceptance[0].1;
    assert!(stats.attempts >= 90, "30 cycles on 8 rungs must attempt plenty");
    let measured = stats.ratio();
    assert!(
        (predicted - measured).abs() <= 0.25,
        "predicted mean acceptance {predicted:.3} vs measured {measured:.3}"
    );
    assert!(predicted >= 0.05 && measured >= 0.05, "both must call the ladder exchangeable");
}

/// Directional acceptance check on an extreme ladder: whatever the absolute
/// offset, the planner must order ladders the same way the simulator does.
#[test]
fn predicted_acceptance_orders_ladders_like_the_simulator() {
    let run_ladder = |max_k: f64| {
        let mut cfg = SimulationConfig::t_remd(8, 600, 30);
        cfg.surrogate_steps = 40;
        cfg.dimensions = vec![DimensionConfig::Temperature { min_k: 250.0, max_k, count: 8 }];
        let predicted = predict(&cfg).ladders[0].mean_acceptance.unwrap();
        let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
        (predicted, run.acceptance[0].1.ratio())
    };
    let (p_narrow, m_narrow) = run_ladder(350.0);
    let (p_wide, m_wide) = run_ladder(900.0);
    assert!(
        p_narrow > p_wide,
        "planner must rank the narrow ladder higher: {p_narrow:.3} vs {p_wide:.3}"
    );
    assert!(
        m_narrow > m_wide - 0.02,
        "simulator must agree on the ordering: {m_narrow:.3} vs {m_wide:.3}"
    );
}

/// The admission-control entry point prices exactly what the full report
/// prices, and a run on the same config lands inside the same band the
/// makespan test enforces — i.e. `svc` charges an honest estimate.
#[test]
fn predicted_core_seconds_is_an_honest_admission_charge() {
    let mut cfg = SimulationConfig::t_remd(8, 6000, 3);
    cfg.surrogate_steps = 10;
    let direct = lint::plan::predicted_core_seconds(&cfg).unwrap();
    let report = predict(&cfg);
    assert!((direct - report.cost.core_seconds).abs() < 1e-9);

    let run = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let actual = run.pilot_cores as f64 * run.makespan;
    assert!(
        rel_err(direct, actual) <= 0.08,
        "predicted {direct:.0} core·s vs actual {actual:.0} core·s"
    );
}
