//! Stress scenarios end-to-end: each adversarial environment must degrade
//! the run gracefully — the campaign always completes — and leave the
//! diagnostic signature the observability layer looks for (the same
//! description drives injection, lints and trace analytics).

use integration::quick_tremd;
use repex::config::FaultPolicy;
use repex::simulation::RemdSimulation;

fn run_scenario(
    n: usize,
    cycles: u64,
    scenario: Option<hpc::Scenario>,
) -> (repex::SimulationReport, Vec<obs::Event>) {
    let mut cfg = quick_tremd(n, cycles);
    cfg.scenario = scenario;
    cfg.fault_policy = FaultPolicy::Relaunch { max_retries: 20 };
    let recorder = obs::Recorder::enabled();
    let report = RemdSimulation::new(cfg)
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .expect("scenarios degrade the run, never abort it");
    (report, recorder.events())
}

#[test]
fn failure_storm_fails_tasks_in_a_burst_but_every_cycle_completes() {
    // An 8-second storm window at MTBF 2 s opens the run; the rest is calm.
    let storm = hpc::Scenario::FailureStorm {
        storm_mtbf_seconds: 2.0,
        period_seconds: 4000.0,
        storm_fraction: 0.002,
    };
    let (report, events) = run_scenario(16, 4, Some(storm));
    assert!(report.failed_tasks > 0, "the storm must kill tasks");
    assert!(report.relaunched_tasks > 0, "the relaunch policy retries them");
    assert_eq!(report.cycles.len(), 4, "graceful degradation: every cycle completed");

    // All failures land inside the storm window — the clustering the A104
    // analyze finding keys on.
    let fails: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            obs::Event::MdSegment { ok: false, end, .. } => Some(*end),
            _ => None,
        })
        .collect();
    let span = obs::timeline_stats(&events, obs::StragglerPolicy::default()).span;
    let lo = fails.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = fails.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        hi - lo < 0.2 * span,
        "failures cluster in the storm: window {:.1}s of a {span:.1}s span",
        hi - lo
    );
}

#[test]
fn stragglers_stretch_batches_without_failing_anything() {
    let (base, base_events) = run_scenario(16, 3, None);
    let sc = hpc::Scenario::Stragglers { fraction: 0.3, slowdown: 4.0 };
    let (report, events) = run_scenario(16, 3, Some(sc));
    assert_eq!(report.failed_tasks, 0, "stragglers are slow, not dead");
    assert_eq!(report.cycles.len(), 3);
    assert!(report.makespan > base.makespan, "4x tasks hold the synchronous barriers");

    let policy = obs::StragglerPolicy::default();
    let tl = obs::timeline_stats(&events, policy);
    let tl0 = obs::timeline_stats(&base_events, policy);
    assert!(
        tl.max_stretch > tl0.max_stretch,
        "straggling segments stretch the MD phases: {} vs baseline {}",
        tl.max_stretch,
        tl0.max_stretch
    );
}

#[test]
fn heterogeneous_nodes_flag_the_slow_replicas() {
    let (base, _) = run_scenario(16, 3, None);
    let sc = hpc::Scenario::HeterogeneousNodes { slow_fraction: 0.25, slowdown: 3.0 };
    let (report, events) = run_scenario(16, 3, Some(sc));
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(report.cycles.len(), 3);
    assert!(
        report.makespan > 1.5 * base.makespan,
        "every barrier waits for the 3x nodes: {} vs {}",
        report.makespan,
        base.makespan
    );

    // The slow-node membership is stable, so the per-replica lane means
    // separate cleanly. (A 3-of-16 outlier group tops out near z = 2.08,
    // so probe slightly below the default z threshold.)
    let policy = obs::StragglerPolicy { z_threshold: 1.5, ratio_threshold: 1.5 };
    let tl = obs::timeline_stats(&events, policy);
    assert!(tl.straggler_count > 0, "slow nodes read as stragglers: {:?}", tl.replicas);
    for lane in tl.replicas.iter().filter(|l| l.straggler) {
        assert!(lane.ratio_to_median > 2.0, "3x nodes sit far from the median: {lane:?}");
    }
}

#[test]
fn slow_filesystem_shifts_the_critical_path_toward_data() {
    let (base, base_events) = run_scenario(8, 3, None);
    let sc = hpc::Scenario::SlowFilesystem { latency_factor: 50.0, bandwidth_factor: 0.02 };
    let (report, events) = run_scenario(8, 3, Some(sc));
    assert_eq!(report.failed_tasks, 0);
    assert_eq!(report.cycles.len(), 3);
    assert!(report.makespan > base.makespan, "staging got slower, so the run did too");

    let data_share = |events: &[obs::Event]| {
        let p = obs::critical_path(events);
        let data = p.by_category.iter().find(|(c, _)| *c == "data").map_or(0.0, |(_, t)| *t);
        data / p.total.max(f64::EPSILON)
    };
    let (before, after) = (data_share(&base_events), data_share(&events));
    assert!(
        after > 2.0 * before,
        "data staging share of the critical path grows: {before:.3} -> {after:.3}"
    );
}
