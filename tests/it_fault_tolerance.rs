//! Fault tolerance across the stack: injected task failures must never
//! abort a simulation under either recovery policy.

use hpc::fault::FaultModel;
use integration::quick_tremd;
use repex::config::{FaultPolicy, Pattern};
use repex::simulation::RemdSimulation;

fn run_with_faults(policy: FaultPolicy, pattern: Pattern, mtbf: f64) -> repex::SimulationReport {
    let mut cfg = quick_tremd(24, 3);
    cfg.pattern = pattern;
    cfg.fault_policy = policy;
    RemdSimulation::new(cfg)
        .unwrap()
        .with_faults(FaultModel::new(mtbf))
        .unwrap()
        .run()
        .expect("fault tolerance: the simulation survives")
}

#[test]
fn continue_policy_survives_heavy_failures_sync() {
    let report = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, 60.0);
    assert!(report.failed_tasks > 0, "MTBF 60s vs ~14s tasks should fail some");
    assert_eq!(report.relaunched_tasks, 0);
    assert_eq!(report.cycles.len(), 3, "all cycles completed");
}

#[test]
fn relaunch_policy_retries_and_completes_sync() {
    let report =
        run_with_faults(FaultPolicy::Relaunch { max_retries: 20 }, Pattern::Synchronous, 60.0);
    assert!(report.failed_tasks > 0);
    assert!(report.relaunched_tasks > 0);
    assert_eq!(report.cycles.len(), 3);
}

#[test]
fn async_pattern_survives_failures() {
    let report =
        run_with_faults(FaultPolicy::Continue, Pattern::Asynchronous { tick_fraction: 0.25 }, 60.0);
    assert!(report.failed_tasks > 0);
    assert!(report.makespan > 0.0);
}

#[test]
fn relaunch_costs_wall_time_relative_to_continue() {
    let cont = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, 40.0);
    let relaunch =
        run_with_faults(FaultPolicy::Relaunch { max_retries: 30 }, Pattern::Synchronous, 40.0);
    assert!(
        relaunch.makespan > cont.makespan,
        "retries stretch the MD phases: {} vs {}",
        relaunch.makespan,
        cont.makespan
    );
}

#[test]
fn failure_free_run_with_fault_model_disabled() {
    let report = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, f64::INFINITY);
    assert_eq!(report.failed_tasks, 0);
}
