//! Fault tolerance across the stack: injected task failures must never
//! abort a simulation under either recovery policy.

use hpc::fault::FaultModel;
use integration::quick_tremd;
use repex::config::{FaultPolicy, Pattern};
use repex::simulation::RemdSimulation;

fn run_with_faults(policy: FaultPolicy, pattern: Pattern, mtbf: f64) -> repex::SimulationReport {
    let mut cfg = quick_tremd(24, 3);
    cfg.pattern = pattern;
    cfg.fault_policy = policy;
    RemdSimulation::new(cfg)
        .unwrap()
        .with_faults(FaultModel::new(mtbf).expect("test MTBF is valid"))
        .unwrap()
        .run()
        .expect("fault tolerance: the simulation survives")
}

#[test]
fn continue_policy_survives_heavy_failures_sync() {
    let report = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, 60.0);
    assert!(report.failed_tasks > 0, "MTBF 60s vs ~14s tasks should fail some");
    assert_eq!(report.relaunched_tasks, 0);
    assert_eq!(report.cycles.len(), 3, "all cycles completed");
}

#[test]
fn relaunch_policy_retries_and_completes_sync() {
    let report =
        run_with_faults(FaultPolicy::Relaunch { max_retries: 20 }, Pattern::Synchronous, 60.0);
    assert!(report.failed_tasks > 0);
    assert!(report.relaunched_tasks > 0);
    assert_eq!(report.cycles.len(), 3);
}

#[test]
fn async_pattern_survives_failures() {
    let report =
        run_with_faults(FaultPolicy::Continue, Pattern::Asynchronous { tick_fraction: 0.25 }, 60.0);
    assert!(report.failed_tasks > 0);
    assert!(report.makespan > 0.0);
}

#[test]
fn relaunch_costs_wall_time_relative_to_continue() {
    let cont = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, 40.0);
    let relaunch =
        run_with_faults(FaultPolicy::Relaunch { max_retries: 30 }, Pattern::Synchronous, 40.0);
    assert!(
        relaunch.makespan > cont.makespan,
        "retries stretch the MD phases: {} vs {}",
        relaunch.makespan,
        cont.makespan
    );
}

#[test]
fn failure_free_run_with_fault_model_disabled() {
    let report = run_with_faults(FaultPolicy::Continue, Pattern::Synchronous, f64::INFINITY);
    assert_eq!(report.failed_tasks, 0);
}

/// The durability acceptance criterion: a campaign interrupted at a cycle
/// boundary and resumed from its checkpoint yields *exactly* the result of
/// the uninterrupted run — same failures and retries, same exchange
/// decisions, same per-cycle timings, same virtual clock, same trace.
#[test]
fn interrupted_and_resumed_sync_campaign_matches_uninterrupted_exactly() {
    let mut cfg = quick_tremd(8, 4);
    cfg.fault_mtbf_seconds = Some(60.0);
    cfg.fault_policy = FaultPolicy::Relaunch { max_retries: 5 };

    let rec_full = obs::Recorder::enabled();
    let full =
        RemdSimulation::new(cfg.clone()).unwrap().with_recorder(rec_full.clone()).run().unwrap();
    assert!(full.failed_tasks > 0, "the scenario must exercise the fault path");
    assert!(full.relaunched_tasks > 0, "and the retry path");

    let dir = std::env::temp_dir().join("repex-it-resume-equivalence");
    let _ = std::fs::remove_dir_all(&dir);
    let rec_head = obs::Recorder::enabled();
    let head = RemdSimulation::new(cfg)
        .unwrap()
        .with_checkpoints(&dir, 1)
        .with_cycle_limit(2)
        .with_recorder(rec_head.clone())
        .run()
        .unwrap();
    assert_eq!(head.cycles.len(), 2, "interrupted mid-campaign");

    let rec_tail = obs::Recorder::enabled();
    let resumed =
        RemdSimulation::resume(&dir).unwrap().with_recorder(rec_tail.clone()).run().unwrap();

    // Report-level exact equality.
    assert_eq!(resumed.cycles.len(), full.cycles.len());
    assert_eq!(resumed.failed_tasks, full.failed_tasks);
    assert_eq!(resumed.relaunched_tasks, full.relaunched_tasks);
    assert_eq!(resumed.acceptance, full.acceptance);
    assert_eq!(resumed.pair_acceptance, full.pair_acceptance);
    assert_eq!(resumed.round_trips, full.round_trips);
    assert_eq!(resumed.rung_history, full.rung_history);
    assert_eq!(resumed.makespan, full.makespan, "the fast-forwarded clock is bit-exact");
    assert_eq!(
        serde_json::to_value(&resumed.cycles).unwrap(),
        serde_json::to_value(&full.cycles).unwrap(),
        "per-cycle Eq. 1 timings replay bit-for-bit"
    );

    // Trace-level equality: the concatenated interrupted trace IS the full
    // trace. CacheRebuild counters depend on in-memory neighbor-list state
    // a restart file legitimately does not carry; everything physical (MD
    // segments, exchange windows/outcomes, staging, overhead) must match.
    let strip = |events: Vec<obs::Event>| -> Vec<obs::Event> {
        events.into_iter().filter(|e| !matches!(e, obs::Event::CacheRebuild { .. })).collect()
    };
    let mut interrupted = strip(rec_head.events());
    interrupted.extend(strip(rec_tail.events()));
    let full_events = strip(rec_full.events());
    assert_eq!(interrupted, full_events);

    // The health/replay view (what `repex analyze` reports) agrees too.
    assert_eq!(obs::exchange_health(&interrupted), obs::exchange_health(&full_events));
    let n = obs::implied_slot_count(&full_events);
    assert_eq!(
        obs::replay_slot_walk(&interrupted, n).records,
        obs::replay_slot_walk(&full_events, n).records
    );
}
