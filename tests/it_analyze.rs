//! Trace analytics acceptance tests: the analyzer must reproduce, from the
//! recorded event stream alone, the numbers the simulation computed
//! in-process — batch imbalance (Mode II), Eq. 1 per-cycle totals via the
//! critical path, exchange acceptance, and ladder round trips.

use integration::quick_tremd;
use obs::{Event, Recorder, StragglerPolicy};
use repex::simulation::RemdSimulation;

#[test]
fn mode_two_batch_imbalance_and_critical_path_match_eq1() {
    // 16 replicas on 8 cores (core:replica 1/2): every MD phase serializes
    // into ~2 waves.
    let mut cfg = quick_tremd(16, 3);
    cfg.resource.cores = Some(8);
    assert_eq!(cfg.execution_mode().unwrap(), 2);
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg).unwrap().with_recorder(recorder.clone()).run().unwrap();
    let events = recorder.events();

    // Batch imbalance: stretch ≈ 2 waves, imbalance strictly positive.
    let tl = obs::timeline_stats(&events, StragglerPolicy::default());
    assert_eq!(tl.phases.len(), 3, "one MD phase per cycle");
    for p in &tl.phases {
        assert!(p.stretch > 1.5 && p.stretch < 2.8, "cycle {} stretch {}", p.cycle, p.stretch);
        assert!(p.imbalance > 0.0, "Mode II batching must add wait beyond the slowest segment");
    }
    assert!(tl.mean_stretch > 1.5);

    // Critical path: per-cycle totals equal the Eq. 1 aggregator within
    // 1e-9 (phase-level events are contiguous on the virtual clock).
    let paths = obs::cycle_critical_paths(&events);
    let breakdowns = obs::cycle_breakdowns(&events);
    assert_eq!(paths.len(), breakdowns.len());
    assert_eq!(paths.len(), report.cycles.len());
    for (cp, b) in paths.iter().zip(&breakdowns) {
        assert_eq!(cp.cycle, b.cycle);
        assert!(
            (cp.path.total - b.total()).abs() < 1e-9,
            "cycle {}: path {} vs Eq. 1 {}",
            cp.cycle,
            cp.path.total,
            b.total()
        );
        assert!(cp.path.slack.abs() < 1e-9, "sync cycles are contiguous");
        assert_eq!(cp.path.dominant, "md", "MD bounds a Mode II cycle");
    }
}

#[test]
fn trace_acceptance_and_round_trips_match_in_process_stats() {
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(quick_tremd(8, 6))
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
    let events = recorder.events();

    // Acceptance: trace-derived counts equal exchange::stats exactly.
    let health = obs::exchange_health(&events);
    assert_eq!(health.len(), report.acceptance.len());
    let (letter, stats) = &report.acceptance[0];
    assert_eq!(health[0].kind, *letter);
    assert_eq!(health[0].attempts, stats.attempts);
    assert_eq!(health[0].accepted, stats.accepted);
    assert!(stats.attempts > 0, "the run must attempt exchanges");
    assert_eq!(health[0].ratio(), stats.ratio());

    // Round trips: replaying the slot walk from accepted outcomes and
    // feeding the snapshots through RoundTripTracker reproduces the
    // in-process count exactly.
    let n = obs::implied_slot_count(&events);
    assert_eq!(n, 8);
    let replay = obs::replay_slot_walk(&events, n);
    assert_eq!(replay.records.len(), 6, "one snapshot per cycle's exchange window");
    let mut rt = exchange::stats::RoundTripTracker::new(n, n);
    for record in &replay.records {
        for (replica, rung) in record.iter().enumerate() {
            rt.record(replica, *rung);
        }
    }
    assert_eq!(rt.total_round_trips(), report.round_trips);

    // The replayed final assignment matches the in-process rung history.
    for (replica, rungs) in report.rung_history.iter().enumerate() {
        assert_eq!(*rungs.last().unwrap(), replay.slot_of[replica], "replica {replica} final slot");
    }
}

#[test]
fn metrics_json_carries_exchange_health_keys() {
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(quick_tremd(6, 3))
        .unwrap()
        .with_recorder(recorder.clone())
        .run()
        .unwrap();
    let metrics: serde_json::Value = serde_json::from_str(&recorder.metrics_json()).unwrap();
    let (_, stats) = &report.acceptance[0];
    assert_eq!(metrics["exchange.T.attempts"].as_u64().unwrap(), stats.attempts);
    assert_eq!(metrics["exchange.T.accepted"].as_u64().unwrap(), stats.accepted);
    assert!((metrics["exchange.T.ratio"].as_f64().unwrap() - stats.ratio()).abs() < 1e-12);
    assert_eq!(metrics["exchange.round_trips_total"].as_u64().unwrap(), report.round_trips);
}

#[test]
fn exported_files_stay_parsable_even_with_non_finite_values() {
    // Hostile stream: non-finite timestamps must degrade to 0 in the
    // export, never to invalid JSON, and the files must parse from disk.
    let recorder = Recorder::enabled();
    recorder.record(Event::MdSegment {
        replica: 0,
        slot: 0,
        cycle: 0,
        dim: 0,
        attempt: 0,
        cores: 1,
        start: f64::NAN,
        end: f64::INFINITY,
        ok: true,
    });
    recorder.record(Event::ExchangeOutcome {
        dim: 0,
        cycle: 0,
        slot_lo: 0,
        slot_hi: 1,
        accepted: true,
        at: f64::NEG_INFINITY,
    });
    recorder.set_gauge_f64("bad.ratio", f64::NAN);
    recorder.count("good.counter", 7);

    let dir = std::env::temp_dir().join("repex-it-analyze");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("nan-trace.json");
    let metrics_path = dir.join("nan-metrics.json");
    std::fs::write(&trace_path, recorder.chrome_trace_json()).unwrap();
    std::fs::write(&metrics_path, recorder.metrics_json()).unwrap();

    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    assert!(!trace["traceEvents"].as_array().unwrap().is_empty());
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).unwrap()).unwrap();
    assert_eq!(metrics["bad.ratio"].as_f64().unwrap(), 0.0);
    assert_eq!(metrics["good.counter"].as_u64().unwrap(), 7);
}

#[test]
fn async_trace_supports_health_and_critical_path() {
    let mut cfg = quick_tremd(8, 3);
    cfg.pattern = repex::config::Pattern::Asynchronous { tick_fraction: 0.25 };
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg).unwrap().with_recorder(recorder.clone()).run().unwrap();
    let events = recorder.events();

    let health = obs::exchange_health(&events);
    let (_, stats) = &report.acceptance[0];
    assert_eq!(health[0].attempts, stats.attempts);
    assert_eq!(health[0].accepted, stats.accepted);

    // No phase events in an async stream: the critical path falls back to
    // chaining segments through exchange windows.
    assert!(!events.iter().any(|e| matches!(e, Event::MdPhase { .. })));
    let path = obs::critical_path(&events);
    assert!(path.total > 0.0);
    assert!(path.total <= path.span + 1e-9, "a chain cannot exceed the wall span");
    assert_eq!(path.dominant, "md");
}
