//! Integration tests for the paper's Section 5 extensions, all implemented:
//! pH exchange, the GROMACS engine, GPU replicas and federated execution.

use integration::quick_tremd;
use repex::config::{DimensionConfig, EngineChoice, SimulationConfig};
use repex::emm::federation::{run_federated, ClusterShare, WanModel};
use repex::simulation::RemdSimulation;

#[test]
fn ph_remd_runs_and_exchanges() {
    let mut cfg = quick_tremd(8, 4);
    cfg.title = "pH-REMD".into();
    cfg.dimensions = vec![DimensionConfig::Ph { min_ph: 3.0, max_ph: 10.0, count: 8 }];
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.acceptance[0].0, 'P');
    assert!(report.acceptance[0].1.attempts > 0);
    assert!(report.acceptance[0].1.accepted > 0, "pH exchange must accept on the reduced model");
}

#[test]
fn ph_keyword_flows_through_amber_input_files() {
    use repex::simulation::build_ctx;
    let mut cfg = quick_tremd(4, 1);
    cfg.dimensions = vec![DimensionConfig::Ph { min_ph: 4.0, max_ph: 8.0, count: 4 }];
    let mut ctx = build_ctx(cfg).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    let mdin = ctx.pilot.staging.get_text("r00000_c0000.mdin").unwrap();
    let ctl = mdsim::io::mdin::MdinControl::parse(&mdin).unwrap();
    assert!((ctl.solvph - 4.0).abs() < 1e-9, "slot 0 holds pH 4: {}", ctl.solvph);
    let mdin3 = ctx.pilot.staging.get_text("r00003_c0000.mdin").unwrap();
    let ctl3 = mdsim::io::mdin::MdinControl::parse(&mdin3).unwrap();
    assert!((ctl3.solvph - 8.0).abs() < 1e-9);
}

#[test]
fn mixed_t_and_ph_dimensions() {
    // 2-D T×pH REMD: both dimensions exchange.
    let mut cfg = quick_tremd(4, 3);
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 280.0, max_k: 360.0, count: 4 },
        DimensionConfig::Ph { min_ph: 4.0, max_ph: 9.0, count: 4 },
    ];
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.n_replicas, 16);
    let letters: String = report.acceptance.iter().map(|(l, _)| *l).collect();
    assert_eq!(letters, "TP");
    assert!(report.acceptance.iter().all(|(_, a)| a.attempts > 0));
}

#[test]
fn gromacs_engine_end_to_end() {
    use repex::simulation::build_ctx;
    let mut cfg = quick_tremd(6, 2);
    cfg.engine = EngineChoice::Gromacs;
    let mut ctx = build_ctx(cfg).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    // GROMACS-native files staged.
    let mdp = ctx.pilot.staging.get_text("r00002_c0001.mdp").unwrap();
    assert!(mdp.contains("integrator          = sd"));
    assert!(ctx.pilot.staging.contains("r00002_c0001.gro"));
    assert!(ctx.acceptance[0].attempts > 0);
    for r in &ctx.replicas {
        assert_eq!(r.segments_done, 2);
    }
}

#[test]
fn gpu_replicas_shrink_md_time() {
    let run = |gpu: bool| {
        let mut cfg = quick_tremd(8, 1);
        cfg.cost_atoms = Some(64_366);
        cfg.steps_per_cycle = 20_000;
        cfg.resource.use_gpu = gpu;
        RemdSimulation::new(cfg).unwrap().run().unwrap().average_timing().t_md
    };
    let cpu = run(false);
    let gpu = run(true);
    assert!(gpu < cpu / 20.0, "pmemd.cuda ~28x sander: {cpu} vs {gpu}");
}

#[test]
fn gpu_config_constraints() {
    let mut cfg = quick_tremd(4, 1);
    cfg.resource.use_gpu = true;
    cfg.resource.cores_per_replica = 16;
    assert!(cfg.validate().is_err(), "GPU binding is one GPU per replica");

    let mut cfg = quick_tremd(4, 1);
    cfg.resource.use_gpu = true;
    cfg.engine = EngineChoice::Namd;
    assert!(cfg.validate().is_err(), "GPU currently Amber-only");
}

#[test]
fn federated_execution_across_two_clusters() {
    let shares = vec![
        ClusterShare { cluster: "supermic".into(), cores: 12 },
        ClusterShare { cluster: "stampede".into(), cores: 12 },
    ];
    let report = run_federated(&quick_tremd(24, 3), &shares, WanModel::default()).unwrap();
    assert_eq!(report.cycles.len(), 3);
    assert_eq!(report.replicas_per_pilot.iter().sum::<usize>(), 24);
    assert!(report.wan_seconds > 0.0);
    assert!(report.makespan > 0.0);
}

#[test]
fn config_file_with_ph_and_gromacs() {
    let text = r#"{
        "title": "pH-REMD via GROMACS from a file",
        "engine": "gromacs",
        "pattern": "synchronous",
        "dimensions": [
            {"type": "ph", "min-ph": 3.5, "max-ph": 9.5, "count": 6}
        ],
        "steps-per-cycle": 600,
        "n-cycles": 2,
        "surrogate-steps": 8
    }"#;
    let cfg = SimulationConfig::from_json(text).unwrap();
    assert_eq!(cfg.engine, EngineChoice::Gromacs);
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.acceptance[0].0, 'P');
}
