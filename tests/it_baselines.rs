//! Framework vs baseline comparisons: quantify the "performance price" of
//! RepEx's flexibility against the tightly-integrated in-engine REMD.

use baselines::integrated::{run_integrated_tremd, IntegratedConfig};
use integration::quick_tremd;
use repex::simulation::RemdSimulation;

#[test]
fn repex_pays_a_bounded_flexibility_premium() {
    let n = 64;
    // Integrated baseline: cores == replicas, exchange inside the engine.
    let base_cfg = IntegratedConfig { surrogate_steps: 10, ..IntegratedConfig::new(n, 6000, 3) };
    let baseline = run_integrated_tremd(&base_cfg);

    // RepEx, same workload, Mode I.
    let mut cfg = quick_tremd(n, 3);
    cfg.steps_per_cycle = 6000;
    let repex_report = RemdSimulation::new(cfg).unwrap().run().unwrap();

    let tc_base = baseline.average_tc();
    let tc_repex = repex_report.average_tc();
    assert!(
        tc_repex > tc_base,
        "the framework cannot be cheaper than in-engine exchange: {tc_repex} vs {tc_base}"
    );
    // The paper's argument: the premium is acceptable. At 64 replicas the
    // overheads are a few seconds on a ~140 s cycle.
    let premium = (tc_repex - tc_base) / tc_base;
    assert!(premium < 0.15, "premium {premium:.2} should be modest at 64 replicas");
}

#[test]
fn premium_grows_with_replica_count_but_buys_flexibility() {
    let premium_at = |n: usize| {
        let base = run_integrated_tremd(&IntegratedConfig {
            surrogate_steps: 5,
            ..IntegratedConfig::new(n, 6000, 2)
        })
        .average_tc();
        let mut cfg = quick_tremd(n, 2);
        cfg.steps_per_cycle = 6000;
        cfg.surrogate_steps = 5;
        let repex_tc = RemdSimulation::new(cfg).unwrap().run().unwrap().average_tc();
        (repex_tc - base) / base
    };
    let p64 = premium_at(64);
    let p512 = premium_at(512);
    assert!(p512 > p64, "linear overheads grow the premium: {p64:.3} -> {p512:.3}");
    // But the baseline cannot do Mode II at all; RepEx can (a capability
    // check, not a timing one).
    let mut cfg = quick_tremd(512, 1);
    cfg.resource.cores = Some(64);
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.execution_mode, 2, "512 replicas on 64 cores");
}

#[test]
fn both_implementations_agree_on_exchange_physics() {
    // Acceptance ratios for the same ladder and workload should be in the
    // same ballpark between the integrated baseline and the framework
    // (they share the Metropolis criterion and the microphysics).
    let n = 16;
    let baseline = run_integrated_tremd(&IntegratedConfig {
        surrogate_steps: 30,
        ..IntegratedConfig::new(n, 600, 10)
    });
    let mut cfg = quick_tremd(n, 10);
    cfg.steps_per_cycle = 600;
    cfg.surrogate_steps = 30;
    let repex_report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let a = baseline.acceptance.ratio();
    let b = repex_report.acceptance[0].1.ratio();
    assert!((a - b).abs() < 0.25, "integrated {a:.2} vs repex {b:.2}");
}
