//! Configuration-file driven runs: the paper's usability requirement is
//! that a REMD simulation is fully specified by a configuration file. These
//! tests go JSON text → simulation → report.

use repex::config::SimulationConfig;
use repex::simulation::RemdSimulation;

#[test]
fn json_config_runs_a_tsu_simulation() {
    let text = r#"{
        "title": "TSU from a config file",
        "engine": "amber",
        "pattern": "synchronous",
        "dimensions": [
            {"type": "temperature", "min-k": 273.0, "max-k": 373.0, "count": 3},
            {"type": "salt", "min-molar": 0.0, "max-molar": 0.5, "count": 2},
            {"type": "umbrella", "dihedral": "phi", "count": 2, "k-deg": 0.02}
        ],
        "steps-per-cycle": 600,
        "n-cycles": 2,
        "surrogate-steps": 8,
        "workload": "dipeptide-vacuum",
        "cost-atoms": 2881,
        "resource": {
            "cluster": "supermic",
            "cores": null,
            "cores-per-replica": 1,
            "backend": "simulated"
        }
    }"#;
    let cfg = SimulationConfig::from_json(text).unwrap();
    assert_eq!(cfg.n_replicas().unwrap(), 12);
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.cycles.len(), 2);
    assert_eq!(report.acceptance.len(), 3);
    let letters: String = report.acceptance.iter().map(|(l, _)| *l).collect();
    assert_eq!(letters, "TSU");
}

#[test]
fn async_pattern_from_json() {
    let text = r#"{
        "title": "async from file",
        "engine": "amber",
        "pattern": {"asynchronous": {"tick-fraction": 0.25}},
        "dimensions": [
            {"type": "temperature", "min-k": 273.0, "max-k": 373.0, "count": 8}
        ],
        "steps-per-cycle": 600,
        "n-cycles": 3,
        "surrogate-steps": 8
    }"#;
    let cfg = SimulationConfig::from_json(text).unwrap();
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.pattern, "async");
    assert!(report.makespan > 0.0);
}

#[test]
fn fault_policy_and_pairing_from_json() {
    let text = r#"{
        "title": "options",
        "engine": "namd",
        "pattern": "synchronous",
        "dimensions": [
            {"type": "temperature", "min-k": 280.0, "max-k": 350.0, "count": 4}
        ],
        "steps-per-cycle": 400,
        "n-cycles": 1,
        "surrogate-steps": 5,
        "fault-policy": {"relaunch": {"max-retries": 3}},
        "pairing": "random",
        "seed": 99
    }"#;
    let cfg = SimulationConfig::from_json(text).unwrap();
    assert_eq!(cfg.fault_policy, repex::FaultPolicy::Relaunch { max_retries: 3 });
    assert_eq!(cfg.pairing, exchange::pairing::PairingStrategy::Random);
    assert_eq!(cfg.engine, repex::EngineChoice::Namd);
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert_eq!(report.cycles.len(), 1);
}

#[test]
fn bad_configs_are_rejected_with_messages() {
    // Unknown cluster.
    let mut cfg = SimulationConfig::t_remd(4, 100, 1);
    cfg.resource.cluster = "summit".into();
    let err = RemdSimulation::new(cfg).err().unwrap();
    assert!(err.contains("unknown cluster"), "{err}");

    // Mode I too big for the machine, with the suggestion to use Mode II.
    let mut cfg = SimulationConfig::t_remd(10_000, 100, 1);
    cfg.resource.cluster = "small:128".into();
    let err = RemdSimulation::new(cfg).err().unwrap();
    assert!(err.contains("Execution Mode"), "{err}");

    // Malformed JSON.
    assert!(SimulationConfig::from_json("{ not json").is_err());
}

#[test]
fn roundtrip_preserves_everything() {
    let mut cfg = SimulationConfig::t_remd(8, 600, 2);
    cfg.pattern = repex::Pattern::Asynchronous { tick_fraction: 0.3 };
    cfg.sample_stride = 7;
    cfg.sample_warmup = 3;
    cfg.production_after_cycle = 1;
    cfg.no_exchange = true;
    let back = SimulationConfig::from_json(&cfg.to_json()).unwrap();
    assert_eq!(back, cfg);
}
