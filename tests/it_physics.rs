//! Physics-level integration tests: the exchange machinery must preserve
//! and enhance the underlying statistical mechanics.

use integration::quick_tremd;
use repex::config::DimensionConfig;
use repex::simulation::RemdSimulation;

#[test]
fn temperature_ladder_produces_temperature_ordered_energies() {
    // After several cycles, time-averaged potential energy should increase
    // with the window temperature (equipartition across the ladder).
    let mut cfg = quick_tremd(6, 6);
    cfg.steps_per_cycle = 600;
    cfg.surrogate_steps = 150;
    cfg.dimensions = vec![DimensionConfig::Temperature { min_k: 250.0, max_k: 700.0, count: 6 }];
    cfg.no_exchange = true; // isolate per-window thermodynamics
    use repex::simulation::build_ctx;
    let mut ctx = build_ctx(cfg).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    // Measure final kinetic temperatures per slot.
    let mut temps = Vec::new();
    for slot in 0..6 {
        let replica = ctx.slot_owner[slot];
        let sys = ctx.replicas[replica].system.lock();
        temps.push(sys.instantaneous_temperature());
    }
    // The hottest window should be measurably hotter than the coldest.
    assert!(temps[5] > temps[0] * 1.5, "ladder thermostats should separate: {temps:?}");
}

#[test]
fn exchange_detailed_balance_is_not_violated_grossly() {
    // Acceptance of forward and reverse swaps over many cycles should be
    // statistically symmetric: run long and check the acceptance ratio is
    // neither 0 nor 1 for a moderately spaced ladder.
    let mut cfg = quick_tremd(8, 25);
    cfg.steps_per_cycle = 600;
    cfg.surrogate_steps = 40;
    cfg.dimensions = vec![DimensionConfig::Temperature { min_k: 250.0, max_k: 900.0, count: 8 }];
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let acc = report.acceptance[0].1;
    assert!(acc.attempts >= 75);
    let r = acc.ratio();
    assert!(r > 0.05 && r < 0.999, "acceptance {r} suspicious for a wide ladder");
}

#[test]
fn umbrella_windows_keep_their_dihedrals_near_centers() {
    // U-REMD: after a few cycles each window's samples should concentrate
    // near its own center (stiff restraints).
    let mut cfg = quick_tremd(8, 4);
    cfg.steps_per_cycle = 600;
    cfg.surrogate_steps = 120;
    cfg.sample_stride = 20;
    cfg.sample_warmup = 60;
    cfg.dimensions =
        vec![DimensionConfig::Umbrella { dihedral: "phi".into(), count: 8, k_deg: 0.02 }];
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let mut checked = 0;
    for w in &report.window_samples {
        let center = w.restraints[0].1;
        if w.samples.len() < 10 {
            continue;
        }
        // Circular mean of phi.
        let (s, c) =
            w.samples.iter().fold((0.0, 0.0), |(s, c), (phi, _)| (s + phi.sin(), c + phi.cos()));
        let mean = s.atan2(c).to_degrees();
        let dev = mdsim::units::angle_diff_deg(mean, center).abs();
        assert!(dev < 25.0, "window at {center}°: mean phi {mean}° ({dev}° off)");
        checked += 1;
    }
    assert!(checked >= 6, "most windows should have samples, checked {checked}");
}

#[test]
fn salt_dimension_changes_replica_energies() {
    // S-REMD: the same coordinates under different salt concentrations must
    // produce different single-point energies (otherwise S-exchange would
    // be vacuous).
    use mdsim::engine::{MdEngine, SanderEngine};
    use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
    let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
    let sys = alanine_dipeptide();
    let e0 = engine.single_point(&sys, 0.0, &[]).total();
    let e1 = engine.single_point(&sys, 1.0, &[]).total();
    assert!((e0 - e1).abs() > 1e-9);

    // And a full S-REMD run exchanges successfully.
    let mut cfg = quick_tremd(6, 3);
    cfg.dimensions = vec![DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: 6 }];
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    assert!(report.acceptance[0].1.attempts > 0);
}

#[test]
fn velocity_rescaling_on_t_swap_keeps_kinetic_energy_sane() {
    // After many T-exchanges, instantaneous temperatures must remain within
    // a physical band (no energy pump from repeated rescaling).
    use repex::simulation::build_ctx;
    let mut cfg = quick_tremd(8, 15);
    cfg.steps_per_cycle = 500;
    cfg.surrogate_steps = 30;
    let mut ctx = build_ctx(cfg).unwrap();
    repex::emm::sync::run_sync(&mut ctx).unwrap();
    for r in &ctx.replicas {
        let sys = r.system.lock();
        let t = sys.instantaneous_temperature();
        assert!(t > 30.0 && t < 2000.0, "replica {} at unphysical T {t}", r.id);
        assert!(sys.state.is_finite());
    }
}
