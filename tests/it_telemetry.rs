//! Consistency proofs for the live telemetry plane: the streamed snapshot
//! windows must fold to the same end-of-run truth as the simulation report
//! and the post-hoc `obs` replays — under fault injection, across a
//! checkpoint/resume boundary, and for both RE patterns. The bus is only a
//! single source of truth if every window telescopes exactly.

use integration::quick_tremd;
use obs::Recorder;
use repex::config::{FaultPolicy, Pattern};
use repex::emm::LiveTelemetry;
use repex::simulation::RemdSimulation;
use std::path::PathBuf;

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn parse_stream(path: &PathBuf) -> Vec<serde_json::Value> {
    std::fs::read_to_string(path)
        .unwrap()
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("every streamed line is a complete JSON record"))
        .collect()
}

/// The reader-side merge: last record per `seq`, ordered by `seq`
/// (mirrors `obs::merge_snapshots` over raw JSON values).
fn merge(snaps: Vec<serde_json::Value>) -> Vec<serde_json::Value> {
    let mut by_seq = std::collections::BTreeMap::new();
    for s in snaps {
        by_seq.insert(s["seq"].as_u64().unwrap(), s);
    }
    by_seq.into_values().collect()
}

fn window_sum(snaps: &[serde_json::Value], key: &str) -> u64 {
    snaps.iter().map(|s| s[key].as_u64().unwrap()).sum()
}

/// Storm campaign, streamed: the merged stream must reproduce the final
/// report exactly, every window must telescope to the cumulative truth,
/// the acceptance must match an `obs::exchange_health` replay of the full
/// event stream, and A104's live twin (W202) must fire mid-run.
#[test]
fn streamed_windows_fold_to_end_of_run_truth_under_faults() {
    let mut cfg = quick_tremd(16, 4);
    cfg.fault_policy = FaultPolicy::Relaunch { max_retries: 20 };
    cfg.scenario = Some(hpc::Scenario::FailureStorm {
        storm_mtbf_seconds: 2.0,
        period_seconds: 4000.0,
        storm_fraction: 0.002,
    });
    let dir = fresh_dir("repex-it-telemetry-storm");
    let stream = dir.join("snap.jsonl");
    let prom = dir.join("metrics.prom");
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg)
        .unwrap()
        .with_recorder(recorder.clone())
        .with_live_telemetry(LiveTelemetry {
            stream: Some(stream.clone()),
            prom: Some(prom.clone()),
            campaign: Some("storm".into()),
        })
        .run()
        .unwrap();
    assert!(report.failed_tasks >= 4, "the storm must kill tasks");

    let snaps = merge(parse_stream(&stream));
    assert_eq!(snaps.len(), 4, "one snapshot per cycle barrier");
    let last = snaps.last().unwrap();
    assert_eq!(last["campaign"], "storm");
    assert_eq!(last["done"], true);
    assert_eq!(last["completed"].as_u64().unwrap(), 4);
    assert_eq!(last["failed_tasks"].as_u64().unwrap(), report.failed_tasks);
    assert_eq!(last["relaunched_tasks"].as_u64().unwrap(), report.relaunched_tasks);
    assert_eq!(last["round_trips"].as_u64().unwrap(), report.round_trips);

    // Cumulative per-dim acceptance equals the report *and* a post-hoc
    // exchange_health replay of the recorded events, to 1e-9.
    let health = obs::exchange_health(&recorder.events());
    for (i, (letter, acc)) in report.acceptance.iter().enumerate() {
        let d = &last["dims"][i];
        assert_eq!(d["kind"].as_str().unwrap(), letter.to_string());
        assert_eq!(d["attempts"].as_u64().unwrap(), acc.attempts, "dim {i} attempts");
        assert_eq!(d["accepted"].as_u64().unwrap(), acc.accepted, "dim {i} accepted");
        let h = health.iter().find(|h| h.dim == i).expect("replay covers every active dim");
        assert_eq!(h.attempts, acc.attempts);
        assert_eq!(h.accepted, acc.accepted);
        let drift = (d["ratio"].as_f64().unwrap() - h.ratio()).abs();
        assert!(drift < 1e-9, "dim {i} acceptance drift {drift}");
    }

    // Windows telescope: per-window deltas sum to the cumulative counters.
    assert_eq!(window_sum(&snaps, "window_failed"), report.failed_tasks);
    assert_eq!(window_sum(&snaps, "window_relaunched"), report.relaunched_tasks);
    assert_eq!(window_sum(&snaps, "window_round_trips"), report.round_trips);
    assert_eq!(
        window_sum(&snaps, "window_stragglers"),
        last["stragglers"].as_u64().unwrap(),
        "straggler flags accumulate window by window"
    );
    let dim_window_sum: u64 =
        snaps.iter().map(|s| s["dims"][0]["window_attempts"].as_u64().unwrap()).sum();
    assert_eq!(dim_window_sum, last["dims"][0]["attempts"].as_u64().unwrap());

    // The windowed Tc histograms partition the per-cycle totals: counts sum
    // to the cycle count and durations sum to the report's, to 1e-9.
    let tc_count: u64 = snaps.iter().map(|s| s["window_tc"]["count"].as_u64().unwrap()).sum();
    assert_eq!(tc_count, 4);
    let tc_sum: f64 = snaps.iter().map(|s| s["window_tc"]["sum"].as_f64().unwrap()).sum();
    let report_sum: f64 = report.cycles.iter().map(|c| c.timing.total()).sum();
    assert!((tc_sum - report_sum).abs() < 1e-9, "{tc_sum} vs {report_sum}");
    assert_eq!(last["tc"]["count"].as_u64().unwrap(), 4);

    // A104's live twin: the storm's failure burst lands inside one window,
    // so W202 fires on the stream while the run is still going.
    let fired: Vec<&str> = snaps
        .iter()
        .flat_map(|s| s["findings"].as_array().unwrap())
        .map(|f| f["code"].as_str().unwrap())
        .collect();
    assert!(fired.contains(&"W202"), "live failure-burst rule fires, saw {fired:?}");

    // The Prometheus sink holds the final scrape.
    let prom_text = std::fs::read_to_string(&prom).unwrap();
    assert!(prom_text.contains("repex_failed_tasks_total{campaign=\"storm\"}"), "{prom_text}");
    assert!(prom_text.contains("repex_done{campaign=\"storm\"} 1"), "{prom_text}");
}

/// Kill + resume: a resumed leg appends to the same stream with strictly
/// increasing sequence numbers (the cursor survives the checkpoint), and
/// the merged stream reproduces the resumed run's final report exactly.
#[test]
fn snapshot_stream_survives_checkpoint_and_resume() {
    let cfg = quick_tremd(6, 4);
    let dir = fresh_dir("repex-it-telemetry-resume");
    let stream = dir.join("snap.jsonl");
    let ckpt = dir.join("ckpt");
    let live = || LiveTelemetry { stream: Some(stream.clone()), prom: None, campaign: None };

    let first = RemdSimulation::new(cfg)
        .unwrap()
        .with_checkpoints(&ckpt, 1)
        .with_cycle_limit(2)
        .with_live_telemetry(live())
        .run()
        .unwrap();
    assert_eq!(first.cycles.len(), 2, "stopped mid-campaign");
    let leg1 = parse_stream(&stream);
    assert_eq!(leg1.len(), 2);
    assert_eq!(leg1.last().unwrap()["done"], false, "an interrupted leg is not done");

    let resumed = RemdSimulation::resume(&ckpt).unwrap().with_live_telemetry(live()).run().unwrap();
    assert_eq!(resumed.cycles.len(), 4, "resume finishes the campaign");

    let raw = parse_stream(&stream);
    for w in raw.windows(2) {
        assert!(
            w[1]["seq"].as_u64().unwrap() > w[0]["seq"].as_u64().unwrap(),
            "the checkpointed cursor keeps seqs strictly increasing across the resume"
        );
    }
    let snaps = merge(raw);
    assert_eq!(snaps.len(), 4);
    let last = snaps.last().unwrap();
    assert_eq!(last["done"], true);
    assert_eq!(last["completed"].as_u64().unwrap(), 4);
    assert_eq!(last["failed_tasks"].as_u64().unwrap(), resumed.failed_tasks);
    assert_eq!(last["round_trips"].as_u64().unwrap(), resumed.round_trips);
    for (i, (_, acc)) in resumed.acceptance.iter().enumerate() {
        let d = &last["dims"][i];
        assert_eq!(d["attempts"].as_u64().unwrap(), acc.attempts, "dim {i}");
        assert_eq!(d["accepted"].as_u64().unwrap(), acc.accepted, "dim {i}");
    }
    // Telescoping holds across the boundary: leg 2's baseline picks up
    // exactly where leg 1's cumulative counters left off.
    let dim_window_sum: u64 =
        snaps.iter().map(|s| s["dims"][0]["window_attempts"].as_u64().unwrap()).sum();
    assert_eq!(dim_window_sum, last["dims"][0]["attempts"].as_u64().unwrap());
    let tc_count: u64 = snaps.iter().map(|s| s["window_tc"]["count"].as_u64().unwrap()).sum();
    assert_eq!(tc_count, 4, "every cycle's Tc lands in exactly one window");
}

/// Asynchronous pattern: snapshots are emitted per flushed exchange round,
/// and the terminal snapshot agrees with the report.
#[test]
fn async_terminal_snapshot_matches_the_report() {
    let mut cfg = quick_tremd(8, 3);
    cfg.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
    let dir = fresh_dir("repex-it-telemetry-async");
    let stream = dir.join("snap.jsonl");
    let report = RemdSimulation::new(cfg)
        .unwrap()
        .with_live_telemetry(LiveTelemetry {
            stream: Some(stream.clone()),
            prom: None,
            campaign: None,
        })
        .run()
        .unwrap();
    let snaps = merge(parse_stream(&stream));
    assert!(!snaps.is_empty());
    let last = snaps.last().unwrap();
    assert_eq!(last["done"], true);
    assert_eq!(last["total"].as_u64().unwrap(), 8 * 3, "segments, not cycles, for async");
    assert_eq!(
        last["completed"].as_u64().unwrap(),
        8 * 3,
        "the terminal snapshot covers the full drain"
    );
    assert_eq!(last["failed_tasks"].as_u64().unwrap(), report.failed_tasks);
    assert_eq!(last["relaunched_tasks"].as_u64().unwrap(), report.relaunched_tasks);
    assert_eq!(
        window_sum(&snaps, "window_md_segments"),
        last["md_segments"].as_u64().unwrap(),
        "segment windows telescope"
    );
    assert_eq!(last["tc"]["count"].as_u64().unwrap(), 0, "Tc is a sync-barrier concept");
}

/// `--progress` equivalence: the line rendered off the snapshot bus must be
/// byte-identical to the old in-driver accounting (cumulative Tc histogram,
/// per-cycle straggler flags, cumulative acceptance), replayed here
/// independently from the recorded events and the report.
#[test]
fn progress_lines_match_the_old_in_driver_accounting() {
    let mut cfg = quick_tremd(16, 3);
    cfg.scenario = Some(hpc::Scenario::HeterogeneousNodes { slow_fraction: 0.25, slowdown: 3.0 });
    let n_cycles = cfg.n_cycles;
    let n = 16usize;
    let recorder = Recorder::enabled();
    let report = RemdSimulation::new(cfg).unwrap().with_recorder(recorder.clone()).run().unwrap();
    let events = recorder.events();
    let cycle_of = |e: &obs::Event| -> Option<u64> {
        match e {
            obs::Event::MdSegment { cycle, .. }
            | obs::Event::MdPhase { cycle, .. }
            | obs::Event::ExchangeWindow { cycle, .. }
            | obs::Event::DataStage { cycle, .. }
            | obs::Event::ExchangeOutcome { cycle, .. }
            | obs::Event::Overhead { cycle, .. }
            | obs::Event::CacheRebuild { cycle, .. } => Some(*cycle),
            obs::Event::TaskRelaunch { .. } => None,
        }
    };

    // Feed the bus exactly as the sync driver does: one fold+emit per cycle.
    let mut live = obs::LiveState::new(obs::LiveConfig {
        campaign: "equiv".into(),
        n_slots: n,
        ladder_len: n,
        dim_kinds: vec!['T'],
        baseline: obs::LiveBaseline::default(),
    });

    // The old accounting, replayed independently.
    let mut old_tc = obs::LogHistogram::new();
    let mut old_stragglers = 0usize;
    let mut old_acc = (0u64, 0u64);

    for cycle in 0..n_cycles {
        let cycle_events: Vec<obs::Event> =
            events.iter().filter(|e| cycle_of(e) == Some(cycle)).cloned().collect();
        assert!(!cycle_events.is_empty());
        for e in &cycle_events {
            live.fold(e);
        }
        let snap = live.emit(
            &obs::EmitStats {
                completed: cycle + 1,
                total: n_cycles,
                time: 0.0,
                failed_tasks: 0,
                relaunched_tasks: 0,
                done: cycle + 1 == n_cycles,
            },
            0,
            0,
        );

        old_tc.record(report.cycles[cycle as usize].timing.total());
        old_stragglers +=
            obs::timeline_stats(&cycle_events, obs::StragglerPolicy::default()).straggler_count;
        for e in &cycle_events {
            if let obs::Event::ExchangeOutcome { accepted, .. } = e {
                old_acc.0 += 1;
                old_acc.1 += u64::from(*accepted);
            }
        }
        let ratio = if old_acc.0 == 0 { 0.0 } else { old_acc.1 as f64 / old_acc.0 as f64 };
        let old_line = format!(
            "[repex] cycle {}/{}  Tc p50 {:.2}s p99 {:.2}s  acc[T] {:.2} stragglers {}",
            cycle + 1,
            n_cycles,
            old_tc.p50(),
            old_tc.p99(),
            ratio,
            old_stragglers,
        );
        assert_eq!(obs::render_progress_line(&snap), old_line, "cycle {cycle}");
    }
}
