//! Shared helpers for the cross-crate integration tests.

use repex::config::SimulationConfig;

/// A small, fast simulated-backend T-REMD configuration.
pub fn quick_tremd(n: usize, cycles: u64) -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(n, 600, cycles);
    cfg.surrogate_steps = 10;
    cfg.sample_stride = 5;
    cfg
}
