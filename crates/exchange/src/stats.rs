//! Exchange statistics: acceptance ratios, ladder traversal and round trips.

use serde::{Deserialize, Serialize};

/// Attempt/accept counters (per dimension, per pair, whatever the caller
/// aggregates over).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AcceptanceStats {
    pub attempts: u64,
    pub accepted: u64,
}

impl AcceptanceStats {
    pub fn record(&mut self, accepted: bool) {
        self.attempts += 1;
        if accepted {
            self.accepted += 1;
        }
    }

    pub fn merge(&mut self, other: &AcceptanceStats) {
        self.attempts += other.attempts;
        self.accepted += other.accepted;
    }

    /// Acceptance ratio in [0, 1]; 0 when no attempts (never NaN — this
    /// value flows into JSON metrics and report text unguarded).
    pub fn ratio(&self) -> f64 {
        self.ratio_opt().unwrap_or(0.0)
    }

    /// Acceptance ratio, or `None` when no attempts were made — for callers
    /// that must distinguish "nothing attempted" from "everything rejected".
    pub fn ratio_opt(&self) -> Option<f64> {
        if self.attempts == 0 {
            None
        } else {
            Some(self.accepted as f64 / self.attempts as f64)
        }
    }
}

/// Tracks each replica's walk along a 1-D ladder and counts round trips
/// (bottom → top → bottom), the standard mixing diagnostic for REMD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundTripTracker {
    ladder_len: usize,
    /// Last endpoint each replica visited: 0 = bottom, 1 = top, -1 = none.
    last_end: Vec<i8>,
    /// Completed half-trips per replica (2 half-trips = 1 round trip).
    half_trips: Vec<u64>,
    /// Visit counts per (replica, rung).
    visits: Vec<Vec<u64>>,
}

impl RoundTripTracker {
    pub fn new(n_replicas: usize, ladder_len: usize) -> Self {
        assert!(ladder_len >= 2, "round trips need a ladder of at least 2");
        RoundTripTracker {
            ladder_len,
            last_end: vec![-1; n_replicas],
            half_trips: vec![0; n_replicas],
            visits: vec![vec![0; ladder_len]; n_replicas],
        }
    }

    /// Record that `replica` now occupies ladder `rung`.
    pub fn record(&mut self, replica: usize, rung: usize) {
        assert!(rung < self.ladder_len);
        self.visits[replica][rung] += 1;
        let end = if rung == 0 {
            Some(0i8)
        } else if rung == self.ladder_len - 1 {
            Some(1)
        } else {
            None
        };
        if let Some(e) = end {
            if self.last_end[replica] != -1 && self.last_end[replica] != e {
                self.half_trips[replica] += 1;
            }
            self.last_end[replica] = e;
        }
    }

    /// Completed round trips for one replica.
    pub fn round_trips(&self, replica: usize) -> u64 {
        self.half_trips[replica] / 2
    }

    /// Total round trips across replicas.
    pub fn total_round_trips(&self) -> u64 {
        self.half_trips.iter().map(|h| h / 2).sum()
    }

    /// The tracker's endpoint state — `(last_end, half_trips)` per replica —
    /// so a resumed live-telemetry fold can continue counting round trips
    /// exactly where this tracker stands (2 half-trips = 1 round trip).
    pub fn endpoint_state(&self) -> (Vec<i8>, Vec<u64>) {
        (self.last_end.clone(), self.half_trips.clone())
    }

    /// Fraction of rungs a replica has visited (1.0 = full traversal).
    /// Always finite: `new` rejects ladders shorter than 2, so the
    /// denominator is never zero, and zero visits yield 0.0.
    pub fn coverage(&self, replica: usize) -> f64 {
        let visited = self.visits[replica].iter().filter(|&&v| v > 0).count();
        visited as f64 / self.ladder_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_attempts_never_produce_nan() {
        let s = AcceptanceStats::default();
        assert_eq!(s.ratio(), 0.0);
        assert!(s.ratio().is_finite());
        assert_eq!(s.ratio_opt(), None);

        let mut one = AcceptanceStats::default();
        one.record(false);
        assert_eq!(one.ratio_opt(), Some(0.0));
    }

    #[test]
    fn coverage_with_zero_visits_is_zero_not_nan() {
        let rt = RoundTripTracker::new(2, 3);
        assert_eq!(rt.coverage(0), 0.0);
        assert!(rt.coverage(1).is_finite());
        assert_eq!(rt.total_round_trips(), 0);
    }

    #[test]
    fn acceptance_ratio_arithmetic() {
        let mut s = AcceptanceStats::default();
        assert_eq!(s.ratio(), 0.0);
        for i in 0..100 {
            s.record(i % 4 == 0);
        }
        assert_eq!(s.attempts, 100);
        assert_eq!(s.accepted, 25);
        assert!((s.ratio() - 0.25).abs() < 1e-12);

        let mut t = AcceptanceStats::default();
        t.record(true);
        s.merge(&t);
        assert_eq!(s.attempts, 101);
        assert_eq!(s.accepted, 26);
    }

    #[test]
    fn one_full_round_trip() {
        let mut rt = RoundTripTracker::new(1, 4);
        for rung in [0usize, 1, 2, 3, 2, 1, 0] {
            rt.record(0, rung);
        }
        assert_eq!(rt.round_trips(0), 1);
        assert_eq!(rt.total_round_trips(), 1);
        assert_eq!(rt.coverage(0), 1.0);
    }

    #[test]
    fn bouncing_at_one_end_is_not_a_trip() {
        let mut rt = RoundTripTracker::new(1, 4);
        for rung in [0usize, 1, 0, 1, 0] {
            rt.record(0, rung);
        }
        assert_eq!(rt.round_trips(0), 0);
        assert!(rt.coverage(0) < 1.0);
    }

    #[test]
    fn half_trip_counts() {
        let mut rt = RoundTripTracker::new(2, 3);
        // Replica 0: bottom -> top (one half trip).
        rt.record(0, 0);
        rt.record(0, 2);
        assert_eq!(rt.round_trips(0), 0);
        // Replica 1: top -> bottom -> top -> bottom (3 half trips = 1 RT).
        rt.record(1, 2);
        rt.record(1, 0);
        rt.record(1, 2);
        rt.record(1, 0);
        assert_eq!(rt.round_trips(1), 1);
        assert_eq!(rt.total_round_trips(), 1);
    }

    #[test]
    fn starting_in_the_middle_counts_nothing() {
        let mut rt = RoundTripTracker::new(1, 5);
        rt.record(0, 2);
        rt.record(0, 3);
        assert_eq!(rt.round_trips(0), 0);
        assert!((rt.coverage(0) - 0.4).abs() < 1e-12);
    }
}
