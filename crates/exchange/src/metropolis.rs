//! Metropolis acceptance criteria for the three exchange types.
//!
//! Each criterion reduces to `P = min(1, exp(-delta))` with a type-specific
//! `delta` derived from detailed balance over the extended ensemble.

use mdsim::units::beta;
use rand::Rng;

/// Generic Metropolis accept/reject given `delta` (dimensionless).
pub fn metropolis_accept<R: Rng + ?Sized>(delta: f64, rng: &mut R) -> bool {
    delta <= 0.0 || rng.gen::<f64>() < (-delta).exp()
}

/// Acceptance probability for a given `delta` (for statistics/analysis).
pub fn acceptance_probability(delta: f64) -> f64 {
    (-delta).exp().min(1.0)
}

/// Temperature exchange between replica `i` at `t_i` with potential energy
/// `e_i` and replica `j` at `t_j` with `e_j` (energies exclude restraints).
///
/// `delta = (beta_j - beta_i)(e_i - e_j)`; swapping is always accepted when
/// the hotter replica holds the lower energy.
pub fn temperature_delta(t_i: f64, e_i: f64, t_j: f64, e_j: f64) -> f64 {
    (beta(t_j) - beta(t_i)) * (e_i - e_j)
}

/// Umbrella (Hamiltonian-bias) exchange at common temperature `t`.
///
/// `u_a_of_b` denotes the bias energy of window `a` evaluated on the
/// coordinates of replica `b`:
/// `delta = beta [ u_i(x_j) + u_j(x_i) - u_i(x_i) - u_j(x_j) ]`.
pub fn umbrella_delta(t: f64, u_i_of_i: f64, u_i_of_j: f64, u_j_of_i: f64, u_j_of_j: f64) -> f64 {
    beta(t) * (u_i_of_j + u_j_of_i - u_i_of_i - u_j_of_j)
}

/// Salt-concentration (general Hamiltonian) exchange at common temperature.
///
/// `e_a_of_b` is the full potential of Hamiltonian `a` (salt concentration
/// of replica `a`) evaluated on the coordinates of replica `b` — the four
/// single-point energies whose computation dominates S-REMD exchange cost.
pub fn hamiltonian_delta(
    t: f64,
    e_i_of_i: f64,
    e_i_of_j: f64,
    e_j_of_i: f64,
    e_j_of_j: f64,
) -> f64 {
    beta(t) * (e_i_of_j + e_j_of_i - e_i_of_i - e_j_of_j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn negative_delta_always_accepts() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(metropolis_accept(-0.5, &mut rng));
            assert!(metropolis_accept(0.0, &mut rng));
        }
    }

    #[test]
    fn acceptance_rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let delta = 1.2;
        let trials = 50_000;
        let accepted = (0..trials).filter(|_| metropolis_accept(delta, &mut rng)).count();
        let rate = accepted as f64 / trials as f64;
        let expect = acceptance_probability(delta);
        assert!((rate - expect).abs() < 0.01, "rate {rate} vs {expect}");
    }

    #[test]
    fn temperature_favorable_swap() {
        // Cold replica (300 K) has HIGHER energy than hot (400 K): swapping
        // moves high energy to high temperature -> delta <= 0 -> accept.
        let d = temperature_delta(300.0, -100.0, 400.0, -150.0);
        assert!(d <= 0.0, "favorable swap must have non-positive delta: {d}");
        // Reverse situation is penalized.
        let d2 = temperature_delta(300.0, -150.0, 400.0, -100.0);
        assert!(d2 > 0.0);
        assert!((d + d2).abs() < 1e-12, "antisymmetric in the energy difference");
    }

    #[test]
    fn equal_temperatures_always_accept() {
        let d = temperature_delta(350.0, -120.0, 350.0, -80.0);
        assert_eq!(d, 0.0);
    }

    #[test]
    fn temperature_delta_symmetric_under_relabeling() {
        // delta(i,j) == delta(j,i): the pair criterion does not depend on
        // which replica we call "i".
        let d_ij = temperature_delta(300.0, -100.0, 330.0, -90.0);
        let d_ji = temperature_delta(330.0, -90.0, 300.0, -100.0);
        assert!((d_ij - d_ji).abs() < 1e-15);
    }

    #[test]
    fn umbrella_identity_swap_is_free() {
        // If both replicas sit exactly at both windows' centers, the cross
        // terms equal the self terms -> delta = 0.
        let d = umbrella_delta(300.0, 2.0, 3.0, 3.0, 2.0);
        assert!((d - beta_times(300.0, 3.0 + 3.0 - 2.0 - 2.0)).abs() < 1e-12);
        let d0 = umbrella_delta(300.0, 1.0, 1.0, 1.0, 1.0);
        assert_eq!(d0, 0.0);
    }

    fn beta_times(t: f64, x: f64) -> f64 {
        mdsim::units::beta(t) * x
    }

    #[test]
    fn umbrella_swap_toward_natural_windows_is_favorable() {
        // Replica i's coordinates fit window j better and vice versa:
        // cross bias energies lower than self energies -> delta < 0.
        let d = umbrella_delta(300.0, 10.0, 1.0, 1.0, 10.0);
        assert!(d < 0.0);
    }

    #[test]
    fn hamiltonian_delta_matches_umbrella_form() {
        // Same algebraic structure; check numeric agreement.
        let (a, b, c, dd) = (5.0, 2.0, 3.0, 6.0);
        assert_eq!(umbrella_delta(310.0, a, b, c, dd), hamiltonian_delta(310.0, a, b, c, dd));
    }

    #[test]
    fn colder_pairs_accept_less_for_same_energy_gap() {
        // The same unfavorable energy arrangement is harder to accept at
        // lower temperatures (bigger beta difference for the same T ratio).
        let d_cold = temperature_delta(250.0, -150.0, 275.0, -100.0);
        let d_hot = temperature_delta(500.0, -150.0, 550.0, -100.0);
        assert!(d_cold > d_hot, "{d_cold} vs {d_hot}");
        assert!(acceptance_probability(d_cold) < acceptance_probability(d_hot));
    }

    proptest::proptest! {
        #[test]
        fn probability_in_unit_interval(delta in -100.0f64..100.0) {
            let p = acceptance_probability(delta);
            proptest::prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn detailed_balance_antisymmetry(
            t_i in 250.0f64..450.0, t_j in 250.0f64..450.0,
            e_i in -500.0f64..500.0, e_j in -500.0f64..500.0,
        ) {
            // Swapping back must have the opposite delta.
            let fwd = temperature_delta(t_i, e_i, t_j, e_j);
            let back = temperature_delta(t_i, e_j, t_j, e_i);
            proptest::prop_assert!((fwd + back).abs() < 1e-9);
        }
    }
}
