//! # exchange — replica-exchange algorithms
//!
//! The RE mathematics of the framework, independent of any MD engine:
//!
//! * [`param`] — exchange parameter types (T/U/S) and ladder construction;
//! * [`metropolis`] — acceptance criteria for temperature, umbrella and
//!   general Hamiltonian (salt) exchange;
//! * [`pairing`] — partner selection (alternating nearest-neighbour, random);
//! * [`multidim`] — parameter grids and per-dimension exchange groups for
//!   M-REMD with arbitrary dimension ordering;
//! * [`stats`] — acceptance ratios and round-trip mixing diagnostics;
//! * [`ladder_opt`] — adaptive temperature-ladder re-spacing from measured
//!   acceptances (the kind of algorithmic innovation the framework exists
//!   to enable).

pub mod ladder_opt;
pub mod metropolis;
pub mod multidim;
pub mod pairing;
pub mod param;
pub mod stats;

pub use ladder_opt::{respace_dimension, respace_temperature_ladder, PairAcceptance};
pub use metropolis::{
    acceptance_probability, hamiltonian_delta, metropolis_accept, temperature_delta, umbrella_delta,
};
pub use multidim::ParamGrid;
pub use pairing::{select_pairs, validate_pairs, PairingStrategy};
pub use param::{Dimension, ExchangeParam};
pub use stats::{AcceptanceStats, RoundTripTracker};
