//! Adaptive temperature-ladder optimization.
//!
//! The paper argues that decoupling the RE algorithm from the engine "lowers
//! the barrier for development and testing of new REMD algorithms". This
//! module is exactly such an algorithm: iteratively re-space a temperature
//! ladder so every neighbouring pair accepts at (roughly) the same target
//! rate — the textbook recipe for efficient ladder traversal, normally
//! painful to implement inside an MD engine.
//!
//! Method: acceptance between neighbouring rungs falls off with the spacing
//! in `ln T`. Given measured per-pair acceptances `a_i` and a target `a*`,
//! each log-gap is scaled by `sqrt(ln a_i / ln a*)` (the Gaussian-overlap
//! approximation: -ln a grows quadratically with the gap), then the ladder
//! is renormalized to keep its endpoints fixed.

use crate::param::{Dimension, ExchangeParam};
use crate::stats::AcceptanceStats;

/// Per-neighbour-pair acceptance measurement.
#[derive(Debug, Clone, Default)]
pub struct PairAcceptance {
    /// `stats[i]` covers the (i, i+1) pair.
    pub stats: Vec<AcceptanceStats>,
}

impl PairAcceptance {
    pub fn new(n_rungs: usize) -> Self {
        PairAcceptance { stats: vec![AcceptanceStats::default(); n_rungs.saturating_sub(1)] }
    }

    /// Record an attempt between rungs `lo` and `lo + 1`.
    pub fn record(&mut self, lo: usize, accepted: bool) {
        self.stats[lo].record(accepted);
    }
}

/// One optimization step: returns the re-spaced temperature ladder.
///
/// Pairs with no attempts keep their current spacing; acceptances are
/// clamped into `[0.01, 0.99]` so degenerate measurements cannot collapse or
/// explode a gap. Endpoints are preserved exactly.
pub fn respace_temperature_ladder(
    temps: &[f64],
    pairs: &PairAcceptance,
    target_acceptance: f64,
) -> Result<Vec<f64>, String> {
    if temps.len() < 3 {
        return Err("need at least 3 rungs to re-space".into());
    }
    if pairs.stats.len() != temps.len() - 1 {
        return Err(format!("{} pair measurements for {} rungs", pairs.stats.len(), temps.len()));
    }
    if !(0.01..=0.99).contains(&target_acceptance) {
        return Err("target acceptance must be in [0.01, 0.99]".into());
    }
    if temps.windows(2).any(|w| w[1] <= w[0]) || temps[0] <= 0.0 {
        return Err("temperatures must be positive and strictly increasing".into());
    }
    let ln_target = target_acceptance.ln();
    // Scale each log-gap.
    let mut gaps: Vec<f64> = temps.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
    for (gap, stat) in gaps.iter_mut().zip(&pairs.stats) {
        if stat.attempts == 0 {
            continue;
        }
        let a = stat.ratio().clamp(0.01, 0.99);
        // -ln a ∝ gap² ⇒ gap_new = gap * sqrt(ln a* / ln a).
        *gap *= (ln_target / a.ln()).sqrt();
    }
    // Renormalize so the ladder still spans [T_min, T_max].
    let total: f64 = gaps.iter().sum();
    let span = (temps[temps.len() - 1] / temps[0]).ln();
    let scale = span / total;
    let mut out = Vec::with_capacity(temps.len());
    let mut ln_t = temps[0].ln();
    out.push(temps[0]);
    for gap in &gaps[..gaps.len() - 1] {
        ln_t += gap * scale;
        out.push(ln_t.exp());
    }
    out.push(temps[temps.len() - 1]);
    Ok(out)
}

/// Convenience: re-space a [`Dimension`] of temperatures in place.
pub fn respace_dimension(
    dim: &Dimension,
    pairs: &PairAcceptance,
    target_acceptance: f64,
) -> Result<Dimension, String> {
    let temps: Vec<f64> = dim
        .ladder
        .iter()
        .map(|p| match p {
            ExchangeParam::Temperature(t) => Ok(*t),
            other => Err(format!("not a temperature rung: {:?}", other.letter())),
        })
        .collect::<Result<_, _>>()?;
    let new = respace_temperature_ladder(&temps, pairs, target_acceptance)?;
    Ok(Dimension {
        name: dim.name.clone(),
        ladder: new.into_iter().map(ExchangeParam::Temperature).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metropolis::acceptance_probability;

    /// Synthetic acceptance model: a = exp(-(c·gap)²) for gap in ln T — the
    /// same Gaussian-overlap form the optimizer assumes, so a fixed point
    /// must equalize acceptances exactly.
    fn synthetic_acceptance(t_lo: f64, t_hi: f64, c: f64) -> f64 {
        let gap = (t_hi / t_lo).ln();
        (-(c * gap).powi(2)).exp()
    }

    fn measure(temps: &[f64], c: f64, attempts: u64) -> PairAcceptance {
        let mut pa = PairAcceptance::new(temps.len());
        for i in 0..temps.len() - 1 {
            let a = synthetic_acceptance(temps[i], temps[i + 1], c);
            pa.stats[i] =
                AcceptanceStats { attempts, accepted: (a * attempts as f64).round() as u64 };
        }
        pa
    }

    #[test]
    fn endpoints_are_preserved() {
        let temps = vec![273.0, 290.0, 330.0, 373.0];
        let pairs = measure(&temps, 8.0, 10_000);
        let new = respace_temperature_ladder(&temps, &pairs, 0.3).unwrap();
        assert_eq!(new.len(), 4);
        assert!((new[0] - 273.0).abs() < 1e-9);
        assert!((new[3] - 373.0).abs() < 1e-9);
        assert!(new.windows(2).all(|w| w[1] > w[0]), "still increasing: {new:?}");
    }

    #[test]
    fn iteration_equalizes_acceptance() {
        // Deliberately lopsided start: a huge first gap, tiny others.
        let mut temps = vec![273.0, 350.0, 360.0, 366.0, 373.0];
        let c = 10.0;
        for _ in 0..20 {
            let pairs = measure(&temps, c, 1_000_000);
            temps = respace_temperature_ladder(&temps, &pairs, 0.4).unwrap();
        }
        let accs: Vec<f64> =
            temps.windows(2).map(|w| synthetic_acceptance(w[0], w[1], c)).collect();
        let spread = accs.iter().copied().fold(f64::MIN, f64::max)
            - accs.iter().copied().fold(f64::MAX, f64::min);
        assert!(spread < 0.02, "acceptances equalized: {accs:?}");
        // And the converged ladder is geometric (equal log-gaps) for this
        // gap-only acceptance model.
        let gaps: Vec<f64> = temps.windows(2).map(|w| (w[1] / w[0]).ln()).collect();
        let g0 = gaps[0];
        assert!(gaps.iter().all(|g| (g - g0).abs() < 0.01 * g0), "{gaps:?}");
    }

    #[test]
    fn unmeasured_pairs_keep_relative_spacing() {
        let temps = vec![300.0, 320.0, 340.0, 360.0];
        let pairs = PairAcceptance::new(4); // no attempts anywhere
        let new = respace_temperature_ladder(&temps, &pairs, 0.3).unwrap();
        for (a, b) in temps.iter().zip(&new) {
            assert!((a - b).abs() < 1e-9, "no data -> no change");
        }
    }

    #[test]
    fn input_validation() {
        let pa = PairAcceptance::new(3);
        assert!(respace_temperature_ladder(&[300.0, 310.0], &pa, 0.3).is_err());
        assert!(respace_temperature_ladder(&[300.0, 310.0, 305.0], &pa, 0.3).is_err());
        assert!(respace_temperature_ladder(&[300.0, 310.0, 320.0], &pa, 1.5).is_err());
        let wrong_len = PairAcceptance::new(10);
        assert!(respace_temperature_ladder(&[300.0, 310.0, 320.0], &wrong_len, 0.3).is_err());
    }

    #[test]
    fn dimension_wrapper_roundtrip() {
        let dim = Dimension::temperature_geometric(273.0, 373.0, 5);
        let mut pa = PairAcceptance::new(5);
        for s in &mut pa.stats {
            *s = AcceptanceStats { attempts: 100, accepted: 50 };
        }
        let new = respace_dimension(&dim, &pa, 0.5).unwrap();
        assert_eq!(new.ladder.len(), 5);
        assert_eq!(new.kind_letter(), 'T');
        // Non-temperature dims are rejected.
        let udim = Dimension::umbrella_uniform("phi", 4, 0.02);
        assert!(respace_dimension(&udim, &PairAcceptance::new(4), 0.5).is_err());
    }

    proptest::proptest! {
        #[test]
        fn respacing_preserves_monotonicity_and_endpoints(
            n in 3usize..12,
            seed in 0u64..200,
            target in 0.05f64..0.95,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Random increasing ladder and random measured acceptances.
            let mut temps = vec![250.0 + rng.gen::<f64>() * 50.0];
            for _ in 1..n {
                let last = *temps.last().unwrap();
                temps.push(last * (1.0 + 0.02 + rng.gen::<f64>() * 0.4));
            }
            let mut pa = PairAcceptance::new(n);
            for s in &mut pa.stats {
                let attempts = rng.gen_range(0..50u64);
                let accepted = if attempts == 0 { 0 } else { rng.gen_range(0..=attempts) };
                *s = AcceptanceStats { attempts, accepted };
            }
            let new = respace_temperature_ladder(&temps, &pa, target).unwrap();
            proptest::prop_assert_eq!(new.len(), temps.len());
            proptest::prop_assert!((new[0] - temps[0]).abs() < 1e-9);
            proptest::prop_assert!((new[n - 1] - temps[n - 1]).abs() < 1e-9);
            proptest::prop_assert!(new.windows(2).all(|w| w[1] > w[0]), "monotone: {:?}", new);
        }
    }

    #[test]
    fn physical_acceptance_sanity() {
        // The real Metropolis acceptance also falls with gap size; verify
        // the optimizer's clamping handles extreme measured values.
        let p = acceptance_probability(1e6);
        assert!(p < 1e-10);
        let temps = vec![250.0, 600.0, 620.0, 900.0];
        let mut pa = PairAcceptance::new(4);
        pa.stats[0] = AcceptanceStats { attempts: 100, accepted: 0 }; // clamped to 0.01
        pa.stats[1] = AcceptanceStats { attempts: 100, accepted: 100 }; // clamped to 0.99
        pa.stats[2] = AcceptanceStats { attempts: 100, accepted: 30 };
        let new = respace_temperature_ladder(&temps, &pa, 0.3).unwrap();
        assert!(new.windows(2).all(|w| w[1] > w[0]));
        // The dead pair's gap must shrink relative to the saturated pair's.
        let g0 = (new[1] / new[0]).ln() / (temps[1] / temps[0]).ln();
        let g1 = (new[2] / new[1]).ln() / (temps[2] / temps[1]).ln();
        assert!(g0 < g1, "zero-acceptance gap shrinks most: {g0} vs {g1}");
    }
}
