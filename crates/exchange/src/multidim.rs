//! Multi-dimensional parameter grids and exchange-group decomposition.
//!
//! An M-REMD simulation places replicas on a grid with one axis per exchange
//! dimension (e.g. TSU: 12×12×12 = 1 728). Exchange happens in one dimension
//! at a time: replicas sharing all *other* coordinates form a group (a 1-D
//! sub-ladder), and pairing runs within each group. The paper notes replicas
//! are "group\[ed\] by parameter values in each dimension" (Section 4.4).

use crate::param::{Dimension, ExchangeParam};
use serde::{Deserialize, Serialize};

/// The full parameter grid: ordered dimensions (the paper's "arbitrary
/// ordering" TSU vs TUU is simply the order of this vector).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamGrid {
    pub dims: Vec<Dimension>,
}

impl ParamGrid {
    pub fn new(dims: Vec<Dimension>) -> Result<Self, String> {
        if dims.is_empty() {
            return Err("parameter grid needs at least one dimension".into());
        }
        if dims.iter().any(|d| d.is_empty()) {
            return Err("every dimension needs at least one ladder rung".into());
        }
        if dims.len() > 3 {
            // Matches the paper's "up to three dimensional REMD simulations".
            return Err(format!("RepEx supports up to 3 dimensions, got {}", dims.len()));
        }
        Ok(ParamGrid { dims })
    }

    pub fn n_dims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of grid slots (= replicas).
    pub fn n_slots(&self) -> usize {
        self.dims.iter().map(|d| d.len()).product()
    }

    /// The TSU/TUU-style type string.
    pub fn type_string(&self) -> String {
        self.dims.iter().map(|d| d.kind_letter()).collect()
    }

    /// Decompose a flat slot index into per-dimension coordinates
    /// (row-major: the last dimension varies fastest).
    pub fn coords_of(&self, slot: usize) -> Vec<usize> {
        assert!(slot < self.n_slots(), "slot {slot} out of range");
        let mut rem = slot;
        let mut coords = vec![0; self.n_dims()];
        for d in (0..self.n_dims()).rev() {
            let len = self.dims[d].len();
            coords[d] = rem % len;
            rem /= len;
        }
        coords
    }

    /// Flatten coordinates back to a slot index.
    pub fn slot_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.n_dims());
        let mut slot = 0;
        for (d, &c) in coords.iter().enumerate() {
            assert!(c < self.dims[d].len(), "coord {c} out of range in dim {d}");
            slot = slot * self.dims[d].len() + c;
        }
        slot
    }

    /// The parameter values held by a grid slot.
    pub fn params_at(&self, coords: &[usize]) -> Vec<ExchangeParam> {
        coords.iter().enumerate().map(|(d, &c)| self.dims[d].ladder[c].clone()).collect()
    }

    /// Exchange groups for dimension `d`: each group lists the slots that
    /// share all other coordinates, ordered by their coordinate in `d`
    /// (i.e., each group is one 1-D sub-ladder).
    pub fn groups_for_dimension(&self, d: usize) -> Vec<Vec<usize>> {
        assert!(d < self.n_dims());
        let n_groups = self.n_slots() / self.dims[d].len();
        let mut groups = Vec::with_capacity(n_groups);
        // Iterate over all coordinate combinations of the other dims.
        let mut other_coords = vec![0usize; self.n_dims()];
        loop {
            // Build the group by sweeping dimension d.
            let mut group = Vec::with_capacity(self.dims[d].len());
            for c in 0..self.dims[d].len() {
                let mut coords = other_coords.clone();
                coords[d] = c;
                group.push(self.slot_of(&coords));
            }
            groups.push(group);
            // Odometer increment over the other dimensions.
            let mut dim = self.n_dims();
            loop {
                if dim == 0 {
                    return groups;
                }
                dim -= 1;
                if dim == d {
                    continue;
                }
                other_coords[dim] += 1;
                if other_coords[dim] < self.dims[dim].len() {
                    break;
                }
                other_coords[dim] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tsu_grid(n: usize) -> ParamGrid {
        ParamGrid::new(vec![
            Dimension::temperature_geometric(273.0, 373.0, n),
            Dimension::salt_linear(0.0, 1.0, n),
            Dimension::umbrella_uniform("phi", n, 0.02),
        ])
        .unwrap()
    }

    #[test]
    fn paper_replica_counts() {
        // Weak-scaling sweep of Fig. 9: n per dim 4..12 -> 64..1728 total.
        for (n, total) in [(4, 64), (6, 216), (8, 512), (10, 1000), (12, 1728)] {
            assert_eq!(tsu_grid(n).n_slots(), total);
        }
    }

    #[test]
    fn type_string_reflects_ordering() {
        assert_eq!(tsu_grid(4).type_string(), "TSU");
        let tuu = ParamGrid::new(vec![
            Dimension::temperature_geometric(273.0, 373.0, 6),
            Dimension::umbrella_uniform("phi", 6, 0.02),
            Dimension::umbrella_uniform("psi", 6, 0.02),
        ])
        .unwrap();
        assert_eq!(tuu.type_string(), "TUU");
    }

    #[test]
    fn coords_roundtrip() {
        let g = tsu_grid(5);
        for slot in 0..g.n_slots() {
            let c = g.coords_of(slot);
            assert_eq!(g.slot_of(&c), slot);
        }
    }

    #[test]
    fn groups_partition_all_slots() {
        let g = tsu_grid(4);
        for d in 0..3 {
            let groups = g.groups_for_dimension(d);
            assert_eq!(groups.len(), 16, "64 slots / 4 per group");
            let mut seen = vec![false; g.n_slots()];
            for group in &groups {
                assert_eq!(group.len(), 4);
                for &s in group {
                    assert!(!seen[s], "slot {s} in two groups");
                    seen[s] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "every slot grouped");
        }
    }

    #[test]
    fn group_members_differ_only_in_target_dimension() {
        let g = tsu_grid(3);
        for d in 0..3 {
            for group in g.groups_for_dimension(d) {
                let base = g.coords_of(group[0]);
                for (rank, &slot) in group.iter().enumerate() {
                    let c = g.coords_of(slot);
                    assert_eq!(c[d], rank, "ordered by coordinate in dim {d}");
                    for other in 0..3 {
                        if other != d {
                            assert_eq!(c[other], base[other]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn params_at_matches_ladders() {
        let g = tsu_grid(4);
        let coords = vec![2, 1, 3];
        let params = g.params_at(&coords);
        assert_eq!(params[0], g.dims[0].ladder[2]);
        assert_eq!(params[1], g.dims[1].ladder[1]);
        assert_eq!(params[2], g.dims[2].ladder[3]);
    }

    #[test]
    fn one_dimensional_grid_is_single_group() {
        let g = ParamGrid::new(vec![Dimension::temperature_geometric(273.0, 373.0, 8)]).unwrap();
        let groups = g.groups_for_dimension(0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0], (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn validation_errors() {
        assert!(ParamGrid::new(vec![]).is_err());
        let four = vec![
            Dimension::temperature_geometric(273.0, 373.0, 2),
            Dimension::salt_linear(0.0, 1.0, 2),
            Dimension::umbrella_uniform("phi", 2, 0.02),
            Dimension::umbrella_uniform("psi", 2, 0.02),
        ];
        assert!(ParamGrid::new(four).is_err(), "more than 3 dims rejected");
    }

    #[test]
    fn validation_of_paper_grid_384() {
        // Fig. 4 validation: 6 T × 8 U(phi) × 8 U(psi) = 384 replicas.
        let g = ParamGrid::new(vec![
            Dimension::temperature_geometric(273.0, 373.0, 6),
            Dimension::umbrella_uniform("phi", 8, 0.02),
            Dimension::umbrella_uniform("psi", 8, 0.02),
        ])
        .unwrap();
        assert_eq!(g.n_slots(), 384);
        assert_eq!(g.type_string(), "TUU");
    }
}
