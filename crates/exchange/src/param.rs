//! Exchange parameters and ladder construction.
//!
//! RepEx supports three exchange parameter types — temperature (T), umbrella
//! / biasing potential (U) and salt concentration (S) — composable into
//! multi-dimensional REMD with arbitrary ordering (TSU, TUU, ...).

use mdsim::DihedralRestraint;
use serde::{Deserialize, Serialize};

/// One exchangeable thermodynamic control variable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExchangeParam {
    /// Thermostat temperature in K.
    Temperature(f64),
    /// Umbrella window: harmonic restraint on a named dihedral.
    Umbrella { dihedral: String, center_deg: f64, k_deg: f64 },
    /// Salt concentration in mol/L.
    Salt(f64),
    /// Solvent pH (the paper's proposed pH-exchange extension).
    Ph(f64),
}

impl ExchangeParam {
    /// The dimension type letter used in simulation names (T/U/S).
    pub fn letter(&self) -> char {
        match self {
            ExchangeParam::Temperature(_) => 'T',
            ExchangeParam::Umbrella { .. } => 'U',
            ExchangeParam::Salt(_) => 'S',
            ExchangeParam::Ph(_) => 'P',
        }
    }

    /// Scalar value for reporting/ordering within a ladder.
    pub fn scalar(&self) -> f64 {
        match self {
            ExchangeParam::Temperature(t) => *t,
            ExchangeParam::Umbrella { center_deg, .. } => *center_deg,
            ExchangeParam::Salt(c) => *c,
            ExchangeParam::Ph(p) => *p,
        }
    }

    /// Convert an umbrella parameter to the engine-level restraint.
    pub fn as_restraint(&self) -> Option<DihedralRestraint> {
        match self {
            ExchangeParam::Umbrella { dihedral, center_deg, k_deg } => {
                Some(DihedralRestraint::new(dihedral.clone(), *k_deg, *center_deg))
            }
            _ => None,
        }
    }
}

/// One exchange dimension: an ordered ladder of parameter values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimension {
    /// Human-readable name ("T", "U-phi", "S").
    pub name: String,
    /// The ladder, ordered.
    pub ladder: Vec<ExchangeParam>,
}

impl Dimension {
    pub fn len(&self) -> usize {
        self.ladder.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ladder.is_empty()
    }

    pub fn kind_letter(&self) -> char {
        self.ladder.first().map_or('?', |p| p.letter())
    }

    /// Geometric temperature ladder from `t_min` to `t_max` with `n` rungs —
    /// the standard spacing for T-REMD (the paper's validation run uses 6
    /// windows 273–373 K "by geometrical progression").
    pub fn temperature_geometric(t_min: f64, t_max: f64, n: usize) -> Self {
        assert!(n >= 1 && t_min > 0.0 && t_max >= t_min);
        let ladder = if n == 1 {
            vec![ExchangeParam::Temperature(t_min)]
        } else {
            let ratio = (t_max / t_min).powf(1.0 / (n as f64 - 1.0));
            (0..n).map(|i| ExchangeParam::Temperature(t_min * ratio.powi(i as i32))).collect()
        };
        Dimension { name: "T".into(), ladder }
    }

    /// Uniform umbrella windows over the full circle for a named dihedral
    /// (the paper: "8 windows chosen uniformly between 0° and 360°", force
    /// constant 0.02 kcal/mol/deg²).
    pub fn umbrella_uniform(dihedral: &str, n: usize, k_deg: f64) -> Self {
        assert!(n >= 1 && k_deg > 0.0);
        let ladder = (0..n)
            .map(|i| {
                let raw = 360.0 * i as f64 / n as f64;
                ExchangeParam::Umbrella {
                    dihedral: dihedral.to_string(),
                    center_deg: mdsim::units::wrap_angle_deg(raw),
                    k_deg,
                }
            })
            .collect();
        Dimension { name: format!("U-{dihedral}"), ladder }
    }

    /// Explicit temperature ladder (used by the adaptive ladder optimizer,
    /// which produces non-geometric spacings).
    pub fn temperature_list(temps: &[f64]) -> Self {
        assert!(!temps.is_empty());
        assert!(
            temps.windows(2).all(|w| w[1] > w[0]) && temps[0] > 0.0,
            "temperatures must be positive and strictly increasing"
        );
        Dimension {
            name: "T".into(),
            ladder: temps.iter().map(|&t| ExchangeParam::Temperature(t)).collect(),
        }
    }

    /// Linear pH ladder (pH-REMD, the paper's Section 5 extension).
    pub fn ph_linear(ph_min: f64, ph_max: f64, n: usize) -> Self {
        assert!(n >= 1 && ph_max >= ph_min);
        let ladder = (0..n)
            .map(|i| {
                let f = if n == 1 { 0.0 } else { i as f64 / (n as f64 - 1.0) };
                ExchangeParam::Ph(ph_min + f * (ph_max - ph_min))
            })
            .collect();
        Dimension { name: "pH".into(), ladder }
    }

    /// Linear salt-concentration ladder in mol/L.
    pub fn salt_linear(c_min: f64, c_max: f64, n: usize) -> Self {
        assert!(n >= 1 && c_min >= 0.0 && c_max >= c_min);
        let ladder = (0..n)
            .map(|i| {
                let f = if n == 1 { 0.0 } else { i as f64 / (n as f64 - 1.0) };
                ExchangeParam::Salt(c_min + f * (c_max - c_min))
            })
            .collect();
        Dimension { name: "S".into(), ladder }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_temperature_ladder_matches_paper_setup() {
        let d = Dimension::temperature_geometric(273.0, 373.0, 6);
        assert_eq!(d.len(), 6);
        let temps: Vec<f64> = d.ladder.iter().map(|p| p.scalar()).collect();
        assert!((temps[0] - 273.0).abs() < 1e-9);
        assert!((temps[5] - 373.0).abs() < 1e-9);
        // Constant ratio between neighbours.
        let r0 = temps[1] / temps[0];
        for w in temps.windows(2) {
            assert!((w[1] / w[0] - r0).abs() < 1e-9, "geometric spacing");
        }
        assert_eq!(d.kind_letter(), 'T');
    }

    #[test]
    fn umbrella_windows_cover_circle_uniformly() {
        let d = Dimension::umbrella_uniform("phi", 8, 0.02);
        assert_eq!(d.len(), 8);
        let centers: Vec<f64> = d.ladder.iter().map(|p| p.scalar()).collect();
        // Spacing is 45 degrees between consecutive raw values.
        assert!((centers[1] - centers[0] - 45.0).abs() < 1e-9);
        // All wrapped into (-180, 180].
        assert!(centers.iter().all(|c| *c > -180.0 - 1e-9 && *c <= 180.0 + 1e-9));
        assert_eq!(d.kind_letter(), 'U');
        // Restraint conversion carries the paper's force constant.
        let r = d.ladder[2].as_restraint().unwrap();
        assert_eq!(r.k_deg, 0.02);
        assert_eq!(r.dihedral, "phi");
    }

    #[test]
    fn salt_ladder_linear() {
        let d = Dimension::salt_linear(0.0, 1.0, 5);
        let vals: Vec<f64> = d.ladder.iter().map(|p| p.scalar()).collect();
        assert_eq!(vals, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(d.kind_letter(), 'S');
        assert!(d.ladder[0].as_restraint().is_none());
    }

    #[test]
    fn single_rung_ladders() {
        assert_eq!(Dimension::temperature_geometric(300.0, 400.0, 1).len(), 1);
        assert_eq!(Dimension::salt_linear(0.1, 0.9, 1).ladder[0].scalar(), 0.1);
    }

    #[test]
    fn temperature_list_validates() {
        let d = Dimension::temperature_list(&[273.0, 301.5, 373.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.kind_letter(), 'T');
    }

    #[test]
    #[should_panic]
    fn temperature_list_rejects_non_increasing() {
        Dimension::temperature_list(&[300.0, 290.0]);
    }

    #[test]
    fn ph_ladder_linear() {
        let d = Dimension::ph_linear(4.0, 9.0, 6);
        assert_eq!(d.len(), 6);
        assert_eq!(d.kind_letter(), 'P');
        let vals: Vec<f64> = d.ladder.iter().map(|p| p.scalar()).collect();
        assert_eq!(vals, vec![4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        assert!(d.ladder[0].as_restraint().is_none());
    }

    #[test]
    fn letters() {
        assert_eq!(ExchangeParam::Temperature(300.0).letter(), 'T');
        assert_eq!(ExchangeParam::Salt(0.5).letter(), 'S');
        assert_eq!(ExchangeParam::Ph(7.0).letter(), 'P');
        assert_eq!(
            ExchangeParam::Umbrella { dihedral: "psi".into(), center_deg: 0.0, k_deg: 0.1 }
                .letter(),
            'U'
        );
    }
}
