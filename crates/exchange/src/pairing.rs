//! Exchange-partner selection within a ladder.
//!
//! The workhorse is alternating nearest-neighbour pairing: even cycles pair
//! (0,1)(2,3)..., odd cycles pair (1,2)(3,4)... so parameters can random-walk
//! along the whole ladder. A random-pairing strategy is provided as an
//! ablation baseline (it mixes worse because distant pairs rarely accept).

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Strategy for picking exchange partners within one dimension's group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PairingStrategy {
    /// Alternating nearest neighbours by cycle parity (standard REMD).
    NeighborAlternating,
    /// Uniformly random disjoint pairs (ablation baseline).
    Random,
}

/// Produce disjoint index pairs over `n` ladder slots for a given cycle.
/// Indices refer to *ladder positions* (0 = lowest parameter value).
pub fn select_pairs<R: Rng + ?Sized>(
    strategy: PairingStrategy,
    n: usize,
    cycle: u64,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    match strategy {
        PairingStrategy::NeighborAlternating => {
            let start = (cycle % 2) as usize;
            (start..n.saturating_sub(1)).step_by(2).map(|i| (i, i + 1)).collect()
        }
        PairingStrategy::Random => {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.shuffle(rng);
            idx.chunks_exact(2).map(|c| (c[0].min(c[1]), c[0].max(c[1]))).collect()
        }
    }
}

/// Check that a pairing is valid: disjoint, in-range, no self-pairs.
pub fn validate_pairs(pairs: &[(usize, usize)], n: usize) -> Result<(), String> {
    let mut seen = vec![false; n];
    for &(a, b) in pairs {
        if a >= n || b >= n {
            return Err(format!("pair ({a},{b}) out of range 0..{n}"));
        }
        if a == b {
            return Err(format!("self-pair ({a},{b})"));
        }
        if seen[a] || seen[b] {
            return Err(format!("index reused in pair ({a},{b})"));
        }
        seen[a] = true;
        seen[b] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn even_cycle_pairs_from_zero() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = select_pairs(PairingStrategy::NeighborAlternating, 6, 0, &mut rng);
        assert_eq!(p, vec![(0, 1), (2, 3), (4, 5)]);
    }

    #[test]
    fn odd_cycle_pairs_from_one() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = select_pairs(PairingStrategy::NeighborAlternating, 6, 1, &mut rng);
        assert_eq!(p, vec![(1, 2), (3, 4)]);
        // Ends 0 and 5 rest this cycle; they pair next cycle.
    }

    #[test]
    fn alternation_covers_every_adjacent_pair_over_two_cycles() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut covered = std::collections::BTreeSet::new();
        for cycle in 0..2 {
            for (a, b) in select_pairs(PairingStrategy::NeighborAlternating, 8, cycle, &mut rng) {
                covered.insert((a, b));
            }
        }
        let expected: std::collections::BTreeSet<_> = (0..7).map(|i| (i, i + 1)).collect();
        assert_eq!(covered, expected);
    }

    #[test]
    fn odd_ladder_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        let p0 = select_pairs(PairingStrategy::NeighborAlternating, 5, 0, &mut rng);
        assert_eq!(p0, vec![(0, 1), (2, 3)]);
        let p1 = select_pairs(PairingStrategy::NeighborAlternating, 5, 1, &mut rng);
        assert_eq!(p1, vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn degenerate_sizes() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(select_pairs(PairingStrategy::NeighborAlternating, 0, 0, &mut rng).is_empty());
        assert!(select_pairs(PairingStrategy::NeighborAlternating, 1, 0, &mut rng).is_empty());
        assert!(select_pairs(PairingStrategy::Random, 1, 0, &mut rng).is_empty());
    }

    #[test]
    fn random_pairs_are_valid_and_cover_most_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [2usize, 7, 16, 33] {
            let p = select_pairs(PairingStrategy::Random, n, 3, &mut rng);
            validate_pairs(&p, n).unwrap();
            assert_eq!(p.len(), n / 2);
        }
    }

    #[test]
    fn validator_catches_problems() {
        assert!(validate_pairs(&[(0, 0)], 2).is_err());
        assert!(validate_pairs(&[(0, 5)], 2).is_err());
        assert!(validate_pairs(&[(0, 1), (1, 2)], 3).is_err());
        assert!(validate_pairs(&[(0, 1), (2, 3)], 4).is_ok());
    }

    proptest::proptest! {
        #[test]
        fn neighbor_pairs_always_valid(n in 0usize..64, cycle in 0u64..8) {
            let mut rng = StdRng::seed_from_u64(0);
            let p = select_pairs(PairingStrategy::NeighborAlternating, n, cycle, &mut rng);
            proptest::prop_assert!(validate_pairs(&p, n.max(1)).is_ok() || n == 0);
            for (a, b) in p {
                proptest::prop_assert_eq!(b, a + 1, "neighbours only");
            }
        }
    }
}
