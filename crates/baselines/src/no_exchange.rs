//! The "No exchange" baseline of Fig. 7: the same framework pipeline with
//! the exchange phase disabled, isolating the cost of exchanges from the
//! cost of running parallel MD under the runtime.

use repex::config::SimulationConfig;

/// Derive the no-exchange variant of a configuration.
pub fn no_exchange_config(mut cfg: SimulationConfig) -> SimulationConfig {
    cfg.no_exchange = true;
    cfg.title = format!("{} (no exchange)", cfg.title);
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use repex::simulation::RemdSimulation;

    #[test]
    fn no_exchange_runs_and_is_faster() {
        let mut base = SimulationConfig::t_remd(8, 600, 2);
        base.surrogate_steps = 5;
        let with = RemdSimulation::new(base.clone()).unwrap().run().unwrap();
        let without = RemdSimulation::new(no_exchange_config(base)).unwrap().run().unwrap();
        assert!(without.title.contains("no exchange"));
        assert_eq!(without.acceptance[0].1.attempts, 0);
        assert!(
            without.average_tc() < with.average_tc(),
            "dropping exchange must shorten the cycle: {} vs {}",
            without.average_tc(),
            with.average_tc()
        );
        // But the MD component matches.
        let md_with = with.average_timing().t_md;
        let md_without = without.average_timing().t_md;
        assert!((md_with - md_without).abs() < 0.15 * md_with, "{md_with} vs {md_without}");
    }
}
