//! Tightly-integrated synchronous T-REMD (the in-engine baseline).
//!
//! Models what Amber/Gromacs-style internal REMD does: all replicas live in
//! one MPI job, the exchange is a collective inside the engine (no staging,
//! no task launches), and the constraint is rigid — exactly one core per
//! replica, synchronous only, temperature only. The exchange math here is
//! *real* (it reuses the same Metropolis criteria on real microstates); only
//! wall-clock durations come from the shared performance model.

use exchange::metropolis::{metropolis_accept, temperature_delta};
use exchange::pairing::{select_pairs, PairingStrategy};
use exchange::param::Dimension;
use exchange::stats::AcceptanceStats;
use hpc::perfmodel::{EngineKind, PerfModel};
use hpc::ClusterSpec;
use mdsim::engine::{MdEngine, MdJob, SanderEngine};
use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the baseline run.
#[derive(Debug, Clone)]
pub struct IntegratedConfig {
    pub n_replicas: usize,
    pub steps_per_cycle: u64,
    pub n_cycles: u64,
    /// Real steps integrated per segment (surrogate; virtual time is
    /// charged for `steps_per_cycle`).
    pub surrogate_steps: u64,
    /// Atom count charged to the cost model.
    pub cost_atoms: usize,
    pub cluster: ClusterSpec,
    pub seed: u64,
}

impl IntegratedConfig {
    pub fn new(n_replicas: usize, steps_per_cycle: u64, n_cycles: u64) -> Self {
        IntegratedConfig {
            n_replicas,
            steps_per_cycle,
            n_cycles,
            surrogate_steps: 20,
            cost_atoms: 2881,
            cluster: ClusterSpec::supermic(),
            seed: 1,
        }
    }
}

/// Results of the baseline run.
#[derive(Debug, Clone)]
pub struct IntegratedReport {
    /// Per-cycle wall time: max replica MD time + collective exchange time.
    pub cycle_times: Vec<f64>,
    pub acceptance: AcceptanceStats,
}

impl IntegratedReport {
    pub fn average_tc(&self) -> f64 {
        self.cycle_times.iter().sum::<f64>() / self.cycle_times.len() as f64
    }
}

/// Cost of the in-engine collective exchange: an MPI allreduce-style step,
/// microseconds per replica — effectively negligible next to RepEx's
/// task-based exchange (that is the point of the baseline).
pub fn integrated_exchange_seconds(n_replicas: usize) -> f64 {
    0.05 + 2e-4 * n_replicas as f64
}

/// Run the tightly-integrated baseline.
pub fn run_integrated_tremd(cfg: &IntegratedConfig) -> IntegratedReport {
    assert!(cfg.n_replicas >= 2);
    let dim = Dimension::temperature_geometric(273.0, 373.0, cfg.n_replicas);
    let temps: Vec<f64> = dim.ladder.iter().map(|p| p.scalar()).collect();
    let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
    let perf = PerfModel::default();
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Real replica microstates; slot i holds temperature temps[i].
    let mut systems: Vec<_> = (0..cfg.n_replicas)
        .map(|i| {
            let mut s = alanine_dipeptide();
            let mut r = StdRng::seed_from_u64(cfg.seed ^ (i as u64 + 1));
            s.assign_maxwell_boltzmann(temps[i], &mut r);
            s
        })
        .collect();

    let md_model = perf.md.md_seconds(
        EngineKind::Sander,
        cfg.cost_atoms,
        cfg.steps_per_cycle,
        1,
        cfg.cluster.core_speed,
    );

    let mut cycle_times = Vec::with_capacity(cfg.n_cycles as usize);
    let mut acceptance = AcceptanceStats::default();
    for cycle in 0..cfg.n_cycles {
        // MD phase: all replicas in lockstep inside the MPI job; the cycle
        // waits for the slowest rank (same straggler model as RepEx).
        let mut energies = Vec::with_capacity(cfg.n_replicas);
        let mut max_md: f64 = 0.0;
        for (i, sys) in systems.iter_mut().enumerate() {
            let job = MdJob {
                steps: cfg.surrogate_steps.min(cfg.steps_per_cycle),
                temperature: temps[i],
                seed: cfg.seed ^ (cycle << 20) ^ i as u64,
                ..Default::default()
            };
            let out = engine.run(sys, &job).expect("baseline MD is stable");
            energies.push(out.mdinfo.physical_potential());
            max_md = max_md.max(md_model * perf.noise.factor(perf.noise.md_sigma, &mut rng));
        }
        // In-engine collective exchange: no staging, no task launch.
        for (a, b) in
            select_pairs(PairingStrategy::NeighborAlternating, cfg.n_replicas, cycle, &mut rng)
        {
            let delta = temperature_delta(temps[a], energies[a], temps[b], energies[b]);
            let accepted = metropolis_accept(delta, &mut rng);
            acceptance.record(accepted);
            if accepted {
                systems.swap(a, b);
                let f = (temps[a] / temps[b]).sqrt();
                for v in &mut systems[a].state.velocities {
                    *v *= f;
                }
                for v in &mut systems[b].state.velocities {
                    *v *= 1.0 / f;
                }
                energies.swap(a, b);
            }
        }
        cycle_times.push(max_md + integrated_exchange_seconds(cfg.n_replicas));
    }
    IntegratedReport { cycle_times, acceptance }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_runs_and_exchanges() {
        let cfg = IntegratedConfig { surrogate_steps: 10, ..IntegratedConfig::new(8, 600, 4) };
        let report = run_integrated_tremd(&cfg);
        assert_eq!(report.cycle_times.len(), 4);
        assert!(report.acceptance.attempts >= 12);
        assert!(report.acceptance.accepted > 0);
        // Cycle time ≈ MD model (600 steps -> 13.96 s) plus tiny exchange.
        let tc = report.average_tc();
        assert!(tc > 13.0 && tc < 16.5, "Tc = {tc}");
    }

    #[test]
    fn baseline_is_cheaper_than_framework_overheads() {
        // The whole point: integrated exchange cost ≪ RepEx exchange cost.
        let n = 1728;
        let integrated = integrated_exchange_seconds(n);
        let repex =
            PerfModel::default().exchange.exchange_seconds(hpc::ExchangeKind::Temperature, n);
        assert!(integrated < repex / 20.0, "integrated {integrated} vs repex {repex}");
    }

    #[test]
    fn cycle_time_nearly_flat_in_replica_count() {
        // Weak scaling of the integrated baseline: cores == replicas, so Tc
        // grows only through the max-straggler and the tiny collective.
        let tc = |n| {
            let cfg = IntegratedConfig { surrogate_steps: 5, ..IntegratedConfig::new(n, 600, 2) };
            run_integrated_tremd(&cfg).average_tc()
        };
        let t8 = tc(8);
        let t64 = tc(64);
        assert!(t64 < t8 * 1.15, "near-flat weak scaling: {t8} -> {t64}");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = IntegratedConfig { surrogate_steps: 5, ..IntegratedConfig::new(6, 100, 2) };
        let a = run_integrated_tremd(&cfg);
        let b = run_integrated_tremd(&cfg);
        assert_eq!(a.cycle_times, b.cycle_times);
        assert_eq!(a.acceptance, b.acceptance);
    }
}
