//! # baselines — comparison points for the RepEx framework
//!
//! Two baselines the evaluation needs:
//!
//! * [`integrated`] — a *tightly-integrated* synchronous T-REMD, the way MD
//!   engines implement it internally (exchange inside the MPI job: no pilot,
//!   no file staging, no per-task launch overhead — and no flexibility:
//!   cores must equal replicas, one engine, sync only). This quantifies the
//!   "performance price" of RepEx's flexibility that the paper argues is
//!   acceptable.
//! * [`no_exchange`] — independent parallel MD with the exchange phase
//!   disabled: the black "No exchange" reference line of Fig. 7.

pub mod integrated;
pub mod no_exchange;

pub use integrated::{run_integrated_tremd, IntegratedConfig, IntegratedReport};
pub use no_exchange::no_exchange_config;
