//! Unit system and physical constants.
//!
//! The substrate uses the AKMA-style unit system common to Amber/CHARMM:
//!
//! * length — Å (angstrom)
//! * energy — kcal/mol
//! * mass — amu (g/mol)
//! * temperature — K
//! * time — ps (with an internal conversion factor for the integrator)
//!
//! With these units, `v = sqrt(kB*T/m)` comes out in Å per *AKMA time unit*;
//! the integrator converts time steps given in ps via [`AKMA_PER_PS`].

/// Boltzmann constant in kcal/(mol·K).
pub const KB: f64 = 0.001_987_204_259;

/// Ideal-gas constant alias (identical value in molar units).
pub const R_GAS: f64 = KB;

/// Number of AKMA time units per picosecond.
///
/// 1 AKMA time unit = 1/sqrt(kcal/mol / (amu·Å²)) ≈ 0.048888 ps, hence
/// 1 ps ≈ 20.455 AKMA units.
pub const AKMA_PER_PS: f64 = 20.454_829_497_575_9;

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Wrap an angle in radians into `(-pi, pi]`.
#[inline]
pub fn wrap_angle(mut a: f64) -> f64 {
    use std::f64::consts::PI;
    while a > PI {
        a -= 2.0 * PI;
    }
    while a <= -PI {
        a += 2.0 * PI;
    }
    a
}

/// Wrap an angle in degrees into `(-180, 180]`.
#[inline]
pub fn wrap_angle_deg(mut a: f64) -> f64 {
    while a > 180.0 {
        a -= 360.0;
    }
    while a <= -180.0 {
        a += 360.0;
    }
    a
}

/// Smallest signed angular difference `a - b` in degrees, in `(-180, 180]`.
#[inline]
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    wrap_angle_deg(a - b)
}

/// kB·T in kcal/mol at temperature `t` (K).
#[inline]
pub fn kbt(t: f64) -> f64 {
    KB * t
}

/// Inverse temperature β = 1/(kB·T) in mol/kcal.
#[inline]
pub fn beta(t: f64) -> f64 {
    1.0 / kbt(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn kb_room_temperature() {
        // kB*T at 300 K is the textbook ~0.596 kcal/mol.
        assert!((kbt(300.0) - 0.5962).abs() < 1e-3);
        assert!((beta(300.0) * kbt(300.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_conversions_roundtrip() {
        for d in [-180.0, -90.0, 0.0, 45.0, 180.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-12);
        }
    }

    #[test]
    fn wrapping() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle_deg(540.0) - 180.0).abs() < 1e-12);
        assert!((wrap_angle_deg(-190.0) - 170.0).abs() < 1e-12);
        assert!((angle_diff_deg(170.0, -170.0) + 20.0).abs() < 1e-12);
    }

    #[test]
    fn akma_conversion_magnitude() {
        // 2 fs in AKMA units: 0.002 ps * 20.4548 ≈ 0.0409.
        let dt = 0.002 * AKMA_PER_PS;
        assert!((dt - 0.04091).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn wrap_angle_is_idempotent(a in -1e4f64..1e4) {
            let w = wrap_angle(a);
            prop_assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
            prop_assert!((wrap_angle(w) - w).abs() < 1e-12);
        }

        #[test]
        fn wrap_deg_preserves_sin_cos(a in -1e4f64..1e4) {
            let w = wrap_angle_deg(a);
            prop_assert!((deg_to_rad(a).sin() - deg_to_rad(w).sin()).abs() < 1e-6);
            prop_assert!((deg_to_rad(a).cos() - deg_to_rad(w).cos()).abs() < 1e-6);
        }
    }
}
