//! `pmemd.MPI`-analogue: the parallel Amber-family engine.
//!
//! Uses the Rayon-parallel force evaluation. Like the real `pmemd.MPI` (and
//! as the paper notes in the Fig. 12 experiment), it cannot run on a single
//! core — RepEx switches executables between `sander` and `pmemd.MPI` based
//! on the cores-per-replica setting, and our AMM does the same.

use super::sander::run_langevin;
use super::{
    batch_single_points, job_forcefield, EngineError, MdEngine, MdJob, MdOutput, SinglePointRequest,
};
use crate::forcefield::{DihedralRestraint, EnergyBreakdown, EvalContext, NonbondedParams};
use crate::integrator::EvalMode;
use crate::system::System;

/// Parallel MD engine (≥ 2 cores per replica), Amber `pmemd.MPI` analogue.
#[derive(Debug, Clone)]
pub struct PmemdEngine {
    pub base: NonbondedParams,
    /// Cores this instance is configured to use (for validation only; the
    /// actual parallelism is the Rayon pool of the executing task).
    pub cores: usize,
}

impl PmemdEngine {
    pub fn new(base: NonbondedParams, cores: usize) -> Self {
        PmemdEngine { base, cores }
    }
}

impl MdEngine for PmemdEngine {
    fn family(&self) -> &'static str {
        "amber"
    }

    fn executable(&self) -> &'static str {
        "pmemd.MPI"
    }

    fn min_cores(&self) -> usize {
        2
    }

    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError> {
        if self.cores < self.min_cores() {
            return Err(EngineError::BadCoreCount {
                engine: "pmemd.MPI",
                requested: self.cores,
                minimum: self.min_cores(),
            });
        }
        run_langevin(system, job, &self.base, EvalMode::Parallel, 200)
    }

    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        let ff = job_forcefield(&self.base, salt_molar, ph, restraints);
        // Energy-only parallel path: no force accumulation for single-points.
        ff.energy_par_ctx(system, &mut EvalContext::new())
    }

    fn single_points_with(
        &self,
        system: &System,
        requests: &[SinglePointRequest<'_>],
    ) -> Vec<EnergyBreakdown> {
        batch_single_points(&self.base, system, requests, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SanderEngine;
    use crate::models::{dipeptide_forcefield, solvated_alanine_dipeptide};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn refuses_single_core() {
        let engine = PmemdEngine::new(NonbondedParams::default(), 1);
        let mut sys = solvated_alanine_dipeptide(300, 1);
        let err = engine.run(&mut sys, &MdJob::default()).unwrap_err();
        assert!(matches!(err, EngineError::BadCoreCount { minimum: 2, .. }));
    }

    #[test]
    fn matches_sander_energies_at_single_point() {
        let base = dipeptide_forcefield().nonbonded;
        let pmemd = PmemdEngine::new(base, 4);
        let sander = SanderEngine::new(base);
        let mut sys = solvated_alanine_dipeptide(450, 2);
        let mut rng = StdRng::seed_from_u64(8);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        let a = sander.single_point(&sys, 0.2, &[]);
        let b = pmemd.single_point(&sys, 0.2, &[]);
        assert!((a.total() - b.total()).abs() < 1e-8, "{} vs {}", a.total(), b.total());
    }

    #[test]
    fn runs_solvated_system() {
        let engine = PmemdEngine::new(dipeptide_forcefield().nonbonded, 4);
        let mut sys = solvated_alanine_dipeptide(500, 3);
        let mut rng = StdRng::seed_from_u64(5);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        let job = MdJob { steps: 50, dt_ps: 0.001, ..Default::default() };
        let out = engine.run(&mut sys, &job).unwrap();
        assert!(out.final_state.is_finite());
        assert_eq!(out.final_state.step, 50);
    }
}
