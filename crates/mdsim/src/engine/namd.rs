//! NAMD-analogue engine.
//!
//! A second, independently-shaped engine demonstrating the framework's
//! engine-independence (Section 4.3 of the paper). Differences from the
//! Amber family are intentional and mirror real NAMD conventions:
//!
//! * configuration arrives as a NAMD-style config file ([`NamdConfig`]),
//!   with the time step in **femtoseconds**;
//! * the `temperature` keyword (re)assigns Maxwell-Boltzmann velocities at
//!   the start of the run when the system is cold, as `namd2` does;
//! * restraints are configured colvars-style (name, center, k) instead of a
//!   DISANG file.

use super::{
    batch_single_points, job_forcefield, validate_restraints, EngineError, MdEngine, MdJob,
    MdOutput, SinglePointRequest,
};
use crate::forcefield::{DihedralRestraint, EnergyBreakdown, NonbondedParams};
use crate::integrator::{EvalMode, Integrator, LangevinBaoab};
use crate::io::mdinfo::MdInfo;
use crate::io::namdconf::NamdConfig;
use crate::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// NAMD-analogue MD engine.
#[derive(Debug, Clone)]
pub struct NamdEngine {
    pub base: NonbondedParams,
}

impl NamdEngine {
    pub fn new(base: NonbondedParams) -> Self {
        NamdEngine { base }
    }

    /// Translate a NAMD config into the engine-neutral job description.
    pub fn job_from_config(cfg: &NamdConfig, sample_stride: u64) -> MdJob {
        MdJob {
            steps: cfg.numsteps,
            dt_ps: cfg.dt_ps(),
            temperature: cfg.temperature,
            gamma_ps: cfg.langevin_damping,
            seed: cfg.seed,
            salt_molar: cfg.salt_concentration,
            ph: cfg.solvent_ph,
            restraints: cfg
                .restraints
                .iter()
                .map(|(name, center, k)| DihedralRestraint::new(name.clone(), *k, *center))
                .collect(),
            sample_stride,
            sample_warmup: 0,
        }
    }

    /// Run directly from NAMD-style configuration text.
    pub fn run_config_text(
        &self,
        system: &mut System,
        config_text: &str,
        sample_stride: u64,
    ) -> Result<MdOutput, EngineError> {
        let cfg =
            NamdConfig::parse(config_text).map_err(|e| EngineError::BadInput(e.to_string()))?;
        self.run(system, &Self::job_from_config(&cfg, sample_stride))
    }
}

impl Default for NamdEngine {
    fn default() -> Self {
        NamdEngine::new(NonbondedParams::default())
    }
}

impl MdEngine for NamdEngine {
    fn family(&self) -> &'static str {
        "namd"
    }

    fn executable(&self) -> &'static str {
        "namd2"
    }

    fn min_cores(&self) -> usize {
        1
    }

    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError> {
        validate_restraints(system, &job.restraints)?;
        let ff = job_forcefield(&self.base, job.salt_molar, job.ph, &job.restraints);
        let mut rng = StdRng::seed_from_u64(job.seed ^ 0x4e41_4d44); // "NAMD"
                                                                     // NAMD semantics: the `temperature` keyword initializes velocities
                                                                     // when the system has (near-)zero kinetic energy.
        if system.kinetic_energy() < 1e-9 {
            system.assign_maxwell_boltzmann(job.temperature, &mut rng);
        }
        let mut integ = LangevinBaoab::new(job.dt_ps, job.temperature, job.gamma_ps);
        let mut trace = Vec::new();
        let mut last = ff.energy(system);
        for step in 1..=job.steps {
            last = integ.step(system, &ff, EvalMode::Serial, &mut rng);
            if job.sample_stride > 0 && step > job.sample_warmup && step % job.sample_stride == 0 {
                if let (Some(phi), Some(psi)) =
                    (system.named_dihedral_angle("phi"), system.named_dihedral_angle("psi"))
                {
                    trace.push((phi, psi));
                }
            }
            if step % 200 == 0 && !system.state.is_finite() {
                return Err(EngineError::NumericalBlowup { step });
            }
        }
        if !system.state.is_finite() {
            return Err(EngineError::NumericalBlowup { step: job.steps });
        }
        let mdinfo = MdInfo::from_breakdown(
            system.state.step,
            system.state.time_ps,
            system.instantaneous_temperature(),
            system.kinetic_energy(),
            &last,
        );
        Ok(MdOutput { final_state: system.state.clone(), mdinfo, dihedral_trace: trace })
    }

    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        job_forcefield(&self.base, salt_molar, ph, restraints).energy(system)
    }

    fn single_points_with(
        &self,
        system: &System,
        requests: &[SinglePointRequest<'_>],
    ) -> Vec<EnergyBreakdown> {
        batch_single_points(&self.base, system, requests, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SanderEngine;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    #[test]
    fn runs_from_config_text() {
        let engine = NamdEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = alanine_dipeptide();
        let cfg = "\
numsteps 300
timestep 2.0
temperature 320
langevinDamping 5
seed 77
harmonicDihedral phi 60 0.02
";
        let out = engine.run_config_text(&mut sys, cfg, 50).unwrap();
        assert_eq!(out.final_state.step, 300);
        assert_eq!(out.dihedral_trace.len(), 6);
        assert!(out.mdinfo.restraint >= 0.0);
    }

    #[test]
    fn cold_start_assigns_velocities() {
        let engine = NamdEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = alanine_dipeptide(); // zero velocities
        assert!(sys.kinetic_energy() < 1e-12);
        let job = MdJob { steps: 10, temperature: 300.0, ..Default::default() };
        engine.run(&mut sys, &job).unwrap();
        assert!(sys.kinetic_energy() > 0.0);
    }

    #[test]
    fn bad_config_is_engine_error() {
        let engine = NamdEngine::default();
        let mut sys = alanine_dipeptide();
        let err = engine.run_config_text(&mut sys, "bogusKeyword 1\n", 0).unwrap_err();
        assert!(matches!(err, EngineError::BadInput(_)));
    }

    #[test]
    fn energies_agree_with_amber_family() {
        // Same force field, same coordinates: the two engine families must
        // report identical single-point energies (the physics is shared).
        let base = dipeptide_forcefield().nonbonded;
        let namd = NamdEngine::new(base);
        let sander = SanderEngine::new(base);
        let sys = alanine_dipeptide();
        let a = namd.single_point(&sys, 0.1, &[]);
        let b = sander.single_point(&sys, 0.1, &[]);
        assert!((a.total() - b.total()).abs() < 1e-10);
    }

    #[test]
    fn config_translation_units() {
        let cfg = NamdConfig { numsteps: 4000, timestep_fs: 2.0, ..Default::default() };
        let job = NamdEngine::job_from_config(&cfg, 0);
        assert_eq!(job.steps, 4000);
        assert!((job.dt_ps - 0.002).abs() < 1e-12);
    }
}
