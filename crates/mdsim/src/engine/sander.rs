//! `sander`-analogue: the serial reference engine.

use super::{
    batch_single_points, job_forcefield, validate_restraints, EngineError, MdEngine, MdJob,
    MdOutput, SinglePointRequest,
};
use crate::forcefield::{DihedralRestraint, EnergyBreakdown, NonbondedParams};
use crate::integrator::{EvalMode, Integrator, LangevinBaoab};
use crate::io::mdinfo::MdInfo;
use crate::system::System;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serial MD engine (one core per replica), Amber `sander` analogue.
#[derive(Debug, Clone)]
pub struct SanderEngine {
    /// Base nonbonded parameters (job parameters override salt).
    pub base: NonbondedParams,
    /// Check for numerical blow-up every this many steps.
    pub blowup_check_stride: u64,
}

impl SanderEngine {
    pub fn new(base: NonbondedParams) -> Self {
        SanderEngine { base, blowup_check_stride: 200 }
    }
}

impl Default for SanderEngine {
    fn default() -> Self {
        SanderEngine::new(NonbondedParams::default())
    }
}

/// Core MD loop shared by the serial and parallel Amber-family engines.
pub(crate) fn run_langevin(
    system: &mut System,
    job: &MdJob,
    base: &NonbondedParams,
    mode: EvalMode,
    blowup_check_stride: u64,
) -> Result<MdOutput, EngineError> {
    validate_restraints(system, &job.restraints)?;
    let ff = job_forcefield(base, job.salt_molar, job.ph, &job.restraints);
    let mut integ = LangevinBaoab::new(job.dt_ps, job.temperature, job.gamma_ps);
    let mut rng = StdRng::seed_from_u64(job.seed);
    let mut trace = Vec::new();
    let mut last = ff.energy(system);
    for step in 1..=job.steps {
        last = integ.step(system, &ff, mode, &mut rng);
        if job.sample_stride > 0 && step > job.sample_warmup && step % job.sample_stride == 0 {
            if let (Some(phi), Some(psi)) =
                (system.named_dihedral_angle("phi"), system.named_dihedral_angle("psi"))
            {
                trace.push((phi, psi));
            }
        }
        if blowup_check_stride > 0 && step % blowup_check_stride == 0 && !system.state.is_finite() {
            return Err(EngineError::NumericalBlowup { step });
        }
    }
    if !system.state.is_finite() {
        return Err(EngineError::NumericalBlowup { step: job.steps });
    }
    let mdinfo = MdInfo::from_breakdown(
        system.state.step,
        system.state.time_ps,
        system.instantaneous_temperature(),
        system.kinetic_energy(),
        &last,
    );
    Ok(MdOutput { final_state: system.state.clone(), mdinfo, dihedral_trace: trace })
}

impl MdEngine for SanderEngine {
    fn family(&self) -> &'static str {
        "amber"
    }

    fn executable(&self) -> &'static str {
        "sander"
    }

    fn min_cores(&self) -> usize {
        1
    }

    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError> {
        run_langevin(system, job, &self.base, EvalMode::Serial, self.blowup_check_stride)
    }

    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        job_forcefield(&self.base, salt_molar, ph, restraints).energy(system)
    }

    fn single_points_with(
        &self,
        system: &System,
        requests: &[SinglePointRequest<'_>],
    ) -> Vec<EnergyBreakdown> {
        batch_single_points(&self.base, system, requests, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    fn prepared_system(seed: u64, t: f64) -> System {
        let mut sys = alanine_dipeptide();
        let mut rng = StdRng::seed_from_u64(seed);
        sys.assign_maxwell_boltzmann(t, &mut rng);
        sys
    }

    #[test]
    fn run_produces_consistent_output() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = prepared_system(1, 300.0);
        let job = MdJob { steps: 500, sample_stride: 50, ..Default::default() };
        let out = engine.run(&mut sys, &job).unwrap();
        assert_eq!(out.final_state.step, 500);
        assert_eq!(out.dihedral_trace.len(), 10);
        assert_eq!(out.mdinfo.nstep, 500);
        assert!(out.final_state.is_finite());
        // mdinfo matches a fresh single-point at the final state.
        let sp = engine.single_point(&sys, job.salt_molar, &job.restraints);
        assert!((sp.total() - out.mdinfo.eptot).abs() < 1e-9);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let job = MdJob { steps: 200, seed: 33, ..Default::default() };
        let mut a = prepared_system(5, 300.0);
        let mut b = prepared_system(5, 300.0);
        let oa = engine.run(&mut a, &job).unwrap();
        let ob = engine.run(&mut b, &job).unwrap();
        assert_eq!(oa.final_state.positions, ob.final_state.positions);
    }

    #[test]
    fn different_seed_different_trajectory() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let mut a = prepared_system(5, 300.0);
        let mut b = prepared_system(5, 300.0);
        let oa = engine.run(&mut a, &MdJob { steps: 200, seed: 1, ..Default::default() }).unwrap();
        let ob = engine.run(&mut b, &MdJob { steps: 200, seed: 2, ..Default::default() }).unwrap();
        assert_ne!(oa.final_state.positions, ob.final_state.positions);
    }

    #[test]
    fn restraint_biases_sampling() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = prepared_system(9, 300.0);
        let target = 90.0;
        let job = MdJob {
            steps: 6000,
            dt_ps: 0.001,
            sample_stride: 20,
            restraints: vec![DihedralRestraint::new("phi", 0.02, target)],
            ..Default::default()
        };
        let out = engine.run(&mut sys, &job).unwrap();
        // Circular mean of phi over the second half of the trace should sit
        // near the restraint center (plain averaging is wrong across the
        // ±180° wrap).
        let half = out.dihedral_trace.len() / 2;
        let (mut s, mut c) = (0.0, 0.0);
        for (phi, _) in &out.dihedral_trace[half..] {
            s += phi.sin();
            c += phi.cos();
        }
        let mean_phi = s.atan2(c).to_degrees();
        assert!(
            (mean_phi - target).abs() < 30.0,
            "restrained mean phi {mean_phi}° far from {target}°"
        );
    }

    #[test]
    fn unknown_restraint_is_rejected() {
        let engine = SanderEngine::default();
        let mut sys = prepared_system(1, 300.0);
        let job = MdJob {
            restraints: vec![DihedralRestraint::new("nonexistent", 0.1, 0.0)],
            ..Default::default()
        };
        assert!(matches!(engine.run(&mut sys, &job), Err(EngineError::BadInput(_))));
    }

    #[test]
    fn huge_timestep_blows_up_and_is_detected() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = prepared_system(2, 300.0);
        let job = MdJob { steps: 5000, dt_ps: 0.5, ..Default::default() };
        match engine.run(&mut sys, &job) {
            Err(EngineError::NumericalBlowup { .. }) => {}
            other => panic!("expected blow-up, got {other:?}"),
        }
    }

    #[test]
    fn salt_parameter_reaches_energy() {
        let engine = SanderEngine::new(NonbondedParams {
            cutoff: 12.0,
            dielectric: 10.0,
            salt_molar: 0.0,
            ph: 7.0,
        });
        let sys = prepared_system(3, 300.0);
        let e0 = engine.single_point(&sys, 0.0, &[]).coulomb;
        let e1 = engine.single_point(&sys, 2.0, &[]).coulomb;
        assert!((e0 - e1).abs() > 1e-12);
    }
}
