//! MD engines.
//!
//! An engine is the unit RepEx treats as a black box: it consumes a job
//! description (steps, thermostat target, salt concentration, restraints),
//! propagates a [`System`], and reports energies. Three engines mirror the
//! paper's setup:
//!
//! * [`SanderEngine`] — serial, the Amber `sander` analogue (1 core).
//! * [`PmemdEngine`] — Rayon-parallel force loop, the `pmemd.MPI` analogue;
//!   like the real code it refuses to run on a single core.
//! * [`NamdEngine`] — an independent engine with NAMD-style configuration,
//!   demonstrating engine-independence of the framework.

mod gmx;
mod namd;
mod pmemd;
mod sander;

pub use gmx::GmxEngine;
pub use namd::NamdEngine;
pub use pmemd::PmemdEngine;
pub use sander::SanderEngine;

use crate::forcefield::{DihedralRestraint, EnergyBreakdown, ForceField, NonbondedParams};
use crate::io::mdinfo::MdInfo;
use crate::system::{State, System};
use serde::{Deserialize, Serialize};

/// A fully-specified MD task (the content of one replica's cycle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdJob {
    /// Number of integration steps.
    pub steps: u64,
    /// Time step in ps.
    pub dt_ps: f64,
    /// Thermostat target temperature in K.
    pub temperature: f64,
    /// Langevin friction in ps⁻¹.
    pub gamma_ps: f64,
    /// RNG seed (replica- and cycle-specific for reproducibility).
    pub seed: u64,
    /// Salt concentration in mol/L (S-REMD exchange parameter).
    pub salt_molar: f64,
    /// Solvent pH (pH-REMD exchange parameter; 7.0 = neutral reference).
    pub ph: f64,
    /// Umbrella restraints (U-REMD exchange parameter).
    pub restraints: Vec<DihedralRestraint>,
    /// Record the (phi, psi) dihedrals every this many steps (0 = never).
    pub sample_stride: u64,
    /// Skip sampling during the first `sample_warmup` steps of the segment
    /// (re-equilibration after an accepted exchange).
    pub sample_warmup: u64,
}

impl Default for MdJob {
    fn default() -> Self {
        MdJob {
            steps: 1000,
            dt_ps: 0.002,
            temperature: 300.0,
            gamma_ps: 5.0,
            seed: 1,
            salt_molar: 0.0,
            ph: 7.0,
            restraints: Vec::new(),
            sample_stride: 0,
            sample_warmup: 0,
        }
    }
}

/// What an engine returns after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MdOutput {
    /// Final coordinates/velocities (what the restart file holds).
    pub final_state: State,
    /// Energy summary at the last step (what `.mdinfo` holds).
    pub mdinfo: MdInfo,
    /// Sampled (phi, psi) in radians, if the topology names them and
    /// `sample_stride > 0`.
    pub dihedral_trace: Vec<(f64, f64)>,
}

/// Engine failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Engine cannot run with the requested core count.
    BadCoreCount { engine: &'static str, requested: usize, minimum: usize },
    /// The trajectory produced non-finite coordinates.
    NumericalBlowup { step: u64 },
    /// Input was inconsistent (e.g. restraint names a missing dihedral).
    BadInput(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadCoreCount { engine, requested, minimum } => {
                write!(f, "{engine} cannot run on {requested} core(s); needs at least {minimum}")
            }
            EngineError::NumericalBlowup { step } => {
                write!(f, "non-finite coordinates at step {step}")
            }
            EngineError::BadInput(s) => write!(f, "bad engine input: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The black-box MD engine interface the framework programs against.
pub trait MdEngine: Send + Sync {
    /// Engine family name ("amber", "namd").
    fn family(&self) -> &'static str;

    /// Executable name as it would appear in a task description
    /// ("sander", "pmemd.MPI", "namd2").
    fn executable(&self) -> &'static str;

    /// Minimum cores per task (pmemd.MPI: 2, like the paper notes).
    fn min_cores(&self) -> usize;

    /// Propagate `system` in place according to `job`.
    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError>;

    /// Single-point energy under given salt/pH/restraint parameters,
    /// without moving the system. This is the primitive S-, U- and
    /// pH-exchange need.
    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown;

    /// Single-point energy at neutral pH (convenience).
    fn single_point(
        &self,
        system: &System,
        salt_molar: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        self.single_point_with(system, salt_molar, 7.0, restraints)
    }
}

/// Shared helper: build the per-job force field from an engine's base
/// nonbonded parameters plus the job's exchange parameters.
pub(crate) fn job_forcefield(
    base: &NonbondedParams,
    salt_molar: f64,
    ph: f64,
    restraints: &[DihedralRestraint],
) -> ForceField {
    let mut ff = ForceField::new(NonbondedParams { salt_molar, ph, ..*base });
    ff.set_restraints(restraints.to_vec());
    ff
}

/// Shared helper: validate that every restraint names a dihedral that exists.
pub(crate) fn validate_restraints(
    system: &System,
    restraints: &[DihedralRestraint],
) -> Result<(), EngineError> {
    for r in restraints {
        if system.topology.dihedral(&r.dihedral).is_none() {
            return Err(EngineError::BadInput(format!(
                "restraint references unknown dihedral {:?}",
                r.dihedral
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    #[test]
    fn job_forcefield_applies_exchange_params() {
        let base = dipeptide_forcefield().nonbonded;
        let rs = vec![DihedralRestraint::new("phi", 0.02, 45.0)];
        let ff = job_forcefield(&base, 0.3, 7.0, &rs);
        assert_eq!(ff.nonbonded.salt_molar, 0.3);
        assert_eq!(ff.nonbonded.cutoff, base.cutoff);
        assert_eq!(ff.restraints.len(), 1);
    }

    #[test]
    fn validate_restraints_catches_unknown_dihedral() {
        let sys = alanine_dipeptide();
        let ok = vec![DihedralRestraint::new("phi", 0.02, 0.0)];
        let bad = vec![DihedralRestraint::new("omega", 0.02, 0.0)];
        assert!(validate_restraints(&sys, &ok).is_ok());
        assert!(validate_restraints(&sys, &bad).is_err());
    }

    #[test]
    fn error_display() {
        let e = EngineError::BadCoreCount { engine: "pmemd.MPI", requested: 1, minimum: 2 };
        assert!(e.to_string().contains("pmemd.MPI"));
        assert!(EngineError::NumericalBlowup { step: 9 }.to_string().contains('9'));
    }
}
