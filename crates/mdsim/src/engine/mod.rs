//! MD engines.
//!
//! An engine is the unit RepEx treats as a black box: it consumes a job
//! description (steps, thermostat target, salt concentration, restraints),
//! propagates a [`System`], and reports energies. Three engines mirror the
//! paper's setup:
//!
//! * [`SanderEngine`] — serial, the Amber `sander` analogue (1 core).
//! * [`PmemdEngine`] — Rayon-parallel force loop, the `pmemd.MPI` analogue;
//!   like the real code it refuses to run on a single core.
//! * [`NamdEngine`] — an independent engine with NAMD-style configuration,
//!   demonstrating engine-independence of the framework.

mod gmx;
mod namd;
mod pmemd;
mod sander;

pub use gmx::GmxEngine;
pub use namd::NamdEngine;
pub use pmemd::PmemdEngine;
pub use sander::SanderEngine;

use crate::forcefield::{
    DihedralRestraint, EnergyBreakdown, EvalContext, ForceField, NonbondedParams,
};
use crate::io::mdinfo::MdInfo;
use crate::system::{State, System};
use serde::{Deserialize, Serialize};

/// One request in a single-point energy batch: the exchange parameters under
/// which the system's (fixed) coordinates are to be evaluated.
#[derive(Debug, Clone, Copy)]
pub struct SinglePointRequest<'a> {
    /// Salt concentration in mol/L (S-REMD exchange parameter).
    pub salt_molar: f64,
    /// Solvent pH (pH-REMD exchange parameter).
    pub ph: f64,
    /// Umbrella restraints (U-REMD exchange parameter).
    pub restraints: &'a [DihedralRestraint],
}

impl<'a> SinglePointRequest<'a> {
    pub fn new(salt_molar: f64, ph: f64, restraints: &'a [DihedralRestraint]) -> Self {
        SinglePointRequest { salt_molar, ph, restraints }
    }
}

/// A fully-specified MD task (the content of one replica's cycle).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MdJob {
    /// Number of integration steps.
    pub steps: u64,
    /// Time step in ps.
    pub dt_ps: f64,
    /// Thermostat target temperature in K.
    pub temperature: f64,
    /// Langevin friction in ps⁻¹.
    pub gamma_ps: f64,
    /// RNG seed (replica- and cycle-specific for reproducibility).
    pub seed: u64,
    /// Salt concentration in mol/L (S-REMD exchange parameter).
    pub salt_molar: f64,
    /// Solvent pH (pH-REMD exchange parameter; 7.0 = neutral reference).
    pub ph: f64,
    /// Umbrella restraints (U-REMD exchange parameter).
    pub restraints: Vec<DihedralRestraint>,
    /// Record the (phi, psi) dihedrals every this many steps (0 = never).
    pub sample_stride: u64,
    /// Skip sampling during the first `sample_warmup` steps of the segment
    /// (re-equilibration after an accepted exchange).
    pub sample_warmup: u64,
}

impl Default for MdJob {
    fn default() -> Self {
        MdJob {
            steps: 1000,
            dt_ps: 0.002,
            temperature: 300.0,
            gamma_ps: 5.0,
            seed: 1,
            salt_molar: 0.0,
            ph: 7.0,
            restraints: Vec::new(),
            sample_stride: 0,
            sample_warmup: 0,
        }
    }
}

/// What an engine returns after a run.
#[derive(Debug, Clone, PartialEq)]
pub struct MdOutput {
    /// Final coordinates/velocities (what the restart file holds).
    pub final_state: State,
    /// Energy summary at the last step (what `.mdinfo` holds).
    pub mdinfo: MdInfo,
    /// Sampled (phi, psi) in radians, if the topology names them and
    /// `sample_stride > 0`.
    pub dihedral_trace: Vec<(f64, f64)>,
}

/// Engine failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// Engine cannot run with the requested core count.
    BadCoreCount { engine: &'static str, requested: usize, minimum: usize },
    /// The trajectory produced non-finite coordinates.
    NumericalBlowup { step: u64 },
    /// Input was inconsistent (e.g. restraint names a missing dihedral).
    BadInput(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::BadCoreCount { engine, requested, minimum } => {
                write!(f, "{engine} cannot run on {requested} core(s); needs at least {minimum}")
            }
            EngineError::NumericalBlowup { step } => {
                write!(f, "non-finite coordinates at step {step}")
            }
            EngineError::BadInput(s) => write!(f, "bad engine input: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The black-box MD engine interface the framework programs against.
pub trait MdEngine: Send + Sync {
    /// Engine family name ("amber", "namd").
    fn family(&self) -> &'static str;

    /// Executable name as it would appear in a task description
    /// ("sander", "pmemd.MPI", "namd2").
    fn executable(&self) -> &'static str;

    /// Minimum cores per task (pmemd.MPI: 2, like the paper notes).
    fn min_cores(&self) -> usize;

    /// Propagate `system` in place according to `job`.
    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError>;

    /// Single-point energy under given salt/pH/restraint parameters,
    /// without moving the system. This is the primitive S-, U- and
    /// pH-exchange need.
    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown;

    /// Single-point energy at neutral pH (convenience).
    fn single_point(
        &self,
        system: &System,
        salt_molar: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        self.single_point_with(system, salt_molar, 7.0, restraints)
    }

    /// A batch of single-point energies on the **same coordinates** under
    /// different exchange parameters — the shape of the extra evaluations
    /// S-, U- and pH-exchange need per candidate pair.
    ///
    /// Engines override this to share one evaluation context across the
    /// batch, so the neighbor pair list is built once instead of once per
    /// request. The default falls back to independent evaluations.
    fn single_points_with(
        &self,
        system: &System,
        requests: &[SinglePointRequest<'_>],
    ) -> Vec<EnergyBreakdown> {
        requests
            .iter()
            .map(|r| self.single_point_with(system, r.salt_molar, r.ph, r.restraints))
            .collect()
    }
}

/// Shared batched single-point evaluation: one [`EvalContext`] across all
/// requests. Coordinates and cutoff are identical across the batch, so the
/// first request builds the pair list and every later one reuses it (only
/// `NonbondedParams`/restraints differ).
pub(crate) fn batch_single_points(
    base: &NonbondedParams,
    system: &System,
    requests: &[SinglePointRequest<'_>],
    parallel: bool,
) -> Vec<EnergyBreakdown> {
    let mut ctx = EvalContext::new();
    requests
        .iter()
        .map(|r| {
            let ff = job_forcefield(base, r.salt_molar, r.ph, r.restraints);
            if parallel {
                ff.energy_par_ctx(system, &mut ctx)
            } else {
                ff.energy_ctx(system, &mut ctx)
            }
        })
        .collect()
}

/// Shared helper: build the per-job force field from an engine's base
/// nonbonded parameters plus the job's exchange parameters.
pub(crate) fn job_forcefield(
    base: &NonbondedParams,
    salt_molar: f64,
    ph: f64,
    restraints: &[DihedralRestraint],
) -> ForceField {
    let mut ff = ForceField::new(NonbondedParams { salt_molar, ph, ..*base });
    ff.set_restraints(restraints.to_vec());
    ff
}

/// Shared helper: validate that every restraint names a dihedral that exists.
pub(crate) fn validate_restraints(
    system: &System,
    restraints: &[DihedralRestraint],
) -> Result<(), EngineError> {
    for r in restraints {
        if system.topology.dihedral(&r.dihedral).is_none() {
            return Err(EngineError::BadInput(format!(
                "restraint references unknown dihedral {:?}",
                r.dihedral
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    #[test]
    fn job_forcefield_applies_exchange_params() {
        let base = dipeptide_forcefield().nonbonded;
        let rs = vec![DihedralRestraint::new("phi", 0.02, 45.0)];
        let ff = job_forcefield(&base, 0.3, 7.0, &rs);
        assert_eq!(ff.nonbonded.salt_molar, 0.3);
        assert_eq!(ff.nonbonded.cutoff, base.cutoff);
        assert_eq!(ff.restraints.len(), 1);
    }

    #[test]
    fn validate_restraints_catches_unknown_dihedral() {
        let sys = alanine_dipeptide();
        let ok = vec![DihedralRestraint::new("phi", 0.02, 0.0)];
        let bad = vec![DihedralRestraint::new("omega", 0.02, 0.0)];
        assert!(validate_restraints(&sys, &ok).is_ok());
        assert!(validate_restraints(&sys, &bad).is_err());
    }

    #[test]
    fn batched_single_points_match_individual_evaluations() {
        let base = dipeptide_forcefield().nonbonded;
        let engine = SanderEngine::new(base);
        let sys = alanine_dipeptide();
        let rs = vec![DihedralRestraint::new("phi", 0.02, 45.0)];
        let requests = [
            SinglePointRequest::new(0.0, 7.0, &[]),
            SinglePointRequest::new(0.5, 7.0, &[]),
            SinglePointRequest::new(0.5, 5.0, &rs),
            SinglePointRequest::new(2.0, 7.0, &rs),
        ];
        let batched = engine.single_points_with(&sys, &requests);
        assert_eq!(batched.len(), requests.len());
        for (b, r) in batched.iter().zip(&requests) {
            let single = engine.single_point_with(&sys, r.salt_molar, r.ph, r.restraints);
            assert!(
                (b.total() - single.total()).abs() < 1e-9,
                "batched {} vs individual {}",
                b.total(),
                single.total()
            );
        }
    }

    #[test]
    fn error_display() {
        let e = EngineError::BadCoreCount { engine: "pmemd.MPI", requested: 1, minimum: 2 };
        assert!(e.to_string().contains("pmemd.MPI"));
        assert!(EngineError::NumericalBlowup { step: 9 }.to_string().contains('9'));
    }
}
