//! GROMACS-analogue engine (`gmx mdrun`), the third engine family —
//! implementing the paper's Section 5 extension "support for additional MD
//! simulation engines might be introduced".
//!
//! Conventions kept genuinely GROMACS-shaped:
//!
//! * run parameters arrive as an `.mdp` file ([`MdpConfig`]): `dt` in ps,
//!   `tau-t` instead of a friction constant (γ = 1/τ), cutoffs in nm;
//! * the `sd` integrator (GROMACS's Langevin) is the only supported one.

use super::sander::run_langevin;
use super::{
    batch_single_points, job_forcefield, EngineError, MdEngine, MdJob, MdOutput, SinglePointRequest,
};
use crate::forcefield::{DihedralRestraint, EnergyBreakdown, NonbondedParams};
use crate::integrator::EvalMode;
use crate::io::mdp::MdpConfig;
use crate::system::System;

/// GROMACS-analogue MD engine.
#[derive(Debug, Clone)]
pub struct GmxEngine {
    pub base: NonbondedParams,
}

impl GmxEngine {
    pub fn new(base: NonbondedParams) -> Self {
        GmxEngine { base }
    }

    /// Translate `.mdp` parameters into the engine-neutral job description.
    pub fn job_from_mdp(cfg: &MdpConfig, sample_stride: u64) -> MdJob {
        MdJob {
            steps: cfg.nsteps,
            dt_ps: cfg.dt,
            temperature: cfg.ref_t,
            gamma_ps: cfg.gamma_ps(),
            seed: cfg.ld_seed,
            salt_molar: cfg.salt_concentration,
            ph: cfg.solvent_ph,
            restraints: cfg
                .dihres
                .iter()
                .map(|(name, center, k)| DihedralRestraint::new(name.clone(), *k, *center))
                .collect(),
            sample_stride,
            sample_warmup: 0,
        }
    }

    /// Run directly from `.mdp` text.
    pub fn run_mdp_text(
        &self,
        system: &mut System,
        mdp_text: &str,
        sample_stride: u64,
    ) -> Result<MdOutput, EngineError> {
        let cfg = MdpConfig::parse(mdp_text).map_err(|e| EngineError::BadInput(e.to_string()))?;
        self.run(system, &Self::job_from_mdp(&cfg, sample_stride))
    }
}

impl Default for GmxEngine {
    fn default() -> Self {
        GmxEngine::new(NonbondedParams::default())
    }
}

impl MdEngine for GmxEngine {
    fn family(&self) -> &'static str {
        "gromacs"
    }

    fn executable(&self) -> &'static str {
        "gmx mdrun"
    }

    fn min_cores(&self) -> usize {
        1
    }

    fn run(&self, system: &mut System, job: &MdJob) -> Result<MdOutput, EngineError> {
        run_langevin(system, job, &self.base, EvalMode::Serial, 200)
    }

    fn single_point_with(
        &self,
        system: &System,
        salt_molar: f64,
        ph: f64,
        restraints: &[DihedralRestraint],
    ) -> EnergyBreakdown {
        job_forcefield(&self.base, salt_molar, ph, restraints).energy(system)
    }

    fn single_points_with(
        &self,
        system: &System,
        requests: &[SinglePointRequest<'_>],
    ) -> Vec<EnergyBreakdown> {
        batch_single_points(&self.base, system, requests, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SanderEngine;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    #[test]
    fn runs_from_mdp_text() {
        let engine = GmxEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = alanine_dipeptide();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use rand::SeedableRng;
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        let mdp = "\
integrator = sd
nsteps = 200
dt = 0.002
ref-t = 320
tau-t = 0.2
ld-seed = 7
dihres = phi 60 0.02
";
        let out = engine.run_mdp_text(&mut sys, mdp, 50).unwrap();
        assert_eq!(out.final_state.step, 200);
        assert_eq!(out.dihedral_trace.len(), 4);
    }

    #[test]
    fn mdp_units_translate() {
        let cfg = MdpConfig { tau_t: 0.25, ..Default::default() };
        let job = GmxEngine::job_from_mdp(&cfg, 0);
        assert!((job.gamma_ps - 4.0).abs() < 1e-12, "gamma = 1/tau");
    }

    #[test]
    fn bad_mdp_is_engine_error() {
        let engine = GmxEngine::default();
        let mut sys = alanine_dipeptide();
        assert!(matches!(
            engine.run_mdp_text(&mut sys, "integrator = md\n", 0),
            Err(EngineError::BadInput(_))
        ));
    }

    #[test]
    fn energies_agree_with_other_families() {
        let base = dipeptide_forcefield().nonbonded;
        let gmx = GmxEngine::new(base);
        let sander = SanderEngine::new(base);
        let sys = alanine_dipeptide();
        let a = gmx.single_point_with(&sys, 0.2, 6.0, &[]);
        let b = sander.single_point_with(&sys, 0.2, 6.0, &[]);
        assert!((a.total() - b.total()).abs() < 1e-10);
        assert_eq!(gmx.family(), "gromacs");
        assert_eq!(gmx.executable(), "gmx mdrun");
    }
}
