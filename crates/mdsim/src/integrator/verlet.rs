//! NVE velocity-Verlet integrator.

use super::{EvalMode, Integrator};
use crate::forcefield::{EnergyBreakdown, EvalContext, ForceField};
use crate::system::System;
use crate::units::AKMA_PER_PS;
use crate::vec3::Vec3;
use rand::RngCore;

/// Symplectic velocity-Verlet propagator (microcanonical).
pub struct VelocityVerlet {
    dt_ps: f64,
    /// dt in AKMA units, precomputed.
    dt: f64,
    forces: Vec<Vec3>,
    /// Whether `forces` corresponds to the current positions.
    forces_valid: bool,
    /// Persistent evaluation state (Verlet list, scratch buffers).
    ctx: EvalContext,
}

impl VelocityVerlet {
    /// `dt_ps` is the time step in picoseconds (typical MD: 0.001-0.002).
    pub fn new(dt_ps: f64) -> Self {
        assert!(dt_ps > 0.0, "time step must be positive");
        VelocityVerlet {
            dt_ps,
            dt: dt_ps * AKMA_PER_PS,
            forces: Vec::new(),
            forces_valid: false,
            ctx: EvalContext::new(),
        }
    }
}

impl Integrator for VelocityVerlet {
    fn step(
        &mut self,
        system: &mut System,
        ff: &ForceField,
        mode: EvalMode,
        _rng: &mut dyn RngCore,
    ) -> EnergyBreakdown {
        let n = system.n_atoms();
        if self.forces.len() != n {
            self.forces = vec![Vec3::ZERO; n];
            self.forces_valid = false;
        }
        if !self.forces_valid {
            mode.energy_forces(ff, system, &mut self.ctx, &mut self.forces);
        }
        let dt = self.dt;
        // Half kick + drift.
        for i in 0..n {
            let inv_m = 1.0 / system.topology.atoms[i].mass;
            system.state.velocities[i] += self.forces[i] * (0.5 * dt * inv_m);
            let v = system.state.velocities[i];
            system.state.positions[i] += v * dt;
        }
        // New forces, second half kick.
        let breakdown = mode.energy_forces(ff, system, &mut self.ctx, &mut self.forces);
        for i in 0..n {
            let inv_m = 1.0 / system.topology.atoms[i].mass;
            system.state.velocities[i] += self.forces[i] * (0.5 * dt * inv_m);
        }
        self.forces_valid = true;
        system.state.step += 1;
        system.state.time_ps += self.dt_ps;
        breakdown
    }

    fn dt_ps(&self) -> f64 {
        self.dt_ps
    }

    fn invalidate(&mut self) {
        self.forces_valid = false;
        self.ctx.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::diatomic;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harmonic_oscillation_conserves_energy() {
        // Diatomic stretched by 0.2 Å: the Verlet shadow-Hamiltonian keeps
        // total energy bounded; with omega*dt ≈ 0.04 the fluctuation must
        // stay well below 0.1% of E0 over thousands of steps.
        let mut sys = diatomic(300.0, 1.5, 0.2);
        let ff = ForceField::default();
        let mut integ = VelocityVerlet::new(0.0002);
        let mut rng = StdRng::seed_from_u64(0);
        let e0 = ff.energy(&sys).total() + sys.kinetic_energy();
        let mut max_drift: f64 = 0.0;
        for _ in 0..5000 {
            let pe = integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng).total();
            let e = pe + sys.kinetic_energy();
            max_drift = max_drift.max((e - e0).abs());
        }
        assert!(max_drift < 1e-3 * e0.abs().max(1.0), "energy drift {max_drift} (E0 = {e0})");
    }

    #[test]
    fn oscillation_period_matches_analytic() {
        // Angular frequency of the relative coordinate: omega = sqrt(2k/mu)
        // with Amber convention E = k dr^2 (so spring constant = 2k) and
        // reduced mass mu = m/2 for equal masses. Convert from AKMA time
        // units to ps.
        let k = 300.0;
        let m: f64 = 12.0;
        let mu = m / 2.0;
        let omega = (2.0 * k / mu).sqrt(); // per AKMA time unit
        let period = 2.0 * std::f64::consts::PI / omega / AKMA_PER_PS; // ps

        let mut sys = diatomic(k, 1.5, 0.1);
        let ff = ForceField::default();
        let dt = 0.00002;
        let mut integ = VelocityVerlet::new(dt);
        let mut rng = StdRng::seed_from_u64(0);
        // Bond length starts at maximum extension and crosses r0 downward
        // exactly once per period; time three downward crossings.
        let mut prev_len = 1.6;
        let mut crossings = Vec::new();
        for step in 1..200_000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
            let len = (sys.state.positions[1] - sys.state.positions[0]).norm();
            if prev_len > 1.5 && len <= 1.5 {
                crossings.push(step as f64 * dt);
                if crossings.len() == 3 {
                    break;
                }
            }
            prev_len = len;
        }
        assert!(crossings.len() >= 3, "oscillation not observed");
        let measured_period = (crossings[2] - crossings[0]) / 2.0;
        assert!(
            (measured_period - period).abs() < 0.05 * period,
            "measured {measured_period} ps vs analytic {period} ps"
        );
    }

    #[test]
    fn invalidate_forces_recomputation_is_consistent() {
        let mut sys = diatomic(300.0, 1.5, 0.2);
        let ff = ForceField::default();
        let mut rng = StdRng::seed_from_u64(0);

        let mut a = VelocityVerlet::new(0.001);
        for _ in 0..10 {
            a.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        let snapshot = sys.clone();
        // Continue with cached forces...
        let mut sys1 = snapshot.clone();
        a.step(&mut sys1, &ff, EvalMode::Serial, &mut rng);
        // ...vs invalidated cache: identical trajectory.
        let mut sys2 = snapshot;
        a.invalidate();
        a.step(&mut sys2, &ff, EvalMode::Serial, &mut rng);
        for (p, q) in sys1.state.positions.iter().zip(&sys2.state.positions) {
            assert!((*p - *q).norm() < 1e-12);
        }
    }

    #[test]
    fn time_and_step_advance() {
        let mut sys = diatomic(300.0, 1.5, 0.0);
        let ff = ForceField::default();
        let mut integ = VelocityVerlet::new(0.002);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..7 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        assert_eq!(sys.state.step, 7);
        assert!((sys.state.time_ps - 0.014).abs() < 1e-12);
    }
}
