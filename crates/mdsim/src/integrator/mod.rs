//! Time integrators: NVE velocity Verlet and Langevin (BAOAB) dynamics.

mod langevin;
mod verlet;

pub use langevin::LangevinBaoab;
pub use verlet::VelocityVerlet;

use crate::forcefield::{EnergyBreakdown, EvalContext, ForceField};
use crate::system::System;
use crate::vec3::Vec3;
use rand::RngCore;

/// Whether the force evaluation runs serially or on the Rayon pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalMode {
    /// Serial SoA kernel (the default single-core path).
    Serial,
    /// Serial scalar pair-at-a-time kernel — the correctness reference and
    /// benchmark baseline for the SoA path; not for production use.
    SerialScalar,
    /// Rayon-parallel SoA kernel.
    Parallel,
}

impl EvalMode {
    pub(crate) fn energy_forces(
        self,
        ff: &ForceField,
        system: &System,
        ctx: &mut EvalContext,
        forces: &mut [Vec3],
    ) -> EnergyBreakdown {
        match self {
            EvalMode::Serial => ff.energy_forces_ctx(system, ctx, forces),
            EvalMode::SerialScalar => ff.energy_forces_scalar_ctx(system, ctx, forces),
            EvalMode::Parallel => ff.energy_forces_par_ctx(system, ctx, forces),
        }
    }
}

/// A propagator advancing a [`System`] one step at a time.
///
/// Integrators own their scratch force buffers and a persistent
/// [`EvalContext`] (Verlet neighbor list + evaluation scratch), so steady
/// stepping neither allocates nor rebuilds the pair list.
pub trait Integrator {
    /// Advance by one step; returns the potential-energy breakdown evaluated
    /// during the step (at the new positions).
    fn step(
        &mut self,
        system: &mut System,
        ff: &ForceField,
        mode: EvalMode,
        rng: &mut dyn RngCore,
    ) -> EnergyBreakdown;

    /// The time step in ps.
    fn dt_ps(&self) -> f64;

    /// Drop cached forces and evaluation state (call after positions change
    /// externally, e.g. when a restart file is loaded or an exchange swaps
    /// configurations).
    fn invalidate(&mut self);
}

/// Run `n` steps and return the last breakdown (convenience for tests and
/// the engines).
pub fn run_steps(
    integrator: &mut dyn Integrator,
    system: &mut System,
    ff: &ForceField,
    mode: EvalMode,
    rng: &mut dyn RngCore,
    n: u64,
) -> EnergyBreakdown {
    let mut last = EnergyBreakdown::default();
    for _ in 0..n {
        last = integrator.step(system, ff, mode, rng);
    }
    last
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::system::{PbcBox, State, System};
    use crate::topology::{Atom, Bond, Topology};
    use crate::vec3::Vec3;

    /// A diatomic with a harmonic bond: analytically solvable.
    pub fn diatomic(k: f64, r0: f64, stretch: f64) -> System {
        let top = Topology {
            atoms: vec![Atom::lj(12.0, 0.0, 3.0); 2],
            bonds: vec![Bond { i: 0, j: 1, k, r0 }],
            ..Default::default()
        };
        let mut state = State::zeros(2);
        state.positions[1] = Vec3::new(r0 + stretch, 0.0, 0.0);
        System::new(top, PbcBox::VACUUM, state).unwrap()
    }

    /// A small LJ cluster for thermostat tests.
    pub fn lj_lattice(n_side: usize, spacing: f64) -> System {
        let n = n_side * n_side * n_side;
        let top = Topology { atoms: vec![Atom::lj(40.0, 0.24, 3.4); n], ..Default::default() };
        let mut state = State::zeros(n);
        let mut idx = 0;
        for x in 0..n_side {
            for y in 0..n_side {
                for z in 0..n_side {
                    state.positions[idx] =
                        Vec3::new(x as f64 * spacing, y as f64 * spacing, z as f64 * spacing);
                    idx += 1;
                }
            }
        }
        let l = n_side as f64 * spacing;
        System::new(top, PbcBox::cubic(l), state).unwrap()
    }
}
