//! Langevin dynamics with the BAOAB splitting (Leimkuhler & Matthews).
//!
//! This is the production thermostat of the substrate: it samples the
//! canonical ensemble at the replica's target temperature, which is exactly
//! what temperature-exchange REMD assumes. The friction constant is given in
//! ps⁻¹ (Amber's `gamma_ln` convention).

use super::{EvalMode, Integrator};
use crate::forcefield::{EnergyBreakdown, EvalContext, ForceField};
use crate::system::System;
use crate::units::{kbt, AKMA_PER_PS};
use crate::vec3::Vec3;
use rand::RngCore;
use rand_distr::{Distribution, StandardNormal};

/// BAOAB Langevin integrator.
pub struct LangevinBaoab {
    dt_ps: f64,
    dt: f64,
    /// Target temperature in K.
    pub temperature: f64,
    /// Friction γ in ps⁻¹.
    pub gamma_ps: f64,
    forces: Vec<Vec3>,
    forces_valid: bool,
    /// Persistent evaluation state (Verlet list, scratch buffers).
    ctx: EvalContext,
}

impl LangevinBaoab {
    pub fn new(dt_ps: f64, temperature: f64, gamma_ps: f64) -> Self {
        assert!(dt_ps > 0.0 && temperature > 0.0 && gamma_ps >= 0.0);
        LangevinBaoab {
            dt_ps,
            dt: dt_ps * AKMA_PER_PS,
            temperature,
            gamma_ps,
            forces: Vec::new(),
            forces_valid: false,
            ctx: EvalContext::new(),
        }
    }

    /// Change the target temperature (used when a T-exchange is accepted and
    /// the replica keeps its configuration but adopts a new bath).
    pub fn set_temperature(&mut self, t: f64) {
        assert!(t > 0.0);
        self.temperature = t;
    }
}

impl Integrator for LangevinBaoab {
    fn step(
        &mut self,
        system: &mut System,
        ff: &ForceField,
        mode: EvalMode,
        rng: &mut dyn RngCore,
    ) -> EnergyBreakdown {
        let n = system.n_atoms();
        if self.forces.len() != n {
            self.forces = vec![Vec3::ZERO; n];
            self.forces_valid = false;
        }
        if !self.forces_valid {
            mode.energy_forces(ff, system, &mut self.ctx, &mut self.forces);
        }
        let dt = self.dt;
        let gamma = self.gamma_ps / AKMA_PER_PS; // per AKMA time unit
        let c1 = (-gamma * dt).exp();
        let c2 = (1.0 - c1 * c1).sqrt();
        let kt = kbt(self.temperature);

        // B: half kick.
        for i in 0..n {
            let inv_m = 1.0 / system.topology.atoms[i].mass;
            system.state.velocities[i] += self.forces[i] * (0.5 * dt * inv_m);
        }
        // A: half drift.
        for i in 0..n {
            let v = system.state.velocities[i];
            system.state.positions[i] += v * (0.5 * dt);
        }
        // O: Ornstein-Uhlenbeck velocity refresh.
        for i in 0..n {
            let m = system.topology.atoms[i].mass;
            let sigma = (kt / m).sqrt();
            let xi = Vec3::new(
                StandardNormal.sample(rng),
                StandardNormal.sample(rng),
                StandardNormal.sample(rng),
            );
            system.state.velocities[i] = system.state.velocities[i] * c1 + xi * (c2 * sigma);
        }
        // A: half drift.
        for i in 0..n {
            let v = system.state.velocities[i];
            system.state.positions[i] += v * (0.5 * dt);
        }
        // B: half kick with new forces.
        let breakdown = mode.energy_forces(ff, system, &mut self.ctx, &mut self.forces);
        for i in 0..n {
            let inv_m = 1.0 / system.topology.atoms[i].mass;
            system.state.velocities[i] += self.forces[i] * (0.5 * dt * inv_m);
        }
        self.forces_valid = true;
        system.state.step += 1;
        system.state.time_ps += self.dt_ps;
        breakdown
    }

    fn dt_ps(&self) -> f64 {
        self.dt_ps
    }

    fn invalidate(&mut self) {
        self.forces_valid = false;
        self.ctx.invalidate();
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{diatomic, lj_lattice};
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn thermostat_equilibrates_to_target_temperature() {
        let mut sys = lj_lattice(4, 4.2); // 64 atoms
        let ff = ForceField::default();
        let target = 120.0;
        let mut integ = LangevinBaoab::new(0.002, target, 5.0);
        let mut rng = StdRng::seed_from_u64(17);
        sys.assign_maxwell_boltzmann(300.0, &mut rng); // deliberately wrong T

        // Equilibrate.
        for _ in 0..3000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        // Sample.
        let mut acc = 0.0;
        let samples = 3000;
        for _ in 0..samples {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
            acc += sys.instantaneous_temperature();
        }
        let mean_t = acc / samples as f64;
        assert!((mean_t - target).abs() < 0.08 * target, "mean T {mean_t} K, target {target} K");
    }

    #[test]
    fn zero_friction_reduces_to_verlet_like_conservation() {
        // gamma = 0 -> the O step is identity; energy should be conserved.
        let mut sys = diatomic(300.0, 1.5, 0.15);
        let ff = ForceField::default();
        let mut integ = LangevinBaoab::new(0.0005, 300.0, 0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let e0 = ff.energy(&sys).total() + sys.kinetic_energy();
        for _ in 0..2000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        let e1 = ff.energy(&sys).total() + sys.kinetic_energy();
        assert!((e1 - e0).abs() < 1e-3 * e0.abs().max(1.0), "drift {}", e1 - e0);
    }

    #[test]
    fn set_temperature_changes_sampling() {
        let mut sys = lj_lattice(3, 4.2);
        let ff = ForceField::default();
        let mut integ = LangevinBaoab::new(0.002, 100.0, 10.0);
        let mut rng = StdRng::seed_from_u64(23);
        sys.assign_maxwell_boltzmann(100.0, &mut rng);
        for _ in 0..2000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        integ.set_temperature(400.0);
        for _ in 0..4000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        let mut acc = 0.0;
        for _ in 0..2000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
            acc += sys.instantaneous_temperature();
        }
        let mean_t = acc / 2000.0;
        assert!(mean_t > 300.0, "after retargeting to 400 K, mean T = {mean_t}");
    }

    #[test]
    fn cached_neighbor_path_matches_fresh_over_100_step_run() {
        // Regression for the Verlet-skin cache: drive a 100-step Langevin
        // trajectory on a system large enough to use the cell-list path, and
        // at every step compare a persistent skin-cached context against a
        // fresh-build context (skin 0 rebuilds on any coordinate change) on
        // the same coordinates. Energies and every force component must
        // agree within 1e-9.
        let mut sys = lj_lattice(8, 4.2); // 512 atoms: cell-list + Verlet path
        let ff = ForceField::default();
        let mut integ = LangevinBaoab::new(0.002, 120.0, 2.0);
        let mut rng = StdRng::seed_from_u64(42);
        sys.assign_maxwell_boltzmann(120.0, &mut rng);

        let n = sys.n_atoms();
        let mut cached = EvalContext::new();
        let mut f_cached = vec![Vec3::ZERO; n];
        let mut f_fresh = vec![Vec3::ZERO; n];
        for step in 0..100 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
            let e_cached = ff.energy_forces_ctx(&sys, &mut cached, &mut f_cached);
            let e_fresh =
                ff.energy_forces_ctx(&sys, &mut EvalContext::with_skin(0.0), &mut f_fresh);
            assert!(
                (e_cached.total() - e_fresh.total()).abs() < 1e-9,
                "step {step}: total {} vs {}",
                e_cached.total(),
                e_fresh.total()
            );
            assert!((e_cached.lj - e_fresh.lj).abs() < 1e-9, "step {step} lj");
            assert!((e_cached.coulomb - e_fresh.coulomb).abs() < 1e-9, "step {step} coulomb");
            for (a, b) in f_cached.iter().zip(&f_fresh) {
                assert!((*a - *b).norm() < 1e-9, "step {step}: force {a:?} vs {b:?}");
            }
        }
        assert!(
            cached.neighbors.reuses() > cached.neighbors.rebuilds(),
            "the skin cache must mostly reuse: {} rebuilds, {} reuses",
            cached.neighbors.rebuilds(),
            cached.neighbors.reuses()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut sys = diatomic(300.0, 1.5, 0.1);
            let ff = ForceField::default();
            let mut integ = LangevinBaoab::new(0.001, 300.0, 2.0);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
            }
            sys.state.positions[1]
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
