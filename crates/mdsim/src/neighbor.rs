//! Neighbor search for the nonbonded loop.
//!
//! Three strategies:
//!
//! * [`all_pairs`] — O(N²) half loop, exact, used for small systems and as a
//!   reference in tests.
//! * [`CellList`] — O(N) linked-cell search, used when the atom count makes
//!   the quadratic loop too slow. For periodic boxes the cells tile the box;
//!   in vacuum the bounding box of the coordinates is used.
//! * [`NeighborCache`] — a persistent Verlet list built from the cell list
//!   with a skin margin, reused across MD steps until an atom has moved far
//!   enough to invalidate it. This is what the evaluation context of
//!   [`crate::forcefield::EvalContext`] holds.
//!
//! `all_pairs` and `CellList` produce candidate pairs with `i < j` whose
//! separation may exceed the cutoff slightly (the nonbonded kernel re-checks
//! `r² < rc²`). The `NeighborCache` additionally pre-filters topology
//! exclusions and pairs beyond `cutoff + skin`.

use crate::system::{PbcBox, System};
use crate::vec3::Vec3;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Atom count above which the cell list beats the O(N²) loop. Small systems
/// (the reduced dipeptide) are faster without the list.
pub const CELL_LIST_THRESHOLD: usize = 400;

/// Process-wide count of [`CellList::build`] calls. Diagnostics only: lets
/// tests and benches assert that cached evaluation paths do not rebuild the
/// cell list (e.g. one build per S-exchange single-point batch).
static CELL_LIST_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Total number of cell-list builds performed by this process so far.
pub fn cell_list_builds() -> u64 {
    CELL_LIST_BUILDS.load(Ordering::Relaxed)
}

/// Process-wide count of [`NeighborCache`] rebuilds (across every cache
/// instance). Feeds the observability metrics export; like
/// [`cell_list_builds`] it is diagnostics-only and monotone.
static NEIGHBOR_REBUILDS: AtomicU64 = AtomicU64::new(0);

/// Total number of neighbor-cache rebuilds performed by this process so far.
pub fn neighbor_cache_rebuilds() -> u64 {
    NEIGHBOR_REBUILDS.load(Ordering::Relaxed)
}

/// Pair count of the most recent [`CellList::pairs_into`] call, used to
/// pre-reserve the output buffer on the next rebuild. Pair counts drift
/// slowly between rebuilds of the same system, so the previous count is an
/// excellent capacity hint and avoids re-growth churn inside the fill loop.
static LAST_PAIRS: AtomicUsize = AtomicUsize::new(0);

/// Generate all unique pairs `i < j`.
pub fn all_pairs(n: usize) -> impl Iterator<Item = (u32, u32)> {
    (0..n as u32).flat_map(move |i| (i + 1..n as u32).map(move |j| (i, j)))
}

/// Linked-cell neighbor list.
pub struct CellList {
    /// Number of cells in each direction.
    dims: [usize; 3],
    /// Cell edge lengths.
    cell: Vec3,
    /// Origin of cell (0,0,0).
    origin: Vec3,
    /// Head-of-chain atom index per cell (`u32::MAX` = empty).
    heads: Vec<u32>,
    /// Next atom in the same cell (`u32::MAX` = end).
    next: Vec<u32>,
    /// Whether neighbor cells wrap around (periodic).
    periodic: bool,
}

const NONE: u32 = u32::MAX;

impl CellList {
    /// Build a cell list with cells at least `cutoff` wide.
    pub fn build(positions: &[Vec3], pbc: &PbcBox, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let (origin, extent, periodic) = match pbc.lengths() {
            Some(l) => (Vec3::ZERO, l, true),
            None => {
                let mut lo = Vec3::splat(f64::INFINITY);
                let mut hi = Vec3::splat(f64::NEG_INFINITY);
                for p in positions {
                    lo = lo.min(*p);
                    hi = hi.max(*p);
                }
                if positions.is_empty() {
                    lo = Vec3::ZERO;
                    hi = Vec3::splat(cutoff);
                }
                // Pad so no atom sits exactly on the upper face.
                (lo, hi - lo + Vec3::splat(1e-6), false)
            }
        };
        let dims = [
            ((extent.x / cutoff).floor() as usize).max(1),
            ((extent.y / cutoff).floor() as usize).max(1),
            ((extent.z / cutoff).floor() as usize).max(1),
        ];
        let cell = Vec3::new(
            extent.x / dims[0] as f64,
            extent.y / dims[1] as f64,
            extent.z / dims[2] as f64,
        );
        let mut list = CellList {
            dims,
            cell,
            origin,
            heads: vec![NONE; dims[0] * dims[1] * dims[2]],
            next: vec![NONE; positions.len()],
            periodic,
        };
        for (idx, p) in positions.iter().enumerate() {
            let c = list.cell_of(pbc.wrap(*p - origin) + origin);
            let flat = list.flat(c);
            list.next[idx] = list.heads[flat];
            list.heads[flat] = idx as u32;
        }
        CELL_LIST_BUILDS.fetch_add(1, Ordering::Relaxed);
        list
    }

    #[inline]
    fn cell_of(&self, p: Vec3) -> [usize; 3] {
        let rel = p - self.origin;
        let clampdim = |v: f64, c: f64, n: usize| -> usize {
            let i = (v / c).floor() as isize;
            i.clamp(0, n as isize - 1) as usize
        };
        [
            clampdim(rel.x, self.cell.x, self.dims[0]),
            clampdim(rel.y, self.cell.y, self.dims[1]),
            clampdim(rel.z, self.cell.z, self.dims[2]),
        ]
    }

    #[inline]
    fn flat(&self, c: [usize; 3]) -> usize {
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Collect candidate pairs (`i < j`) from each cell and its half-shell of
    /// neighbor cells.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        self.pairs_into(&mut out);
        out
    }

    /// Like [`CellList::pairs`], but reuses a caller-provided buffer so
    /// steady-state rebuilds do not allocate. The buffer is cleared first;
    /// its capacity (grown on earlier builds) is retained, and fresh buffers
    /// are pre-reserved to the previous rebuild's pair count.
    pub fn pairs_into(&self, out: &mut Vec<(u32, u32)>) {
        out.clear();
        out.reserve(LAST_PAIRS.load(Ordering::Relaxed));
        let (nx, ny, nz) = (self.dims[0] as isize, self.dims[1] as isize, self.dims[2] as isize);
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let home = self.flat([cx as usize, cy as usize, cz as usize]);
                    // Within the home cell.
                    let mut a = self.heads[home];
                    while a != NONE {
                        let mut b = self.next[a as usize];
                        while b != NONE {
                            out.push(ordered(a, b));
                            b = self.next[b as usize];
                        }
                        a = self.next[a as usize];
                    }
                    // Half-shell of 13 neighbor cells to avoid double counting.
                    for (dx, dy, dz) in HALF_SHELL {
                        let (mut x, mut y, mut z) = (cx + dx, cy + dy, cz + dz);
                        if self.periodic {
                            x = x.rem_euclid(nx);
                            y = y.rem_euclid(ny);
                            z = z.rem_euclid(nz);
                        } else if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
                            continue;
                        }
                        let other = self.flat([x as usize, y as usize, z as usize]);
                        if other == home {
                            // Small periodic boxes can alias a neighbor back
                            // onto the home cell; skip to avoid duplicates.
                            continue;
                        }
                        let mut a = self.heads[home];
                        while a != NONE {
                            let mut b = self.heads[other];
                            while b != NONE {
                                out.push(ordered(a, b));
                                b = self.next[b as usize];
                            }
                            a = self.next[a as usize];
                        }
                    }
                }
            }
        }
        // Aliasing in tiny periodic grids (dims < 3) can produce duplicate
        // pairs through different images; dedup to keep the contract.
        if self.periodic && (self.dims[0] < 3 || self.dims[1] < 3 || self.dims[2] < 3) {
            out.sort_unstable();
            out.dedup();
        }
        LAST_PAIRS.store(out.len(), Ordering::Relaxed);
    }

    /// Number of cells (for diagnostics).
    pub fn n_cells(&self) -> usize {
        self.heads.len()
    }
}

#[inline]
fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// A persistent Verlet neighbor list with a skin margin.
///
/// The list is built from the [`CellList`] with reach `cutoff + skin`,
/// pre-filtered to drop topology exclusions and pairs beyond the reach. It
/// stays valid until some atom has moved more than `skin / 2` from its
/// position at build time: two atoms approaching each other can then close
/// at most `skin`, so no pair outside the reach at build time can come
/// within the cutoff before a rebuild. Rebuild checks are O(N) per
/// evaluation instead of the O(N + pairs) full rebuild.
///
/// Systems below [`CELL_LIST_THRESHOLD`] atoms get an exclusion-filtered
/// all-pairs list instead; that list is position-independent and never needs
/// a rebuild.
///
/// A cache must not be shared between different systems: it keys its
/// validity on atom count, box and displacement only (the topology is
/// assumed immutable for the cache's lifetime, which holds for any one
/// [`System`]).
#[derive(Debug, Clone)]
pub struct NeighborCache {
    skin: f64,
    cutoff: f64,
    n_atoms: usize,
    pbc: PbcBox,
    /// Exclusion-filtered pairs within `cutoff + skin` at build time.
    pairs: Vec<(u32, u32)>,
    /// Positions at build time (displacement reference).
    ref_positions: Vec<Vec3>,
    /// Whether `pairs` is a position-independent all-pairs list.
    all_pairs_list: bool,
    valid: bool,
    /// Scratch buffer for raw cell-list candidates, reused across rebuilds.
    candidates: Vec<(u32, u32)>,
    rebuilds: u64,
    reuses: u64,
}

impl Default for NeighborCache {
    fn default() -> Self {
        NeighborCache::new(NeighborCache::DEFAULT_SKIN)
    }
}

impl NeighborCache {
    /// Default Verlet skin width in Å: wide enough to amortize rebuilds over
    /// tens of MD steps at typical thermal speeds, narrow enough that the
    /// extra in-shell pairs cost little.
    pub const DEFAULT_SKIN: f64 = 1.5;

    pub fn new(skin: f64) -> Self {
        assert!(skin >= 0.0, "skin must be non-negative");
        NeighborCache {
            skin,
            cutoff: 0.0,
            n_atoms: 0,
            pbc: PbcBox::VACUUM,
            pairs: Vec::new(),
            ref_positions: Vec::new(),
            all_pairs_list: false,
            valid: false,
            candidates: Vec::new(),
            rebuilds: 0,
            reuses: 0,
        }
    }

    /// The configured skin width in Å.
    pub fn skin(&self) -> f64 {
        self.skin
    }

    /// Make the cached list valid for the system's current coordinates and
    /// the given cutoff; rebuilds only when required. Returns `true` when a
    /// rebuild happened.
    pub fn ensure(&mut self, system: &System, cutoff: f64) -> bool {
        let stale = !self.valid
            || self.n_atoms != system.n_atoms()
            || self.cutoff != cutoff
            || self.pbc != system.pbc
            || (!self.all_pairs_list && self.moved_beyond_half_skin(system));
        if stale {
            self.rebuild(system, cutoff);
            self.rebuilds += 1;
            NEIGHBOR_REBUILDS.fetch_add(1, Ordering::Relaxed);
        } else {
            self.reuses += 1;
        }
        stale
    }

    /// The cached candidate pairs (`i < j`), exclusions already removed.
    /// Only meaningful after [`NeighborCache::ensure`].
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Force a rebuild on the next [`NeighborCache::ensure`].
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Rebuilds performed over this cache's lifetime.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Evaluations that reused the cached list without rebuilding.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    fn moved_beyond_half_skin(&self, system: &System) -> bool {
        if self.skin <= 0.0 {
            // No slack: the list is exact for the reference coordinates and
            // stays valid only while they are bitwise unchanged (which still
            // covers repeated single-points on the same configuration).
            return self.ref_positions != system.state.positions;
        }
        let limit_sq = (0.5 * self.skin) * (0.5 * self.skin);
        self.ref_positions
            .iter()
            .zip(&system.state.positions)
            .any(|(r, p)| system.pbc.min_image(*p, *r).norm_sq() > limit_sq)
    }

    fn rebuild(&mut self, system: &System, cutoff: f64) {
        let n = system.n_atoms();
        let pos = &system.state.positions;
        let top = &system.topology;
        self.pairs.clear();
        if n < CELL_LIST_THRESHOLD {
            self.all_pairs_list = true;
            for (i, j) in all_pairs(n) {
                if !top.is_excluded(i, j) {
                    self.pairs.push((i, j));
                }
            }
        } else {
            self.all_pairs_list = false;
            let reach = cutoff + self.skin;
            let reach_sq = reach * reach;
            let cl = CellList::build(pos, &system.pbc, reach);
            cl.pairs_into(&mut self.candidates);
            for &(i, j) in &self.candidates {
                if top.is_excluded(i, j) {
                    continue;
                }
                let d = system.pbc.min_image(pos[i as usize], pos[j as usize]);
                if d.norm_sq() <= reach_sq {
                    self.pairs.push((i, j));
                }
            }
        }
        self.ref_positions.clear();
        self.ref_positions.extend_from_slice(pos);
        self.n_atoms = n;
        self.cutoff = cutoff;
        self.pbc = system.pbc;
        self.valid = true;
    }
}

/// 13 of the 26 neighbor offsets: a deterministic half-shell.
const HALF_SHELL: [(isize, isize, isize); 13] = [
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::State;
    use crate::topology::{Atom, Topology};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn within_cutoff_pairs(
        positions: &[Vec3],
        pbc: &PbcBox,
        cutoff: f64,
        pairs: impl Iterator<Item = (u32, u32)>,
    ) -> BTreeSet<(u32, u32)> {
        pairs
            .filter(|&(i, j)| {
                pbc.min_image(positions[i as usize], positions[j as usize]).norm_sq()
                    < cutoff * cutoff
            })
            .collect()
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).count(), 10);
        assert_eq!(all_pairs(0).count(), 0);
        assert_eq!(all_pairs(1).count(), 0);
    }

    #[test]
    fn cell_list_matches_all_pairs_periodic() {
        let mut rng = StdRng::seed_from_u64(42);
        let pbc = PbcBox::cubic(20.0);
        let positions: Vec<Vec3> = (0..300)
            .map(|_| {
                Vec3::new(rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0)
            })
            .collect();
        let cutoff = 4.0;
        let cl = CellList::build(&positions, &pbc, cutoff);
        let from_cells = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn cell_list_matches_all_pairs_vacuum() {
        let mut rng = StdRng::seed_from_u64(11);
        let pbc = PbcBox::VACUUM;
        let positions: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 30.0 - 15.0,
                    rng.gen::<f64>() * 30.0 - 15.0,
                    rng.gen::<f64>() * 30.0 - 15.0,
                )
            })
            .collect();
        let cutoff = 5.0;
        let cl = CellList::build(&positions, &pbc, cutoff);
        let from_cells = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn tiny_periodic_box_has_no_duplicates() {
        // Box barely larger than the cutoff: worst case for cell aliasing.
        let pbc = PbcBox::cubic(6.0);
        let positions = vec![
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(5.5, 5.5, 5.5),
            Vec3::new(3.0, 3.0, 3.0),
            Vec3::new(0.2, 5.8, 3.1),
        ];
        let cl = CellList::build(&positions, &pbc, 2.9);
        let pairs = cl.pairs();
        let set: BTreeSet<_> = pairs.iter().copied().collect();
        assert_eq!(set.len(), pairs.len(), "duplicate pairs emitted");
        let from_cells = within_cutoff_pairs(&positions, &pbc, 2.9, pairs.into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, 2.9, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn empty_and_single_atom() {
        let pbc = PbcBox::VACUUM;
        let cl = CellList::build(&[], &pbc, 3.0);
        assert!(cl.pairs().is_empty());
        let cl1 = CellList::build(&[Vec3::ZERO], &pbc, 3.0);
        assert!(cl1.pairs().is_empty());
    }

    fn cache_system(positions: Vec<Vec3>, pbc: PbcBox) -> System {
        let top = Topology {
            atoms: vec![Atom::lj(18.0, 0.15, 3.15); positions.len()],
            ..Default::default()
        };
        let mut state = State::zeros(positions.len());
        state.positions = positions;
        System::new(top, pbc, state).unwrap()
    }

    /// Pairs within the cutoff according to a cache's candidate list.
    fn cached_within_cutoff(
        sys: &System,
        cache: &NeighborCache,
        cutoff: f64,
    ) -> BTreeSet<(u32, u32)> {
        within_cutoff_pairs(&sys.state.positions, &sys.pbc, cutoff, cache.pairs().iter().copied())
    }

    #[test]
    fn cache_reuses_until_half_skin_displacement() {
        let mut rng = StdRng::seed_from_u64(3);
        let l = 30.0;
        let n = 600; // above CELL_LIST_THRESHOLD: the cell-list path
        let positions: Vec<Vec3> = (0..n)
            .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
            .collect();
        let mut sys = cache_system(positions, PbcBox::cubic(l));
        let cutoff = 6.0;
        let mut cache = NeighborCache::new(2.0);
        assert!(cache.ensure(&sys, cutoff), "first ensure builds");
        assert!(!cache.ensure(&sys, cutoff), "unchanged coordinates reuse");
        // Displace one atom by less than skin/2: still valid.
        sys.state.positions[0] += Vec3::new(0.9, 0.0, 0.0);
        assert!(!cache.ensure(&sys, cutoff), "sub-skin/2 move reuses");
        // Push the same atom past skin/2 total displacement: rebuild.
        sys.state.positions[0] += Vec3::new(0.2, 0.0, 0.0);
        assert!(cache.ensure(&sys, cutoff), "beyond skin/2 rebuilds");
        assert_eq!(cache.rebuilds(), 2);
        assert_eq!(cache.reuses(), 2);
    }

    #[test]
    fn global_rebuild_counter_tracks_cache_rebuilds() {
        let positions =
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0), Vec3::new(4.0, 0.0, 0.0)];
        let sys = cache_system(positions, PbcBox::VACUUM);
        let before = neighbor_cache_rebuilds();
        let mut cache = NeighborCache::new(1.0);
        cache.ensure(&sys, 5.0);
        cache.invalidate();
        cache.ensure(&sys, 5.0);
        // Other tests run concurrently against the same process-wide
        // counter, so assert a lower bound only.
        assert!(neighbor_cache_rebuilds() >= before + 2);
    }

    #[test]
    fn cache_small_system_is_position_independent() {
        let mut rng = StdRng::seed_from_u64(8);
        let positions: Vec<Vec3> = (0..50)
            .map(|_| {
                Vec3::new(rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0, rng.gen::<f64>() * 10.0)
            })
            .collect();
        let mut sys = cache_system(positions, PbcBox::VACUUM);
        let mut cache = NeighborCache::new(1.0);
        cache.ensure(&sys, 5.0);
        assert_eq!(cache.pairs().len(), 50 * 49 / 2);
        for p in &mut sys.state.positions {
            *p += Vec3::new(100.0, -3.0, 7.0);
        }
        assert!(!cache.ensure(&sys, 5.0), "all-pairs list never rebuilds");
    }

    #[test]
    fn cache_prefilters_exclusions() {
        let mut top = Topology {
            atoms: vec![Atom::lj(12.0, 0.1, 3.0); 3],
            bonds: vec![crate::topology::Bond { i: 0, j: 1, k: 100.0, r0: 1.0 }],
            ..Default::default()
        };
        top.build_exclusions();
        let mut state = State::zeros(3);
        state.positions[1] = Vec3::new(1.0, 0.0, 0.0);
        state.positions[2] = Vec3::new(2.0, 0.0, 0.0);
        let sys = System::new(top, PbcBox::VACUUM, state).unwrap();
        let mut cache = NeighborCache::new(1.0);
        cache.ensure(&sys, 5.0);
        let pairs: BTreeSet<_> = cache.pairs().iter().copied().collect();
        assert!(!pairs.contains(&(0, 1)), "bonded pair filtered out");
        assert!(pairs.contains(&(0, 2)));
        assert!(pairs.contains(&(1, 2)));
    }

    #[test]
    fn cache_invalidate_forces_rebuild() {
        let positions: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let sys = cache_system(positions, PbcBox::VACUUM);
        let mut cache = NeighborCache::new(1.0);
        cache.ensure(&sys, 3.0);
        assert!(!cache.ensure(&sys, 3.0));
        cache.invalidate();
        assert!(cache.ensure(&sys, 3.0));
        // A different cutoff also rebuilds.
        assert!(cache.ensure(&sys, 4.0));
    }

    proptest::proptest! {
        /// The Verlet guarantee: after arbitrary per-atom displacements of at
        /// most skin/2, a cached list built at the original coordinates still
        /// finds every within-cutoff pair (periodic and vacuum).
        #[test]
        fn verlet_skin_never_misses_after_displacement(
            seed in 0u64..200,
            n in 2usize..60,
            periodic in proptest::bool::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = 14.0 + (seed % 5) as f64;
            let pbc = if periodic { PbcBox::cubic(l) } else { PbcBox::VACUUM };
            let positions: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
                .collect();
            let cutoff = 3.5;
            let skin = 1.2;
            let mut sys = cache_system(positions, pbc);
            let mut cache = NeighborCache::new(skin);
            cache.ensure(&sys, cutoff);
            // Random displacement of up to skin/2 per atom (the validity
            // envelope; `ensure` is deliberately NOT called afterwards).
            for p in &mut sys.state.positions {
                let dir = Vec3::new(
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                );
                let norm = dir.norm().max(1e-9);
                *p += dir * (rng.gen::<f64>() * 0.5 * skin / norm);
            }
            let got = cached_within_cutoff(&sys, &cache, cutoff);
            let expect = within_cutoff_pairs(&sys.state.positions, &sys.pbc, cutoff, all_pairs(n));
            proptest::prop_assert_eq!(got, expect);
        }

        /// Same guarantee through the cell-list path (above the threshold).
        #[test]
        fn verlet_skin_never_misses_large_system(seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            let n = 450; // > CELL_LIST_THRESHOLD
            let l = 26.0;
            let pbc = if seed % 2 == 0 { PbcBox::cubic(l) } else { PbcBox::VACUUM };
            let positions: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
                .collect();
            let cutoff = 5.0;
            let skin = 1.5;
            let mut sys = cache_system(positions, pbc);
            let mut cache = NeighborCache::new(skin);
            cache.ensure(&sys, cutoff);
            for p in &mut sys.state.positions {
                let dir = Vec3::new(
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                    rng.gen::<f64>() * 2.0 - 1.0,
                );
                let norm = dir.norm().max(1e-9);
                *p += dir * (rng.gen::<f64>() * 0.5 * skin / norm);
            }
            let got = cached_within_cutoff(&sys, &cache, cutoff);
            let expect = within_cutoff_pairs(&sys.state.positions, &sys.pbc, cutoff, all_pairs(n));
            proptest::prop_assert_eq!(got, expect);
        }

        #[test]
        fn cell_list_never_misses_a_pair(seed in 0u64..500, n in 2usize..80) {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = 12.0 + (seed % 7) as f64;
            let pbc = PbcBox::cubic(l);
            let positions: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
                .collect();
            let cutoff = 3.5;
            let cl = CellList::build(&positions, &pbc, cutoff);
            let got = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
            let expect = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(n));
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
