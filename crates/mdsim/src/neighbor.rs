//! Neighbor search for the nonbonded loop.
//!
//! Two strategies:
//!
//! * [`all_pairs`] — O(N²) half loop, exact, used for small systems and as a
//!   reference in tests.
//! * [`CellList`] — O(N) linked-cell search, used by the engines when the
//!   atom count makes the quadratic loop too slow. For periodic boxes the
//!   cells tile the box; in vacuum the bounding box of the coordinates is
//!   used.
//!
//! Both produce candidate pairs with `i < j` whose separation may exceed the
//! cutoff slightly (the nonbonded kernel re-checks `r² < rc²`).

use crate::system::PbcBox;
use crate::vec3::Vec3;

/// Generate all unique pairs `i < j`.
pub fn all_pairs(n: usize) -> impl Iterator<Item = (u32, u32)> {
    (0..n as u32).flat_map(move |i| (i + 1..n as u32).map(move |j| (i, j)))
}

/// Linked-cell neighbor list.
pub struct CellList {
    /// Number of cells in each direction.
    dims: [usize; 3],
    /// Cell edge lengths.
    cell: Vec3,
    /// Origin of cell (0,0,0).
    origin: Vec3,
    /// Head-of-chain atom index per cell (`u32::MAX` = empty).
    heads: Vec<u32>,
    /// Next atom in the same cell (`u32::MAX` = end).
    next: Vec<u32>,
    /// Whether neighbor cells wrap around (periodic).
    periodic: bool,
}

const NONE: u32 = u32::MAX;

impl CellList {
    /// Build a cell list with cells at least `cutoff` wide.
    pub fn build(positions: &[Vec3], pbc: &PbcBox, cutoff: f64) -> Self {
        assert!(cutoff > 0.0, "cutoff must be positive");
        let (origin, extent, periodic) = match pbc.lengths {
            Some(l) => (Vec3::ZERO, l, true),
            None => {
                let mut lo = Vec3::splat(f64::INFINITY);
                let mut hi = Vec3::splat(f64::NEG_INFINITY);
                for p in positions {
                    lo = lo.min(*p);
                    hi = hi.max(*p);
                }
                if positions.is_empty() {
                    lo = Vec3::ZERO;
                    hi = Vec3::splat(cutoff);
                }
                // Pad so no atom sits exactly on the upper face.
                (lo, hi - lo + Vec3::splat(1e-6), false)
            }
        };
        let dims = [
            ((extent.x / cutoff).floor() as usize).max(1),
            ((extent.y / cutoff).floor() as usize).max(1),
            ((extent.z / cutoff).floor() as usize).max(1),
        ];
        let cell = Vec3::new(
            extent.x / dims[0] as f64,
            extent.y / dims[1] as f64,
            extent.z / dims[2] as f64,
        );
        let mut list = CellList {
            dims,
            cell,
            origin,
            heads: vec![NONE; dims[0] * dims[1] * dims[2]],
            next: vec![NONE; positions.len()],
            periodic,
        };
        for (idx, p) in positions.iter().enumerate() {
            let c = list.cell_of(pbc.wrap(*p - origin) + origin);
            let flat = list.flat(c);
            list.next[idx] = list.heads[flat];
            list.heads[flat] = idx as u32;
        }
        list
    }

    #[inline]
    fn cell_of(&self, p: Vec3) -> [usize; 3] {
        let rel = p - self.origin;
        let clampdim = |v: f64, c: f64, n: usize| -> usize {
            let i = (v / c).floor() as isize;
            i.clamp(0, n as isize - 1) as usize
        };
        [
            clampdim(rel.x, self.cell.x, self.dims[0]),
            clampdim(rel.y, self.cell.y, self.dims[1]),
            clampdim(rel.z, self.cell.z, self.dims[2]),
        ]
    }

    #[inline]
    fn flat(&self, c: [usize; 3]) -> usize {
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Collect candidate pairs (`i < j`) from each cell and its half-shell of
    /// neighbor cells.
    pub fn pairs(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.next.len() * 16);
        let (nx, ny, nz) = (self.dims[0] as isize, self.dims[1] as isize, self.dims[2] as isize);
        for cz in 0..nz {
            for cy in 0..ny {
                for cx in 0..nx {
                    let home = self.flat([cx as usize, cy as usize, cz as usize]);
                    // Within the home cell.
                    let mut a = self.heads[home];
                    while a != NONE {
                        let mut b = self.next[a as usize];
                        while b != NONE {
                            out.push(ordered(a, b));
                            b = self.next[b as usize];
                        }
                        a = self.next[a as usize];
                    }
                    // Half-shell of 13 neighbor cells to avoid double counting.
                    for (dx, dy, dz) in HALF_SHELL {
                        let (mut x, mut y, mut z) = (cx + dx, cy + dy, cz + dz);
                        if self.periodic {
                            x = x.rem_euclid(nx);
                            y = y.rem_euclid(ny);
                            z = z.rem_euclid(nz);
                        } else if x < 0 || x >= nx || y < 0 || y >= ny || z < 0 || z >= nz {
                            continue;
                        }
                        let other = self.flat([x as usize, y as usize, z as usize]);
                        if other == home {
                            // Small periodic boxes can alias a neighbor back
                            // onto the home cell; skip to avoid duplicates.
                            continue;
                        }
                        let mut a = self.heads[home];
                        while a != NONE {
                            let mut b = self.heads[other];
                            while b != NONE {
                                out.push(ordered(a, b));
                                b = self.next[b as usize];
                            }
                            a = self.next[a as usize];
                        }
                    }
                }
            }
        }
        // Aliasing in tiny periodic grids (dims < 3) can produce duplicate
        // pairs through different images; dedup to keep the contract.
        if self.periodic && (self.dims[0] < 3 || self.dims[1] < 3 || self.dims[2] < 3) {
            out.sort_unstable();
            out.dedup();
        }
        out
    }

    /// Number of cells (for diagnostics).
    pub fn n_cells(&self) -> usize {
        self.heads.len()
    }
}

#[inline]
fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// 13 of the 26 neighbor offsets: a deterministic half-shell.
const HALF_SHELL: [(isize, isize, isize); 13] = [
    (1, 0, 0),
    (-1, 1, 0),
    (0, 1, 0),
    (1, 1, 0),
    (-1, -1, 1),
    (0, -1, 1),
    (1, -1, 1),
    (-1, 0, 1),
    (0, 0, 1),
    (1, 0, 1),
    (-1, 1, 1),
    (0, 1, 1),
    (1, 1, 1),
];

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    fn within_cutoff_pairs(
        positions: &[Vec3],
        pbc: &PbcBox,
        cutoff: f64,
        pairs: impl Iterator<Item = (u32, u32)>,
    ) -> BTreeSet<(u32, u32)> {
        pairs
            .filter(|&(i, j)| {
                pbc.min_image(positions[i as usize], positions[j as usize]).norm_sq()
                    < cutoff * cutoff
            })
            .collect()
    }

    #[test]
    fn all_pairs_count() {
        assert_eq!(all_pairs(5).count(), 10);
        assert_eq!(all_pairs(0).count(), 0);
        assert_eq!(all_pairs(1).count(), 0);
    }

    #[test]
    fn cell_list_matches_all_pairs_periodic() {
        let mut rng = StdRng::seed_from_u64(42);
        let pbc = PbcBox::cubic(20.0);
        let positions: Vec<Vec3> = (0..300)
            .map(|_| Vec3::new(rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0, rng.gen::<f64>() * 20.0))
            .collect();
        let cutoff = 4.0;
        let cl = CellList::build(&positions, &pbc, cutoff);
        let from_cells = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn cell_list_matches_all_pairs_vacuum() {
        let mut rng = StdRng::seed_from_u64(11);
        let pbc = PbcBox::VACUUM;
        let positions: Vec<Vec3> = (0..200)
            .map(|_| {
                Vec3::new(
                    rng.gen::<f64>() * 30.0 - 15.0,
                    rng.gen::<f64>() * 30.0 - 15.0,
                    rng.gen::<f64>() * 30.0 - 15.0,
                )
            })
            .collect();
        let cutoff = 5.0;
        let cl = CellList::build(&positions, &pbc, cutoff);
        let from_cells = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn tiny_periodic_box_has_no_duplicates() {
        // Box barely larger than the cutoff: worst case for cell aliasing.
        let pbc = PbcBox::cubic(6.0);
        let positions = vec![
            Vec3::new(0.5, 0.5, 0.5),
            Vec3::new(5.5, 5.5, 5.5),
            Vec3::new(3.0, 3.0, 3.0),
            Vec3::new(0.2, 5.8, 3.1),
        ];
        let cl = CellList::build(&positions, &pbc, 2.9);
        let pairs = cl.pairs();
        let set: BTreeSet<_> = pairs.iter().copied().collect();
        assert_eq!(set.len(), pairs.len(), "duplicate pairs emitted");
        let from_cells = within_cutoff_pairs(&positions, &pbc, 2.9, pairs.into_iter());
        let from_all = within_cutoff_pairs(&positions, &pbc, 2.9, all_pairs(positions.len()));
        assert_eq!(from_cells, from_all);
    }

    #[test]
    fn empty_and_single_atom() {
        let pbc = PbcBox::VACUUM;
        let cl = CellList::build(&[], &pbc, 3.0);
        assert!(cl.pairs().is_empty());
        let cl1 = CellList::build(&[Vec3::ZERO], &pbc, 3.0);
        assert!(cl1.pairs().is_empty());
    }

    proptest::proptest! {
        #[test]
        fn cell_list_never_misses_a_pair(seed in 0u64..500, n in 2usize..80) {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = 12.0 + (seed % 7) as f64;
            let pbc = PbcBox::cubic(l);
            let positions: Vec<Vec3> = (0..n)
                .map(|_| Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l))
                .collect();
            let cutoff = 3.5;
            let cl = CellList::build(&positions, &pbc, cutoff);
            let got = within_cutoff_pairs(&positions, &pbc, cutoff, cl.pairs().into_iter());
            let expect = within_cutoff_pairs(&positions, &pbc, cutoff, all_pairs(n));
            proptest::prop_assert_eq!(got, expect);
        }
    }
}
