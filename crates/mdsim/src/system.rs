//! Dynamic simulation state: positions, velocities and the periodic box.

use crate::topology::Topology;
use crate::units::{kbt, wrap_angle};
use crate::vec3::Vec3;
use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Orthorhombic periodic box (or `None` extent for vacuum).
///
/// The reciprocal edge lengths are precomputed at construction so that
/// [`PbcBox::min_image`] and [`PbcBox::wrap`] — both inside the pair inner
/// loop — cost one multiply + round per axis instead of a division. In
/// vacuum `edge` and `inv` are zero, which makes the shift term vanish and
/// keeps both methods branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(from = "PbcBoxRepr", into = "PbcBoxRepr")]
pub struct PbcBox {
    /// Edge lengths in Å; `None` means no periodicity.
    lengths: Option<Vec3>,
    /// Edge lengths with vacuum represented as zero (for branch-free math).
    edge: Vec3,
    /// Reciprocal edge lengths `1/L` (zero in vacuum).
    inv: Vec3,
}

/// Serialized form of [`PbcBox`]: only the edge lengths are stored; the
/// cached reciprocals are rebuilt on load.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct PbcBoxRepr {
    lengths: Option<Vec3>,
}

impl From<PbcBoxRepr> for PbcBox {
    fn from(repr: PbcBoxRepr) -> Self {
        PbcBox::new(repr.lengths)
    }
}

impl From<PbcBox> for PbcBoxRepr {
    fn from(b: PbcBox) -> Self {
        PbcBoxRepr { lengths: b.lengths }
    }
}

impl PbcBox {
    pub const VACUUM: PbcBox = PbcBox { lengths: None, edge: Vec3::ZERO, inv: Vec3::ZERO };

    /// Build a box from optional edge lengths (`None` = vacuum). Panics on
    /// non-positive edges, which would previously have produced NaN shifts.
    pub fn new(lengths: Option<Vec3>) -> Self {
        match lengths {
            None => PbcBox::VACUUM,
            Some(l) => {
                assert!(
                    l.x > 0.0 && l.y > 0.0 && l.z > 0.0,
                    "box edge lengths must be positive, got {l:?}"
                );
                PbcBox {
                    lengths: Some(l),
                    edge: l,
                    inv: Vec3::new(1.0 / l.x, 1.0 / l.y, 1.0 / l.z),
                }
            }
        }
    }

    pub fn cubic(l: f64) -> Self {
        PbcBox::new(Some(Vec3::splat(l)))
    }

    /// Edge lengths in Å; `None` means no periodicity.
    pub fn lengths(&self) -> Option<Vec3> {
        self.lengths
    }

    /// Edge lengths with vacuum as zero — pairs with [`PbcBox::inv_edge`]
    /// for branch-free minimum-image arithmetic in SoA kernels.
    pub fn edge(&self) -> Vec3 {
        self.edge
    }

    /// Precomputed reciprocal edge lengths (`1/L`, zero in vacuum).
    pub fn inv_edge(&self) -> Vec3 {
        self.inv
    }

    /// Minimum-image displacement `a - b`.
    #[inline]
    pub fn min_image(&self, a: Vec3, b: Vec3) -> Vec3 {
        // Branch-free: in vacuum edge and inv are zero, so the shift is 0.
        let mut d = a - b;
        d.x -= self.edge.x * (d.x * self.inv.x).round();
        d.y -= self.edge.y * (d.y * self.inv.y).round();
        d.z -= self.edge.z * (d.z * self.inv.z).round();
        d
    }

    /// Wrap a position into the primary cell `[0, L)`.
    #[inline]
    pub fn wrap(&self, mut p: Vec3) -> Vec3 {
        p.x -= self.edge.x * (p.x * self.inv.x).floor();
        p.y -= self.edge.y * (p.y * self.inv.y).floor();
        p.z -= self.edge.z * (p.z * self.inv.z).floor();
        p
    }

    pub fn volume(&self) -> Option<f64> {
        self.lengths.map(|l| l.x * l.y * l.z)
    }
}

/// Mutable per-step state of a system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct State {
    pub positions: Vec<Vec3>,
    pub velocities: Vec<Vec3>,
    /// Simulation time in ps.
    pub time_ps: f64,
    /// Completed MD steps.
    pub step: u64,
}

impl State {
    pub fn zeros(n: usize) -> Self {
        State {
            positions: vec![Vec3::ZERO; n],
            velocities: vec![Vec3::ZERO; n],
            time_ps: 0.0,
            step: 0,
        }
    }

    pub fn n_atoms(&self) -> usize {
        self.positions.len()
    }

    pub fn is_finite(&self) -> bool {
        self.positions.iter().all(|p| p.is_finite())
            && self.velocities.iter().all(|v| v.is_finite())
    }
}

/// A complete molecular system: immutable topology + box + mutable state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct System {
    pub topology: Topology,
    pub pbc: PbcBox,
    pub state: State,
}

impl System {
    pub fn new(topology: Topology, pbc: PbcBox, state: State) -> Result<Self, String> {
        topology.validate()?;
        if topology.n_atoms() != state.n_atoms() {
            return Err(format!(
                "topology has {} atoms but state has {}",
                topology.n_atoms(),
                state.n_atoms()
            ));
        }
        Ok(System { topology, pbc, state })
    }

    pub fn n_atoms(&self) -> usize {
        self.topology.n_atoms()
    }

    /// Kinetic energy in kcal/mol. Velocities are stored in Å per AKMA time
    /// unit, so `1/2 m v²` is already in kcal/mol.
    pub fn kinetic_energy(&self) -> f64 {
        self.topology
            .atoms
            .iter()
            .zip(&self.state.velocities)
            .map(|(a, v)| 0.5 * a.mass * v.norm_sq())
            .sum()
    }

    /// Instantaneous temperature in K from the equipartition theorem.
    pub fn instantaneous_temperature(&self) -> f64 {
        let dof = self.topology.degrees_of_freedom() as f64;
        2.0 * self.kinetic_energy() / (dof * crate::units::KB)
    }

    /// Draw velocities from the Maxwell-Boltzmann distribution at `t` K and
    /// remove centre-of-mass drift.
    pub fn assign_maxwell_boltzmann<R: Rng + ?Sized>(&mut self, t: f64, rng: &mut R) {
        for (atom, v) in self.topology.atoms.iter().zip(self.state.velocities.iter_mut()) {
            let sigma = (kbt(t) / atom.mass).sqrt();
            let normal = Normal::new(0.0, sigma).expect("sigma is finite and positive");
            *v = Vec3::new(normal.sample(rng), normal.sample(rng), normal.sample(rng));
        }
        self.remove_com_motion();
    }

    /// Subtract the centre-of-mass velocity.
    pub fn remove_com_motion(&mut self) {
        let total_mass = self.topology.total_mass();
        if total_mass <= 0.0 {
            return;
        }
        let p: Vec3 =
            self.topology.atoms.iter().zip(&self.state.velocities).map(|(a, v)| *v * a.mass).sum();
        let v_com = p / total_mass;
        for v in &mut self.state.velocities {
            *v -= v_com;
        }
    }

    /// Measure a dihedral angle over four atom indices, in radians wrapped to
    /// `(-pi, pi]`. Uses the standard atan2 formulation, which is stable near
    /// 0 and pi.
    pub fn dihedral_angle(&self, atoms: [u32; 4]) -> f64 {
        let p = &self.state.positions;
        let (i, j, k, l) =
            (atoms[0] as usize, atoms[1] as usize, atoms[2] as usize, atoms[3] as usize);
        let b1 = self.pbc.min_image(p[j], p[i]);
        let b2 = self.pbc.min_image(p[k], p[j]);
        let b3 = self.pbc.min_image(p[l], p[k]);
        let n1 = b1.cross(b2);
        let n2 = b2.cross(b3);
        let m1 = n1.cross(b2.normalized().unwrap_or(Vec3::new(1.0, 0.0, 0.0)));
        let x = n1.dot(n2);
        let y = m1.dot(n2);
        wrap_angle(y.atan2(x))
    }

    /// Measure a named dihedral (e.g. "phi"), in radians.
    pub fn named_dihedral_angle(&self, name: &str) -> Option<f64> {
        self.topology.dihedral(name).map(|d| self.dihedral_angle(d.atoms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Atom, NamedDihedral};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn four_atom_system(positions: [Vec3; 4]) -> System {
        let topology = Topology {
            atoms: vec![Atom::lj(12.0, 0.1, 3.4); 4],
            named_dihedrals: vec![NamedDihedral { name: "phi".into(), atoms: [0, 1, 2, 3] }],
            ..Default::default()
        };
        let mut state = State::zeros(4);
        state.positions = positions.to_vec();
        System::new(topology, PbcBox::VACUUM, state).unwrap()
    }

    #[test]
    fn min_image_wraps_across_boundary() {
        let b = PbcBox::cubic(10.0);
        let d = b.min_image(Vec3::new(9.5, 0.0, 0.0), Vec3::new(0.5, 0.0, 0.0));
        assert!((d.x + 1.0).abs() < 1e-12, "expected -1.0, got {}", d.x);
    }

    #[test]
    fn vacuum_min_image_is_plain_difference() {
        let b = PbcBox::VACUUM;
        let d = b.min_image(Vec3::new(100.0, 0.0, 0.0), Vec3::ZERO);
        assert_eq!(d.x, 100.0);
        assert!(b.volume().is_none());
    }

    #[test]
    fn wrap_into_primary_cell() {
        let b = PbcBox::cubic(10.0);
        let p = b.wrap(Vec3::new(-0.5, 10.5, 25.0));
        assert!((p.x - 9.5).abs() < 1e-12);
        assert!((p.y - 0.5).abs() < 1e-12);
        assert!((p.z - 5.0).abs() < 1e-12);
    }

    #[test]
    fn trans_dihedral_is_pi() {
        // Planar zig-zag: trans configuration -> |phi| = pi.
        let sys = four_atom_system([
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
        ]);
        let phi = sys.named_dihedral_angle("phi").unwrap();
        assert!((phi.abs() - std::f64::consts::PI).abs() < 1e-9, "phi = {phi}");
    }

    #[test]
    fn cis_dihedral_is_zero() {
        let sys = four_atom_system([
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ]);
        let phi = sys.named_dihedral_angle("phi").unwrap();
        assert!(phi.abs() < 1e-9, "phi = {phi}");
    }

    #[test]
    fn perpendicular_dihedral_sign() {
        let sys = four_atom_system([
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
        ]);
        let phi = sys.named_dihedral_angle("phi").unwrap();
        assert!((phi.abs() - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
    }

    #[test]
    fn maxwell_boltzmann_temperature_is_close() {
        let topology =
            Topology { atoms: vec![Atom::lj(18.0, 0.15, 3.2); 2000], ..Default::default() };
        let state = State::zeros(2000);
        let mut sys = System::new(topology, PbcBox::cubic(50.0), state).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        let t = sys.instantaneous_temperature();
        assert!((t - 300.0).abs() < 15.0, "T = {t}");
    }

    #[test]
    fn com_motion_removed() {
        let topology = Topology { atoms: vec![Atom::lj(10.0, 0.1, 3.0); 50], ..Default::default() };
        let mut sys = System::new(topology, PbcBox::VACUUM, State::zeros(50)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        sys.assign_maxwell_boltzmann(500.0, &mut rng);
        let p: Vec3 =
            sys.topology.atoms.iter().zip(&sys.state.velocities).map(|(a, v)| *v * a.mass).sum();
        assert!(p.norm() < 1e-9, "residual momentum {}", p.norm());
    }

    #[test]
    fn new_rejects_mismatched_sizes() {
        let topology = Topology { atoms: vec![Atom::lj(1.0, 0.1, 3.0); 3], ..Default::default() };
        assert!(System::new(topology, PbcBox::VACUUM, State::zeros(2)).is_err());
    }
}
