//! Minimal 3-component vector used for positions, velocities and forces.
//!
//! We deliberately avoid pulling in a linear-algebra crate: the MD substrate
//! only needs component-wise arithmetic, dot/cross products and norms, and a
//! `#[repr(C)]` POD layout so slices of `Vec3` can be treated as flat `f64`
//! buffers by the parallel engines.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Index, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 3-vector of `f64`, the only floating-point width used by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// All components set to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3::new(v, v, v)
    }

    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Unit vector in the direction of `self`; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// True if every component is finite (guards integrator blow-ups).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.min(rhs.x), self.y.min(rhs.y), self.z.min(rhs.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x.max(rhs.x), self.y.max(rhs.y), self.z.max(rhs.z))
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        assert_eq!(a + b, Vec3::new(5.0, 1.0, 3.5));
        assert_eq!(a - b, Vec3::new(-3.0, 3.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        let z = Vec3::new(0.0, 0.0, 1.0);
        assert!(close(x.dot(y), 0.0));
        assert_eq!(x.cross(y), z);
        assert_eq!(y.cross(z), x);
        assert_eq!(z.cross(x), y);
    }

    #[test]
    fn norms_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert!(close(v.norm(), 5.0));
        assert!(close(v.norm_sq(), 25.0));
        assert!(close(v.distance(Vec3::ZERO), 5.0));
        let u = v.normalized().unwrap();
        assert!(close(u.norm(), 1.0));
        assert!(Vec3::ZERO.normalized().is_none());
    }

    #[test]
    fn assign_ops_and_sum() {
        let mut v = Vec3::new(1.0, 1.0, 1.0);
        v += Vec3::splat(1.0);
        v -= Vec3::new(0.0, 1.0, 0.0);
        v *= 3.0;
        v /= 2.0;
        assert_eq!(v, Vec3::new(3.0, 1.5, 3.0));
        let total: Vec3 = [Vec3::splat(1.0), Vec3::splat(2.0)].into_iter().sum();
        assert_eq!(total, Vec3::splat(3.0));
    }

    #[test]
    fn indexing() {
        let v = Vec3::new(7.0, 8.0, 9.0);
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 8.0);
        assert_eq!(v[2], 9.0);
    }

    #[test]
    #[should_panic]
    fn index_out_of_range_panics() {
        let _ = Vec3::ZERO[3];
    }

    proptest! {
        #[test]
        fn cross_is_orthogonal(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            let c = a.cross(b);
            // |a.c| should be tiny relative to the magnitudes involved.
            let scale = (a.norm() * b.norm()).max(1.0);
            prop_assert!((c.dot(a)).abs() <= 1e-6 * scale * scale);
            prop_assert!((c.dot(b)).abs() <= 1e-6 * scale * scale);
        }

        #[test]
        fn triangle_inequality(ax in -1e3f64..1e3, ay in -1e3f64..1e3, az in -1e3f64..1e3,
                               bx in -1e3f64..1e3, by in -1e3f64..1e3, bz in -1e3f64..1e3) {
            let a = Vec3::new(ax, ay, az);
            let b = Vec3::new(bx, by, bz);
            prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
        }
    }
}
