//! Energy minimization (steepest descent with backtracking line search).
//!
//! Real REMD workflows minimize each replica's initial structure before
//! heating ("Each replica was previously equilibrated", Section 3.4 — and
//! equilibration protocols start from a minimized structure). The engines
//! expose this through [`crate::engine`]'s job preparation, and model
//! builders use it to relax solvated systems before dynamics.

use crate::forcefield::{EvalContext, ForceField};
use crate::system::System;
use crate::vec3::Vec3;

/// Result of a minimization run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimizeResult {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Potential energy before.
    pub initial_energy: f64,
    /// Potential energy after.
    pub final_energy: f64,
    /// RMS force at exit (kcal/mol/Å).
    pub rms_force: f64,
    /// Whether the force-tolerance criterion was met.
    pub converged: bool,
}

/// Steepest-descent minimization with a backtracking line search.
///
/// Stops when the RMS force drops below `f_tol` (kcal/mol/Å) or after
/// `max_iter` iterations. Robust rather than fast — exactly what relaxing a
/// clashy starting structure needs.
pub fn minimize(
    system: &mut System,
    ff: &ForceField,
    max_iter: usize,
    f_tol: f64,
) -> MinimizeResult {
    let n = system.n_atoms();
    let mut ctx = EvalContext::new();
    let mut forces = vec![Vec3::ZERO; n];
    let mut trial_forces = vec![Vec3::ZERO; n];
    let mut e = ff.energy_forces_ctx(system, &mut ctx, &mut forces).total();
    let initial_energy = e;
    let mut step: f64 = 1e-4; // Å per unit force, adapted by the line search
    let mut iterations = 0;
    let mut rms = rms_force(&forces);

    for _ in 0..max_iter {
        if rms < f_tol {
            break;
        }
        iterations += 1;
        // Trial move along the force direction.
        let backup: Vec<Vec3> = system.state.positions.clone();
        // Cap the largest per-atom displacement at 0.2 Å for stability.
        let fmax = forces.iter().map(|f| f.norm()).fold(0.0f64, f64::max).max(1e-12);
        let scale = step.min(0.2 / fmax);
        for (p, f) in system.state.positions.iter_mut().zip(&forces) {
            *p += *f * scale;
        }
        let e_new = ff.energy_forces_ctx(system, &mut ctx, &mut trial_forces).total();
        if e_new < e {
            // Accept and be slightly more ambitious next time.
            e = e_new;
            std::mem::swap(&mut forces, &mut trial_forces);
            rms = rms_force(&forces);
            step *= 1.2;
        } else {
            // Reject: restore and shrink.
            system.state.positions = backup;
            step *= 0.5;
            if step < 1e-12 {
                break; // line search collapsed; forces are as good as it gets
            }
        }
    }
    MinimizeResult {
        iterations,
        initial_energy,
        final_energy: e,
        rms_force: rms,
        converged: rms < f_tol,
    }
}

fn rms_force(forces: &[Vec3]) -> f64 {
    if forces.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = forces.iter().map(|f| f.norm_sq()).sum();
    (sum_sq / forces.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{alanine_dipeptide, dipeptide_forcefield, lj_fluid, lj_forcefield};

    #[test]
    fn minimization_lowers_energy_and_forces() {
        let mut sys = alanine_dipeptide();
        let ff = dipeptide_forcefield();
        let before = ff.energy(&sys).total();
        let result = minimize(&mut sys, &ff, 2000, 0.5);
        assert!(result.final_energy < before, "{result:?}");
        assert!(result.final_energy <= result.initial_energy);
        assert!(result.rms_force < 5.0, "forces relaxed: {result:?}");
        assert!(sys.state.is_finite());
    }

    #[test]
    fn minimized_structure_is_near_stationary() {
        let mut sys = alanine_dipeptide();
        let ff = dipeptide_forcefield();
        let result = minimize(&mut sys, &ff, 20_000, 0.05);
        assert!(result.converged, "{result:?}");
        assert!(result.rms_force < 0.05);
    }

    #[test]
    fn already_minimized_system_converges_immediately() {
        let mut sys = alanine_dipeptide();
        let ff = dipeptide_forcefield();
        minimize(&mut sys, &ff, 20_000, 0.05);
        let again = minimize(&mut sys, &ff, 100, 0.05);
        assert!(again.converged);
        assert_eq!(again.iterations, 0, "no work when already at tolerance");
    }

    #[test]
    fn relaxes_a_clashy_fluid() {
        // Dense LJ fluid with lattice jitter: minimization must remove the
        // worst contacts (energy strictly decreases, no blow-up).
        let mut sys = lj_fluid(64, 0.9, 3);
        let ff = lj_forcefield();
        let before = ff.energy(&sys).total();
        let result = minimize(&mut sys, &ff, 500, 1.0);
        assert!(result.final_energy < before);
        assert!(sys.state.is_finite());
    }

    #[test]
    fn energy_never_increases_across_iterations() {
        // The accept/reject line search guarantees monotone energies; verify
        // via two successive short runs.
        let mut sys = lj_fluid(27, 0.8, 4);
        let ff = lj_forcefield();
        let r1 = minimize(&mut sys, &ff, 50, 1e-9);
        let r2 = minimize(&mut sys, &ff, 50, 1e-9);
        assert!(r2.initial_energy <= r1.final_energy + 1e-9);
        assert!(r2.final_energy <= r2.initial_energy + 1e-9);
    }
}
