//! Amber-style `mdin` control files and `DISANG` restraint files.
//!
//! RepEx's Amber AMM writes an `mdin` namelist per replica per cycle (with
//! the replica's current temperature / salt concentration) and, for umbrella
//! windows, a `DISANG` restraint file. We implement the same formats so the
//! framework's file-preparation path is exercised for real.
//!
//! Supported `&cntrl` subset: `nstlim`, `dt`, `temp0`, `gamma_ln`, `ig`,
//! `saltcon`, `cut`, `ntpr`. A `DISANG=<file>` line after the namelist
//! names the restraint file.

use std::fmt::Write as _;

/// Parsed `&cntrl` namelist.
#[derive(Debug, Clone, PartialEq)]
pub struct MdinControl {
    /// Number of MD steps.
    pub nstlim: u64,
    /// Time step in ps.
    pub dt: f64,
    /// Target temperature in K.
    pub temp0: f64,
    /// Langevin collision frequency in ps⁻¹.
    pub gamma_ln: f64,
    /// RNG seed.
    pub ig: u64,
    /// Salt concentration in mol/L.
    pub saltcon: f64,
    /// Solvent pH (Amber's constant-pH `solvph` keyword).
    pub solvph: f64,
    /// Nonbonded cutoff in Å.
    pub cut: f64,
    /// Print frequency.
    pub ntpr: u64,
    /// Restraint file referenced by `DISANG=`.
    pub disang: Option<String>,
}

impl Default for MdinControl {
    fn default() -> Self {
        MdinControl {
            nstlim: 1000,
            dt: 0.002,
            temp0: 300.0,
            gamma_ln: 5.0,
            ig: 1,
            saltcon: 0.0,
            solvph: 7.0,
            cut: 9.0,
            ntpr: 100,
            disang: None,
        }
    }
}

/// Errors from parsing the Amber-style input files.
#[derive(Debug, Clone, PartialEq)]
pub enum MdinError {
    MissingNamelist(&'static str),
    BadValue { key: String, value: String },
    Malformed(String),
}

impl std::fmt::Display for MdinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdinError::MissingNamelist(n) => write!(f, "missing &{n} namelist"),
            MdinError::BadValue { key, value } => write!(f, "bad value for {key}: {value:?}"),
            MdinError::Malformed(s) => write!(f, "malformed input: {s}"),
        }
    }
}

impl std::error::Error for MdinError {}

impl MdinControl {
    /// Render as an Amber mdin file with a title line.
    pub fn render(&self, title: &str) -> String {
        let mut s = String::with_capacity(256);
        let _ = writeln!(s, "{title}");
        let _ = writeln!(s, " &cntrl");
        let _ = writeln!(s, "  nstlim = {}, dt = {:.5},", self.nstlim, self.dt);
        let _ = writeln!(s, "  temp0 = {:.3}, gamma_ln = {:.3},", self.temp0, self.gamma_ln);
        let _ = writeln!(s, "  ig = {}, ntpr = {},", self.ig, self.ntpr);
        let _ = writeln!(
            s,
            "  saltcon = {:.4}, solvph = {:.3}, cut = {:.2},",
            self.saltcon, self.solvph, self.cut
        );
        let _ = writeln!(s, " /");
        if let Some(d) = &self.disang {
            let _ = writeln!(s, "DISANG={d}");
        }
        s
    }

    /// Parse an mdin file (title line is ignored).
    pub fn parse(text: &str) -> Result<Self, MdinError> {
        let body = extract_namelist(text, "cntrl").ok_or(MdinError::MissingNamelist("cntrl"))?;
        let kv = parse_kv(&body)?;
        let mut ctl = MdinControl::default();
        for (key, value) in &kv {
            match key.as_str() {
                "nstlim" => ctl.nstlim = parse_num(key, value)?,
                "dt" => ctl.dt = parse_float(key, value)?,
                "temp0" => ctl.temp0 = parse_float(key, value)?,
                "gamma_ln" => ctl.gamma_ln = parse_float(key, value)?,
                "ig" => ctl.ig = parse_num(key, value)?,
                "saltcon" => ctl.saltcon = parse_float(key, value)?,
                "solvph" => ctl.solvph = parse_float(key, value)?,
                "cut" => ctl.cut = parse_float(key, value)?,
                "ntpr" => ctl.ntpr = parse_num(key, value)?,
                _ => {} // unknown keys tolerated, like sander
            }
        }
        for line in text.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("DISANG=") {
                ctl.disang = Some(rest.trim().to_string());
            }
        }
        Ok(ctl)
    }
}

/// One `&rst` record of a DISANG file: a harmonic dihedral restraint.
#[derive(Debug, Clone, PartialEq)]
pub struct DisangRestraint {
    /// 1-based atom indices (Amber convention).
    pub iat: [u32; 4],
    /// Restraint center in degrees.
    pub r2: f64,
    /// Force constant in kcal/mol/deg².
    pub rk2: f64,
}

/// Render a DISANG file from restraint records.
pub fn render_disang(restraints: &[DisangRestraint]) -> String {
    let mut s = String::new();
    for r in restraints {
        let _ = writeln!(
            s,
            " &rst iat={},{},{},{}, r2={:.4}, rk2={:.6}, /",
            r.iat[0], r.iat[1], r.iat[2], r.iat[3], r.r2, r.rk2
        );
    }
    s
}

/// Parse a DISANG file.
pub fn parse_disang(text: &str) -> Result<Vec<DisangRestraint>, MdinError> {
    let mut out = Vec::new();
    let mut search = text;
    while let Some(start) = search.find("&rst") {
        let rest = &search[start + 4..];
        let end = rest
            .find('/')
            .ok_or_else(|| MdinError::Malformed("unterminated &rst record".into()))?;
        let body = &rest[..end];
        let kv = parse_kv(body)?;
        let mut iat = None;
        let mut r2 = None;
        let mut rk2 = None;
        for (key, value) in &kv {
            match key.as_str() {
                "iat" => {
                    let parts: Vec<u32> = value
                        .split(',')
                        .map(|p| p.trim().parse::<u32>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| MdinError::BadValue {
                            key: key.clone(),
                            value: value.clone(),
                        })?;
                    if parts.len() != 4 {
                        return Err(MdinError::BadValue { key: key.clone(), value: value.clone() });
                    }
                    iat = Some([parts[0], parts[1], parts[2], parts[3]]);
                }
                "r2" => r2 = Some(parse_float(key, value)?),
                "rk2" => rk2 = Some(parse_float(key, value)?),
                _ => {}
            }
        }
        match (iat, r2, rk2) {
            (Some(iat), Some(r2), Some(rk2)) => out.push(DisangRestraint { iat, r2, rk2 }),
            _ => return Err(MdinError::Malformed("&rst record missing iat/r2/rk2".into())),
        }
        search = &rest[end + 1..];
    }
    Ok(out)
}

/// Extract the body between `&name` and the terminating `/`.
fn extract_namelist(text: &str, name: &str) -> Option<String> {
    let tag = format!("&{name}");
    let start = text.find(&tag)? + tag.len();
    let rest = &text[start..];
    let end = rest.find('/')?;
    Some(rest[..end].to_string())
}

/// Parse `key = value` pairs separated by commas/newlines. Values containing
/// commas (like `iat=1,2,3,4`) are supported: digits following `key=` are
/// grouped until the next `key=` token.
fn parse_kv(body: &str) -> Result<Vec<(String, String)>, MdinError> {
    let mut out: Vec<(String, String)> = Vec::new();
    // Tokenize on '=' boundaries: everything before the first '=' is a key;
    // each subsequent segment holds "value[, nextkey]".
    let segments: Vec<&str> = body.split('=').collect();
    if segments.len() < 2 {
        return Ok(out);
    }
    let mut key = segments[0].trim().trim_start_matches(',').trim().to_string();
    for (i, seg) in segments[1..].iter().enumerate() {
        let is_last = i == segments.len() - 2;
        if is_last {
            out.push((normalize_key(&key)?, seg.trim().trim_end_matches(',').trim().to_string()));
        } else {
            // The trailing word of this segment is the next key.
            let seg_trim = seg.trim_end();
            let cut = seg_trim
                .rfind(|c: char| c == ',' || c.is_whitespace())
                .ok_or_else(|| MdinError::Malformed(format!("cannot split {seg_trim:?}")))?;
            let (value, next_key) = seg_trim.split_at(cut);
            out.push((normalize_key(&key)?, value.trim().trim_end_matches(',').trim().to_string()));
            key = next_key.trim_start_matches(|c: char| c == ',' || c.is_whitespace()).to_string();
        }
    }
    Ok(out)
}

fn normalize_key(key: &str) -> Result<String, MdinError> {
    let k = key.trim().to_ascii_lowercase();
    if k.is_empty() || !k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Err(MdinError::Malformed(format!("bad key {key:?}")));
    }
    Ok(k)
}

fn parse_num(key: &str, value: &str) -> Result<u64, MdinError> {
    value
        .trim()
        .parse::<f64>()
        .ok()
        .filter(|v| *v >= 0.0 && v.fract() == 0.0)
        .map(|v| v as u64)
        .ok_or_else(|| MdinError::BadValue { key: key.to_string(), value: value.to_string() })
}

fn parse_float(key: &str, value: &str) -> Result<f64, MdinError> {
    value
        .trim()
        .parse::<f64>()
        .map_err(|_| MdinError::BadValue { key: key.to_string(), value: value.to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mdin() {
        let ctl = MdinControl {
            nstlim: 6000,
            dt: 0.002,
            temp0: 329.0,
            gamma_ln: 5.0,
            ig: 987,
            saltcon: 0.5,
            solvph: 5.5,
            cut: 9.0,
            ntpr: 500,
            disang: Some("replica_12.RST".into()),
        };
        let text = ctl.render("U-REMD cycle 4 replica 12");
        let back = MdinControl::parse(&text).unwrap();
        assert_eq!(back, ctl);
    }

    #[test]
    fn parse_handcrafted_mdin() {
        let text = "\
production
 &cntrl
  nstlim = 20000, dt = 0.002,
  temp0 = 273.0,
  gamma_ln = 2.0, ig = 42, saltcon = 0.15, cut = 10.0, ntpr = 1000,
 /
";
        let ctl = MdinControl::parse(text).unwrap();
        assert_eq!(ctl.nstlim, 20000);
        assert_eq!(ctl.temp0, 273.0);
        assert_eq!(ctl.saltcon, 0.15);
        assert_eq!(ctl.disang, None);
    }

    #[test]
    fn missing_namelist_is_error() {
        assert_eq!(MdinControl::parse("just a title\n"), Err(MdinError::MissingNamelist("cntrl")));
    }

    #[test]
    fn bad_value_is_error() {
        let text = " &cntrl\n nstlim = banana,\n /";
        assert!(matches!(MdinControl::parse(text), Err(MdinError::BadValue { .. })));
    }

    #[test]
    fn unknown_keys_tolerated() {
        let text = " &cntrl\n ntx = 5, irest = 1, nstlim = 10,\n /";
        let ctl = MdinControl::parse(text).unwrap();
        assert_eq!(ctl.nstlim, 10);
    }

    #[test]
    fn disang_roundtrip() {
        let rs = vec![
            DisangRestraint { iat: [2, 3, 4, 5], r2: 60.0, rk2: 0.02 },
            DisangRestraint { iat: [3, 4, 5, 6], r2: -135.0, rk2: 0.02 },
        ];
        let text = render_disang(&rs);
        let back = parse_disang(&text).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn disang_rejects_incomplete_record() {
        assert!(parse_disang(" &rst iat=1,2,3,4, /").is_err());
        assert!(parse_disang(" &rst r2=10.0, rk2=0.1").is_err()); // unterminated
    }

    #[test]
    fn disang_empty_input() {
        assert_eq!(parse_disang("").unwrap(), vec![]);
    }
}
