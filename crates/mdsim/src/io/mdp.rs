//! GROMACS-style `.mdp` run-parameter files.
//!
//! A third genuinely different input format (`key = value` with `;`
//! comments), for the GROMACS engine family. Supported subset mirrors what
//! the REMD workflow needs: `integrator` (must be `sd`, GROMACS's Langevin),
//! `nsteps`, `dt` (ps), `ref-t`, `tau-t` (ps; friction = 1/tau), `ld-seed`,
//! `rcoulomb`. Extensions (documented as such): `salt-concentration`,
//! `solvent-ph`, and `dihres = <name> <center_deg> <k>` lines standing in
//! for GROMACS's dihedral-restraint `.itp` sections.

use std::fmt::Write as _;

/// Parsed `.mdp` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MdpConfig {
    pub nsteps: u64,
    /// Time step in ps (GROMACS convention).
    pub dt: f64,
    /// Reference temperature in K.
    pub ref_t: f64,
    /// Temperature-coupling time constant in ps (friction = 1/tau_t).
    pub tau_t: f64,
    pub ld_seed: u64,
    /// Coulomb cutoff in nm (GROMACS uses nanometres!).
    pub rcoulomb_nm: f64,
    pub salt_concentration: f64,
    pub solvent_ph: f64,
    /// Dihedral restraints: (name, center deg, k kcal/mol/deg²).
    pub dihres: Vec<(String, f64, f64)>,
}

impl Default for MdpConfig {
    fn default() -> Self {
        MdpConfig {
            nsteps: 1000,
            dt: 0.002,
            ref_t: 300.0,
            tau_t: 0.2,
            ld_seed: 1,
            rcoulomb_nm: 0.9,
            salt_concentration: 0.0,
            solvent_ph: 7.0,
            dihres: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct MdpError(pub String);

impl std::fmt::Display for MdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mdp error: {}", self.0)
    }
}

impl std::error::Error for MdpError {}

impl MdpConfig {
    /// Langevin friction in ps⁻¹ (GROMACS sd: gamma = 1/tau_t).
    pub fn gamma_ps(&self) -> f64 {
        1.0 / self.tau_t
    }

    /// Coulomb cutoff in Å (internal convention).
    pub fn rcoulomb_angstrom(&self) -> f64 {
        self.rcoulomb_nm * 10.0
    }

    pub fn render(&self) -> String {
        let mut s = String::with_capacity(360);
        let _ = writeln!(s, "; GROMACS run parameters (generated)");
        let _ = writeln!(s, "integrator          = sd");
        let _ = writeln!(s, "nsteps              = {}", self.nsteps);
        let _ = writeln!(s, "dt                  = {}", self.dt);
        let _ = writeln!(s, "ref-t               = {}", self.ref_t);
        let _ = writeln!(s, "tau-t               = {}", self.tau_t);
        let _ = writeln!(s, "ld-seed             = {}", self.ld_seed);
        let _ = writeln!(s, "rcoulomb            = {}", self.rcoulomb_nm);
        let _ = writeln!(s, "; repex extensions below");
        let _ = writeln!(s, "salt-concentration  = {}", self.salt_concentration);
        let _ = writeln!(s, "solvent-ph          = {}", self.solvent_ph);
        for (name, center, k) in &self.dihres {
            let _ = writeln!(s, "dihres              = {name} {center} {k}");
        }
        s
    }

    pub fn parse(text: &str) -> Result<Self, MdpError> {
        let mut cfg = MdpConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split(';').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| MdpError(format!("line {}: expected key = value", lineno + 1)))?;
            let key = key.trim().to_ascii_lowercase().replace('_', "-");
            let value = value.trim();
            let parse_f = |v: &str| {
                v.parse::<f64>()
                    .map_err(|_| MdpError(format!("line {}: bad number {v:?}", lineno + 1)))
            };
            match key.as_str() {
                "integrator" => {
                    if value != "sd" {
                        return Err(MdpError(format!(
                            "line {}: only the sd (Langevin) integrator is supported, got {value:?}",
                            lineno + 1
                        )));
                    }
                }
                "nsteps" => cfg.nsteps = parse_f(value)? as u64,
                "dt" => cfg.dt = parse_f(value)?,
                "ref-t" => cfg.ref_t = parse_f(value)?,
                "tau-t" => cfg.tau_t = parse_f(value)?,
                "ld-seed" => cfg.ld_seed = parse_f(value)? as u64,
                "rcoulomb" => cfg.rcoulomb_nm = parse_f(value)?,
                "salt-concentration" => cfg.salt_concentration = parse_f(value)?,
                "solvent-ph" => cfg.solvent_ph = parse_f(value)?,
                "dihres" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() != 3 {
                        return Err(MdpError(format!(
                            "line {}: dihres expects <name> <center> <k>",
                            lineno + 1
                        )));
                    }
                    cfg.dihres.push((parts[0].to_string(), parse_f(parts[1])?, parse_f(parts[2])?));
                }
                other => {
                    return Err(MdpError(format!("line {}: unknown key {other:?}", lineno + 1)))
                }
            }
        }
        if cfg.tau_t <= 0.0 {
            return Err(MdpError("tau-t must be positive".into()));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cfg = MdpConfig {
            nsteps: 6000,
            dt: 0.002,
            ref_t: 329.0,
            tau_t: 0.5,
            ld_seed: 77,
            rcoulomb_nm: 1.0,
            salt_concentration: 0.15,
            solvent_ph: 6.0,
            dihres: vec![("phi".into(), 60.0, 0.02)],
        };
        let back = MdpConfig::parse(&cfg.render()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn units_are_gromacs_flavoured() {
        let cfg = MdpConfig::parse("tau-t = 0.5\nrcoulomb = 0.9\n").unwrap();
        assert!((cfg.gamma_ps() - 2.0).abs() < 1e-12, "gamma = 1/tau");
        assert!((cfg.rcoulomb_angstrom() - 9.0).abs() < 1e-12, "nm -> A");
    }

    #[test]
    fn comments_and_underscores() {
        let text = "; a comment\nref_t = 310 ; inline\nnsteps = 42\n";
        let cfg = MdpConfig::parse(text).unwrap();
        assert_eq!(cfg.ref_t, 310.0);
        assert_eq!(cfg.nsteps, 42);
    }

    #[test]
    fn rejects_non_sd_integrator() {
        assert!(MdpConfig::parse("integrator = md\n").is_err());
        assert!(MdpConfig::parse("integrator = sd\n").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(MdpConfig::parse("nsteps 1000\n").is_err(), "missing =");
        assert!(MdpConfig::parse("nsteps = banana\n").is_err());
        assert!(MdpConfig::parse("pme-order = 4\n").is_err(), "unknown key");
        assert!(MdpConfig::parse("dihres = phi 60\n").is_err(), "arity");
        assert!(MdpConfig::parse("tau-t = 0\n").is_err());
    }
}
