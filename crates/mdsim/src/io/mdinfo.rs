//! Amber-style `mdinfo` energy summaries.
//!
//! The paper's exchange phase stages each replica's `.mdinfo` file to a
//! shared staging area; the exchange calculators parse energies out of them.
//! Our RAM does exactly the same with this format.

use crate::forcefield::EnergyBreakdown;
use std::fmt::Write as _;

/// Parsed energy record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MdInfo {
    pub nstep: u64,
    pub time_ps: f64,
    pub temperature: f64,
    pub etot: f64,
    pub ektot: f64,
    pub eptot: f64,
    pub bond: f64,
    pub angle: f64,
    pub dihed: f64,
    pub vdwaals: f64,
    pub eel: f64,
    pub restraint: f64,
}

impl MdInfo {
    pub fn from_breakdown(
        nstep: u64,
        time_ps: f64,
        temperature: f64,
        kinetic: f64,
        e: &EnergyBreakdown,
    ) -> Self {
        MdInfo {
            nstep,
            time_ps,
            temperature,
            etot: e.total() + kinetic,
            ektot: kinetic,
            eptot: e.total(),
            bond: e.bond,
            angle: e.angle,
            dihed: e.torsion,
            vdwaals: e.lj,
            eel: e.coulomb,
            restraint: e.restraint,
        }
    }

    /// Potential energy without the restraint term (used by T-exchange).
    pub fn physical_potential(&self) -> f64 {
        self.eptot - self.restraint
    }

    pub fn render(&self) -> String {
        let mut s = String::with_capacity(512);
        let _ = writeln!(
            s,
            " NSTEP = {:>10}   TIME(PS) = {:>12.3}  TEMP(K) = {:>8.2}",
            self.nstep, self.time_ps, self.temperature
        );
        let _ = writeln!(
            s,
            " Etot   = {:>14.4}  EKtot   = {:>14.4}  EPtot      = {:>14.4}",
            self.etot, self.ektot, self.eptot
        );
        let _ = writeln!(
            s,
            " BOND   = {:>14.4}  ANGLE   = {:>14.4}  DIHED      = {:>14.4}",
            self.bond, self.angle, self.dihed
        );
        let _ = writeln!(
            s,
            " VDWAALS= {:>14.4}  EEL     = {:>14.4}  RESTRAINT  = {:>14.4}",
            self.vdwaals, self.eel, self.restraint
        );
        s
    }

    pub fn parse(text: &str) -> Result<Self, String> {
        let grab = |key: &str| -> Result<f64, String> {
            // Find "KEY" then the next '=' then the number.
            let pos = text.find(key).ok_or_else(|| format!("missing field {key}"))?;
            let rest = &text[pos + key.len()..];
            let eq = rest.find('=').ok_or_else(|| format!("missing '=' after {key}"))?;
            rest[eq + 1..]
                .split_whitespace()
                .next()
                .ok_or_else(|| format!("missing value for {key}"))?
                .parse::<f64>()
                .map_err(|e| format!("bad value for {key}: {e}"))
        };
        Ok(MdInfo {
            nstep: grab("NSTEP")? as u64,
            time_ps: grab("TIME(PS)")?,
            temperature: grab("TEMP(K)")?,
            etot: grab("Etot")?,
            ektot: grab("EKtot")?,
            eptot: grab("EPtot")?,
            bond: grab("BOND")?,
            angle: grab("ANGLE")?,
            dihed: grab("DIHED")?,
            vdwaals: grab("VDWAALS")?,
            eel: grab("EEL")?,
            restraint: grab("RESTRAINT")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MdInfo {
        let e = EnergyBreakdown {
            bond: 12.5,
            angle: 8.25,
            torsion: 4.0,
            lj: -35.75,
            coulomb: -120.0,
            restraint: 2.5,
        };
        MdInfo::from_breakdown(6000, 12.0, 297.31, 55.5, &e)
    }

    #[test]
    fn roundtrip() {
        let info = sample();
        let back = MdInfo::parse(&info.render()).unwrap();
        assert_eq!(back.nstep, 6000);
        assert!((back.eptot - info.eptot).abs() < 1e-3);
        assert!((back.restraint - 2.5).abs() < 1e-3);
        assert!((back.temperature - 297.31).abs() < 1e-2);
    }

    #[test]
    fn totals_are_consistent() {
        let info = sample();
        assert!((info.etot - (info.ektot + info.eptot)).abs() < 1e-9);
        let parts = info.bond + info.angle + info.dihed + info.vdwaals + info.eel + info.restraint;
        assert!((info.eptot - parts).abs() < 1e-9);
        assert!((info.physical_potential() - (info.eptot - info.restraint)).abs() < 1e-12);
    }

    #[test]
    fn missing_field_is_error() {
        let text = sample().render().replace("EEL", "XXX");
        assert!(MdInfo::parse(&text).is_err());
    }

    #[test]
    fn parse_negative_energies() {
        let info = sample();
        let back = MdInfo::parse(&info.render()).unwrap();
        assert!(back.eel < 0.0);
        assert!(back.vdwaals < 0.0);
    }
}
