//! NAMD-style configuration files.
//!
//! NAMD uses a Tcl-flavoured `keyword value` format rather than Fortran
//! namelists; keeping the two engine input formats genuinely different is
//! part of what the paper's AMM abstraction is for. Supported subset:
//! `numsteps`, `timestep` (fs!), `temperature`, `langevinDamping`, `seed`,
//! `cutoff`, `saltConcentration`, `outputEnergies`, plus `colvars`-style
//! harmonic dihedral restraint blocks.

use std::fmt::Write as _;

/// Parsed NAMD configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NamdConfig {
    pub numsteps: u64,
    /// Time step in femtoseconds (NAMD convention).
    pub timestep_fs: f64,
    pub temperature: f64,
    /// Langevin damping coefficient in ps⁻¹.
    pub langevin_damping: f64,
    pub seed: u64,
    pub cutoff: f64,
    pub salt_concentration: f64,
    /// Solvent pH (our constant-pH extension keyword `solventPH`).
    pub solvent_ph: f64,
    pub output_energies: u64,
    /// Harmonic dihedral restraints: (dihedral name, center deg, k).
    pub restraints: Vec<(String, f64, f64)>,
}

impl Default for NamdConfig {
    fn default() -> Self {
        NamdConfig {
            numsteps: 1000,
            timestep_fs: 2.0,
            temperature: 300.0,
            langevin_damping: 5.0,
            seed: 1,
            cutoff: 9.0,
            salt_concentration: 0.0,
            solvent_ph: 7.0,
            output_energies: 100,
            restraints: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct NamdConfError(pub String);

impl std::fmt::Display for NamdConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "namd config error: {}", self.0)
    }
}

impl std::error::Error for NamdConfError {}

impl NamdConfig {
    /// Time step in ps (internal convention).
    pub fn dt_ps(&self) -> f64 {
        self.timestep_fs * 1e-3
    }

    pub fn render(&self) -> String {
        let mut s = String::with_capacity(256);
        let _ = writeln!(s, "# NAMD configuration (generated)");
        let _ = writeln!(s, "numsteps            {}", self.numsteps);
        let _ = writeln!(s, "timestep            {}", self.timestep_fs);
        let _ = writeln!(s, "temperature         {}", self.temperature);
        let _ = writeln!(s, "langevinDamping     {}", self.langevin_damping);
        let _ = writeln!(s, "seed                {}", self.seed);
        let _ = writeln!(s, "cutoff              {}", self.cutoff);
        let _ = writeln!(s, "saltConcentration   {}", self.salt_concentration);
        let _ = writeln!(s, "solventPH           {}", self.solvent_ph);
        let _ = writeln!(s, "outputEnergies      {}", self.output_energies);
        for (name, center, k) in &self.restraints {
            let _ = writeln!(s, "harmonicDihedral    {name} {center} {k}");
        }
        s
    }

    pub fn parse(text: &str) -> Result<Self, NamdConfError> {
        let mut cfg = NamdConfig::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(first) = parts.next() else { continue };
            let key = first.to_ascii_lowercase();
            let rest: Vec<&str> = parts.collect();
            let one = |rest: &[&str]| -> Result<String, NamdConfError> {
                if rest.len() != 1 {
                    Err(NamdConfError(format!("line {}: {key} expects 1 value", lineno + 1)))
                } else {
                    Ok(rest[0].to_string())
                }
            };
            let parse_f = |v: &str| {
                v.parse::<f64>()
                    .map_err(|_| NamdConfError(format!("line {}: bad number {v:?}", lineno + 1)))
            };
            match key.as_str() {
                "numsteps" => cfg.numsteps = parse_f(&one(&rest)?)? as u64,
                "timestep" => cfg.timestep_fs = parse_f(&one(&rest)?)?,
                "temperature" => cfg.temperature = parse_f(&one(&rest)?)?,
                "langevindamping" => cfg.langevin_damping = parse_f(&one(&rest)?)?,
                "seed" => cfg.seed = parse_f(&one(&rest)?)? as u64,
                "cutoff" => cfg.cutoff = parse_f(&one(&rest)?)?,
                "saltconcentration" => cfg.salt_concentration = parse_f(&one(&rest)?)?,
                "solventph" => cfg.solvent_ph = parse_f(&one(&rest)?)?,
                "outputenergies" => cfg.output_energies = parse_f(&one(&rest)?)? as u64,
                "harmonicdihedral" => {
                    if rest.len() != 3 {
                        return Err(NamdConfError(format!(
                            "line {}: harmonicDihedral expects <name> <center> <k>",
                            lineno + 1
                        )));
                    }
                    cfg.restraints.push((
                        rest[0].to_string(),
                        parse_f(rest[1])?,
                        parse_f(rest[2])?,
                    ));
                }
                other => {
                    return Err(NamdConfError(format!(
                        "line {}: unknown keyword {other:?}",
                        lineno + 1
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let cfg = NamdConfig {
            numsteps: 4000,
            timestep_fs: 2.0,
            temperature: 350.0,
            langevin_damping: 5.0,
            seed: 314,
            cutoff: 10.0,
            salt_concentration: 0.15,
            solvent_ph: 6.2,
            output_energies: 500,
            restraints: vec![("phi".into(), 60.0, 0.02), ("psi".into(), -120.0, 0.02)],
        };
        let back = NamdConfig::parse(&cfg.render()).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# full-line comment\nnumsteps 10 # trailing comment\n\ntemperature 273\n";
        let cfg = NamdConfig::parse(text).unwrap();
        assert_eq!(cfg.numsteps, 10);
        assert_eq!(cfg.temperature, 273.0);
    }

    #[test]
    fn unknown_keyword_is_error() {
        assert!(NamdConfig::parse("pmegridspacing 1.0\n").is_err());
    }

    #[test]
    fn wrong_arity_is_error() {
        assert!(NamdConfig::parse("numsteps 1 2\n").is_err());
        assert!(NamdConfig::parse("harmonicDihedral phi 60.0\n").is_err());
    }

    #[test]
    fn timestep_units_are_femtoseconds() {
        let cfg = NamdConfig::parse("timestep 2.0\n").unwrap();
        assert!((cfg.dt_ps() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn case_insensitive_keywords() {
        let cfg = NamdConfig::parse("LangevinDamping 3.0\nCUTOFF 8.0\n").unwrap();
        assert_eq!(cfg.langevin_damping, 3.0);
        assert_eq!(cfg.cutoff, 8.0);
    }
}
