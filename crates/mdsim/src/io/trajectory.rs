//! Trajectory output in the XYZ text format (one frame per MD report
//! interval). XYZ is the simplest interoperable trajectory format — VMD,
//! OVITO and ASE all read it — and the natural choice for a text-staging
//! framework.

use crate::system::System;
use crate::vec3::Vec3;
use std::fmt::Write as _;

/// An in-memory XYZ trajectory writer.
#[derive(Debug, Clone, Default)]
pub struct XyzTrajectory {
    buffer: String,
    frames: usize,
}

impl XyzTrajectory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the system's current coordinates as one frame. The comment
    /// line carries the step and simulated time, Amber-style.
    pub fn add_frame(&mut self, system: &System) {
        let n = system.n_atoms();
        let _ = writeln!(self.buffer, "{n}");
        let _ =
            writeln!(self.buffer, "step={} time_ps={:.4}", system.state.step, system.state.time_ps);
        for (i, p) in system.state.positions.iter().enumerate() {
            // Element label: carbon for backbone atoms, oxygen for solvent
            // (cosmetic; downstream tools only need consistency).
            let label = if i < crate::models::BACKBONE_ATOMS { "C" } else { "O" };
            let _ = writeln!(self.buffer, "{label} {:12.6} {:12.6} {:12.6}", p.x, p.y, p.z);
        }
        self.frames += 1;
    }

    pub fn n_frames(&self) -> usize {
        self.frames
    }

    /// The accumulated XYZ text (stage this as `<base>.xyz`).
    pub fn as_text(&self) -> &str {
        &self.buffer
    }

    pub fn into_text(self) -> String {
        self.buffer
    }
}

/// A parsed XYZ frame.
#[derive(Debug, Clone, PartialEq)]
pub struct XyzFrame {
    pub step: u64,
    pub time_ps: f64,
    pub positions: Vec<Vec3>,
}

/// Parse XYZ text into frames.
pub fn parse_xyz(text: &str) -> Result<Vec<XyzFrame>, String> {
    let mut frames = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(count_line) = lines.next() {
        let count_line = count_line.trim();
        if count_line.is_empty() {
            continue;
        }
        let n: usize = count_line.parse().map_err(|_| format!("bad atom count {count_line:?}"))?;
        let comment = lines.next().ok_or("missing comment line")?;
        let mut step = 0u64;
        let mut time_ps = 0.0f64;
        for token in comment.split_whitespace() {
            if let Some(v) = token.strip_prefix("step=") {
                step = v.parse().map_err(|_| format!("bad step {v:?}"))?;
            } else if let Some(v) = token.strip_prefix("time_ps=") {
                time_ps = v.parse().map_err(|_| format!("bad time {v:?}"))?;
            }
        }
        let mut positions = Vec::with_capacity(n);
        for _ in 0..n {
            let line = lines.next().ok_or("truncated frame")?;
            let mut parts = line.split_whitespace();
            let _label = parts.next().ok_or("missing element label")?;
            let mut coord = |what: &str| -> Result<f64, String> {
                parts
                    .next()
                    .ok_or_else(|| format!("missing {what}"))?
                    .parse::<f64>()
                    .map_err(|e| format!("bad {what}: {e}"))
            };
            positions.push(Vec3::new(coord("x")?, coord("y")?, coord("z")?));
        }
        frames.push(XyzFrame { step, time_ps, positions });
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MdEngine, MdJob, SanderEngine};
    use crate::models::{alanine_dipeptide, dipeptide_forcefield};

    #[test]
    fn roundtrip_two_frames() {
        let sys = alanine_dipeptide();
        let mut traj = XyzTrajectory::new();
        traj.add_frame(&sys);
        let mut sys2 = sys.clone();
        sys2.state.step = 100;
        sys2.state.time_ps = 0.2;
        sys2.state.positions[0].x += 1.5;
        traj.add_frame(&sys2);

        assert_eq!(traj.n_frames(), 2);
        let frames = parse_xyz(traj.as_text()).unwrap();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].step, 100);
        assert!((frames[1].time_ps - 0.2).abs() < 1e-9);
        assert!((frames[1].positions[0].x - frames[0].positions[0].x - 1.5).abs() < 1e-5);
        assert_eq!(frames[0].positions.len(), sys.n_atoms());
    }

    #[test]
    fn records_an_actual_md_trajectory() {
        let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
        let mut sys = alanine_dipeptide();
        let mut traj = XyzTrajectory::new();
        traj.add_frame(&sys);
        for _ in 0..3 {
            engine.run(&mut sys, &MdJob { steps: 50, ..Default::default() }).unwrap();
            traj.add_frame(&sys);
        }
        let frames = parse_xyz(traj.as_text()).unwrap();
        assert_eq!(frames.len(), 4);
        assert_eq!(frames[3].step, 150);
        // Consecutive frames must differ (the system moved).
        assert_ne!(frames[0].positions, frames[1].positions);
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(parse_xyz("2\ncomment\nC 1 2 3\n").is_err(), "truncated");
        assert!(parse_xyz("x\ncomment\n").is_err(), "bad count");
        assert!(parse_xyz("1\nstep=abc\nC 1 2 3\n").is_err(), "bad step");
        assert!(parse_xyz("1\nc\nC 1 2\n").is_err(), "missing z");
        assert!(parse_xyz("").unwrap().is_empty());
    }
}
