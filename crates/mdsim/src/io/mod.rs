//! File formats staged between framework tasks.

pub mod mdin;
pub mod mdinfo;
pub mod mdp;
pub mod namdconf;
pub mod restart;
pub mod trajectory;
