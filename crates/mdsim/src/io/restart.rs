//! Amber-style restart files (`.rst7`, formatted).
//!
//! Format: a title line; a line with the atom count and the simulation time
//! in ps; coordinates (6 fixed-width `%15.7f` fields per line); velocities
//! in the same layout. (Amber's rst7 uses `%12.7f`; we widen to 15 so fields
//! can never run together for large coordinates.) This is the file the AMM
//! stages between MD cycles and that exchange winners swap.

use crate::system::State;
use crate::vec3::Vec3;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub struct RestartError(pub String);

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "restart file error: {}", self.0)
    }
}

impl std::error::Error for RestartError {}

/// Serialize a [`State`] to restart-file text.
pub fn write_restart(title: &str, state: &State) -> String {
    let n = state.n_atoms();
    let mut s = String::with_capacity(32 + n * 80);
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{n:6}{:15.7}", state.time_ps);
    write_triplets(&mut s, &state.positions);
    write_triplets(&mut s, &state.velocities);
    s
}

fn write_triplets(s: &mut String, vecs: &[Vec3]) {
    let mut fields = 0;
    for v in vecs {
        for c in [v.x, v.y, v.z] {
            let _ = write!(s, "{c:15.7}");
            fields += 1;
            if fields % 6 == 0 {
                s.push('\n');
            }
        }
    }
    if fields % 6 != 0 {
        s.push('\n');
    }
}

/// Parse restart-file text back into a [`State`] (step is not stored in the
/// format; callers track it separately, matching Amber).
pub fn read_restart(text: &str) -> Result<State, RestartError> {
    let mut lines = text.lines();
    let _title = lines.next().ok_or_else(|| RestartError("empty file".into()))?;
    let header = lines.next().ok_or_else(|| RestartError("missing header line".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| RestartError(format!("bad atom count in {header:?}")))?;
    let time_ps: f64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| RestartError(format!("bad time in {header:?}")))?;

    let rest: String = lines.collect::<Vec<_>>().join(" ");
    let values: Vec<f64> = rest
        .split_whitespace()
        .map(|t| t.parse::<f64>().map_err(|_| RestartError(format!("bad float {t:?}"))))
        .collect::<Result<_, _>>()?;
    if values.len() != 6 * n {
        return Err(RestartError(format!(
            "expected {} values for {n} atoms, found {}",
            6 * n,
            values.len()
        )));
    }
    let to_vecs = |vals: &[f64]| -> Vec<Vec3> {
        vals.chunks_exact(3).map(|c| Vec3::new(c[0], c[1], c[2])).collect()
    };
    Ok(State {
        positions: to_vecs(&values[..3 * n]),
        velocities: to_vecs(&values[3 * n..]),
        time_ps,
        step: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_state(n: usize) -> State {
        let mut st = State::zeros(n);
        for (i, p) in st.positions.iter_mut().enumerate() {
            *p = Vec3::new(i as f64 * 1.1, -(i as f64) * 0.3, 42.0 + i as f64);
        }
        for (i, v) in st.velocities.iter_mut().enumerate() {
            *v = Vec3::new(0.001 * i as f64, -0.002, 0.5);
        }
        st.time_ps = 12.5;
        st
    }

    #[test]
    fn roundtrip_exact_enough() {
        let st = sample_state(7);
        let text = write_restart("replica 3 cycle 9", &st);
        let back = read_restart(&text).unwrap();
        assert_eq!(back.n_atoms(), 7);
        assert!((back.time_ps - 12.5).abs() < 1e-6);
        for (a, b) in st.positions.iter().zip(&back.positions) {
            assert!((*a - *b).norm() < 1e-6);
        }
        for (a, b) in st.velocities.iter().zip(&back.velocities) {
            assert!((*a - *b).norm() < 1e-6);
        }
    }

    #[test]
    fn line_layout_is_six_fields() {
        let st = sample_state(4); // 12 coords = 2 lines of 6
        let text = write_restart("t", &st);
        let lines: Vec<&str> = text.lines().collect();
        // title + header + 2 coord lines + 2 vel lines
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[2].split_whitespace().count(), 6);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let st = sample_state(5);
        let text = write_restart("t", &st);
        let cut = &text[..text.len() - 30];
        assert!(read_restart(cut).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(read_restart("").is_err());
        assert!(read_restart("title\nnot_a_number 0.0\n").is_err());
        assert!(read_restart("title\n2 0.0\n1.0 2.0 x 4.0 5.0 6.0\n").is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random_states(n in 1usize..40, seed in 0u64..1000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut st = State::zeros(n);
            for p in &mut st.positions {
                *p = Vec3::new(rng.gen_range(-999.0..999.0), rng.gen_range(-999.0..999.0), rng.gen_range(-999.0..999.0));
            }
            for v in &mut st.velocities {
                *v = Vec3::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            }
            st.time_ps = rng.gen_range(0.0..1e4);
            let back = read_restart(&write_restart("x", &st)).unwrap();
            for (a, b) in st.positions.iter().zip(&back.positions) {
                prop_assert!((*a - *b).norm() < 1e-5);
            }
            for (a, b) in st.velocities.iter().zip(&back.velocities) {
                prop_assert!((*a - *b).norm() < 1e-5);
            }
        }
    }
}
