//! Amber-style restart files (`.rst7`, formatted).
//!
//! Format: a title line; a header line with the atom count, the simulation
//! time in ps, the integrator step and a campaign cycle counter; coordinates
//! (6 fixed-width scientific fields per line); velocities in the same
//! layout. Two deliberate departures from Amber's rst7: floats are written
//! with 17 significant digits, which round-trips every finite `f64` exactly
//! (campaign checkpoints serialize replica microstates through this format,
//! and a resumed run must continue bit-for-bit), and the header carries the
//! step/cycle counters that the classic format drops (readers accept old
//! two-field headers, parsing step = cycle = 0). This is the file the AMM
//! stages between MD cycles and that exchange winners swap.

use crate::system::State;
use crate::vec3::Vec3;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
pub struct RestartError(pub String);

impl std::fmt::Display for RestartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "restart file error: {}", self.0)
    }
}

impl std::error::Error for RestartError {}

/// Serialize a [`State`] to restart-file text (cycle recorded as 0).
pub fn write_restart(title: &str, state: &State) -> String {
    write_restart_with_cycle(title, state, 0)
}

/// Serialize a [`State`] to restart-file text, recording a campaign cycle
/// number (the replica's completed-segment count) alongside the step.
pub fn write_restart_with_cycle(title: &str, state: &State, cycle: u64) -> String {
    let n = state.n_atoms();
    let mut s = String::with_capacity(64 + n * 160);
    let _ = writeln!(s, "{title}");
    let _ = writeln!(s, "{n:6}{:25.16e} {} {}", state.time_ps, state.step, cycle);
    write_triplets(&mut s, &state.positions);
    write_triplets(&mut s, &state.velocities);
    s
}

fn write_triplets(s: &mut String, vecs: &[Vec3]) {
    let mut fields = 0;
    for v in vecs {
        for c in [v.x, v.y, v.z] {
            let _ = write!(s, "{c:25.16e}");
            fields += 1;
            if fields % 6 == 0 {
                s.push('\n');
            }
        }
    }
    if fields % 6 != 0 {
        s.push('\n');
    }
}

/// Parse restart-file text back into a [`State`] (the campaign cycle in the
/// header, if any, is discarded).
pub fn read_restart(text: &str) -> Result<State, RestartError> {
    read_restart_with_cycle(text).map(|(state, _)| state)
}

/// Parse restart-file text into a [`State`] plus the campaign cycle number
/// from the header (0 for files that predate the header extension).
pub fn read_restart_with_cycle(text: &str) -> Result<(State, u64), RestartError> {
    let mut lines = text.lines();
    let _title = lines.next().ok_or_else(|| RestartError("empty file".into()))?;
    let header = lines.next().ok_or_else(|| RestartError("missing header line".into()))?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| RestartError(format!("bad atom count in {header:?}")))?;
    let time_ps: f64 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| RestartError(format!("bad time in {header:?}")))?;
    let step: u64 = match parts.next() {
        Some(tok) => tok.parse().map_err(|_| RestartError(format!("bad step in {header:?}")))?,
        None => 0,
    };
    let cycle: u64 = match parts.next() {
        Some(tok) => tok.parse().map_err(|_| RestartError(format!("bad cycle in {header:?}")))?,
        None => 0,
    };
    if parts.next().is_some() {
        return Err(RestartError(format!("trailing header fields in {header:?}")));
    }

    let rest: String = lines.collect::<Vec<_>>().join(" ");
    let values: Vec<f64> = rest
        .split_whitespace()
        .map(|t| t.parse::<f64>().map_err(|_| RestartError(format!("bad float {t:?}"))))
        .collect::<Result<_, _>>()?;
    if values.len() != 6 * n {
        return Err(RestartError(format!(
            "expected {} values for {n} atoms, found {}",
            6 * n,
            values.len()
        )));
    }
    let to_vecs = |vals: &[f64]| -> Vec<Vec3> {
        vals.chunks_exact(3).map(|c| Vec3::new(c[0], c[1], c[2])).collect()
    };
    let state = State {
        positions: to_vecs(&values[..3 * n]),
        velocities: to_vecs(&values[3 * n..]),
        time_ps,
        step,
    };
    Ok((state, cycle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_state(n: usize) -> State {
        let mut st = State::zeros(n);
        for (i, p) in st.positions.iter_mut().enumerate() {
            *p = Vec3::new(i as f64 * 1.1, -(i as f64) * 0.3, 42.0 + i as f64);
        }
        for (i, v) in st.velocities.iter_mut().enumerate() {
            *v = Vec3::new(0.001 * i as f64, -0.002, 0.5);
        }
        st.time_ps = 12.5;
        st
    }

    #[test]
    fn roundtrip_is_exact() {
        let mut st = sample_state(7);
        st.step = 4200;
        st.time_ps = 0.1 + 0.2; // not representable "nicely"
        let text = write_restart("replica 3 cycle 9", &st);
        let back = read_restart(&text).unwrap();
        assert_eq!(back.n_atoms(), 7);
        assert_eq!(back.time_ps, st.time_ps);
        assert_eq!(back.step, 4200);
        for (a, b) in st.positions.iter().zip(&back.positions) {
            assert_eq!((a.x, a.y, a.z), (b.x, b.y, b.z));
        }
        for (a, b) in st.velocities.iter().zip(&back.velocities) {
            assert_eq!((a.x, a.y, a.z), (b.x, b.y, b.z));
        }
    }

    #[test]
    fn step_and_cycle_survive_the_round_trip() {
        let mut st = sample_state(3);
        st.step = 987_654_321;
        let text = write_restart_with_cycle("t", &st, 17);
        let (back, cycle) = read_restart_with_cycle(&text).unwrap();
        assert_eq!(back.step, 987_654_321);
        assert_eq!(cycle, 17);
        // The plain reader keeps the step and drops only the cycle.
        assert_eq!(read_restart(&text).unwrap().step, 987_654_321);
    }

    #[test]
    fn header_without_step_or_cycle_still_parses() {
        // Files written before the header extension: two fields only.
        let text = "old file\n     1 1.5\n1.0 2.0 3.0 0.1 0.2 0.3\n";
        let (st, cycle) = read_restart_with_cycle(text).unwrap();
        assert_eq!(st.n_atoms(), 1);
        assert_eq!(st.time_ps, 1.5);
        assert_eq!(st.step, 0);
        assert_eq!(cycle, 0);
        // Step without cycle is also accepted.
        let text = "old file\n     1 1.5 42\n1.0 2.0 3.0 0.1 0.2 0.3\n";
        let (st, cycle) = read_restart_with_cycle(text).unwrap();
        assert_eq!(st.step, 42);
        assert_eq!(cycle, 0);
    }

    #[test]
    fn line_layout_is_six_fields() {
        let st = sample_state(4); // 12 coords = 2 lines of 6
        let text = write_restart("t", &st);
        let lines: Vec<&str> = text.lines().collect();
        // title + header + 2 coord lines + 2 vel lines
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[2].split_whitespace().count(), 6);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let st = sample_state(5);
        let text = write_restart("t", &st);
        let cut = &text[..text.len() - 30];
        assert!(read_restart(cut).is_err());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(read_restart("").is_err());
        assert!(read_restart("title\nnot_a_number 0.0\n").is_err());
        assert!(read_restart("title\n2 0.0\n1.0 2.0 x 4.0 5.0 6.0\n").is_err());
        assert!(read_restart("title\n1 0.0 -3\n1 2 3 4 5 6\n").is_err());
        assert!(read_restart("title\n1 0.0 0 0 99\n1 2 3 4 5 6\n").is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_random_states(
            n in 1usize..40,
            seed in 0u64..1000,
            step in 0u64..u64::MAX,
            cycle in 0u64..100_000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut st = State::zeros(n);
            for p in &mut st.positions {
                *p = Vec3::new(rng.gen_range(-999.0..999.0), rng.gen_range(-999.0..999.0), rng.gen_range(-999.0..999.0));
            }
            for v in &mut st.velocities {
                *v = Vec3::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
            }
            st.time_ps = rng.gen_range(0.0..1e4);
            st.step = step;
            let (back, back_cycle) =
                read_restart_with_cycle(&write_restart_with_cycle("x", &st, cycle)).unwrap();
            prop_assert_eq!(back.step, step);
            prop_assert_eq!(back_cycle, cycle);
            prop_assert_eq!(back.time_ps, st.time_ps);
            // Bit-exact round trip: checkpoint/resume depends on it.
            for (a, b) in st.positions.iter().zip(&back.positions) {
                prop_assert_eq!((a.x, a.y, a.z), (b.x, b.y, b.z));
            }
            for (a, b) in st.velocities.iter().zip(&back.velocities) {
                prop_assert_eq!((a.x, a.y, a.z), (b.x, b.y, b.z));
            }
        }
    }
}
