//! # mdsim — the molecular-dynamics substrate
//!
//! A from-scratch MD engine family standing in for Amber (`sander`,
//! `pmemd.MPI`) and NAMD in the RepEx reproduction. It provides:
//!
//! * a force field with harmonic bonds/angles, periodic torsions,
//!   Lennard-Jones, salt-screened Coulomb (Debye–Hückel) and harmonic
//!   dihedral (umbrella) restraints — the three exchange parameters of the
//!   paper (T, U, S) all act on real physics here;
//! * NVE velocity-Verlet and Langevin (BAOAB) integrators;
//! * serial and Rayon-parallel engines behind the [`engine::MdEngine`]
//!   trait;
//! * the file formats the framework stages between tasks: Amber-style
//!   `mdin`/`DISANG`/restart/`mdinfo` and NAMD-style config files;
//! * ready-made systems: the reduced alanine dipeptide (with solvated
//!   variants at the paper's 2 881- and 64 366-atom cost scales) and an LJ
//!   fluid.
//!
//! ## Quick example
//!
//! ```
//! use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
//! use mdsim::engine::{MdEngine, MdJob, SanderEngine};
//!
//! let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
//! let mut system = alanine_dipeptide();
//! let job = MdJob { steps: 100, sample_stride: 10, ..Default::default() };
//! let out = engine.run(&mut system, &job).expect("stable short run");
//! assert_eq!(out.final_state.step, 100);
//! ```

pub mod engine;
pub mod forcefield;
pub mod integrator;
pub mod io;
pub mod minimize;
pub mod models;
pub mod neighbor;
pub mod system;
pub mod topology;
pub mod units;
pub mod vec3;

pub use engine::{MdEngine, MdJob, MdOutput, SinglePointRequest};
pub use forcefield::{
    DihedralRestraint, EnergyBreakdown, EvalContext, ForceField, NonbondedParams,
};
pub use neighbor::NeighborCache;
pub use system::{PbcBox, State, System};
pub use topology::Topology;
pub use vec3::Vec3;
