//! Umbrella-sampling restraints.
//!
//! The paper's U-REMD windows are harmonic restraints on the φ and ψ backbone
//! torsions, `E = k (Δθ)²` with the force constant in kcal·mol⁻¹·degree⁻²
//! (0.02 in the validation run) and Δθ the minimum-image angular difference
//! in degrees. Exchanging umbrella windows between replicas swaps the
//! restraint centers, so the exchange acceptance requires evaluating each
//! replica's coordinates under the partner's bias (`bias_energy`).

use crate::forcefield::bonded::{apply_dihedral_force, dihedral_geometry};
use crate::system::PbcBox;
use crate::units::{angle_diff_deg, rad_to_deg};
use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// Harmonic restraint on a dihedral angle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DihedralRestraint {
    /// Name of the restrained dihedral (must exist in the topology's
    /// `named_dihedrals`, e.g. "phi" or "psi").
    pub dihedral: String,
    /// Force constant in kcal/mol/degree².
    pub k_deg: f64,
    /// Restraint center in degrees, in (-180, 180].
    pub center_deg: f64,
}

impl DihedralRestraint {
    pub fn new(dihedral: impl Into<String>, k_deg: f64, center_deg: f64) -> Self {
        DihedralRestraint { dihedral: dihedral.into(), k_deg, center_deg }
    }

    /// Restraint energy for a measured dihedral value in radians.
    #[inline]
    pub fn energy_at(&self, phi_rad: f64) -> f64 {
        let d = angle_diff_deg(rad_to_deg(phi_rad), self.center_deg);
        self.k_deg * d * d
    }

    /// Energy contribution over explicit atom indices, without force
    /// accumulation (single-point path). Bitwise-identical to the energy
    /// returned by [`DihedralRestraint::energy_force`].
    pub fn energy(&self, atoms: [u32; 4], positions: &[Vec3], pbc: &PbcBox) -> f64 {
        let idx = [atoms[0] as usize, atoms[1] as usize, atoms[2] as usize, atoms[3] as usize];
        let Some((phi, ..)) = dihedral_geometry(
            positions[idx[0]],
            positions[idx[1]],
            positions[idx[2]],
            positions[idx[3]],
            pbc,
        ) else {
            return 0.0;
        };
        let d_deg = angle_diff_deg(rad_to_deg(phi), self.center_deg);
        self.k_deg * d_deg * d_deg
    }

    /// Energy and force contribution over explicit atom indices.
    pub fn energy_force(
        &self,
        atoms: [u32; 4],
        positions: &[Vec3],
        pbc: &PbcBox,
        forces: &mut [Vec3],
    ) -> f64 {
        let idx = [atoms[0] as usize, atoms[1] as usize, atoms[2] as usize, atoms[3] as usize];
        let Some((phi, b1, b2, b3, n1, n2)) = dihedral_geometry(
            positions[idx[0]],
            positions[idx[1]],
            positions[idx[2]],
            positions[idx[3]],
            pbc,
        ) else {
            return 0.0;
        };
        let d_deg = angle_diff_deg(rad_to_deg(phi), self.center_deg);
        let energy = self.k_deg * d_deg * d_deg;
        // dE/dphi with phi in radians: dE/d(d_deg) * 180/pi.
        let de_dphi = 2.0 * self.k_deg * d_deg * (180.0 / std::f64::consts::PI);
        apply_dihedral_force(idx, de_dphi, b1, b2, b3, n1, n2, forces);
        energy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_at_center_is_zero() {
        let r = DihedralRestraint::new("phi", 0.02, 90.0);
        assert!(r.energy_at(90f64.to_radians()).abs() < 1e-12);
    }

    #[test]
    fn energy_uses_minimum_image_angle() {
        // Center at 170°, measured -170°: the difference is 20°, not 340°.
        let r = DihedralRestraint::new("phi", 0.02, 170.0);
        let e = r.energy_at((-170f64).to_radians());
        assert!((e - 0.02 * 400.0).abs() < 1e-9, "E = {e}");
    }

    #[test]
    fn paper_force_constant_scale() {
        // k = 0.02 kcal/mol/deg², 45° displacement -> 40.5 kcal/mol.
        let r = DihedralRestraint::new("psi", 0.02, 0.0);
        assert!((r.energy_at(45f64.to_radians()) - 40.5).abs() < 1e-9);
    }

    #[test]
    fn restraint_forces_conserve_momentum() {
        let r = DihedralRestraint::new("phi", 0.05, 60.0);
        let pos = [
            Vec3::new(0.1, 1.0, 0.2),
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(1.3, -0.9, 0.7),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = r.energy_force([0, 1, 2, 3], &pos, &PbcBox::VACUUM, &mut f);
        assert!(e > 0.0);
        let total: Vec3 = f.iter().copied().sum();
        assert!(total.norm() < 1e-10);
    }

    #[test]
    fn force_drives_angle_toward_center() {
        // Start at phi = 0 (cis), restrain toward +90°, integrate a tiny
        // gradient-descent step and check the energy decreases.
        let r = DihedralRestraint::new("phi", 0.02, 90.0);
        let mut pos = vec![
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e0 = r.energy_force([0, 1, 2, 3], &pos, &PbcBox::VACUUM, &mut f);
        for (p, fo) in pos.iter_mut().zip(&f) {
            *p += *fo * 1e-4;
        }
        let mut f2 = vec![Vec3::ZERO; 4];
        let e1 = r.energy_force([0, 1, 2, 3], &pos, &PbcBox::VACUUM, &mut f2);
        assert!(e1 < e0, "descent step must lower energy: {e0} -> {e1}");
    }
}
