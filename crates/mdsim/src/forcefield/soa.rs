//! Structure-of-arrays nonbonded kernel.
//!
//! The scalar path ([`LjTable::pair_eval`]) walks `Vec<Vec3>` positions,
//! chases the type table per pair and branches on cutoff, LJ activity and
//! charge products. This module flattens everything the inner loop touches
//! into parallel `f64` arrays and splits the loop into three phases per
//! block of pairs:
//!
//! - **Phase 0 (gather)**: indexed loads only. Atom data is packed as one
//!   `[x, y, z, q]` quad per atom so a random neighbor access touches a
//!   single cache line instead of four distinct lanes; the phase writes
//!   position deltas and charge products into fixed-size block buffers.
//! - **Phase 1 (arithmetic)**: branch-free, index-free math over the block
//!   buffers. Because no load in this loop depends on a runtime index, LLVM
//!   auto-vectorizes it; measured on the seed layout, fusing the gathers
//!   into this loop instead *defeated* vectorization and ran slower than
//!   the scalar path. Cutoff and overlap handling are multiplicative masks,
//!   the minimum image is multiply + `round` (no division by the box), the
//!   only division per pair is `1/r²` (with `1/r = sqrt(1/r²)` instead of a
//!   second divide), products `a·b + c` use `mul_add` so FMA units are used
//!   (rustc does not contract float expressions on its own), and `exp` is
//!   only present when the potential is actually screened (`kappa > 0`,
//!   dispatched once per call via a const generic). The LJ energy shift is
//!   recomputed from `eps4`/`sig2` and the hoisted `1/rc²` rather than
//!   streamed as a third parameter lane: five multiplies per pair are
//!   cheaper than eight more bytes of memory traffic per pair.
//! - **Phase 2 (scatter)**: scalar indexed accumulation, kept out of phase
//!   1 so it cannot inhibit vectorization. Pairs arrive sorted by their
//!   first index, so the scatter accumulates runs of equal `i` in registers
//!   and touches `forces[i]` once per run — roughly halving the indexed
//!   read-modify-writes.
//!
//! Per-atom quads are refreshed every evaluation (positions drift each MD
//! step); per-pair lanes (`pi`/`pj`/`eps4`/`sig2`) only when the neighbor
//! list or the LJ table is rebuilt. Box constants store edge lengths and
//! their precomputed reciprocals, with vacuum encoded as zeros so the
//! minimum-image shift vanishes without a branch. See DESIGN.md §10.

use super::nonbonded::{LjTable, NbScalars};
use crate::system::PbcBox;
use crate::vec3::Vec3;
use std::ops::Range;

/// Pairs processed per block. The nine `f64` block buffers total 9 KiB —
/// comfortably L1-resident next to the gather traffic — and the block is
/// long enough to amortize the scalar scatter loop; 128 measured faster
/// than 32/64/256 on AVX-512 hardware.
const BLOCK: usize = 128;

/// Squared-distance floor mirroring the scalar kernel's overlap guard
/// (`r2 < 1e-12` contributes nothing); clamping instead of branching keeps
/// the arithmetic finite so the mask multiply yields exact zeros.
const MIN_R2: f64 = 1e-12;

/// The flattened view. Owned by `EvalContext`; buffers are reused across
/// evaluations so steady-state MD steps do not allocate.
#[derive(Debug, Clone, Default)]
pub(crate) struct SoaNonbonded {
    /// Per-atom packed `[x, y, z, q]` quads: one 32-byte cache-line burst
    /// per gathered neighbor instead of four scattered lane reads.
    xyzq: Vec<[f64; 4]>,
    // Per-pair lanes (gathered once per neighbor-list rebuild).
    pi: Vec<u32>,
    pj: Vec<u32>,
    eps4: Vec<f64>,
    sig2: Vec<f64>,
    // Box constants (zeros in vacuum — branch-free minimum image).
    edge: [f64; 3],
    inv: [f64; 3],
}

impl SoaNonbonded {
    pub(crate) fn n_pairs(&self) -> usize {
        self.pi.len()
    }

    /// Regather the pair lanes from a freshly built neighbor list: indices
    /// plus the mixed LJ constants per pair, so the kernel never touches the
    /// type table.
    pub(crate) fn sync_pairs(&mut self, pairs: &[(u32, u32)], table: &LjTable) {
        self.pi.clear();
        self.pj.clear();
        self.eps4.clear();
        self.sig2.clear();
        self.pi.reserve(pairs.len());
        self.pj.reserve(pairs.len());
        self.eps4.reserve(pairs.len());
        self.sig2.reserve(pairs.len());
        for &(i, j) in pairs {
            let e = table.entry(i as usize, j as usize);
            self.pi.push(i);
            self.pj.push(j);
            self.eps4.push(e.eps4);
            self.sig2.push(e.sigma2);
        }
    }

    /// Refresh the per-atom quads (every evaluation: positions move each
    /// step, charges shift with pH) and the box constants.
    pub(crate) fn sync_atoms(&mut self, positions: &[Vec3], charges: &[f64], pbc: &PbcBox) {
        self.xyzq.clear();
        self.xyzq.reserve(positions.len());
        self.xyzq.extend(positions.iter().zip(charges).map(|(p, &q)| [p.x, p.y, p.z, q]));
        let e = pbc.edge();
        let i = pbc.inv_edge();
        self.edge = [e.x, e.y, e.z];
        self.inv = [i.x, i.y, i.z];
    }

    /// Evaluate the pairs in `range`, returning `(lj, coulomb)` energy sums
    /// and (optionally) scattering forces into `forces` (length = n_atoms).
    ///
    /// Screened and unscreened Coulomb are monomorphized separately so the
    /// common `kappa == 0` case contains no `exp` at all; at `kappa == 0`
    /// the screened expressions reduce to the unscreened ones exactly
    /// (`exp(0) = 1` multiplies through), so the dispatch is seamless.
    pub(crate) fn eval(
        &self,
        sc: &NbScalars,
        range: Range<usize>,
        forces: Option<&mut [Vec3]>,
    ) -> (f64, f64) {
        if sc.kappa == 0.0 {
            self.eval_impl::<false>(sc, range, forces)
        } else {
            self.eval_impl::<true>(sc, range, forces)
        }
    }

    fn eval_impl<const SCREENED: bool>(
        &self,
        sc: &NbScalars,
        range: Range<usize>,
        mut forces: Option<&mut [Vec3]>,
    ) -> (f64, f64) {
        let xyzq = &self.xyzq[..];
        let [ex, ey, ez] = self.edge;
        let [ix, iy, iz] = self.inv;
        // Hoisted 1/rc² for the in-loop energy-shift recomputation; no
        // division (NbScalars carries 1/rc), and 0 when the cutoff is
        // infinite so the shift vanishes exactly, matching the table.
        let inv_rc2 = sc.inv_rc * sc.inv_rc;
        let mut lj_total = 0.0;
        let mut coul_total = 0.0;
        let mut dxs = [0.0f64; BLOCK];
        let mut dys = [0.0f64; BLOCK];
        let mut dzs = [0.0f64; BLOCK];
        let mut qqs = [0.0f64; BLOCK];
        let mut e_lj = [0.0f64; BLOCK];
        let mut e_c = [0.0f64; BLOCK];
        let mut fx = [0.0f64; BLOCK];
        let mut fy = [0.0f64; BLOCK];
        let mut fz = [0.0f64; BLOCK];
        let mut k = range.start;
        while k < range.end {
            let len = BLOCK.min(range.end - k);
            // One bounds check per block lane, not per pair.
            let pi = &self.pi[k..k + len];
            let pj = &self.pj[k..k + len];
            let eps4 = &self.eps4[k..k + len];
            let sig2 = &self.sig2[k..k + len];
            // Phase 0: gather. The only indexed loads in the kernel.
            for t in 0..len {
                let a = xyzq[pi[t] as usize];
                let b = xyzq[pj[t] as usize];
                dxs[t] = a[0] - b[0];
                dys[t] = a[1] - b[1];
                dzs[t] = a[2] - b[2];
                qqs[t] = a[3] * b[3];
            }
            // Phase 1: branch-free, index-free fused energy + force
            // arithmetic — the loop LLVM vectorizes.
            for t in 0..len {
                let mut dx = dxs[t];
                let mut dy = dys[t];
                let mut dz = dzs[t];
                dx = (-ex).mul_add((dx * ix).round(), dx);
                dy = (-ey).mul_add((dy * iy).round(), dy);
                dz = (-ez).mul_add((dz * iz).round(), dz);
                let r2 = dz.mul_add(dz, dy.mul_add(dy, dx * dx));
                // Cutoff + overlap handling as a multiplicative mask; the
                // clamp keeps every intermediate finite so `x * 0.0 == 0.0`.
                let mask = ((r2 < sc.rc2) & (r2 >= MIN_R2)) as u8 as f64;
                let r2c = r2.max(MIN_R2);
                let inv_r2 = 1.0 / r2c;
                let inv_r = inv_r2.sqrt();
                let sr2 = sig2[t] * inv_r2;
                let sr6 = sr2 * sr2 * sr2;
                let e4s6 = eps4[t] * sr6;
                let src2 = sig2[t] * inv_rc2;
                let src6 = src2 * src2 * src2;
                let eshift = (eps4[t] * src6) * (src6 - 1.0);
                let pqq = sc.pref * qqs[t];
                // `coul_f` is the Coulomb part of `-dE/dr · r`, so the total
                // force scale is a single `(coul_f + lj_f) / r²` below.
                let (coul, coul_f) = if SCREENED {
                    let r = r2c * inv_r;
                    let ekr = (-sc.kappa * r).exp();
                    (
                        pqq.mul_add(ekr * inv_r, -(pqq * sc.cshift)),
                        pqq * ekr * sc.kappa.mul_add(r, 1.0) * inv_r,
                    )
                } else {
                    (pqq.mul_add(inv_r, -(pqq * sc.cshift)), pqq * inv_r)
                };
                let lj_f = e4s6 * sr6.mul_add(12.0, -6.0);
                e_lj[t] = e4s6.mul_add(sr6 - 1.0, -eshift) * mask;
                e_c[t] = coul * mask;
                let f_over_r = (coul_f + lj_f) * inv_r2 * mask;
                fx[t] = dx * f_over_r;
                fy[t] = dy * f_over_r;
                fz[t] = dz * f_over_r;
            }
            let mut s_lj = 0.0;
            let mut s_c = 0.0;
            for t in 0..len {
                s_lj += e_lj[t];
                s_c += e_c[t];
            }
            lj_total += s_lj;
            coul_total += s_c;
            // Phase 2: scalar scatter. Pairs are sorted by `i`, so runs of
            // equal `i` accumulate in registers and hit memory once.
            if let Some(f) = forces.as_deref_mut() {
                let mut t = 0;
                while t < len {
                    let i = pi[t];
                    let mut acc = Vec3::ZERO;
                    while t < len && pi[t] == i {
                        let fv = Vec3::new(fx[t], fy[t], fz[t]);
                        acc += fv;
                        f[pj[t] as usize] -= fv;
                        t += 1;
                    }
                    f[i as usize] += acc;
                }
            }
            k += len;
        }
        (lj_total, coul_total)
    }
}
