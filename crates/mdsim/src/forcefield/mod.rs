//! The complete force field: bonded + nonbonded + umbrella restraints.
//!
//! [`ForceField::energy_forces`] is the serial reference evaluation used by
//! the `sander`-like engine; [`ForceField::energy_forces_par`] is the
//! Rayon-parallel evaluation used by the `pmemd`-like engine for multi-core
//! replicas. Both produce identical energies (up to floating-point
//! reassociation in the parallel reduction).

pub mod bonded;
pub mod nonbonded;
pub mod restraint;

pub use nonbonded::NonbondedParams;
pub use restraint::DihedralRestraint;

use crate::neighbor::{all_pairs, CellList};
use crate::system::System;
use crate::vec3::Vec3;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Energy decomposition mirroring an Amber `mdinfo` record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub bond: f64,
    pub angle: f64,
    pub torsion: f64,
    pub lj: f64,
    pub coulomb: f64,
    pub restraint: f64,
}

impl EnergyBreakdown {
    /// Total potential energy in kcal/mol.
    pub fn total(&self) -> f64 {
        self.bond + self.angle + self.torsion + self.lj + self.coulomb + self.restraint
    }

    /// Potential energy excluding restraints (the "physical" energy used by
    /// temperature-exchange acceptance).
    pub fn physical(&self) -> f64 {
        self.total() - self.restraint
    }
}

/// Threshold above which the engines switch from the O(N²) loop to the cell
/// list. Small systems (the reduced dipeptide) are faster without the list.
const CELL_LIST_THRESHOLD: usize = 400;

/// A complete parameterized force field.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ForceField {
    pub nonbonded: NonbondedParams,
    /// Umbrella restraints on named dihedrals.
    pub restraints: Vec<DihedralRestraint>,
}

impl ForceField {
    pub fn new(nonbonded: NonbondedParams) -> Self {
        ForceField { nonbonded, restraints: Vec::new() }
    }

    /// Replace all restraints (used when a replica adopts a new umbrella
    /// window after an exchange).
    pub fn set_restraints(&mut self, restraints: Vec<DihedralRestraint>) {
        self.restraints = restraints;
    }

    /// Serial evaluation: fills `forces` (must be `n_atoms` long, will be
    /// zeroed) and returns the energy breakdown.
    pub fn energy_forces(&self, system: &System, forces: &mut [Vec3]) -> EnergyBreakdown {
        assert_eq!(forces.len(), system.n_atoms());
        forces.fill(Vec3::ZERO);
        let mut e = EnergyBreakdown::default();
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let top = &system.topology;

        for b in &top.bonds {
            e.bond += bonded::bond_energy_force(b, pos, pbc, forces);
        }
        for a in &top.angles {
            e.angle += bonded::angle_energy_force(a, pos, pbc, forces);
        }
        for t in &top.torsions {
            e.torsion += bonded::torsion_energy_force(t, pos, pbc, forces);
        }
        for r in &self.restraints {
            if let Some(d) = top.dihedral(&r.dihedral) {
                e.restraint += r.energy_force(d.atoms, pos, pbc, forces);
            }
        }

        let (lj, coul) = self.nonbonded_serial(system, forces);
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Parallel evaluation using Rayon for the nonbonded loop (the dominant
    /// cost). Bonded terms stay serial: they are O(N) with tiny constants.
    pub fn energy_forces_par(&self, system: &System, forces: &mut [Vec3]) -> EnergyBreakdown {
        assert_eq!(forces.len(), system.n_atoms());
        forces.fill(Vec3::ZERO);
        let mut e = EnergyBreakdown::default();
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let top = &system.topology;

        for b in &top.bonds {
            e.bond += bonded::bond_energy_force(b, pos, pbc, forces);
        }
        for a in &top.angles {
            e.angle += bonded::angle_energy_force(a, pos, pbc, forces);
        }
        for t in &top.torsions {
            e.torsion += bonded::torsion_energy_force(t, pos, pbc, forces);
        }
        for r in &self.restraints {
            if let Some(d) = top.dihedral(&r.dihedral) {
                e.restraint += r.energy_force(d.atoms, pos, pbc, forces);
            }
        }

        let (lj, coul) = self.nonbonded_parallel(system, forces);
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Energy-only evaluation (single-point energy, used by exchange phases).
    pub fn energy(&self, system: &System) -> EnergyBreakdown {
        let mut scratch = vec![Vec3::ZERO; system.n_atoms()];
        self.energy_forces(system, &mut scratch)
    }

    /// Atoms with pH-adjusted effective charges, when the topology has
    /// titratable sites (pH-REMD); `None` means the base atoms apply.
    fn ph_adjusted_atoms(&self, system: &System) -> Option<Vec<crate::topology::Atom>> {
        let top = &system.topology;
        if top.titratable.is_empty() {
            return None;
        }
        let mut atoms = top.atoms.clone();
        for site in &top.titratable {
            atoms[site.atom as usize].charge += site.charge_shift(self.nonbonded.ph);
        }
        Some(atoms)
    }

    fn candidate_pairs(&self, system: &System) -> Vec<(u32, u32)> {
        let n = system.n_atoms();
        if n >= CELL_LIST_THRESHOLD {
            CellList::build(&system.state.positions, &system.pbc, self.nonbonded.cutoff).pairs()
        } else {
            all_pairs(n).collect()
        }
    }

    fn nonbonded_serial(&self, system: &System, forces: &mut [Vec3]) -> (f64, f64) {
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let top = &system.topology;
        let adjusted = self.ph_adjusted_atoms(system);
        let atoms: &[crate::topology::Atom] = adjusted.as_deref().unwrap_or(&top.atoms);
        let mut lj = 0.0;
        let mut coul = 0.0;
        for (i, j) in self.candidate_pairs(system) {
            if top.is_excluded(i, j) {
                continue;
            }
            let (iu, ju) = (i as usize, j as usize);
            let d = pbc.min_image(pos[iu], pos[ju]);
            let r2 = d.norm_sq();
            let ai = &atoms[iu];
            let aj = &atoms[ju];
            let (e_pair, f_over_r) = nonbonded::pair_energy_force(ai, aj, r2, &self.nonbonded);
            // Split the pair energy by whether charges participate; for the
            // breakdown we attribute the whole pair via a second evaluation
            // with charges zeroed, which would double cost. Instead track the
            // LJ part analytically: recompute the LJ-only energy.
            let lj_only = lj_pair_energy(ai, aj, r2, self.nonbonded.cutoff);
            lj += lj_only;
            coul += e_pair - lj_only;
            let f = d * f_over_r;
            forces[iu] += f;
            forces[ju] -= f;
        }
        (lj, coul)
    }

    fn nonbonded_parallel(&self, system: &System, forces: &mut [Vec3]) -> (f64, f64) {
        let pos = &system.state.positions;
        let pbc = system.pbc;
        let top = &system.topology;
        let n = system.n_atoms();
        let pairs = self.candidate_pairs(system);
        let params = self.nonbonded;
        let adjusted = self.ph_adjusted_atoms(system);
        let atoms_ref: &[crate::topology::Atom] = adjusted.as_deref().unwrap_or(&top.atoms);
        let chunk = (pairs.len() / (rayon::current_num_threads() * 4)).max(1024);

        // Each Rayon task owns a private force buffer; buffers are merged in
        // the reduction. This avoids atomics in the hot pair loop.
        let (lj, coul, partial) = pairs
            .par_chunks(chunk)
            .map(|chunk_pairs| {
                let mut local = vec![Vec3::ZERO; n];
                let mut lj = 0.0;
                let mut coul = 0.0;
                for &(i, j) in chunk_pairs {
                    if top.is_excluded(i, j) {
                        continue;
                    }
                    let (iu, ju) = (i as usize, j as usize);
                    let d = pbc.min_image(pos[iu], pos[ju]);
                    let r2 = d.norm_sq();
                    let ai = &atoms_ref[iu];
                    let aj = &atoms_ref[ju];
                    let (e_pair, f_over_r) = nonbonded::pair_energy_force(ai, aj, r2, &params);
                    let lj_only = lj_pair_energy(ai, aj, r2, params.cutoff);
                    lj += lj_only;
                    coul += e_pair - lj_only;
                    let f = d * f_over_r;
                    local[iu] += f;
                    local[ju] -= f;
                }
                (lj, coul, local)
            })
            .reduce(
                || (0.0, 0.0, vec![Vec3::ZERO; n]),
                |(la, ca, mut fa), (lb, cb, fb)| {
                    for (a, b) in fa.iter_mut().zip(&fb) {
                        *a += *b;
                    }
                    (la + lb, ca + cb, fa)
                },
            );
        for (f, p) in forces.iter_mut().zip(&partial) {
            *f += *p;
        }
        (lj, coul)
    }
}

/// LJ-only part of the shifted pair energy, for the breakdown bookkeeping.
#[inline]
fn lj_pair_energy(ai: &crate::topology::Atom, aj: &crate::topology::Atom, r2: f64, rc: f64) -> f64 {
    if r2 >= rc * rc || r2 < 1e-12 {
        return 0.0;
    }
    let eps = (ai.lj_epsilon * aj.lj_epsilon).sqrt();
    if eps <= 0.0 {
        return 0.0;
    }
    let sigma = 0.5 * (ai.lj_sigma + aj.lj_sigma);
    let sr2 = (sigma * sigma) / r2;
    let sr6 = sr2 * sr2 * sr2;
    let src2 = (sigma * sigma) / (rc * rc);
    let src6 = src2 * src2 * src2;
    4.0 * eps * (sr6 * sr6 - sr6) - 4.0 * eps * (src6 * src6 - src6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{PbcBox, State};
    use crate::topology::{Angle, Atom, Bond, NamedDihedral, Topology, Torsion};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A small but fully-featured system: a 4-atom chain with bonds, an
    /// angle, a torsion, a named dihedral and a few charged LJ particles.
    fn rich_system(seed: u64) -> (System, ForceField) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut atoms = vec![
            Atom { mass: 12.0, charge: 0.3, lj_epsilon: 0.1, lj_sigma: 3.4 },
            Atom { mass: 12.0, charge: -0.3, lj_epsilon: 0.1, lj_sigma: 3.4 },
            Atom { mass: 14.0, charge: 0.2, lj_epsilon: 0.12, lj_sigma: 3.3 },
            Atom { mass: 12.0, charge: -0.2, lj_epsilon: 0.1, lj_sigma: 3.4 },
        ];
        for _ in 0..8 {
            atoms.push(Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.15 });
        }
        let mut top = Topology {
            atoms,
            bonds: vec![
                Bond { i: 0, j: 1, k: 300.0, r0: 1.5 },
                Bond { i: 1, j: 2, k: 330.0, r0: 1.45 },
                Bond { i: 2, j: 3, k: 300.0, r0: 1.5 },
            ],
            angles: vec![
                Angle { i: 0, j: 1, k_atom: 2, k: 50.0, theta0: 1.95 },
                Angle { i: 1, j: 2, k_atom: 3, k: 50.0, theta0: 1.95 },
            ],
            torsions: vec![Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 1.4, n: 3, delta: 0.0 }],
            named_dihedrals: vec![NamedDihedral { name: "phi".into(), atoms: [0, 1, 2, 3] }],
            titratable: vec![],
            exclusions: vec![],
        };
        top.build_exclusions();

        let n = top.n_atoms();
        let mut state = State::zeros(n);
        // Chain along x; solvent on a lattice well clear of the chain so no
        // near-contact pair makes finite differencing ill-conditioned.
        state.positions[0] = Vec3::new(0.0, 0.4, 0.0);
        state.positions[1] = Vec3::new(1.4, 0.0, 0.1);
        state.positions[2] = Vec3::new(2.5, 0.8, -0.2);
        state.positions[3] = Vec3::new(3.8, 0.5, 0.6);
        for i in 4..n {
            let k = i - 4;
            let jitter = rng.gen::<f64>() * 0.2;
            state.positions[i] = Vec3::new(
                (k % 4) as f64 * 3.8 - 2.0 + jitter,
                4.0 + (k / 4) as f64 * 3.8,
                3.5 + (k % 3) as f64 * 0.7,
            );
        }
        let sys = System::new(top, PbcBox::VACUUM, state).unwrap();
        let mut ff = ForceField::new(NonbondedParams { cutoff: 10.0, dielectric: 4.0, salt_molar: 0.15, ph: 7.0 });
        ff.set_restraints(vec![DihedralRestraint::new("phi", 0.02, 60.0)]);
        (sys, ff)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs (atom, axis) read best this way
    fn forces_match_finite_difference_of_total_energy() {
        let (mut sys, ff) = rich_system(1);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        ff.energy_forces(&sys, &mut forces);
        let h = 1e-6;
        for atom in 0..sys.n_atoms() {
            for axis in 0..3 {
                let orig = sys.state.positions[atom];
                let mut bump = |delta: f64| {
                    let mut p = orig;
                    match axis {
                        0 => p.x += delta,
                        1 => p.y += delta,
                        _ => p.z += delta,
                    }
                    sys.state.positions[atom] = p;
                    let e = ff.energy(&sys).total();
                    sys.state.positions[atom] = orig;
                    e
                };
                let de = (bump(h) - bump(-h)) / (2.0 * h);
                let f = forces[atom][axis];
                assert!(
                    (de + f).abs() < 1e-4 * de.abs().max(1.0),
                    "atom {atom} axis {axis}: FD {de}, force {f}"
                );
            }
        }
    }

    #[test]
    fn total_force_is_zero() {
        let (sys, ff) = rich_system(2);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        ff.energy_forces(&sys, &mut forces);
        let total: Vec3 = forces.iter().copied().sum();
        assert!(total.norm() < 1e-9, "net force {}", total.norm());
    }

    #[test]
    fn parallel_matches_serial() {
        let (sys, ff) = rich_system(3);
        let mut f_ser = vec![Vec3::ZERO; sys.n_atoms()];
        let mut f_par = vec![Vec3::ZERO; sys.n_atoms()];
        let e_ser = ff.energy_forces(&sys, &mut f_ser);
        let e_par = ff.energy_forces_par(&sys, &mut f_par);
        assert!((e_ser.total() - e_par.total()).abs() < 1e-9);
        assert!((e_ser.lj - e_par.lj).abs() < 1e-9);
        assert!((e_ser.coulomb - e_par.coulomb).abs() < 1e-9);
        for (a, b) in f_ser.iter().zip(&f_par) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let (sys, ff) = rich_system(4);
        let e = ff.energy(&sys);
        let total = e.bond + e.angle + e.torsion + e.lj + e.coulomb + e.restraint;
        assert!((e.total() - total).abs() < 1e-12);
        assert!((e.physical() - (total - e.restraint)).abs() < 1e-12);
        assert!(e.restraint >= 0.0, "harmonic restraint energy can't be negative");
    }

    #[test]
    fn exclusions_remove_bonded_pairs_from_nonbonded() {
        // Two strongly charged atoms bonded together: excluded, so the
        // Coulomb contribution must come only from non-bonded pairs.
        let mut top = Topology {
            atoms: vec![
                Atom { mass: 1.0, charge: 5.0, lj_epsilon: 0.0, lj_sigma: 3.0 },
                Atom { mass: 1.0, charge: -5.0, lj_epsilon: 0.0, lj_sigma: 3.0 },
            ],
            bonds: vec![Bond { i: 0, j: 1, k: 100.0, r0: 1.0 }],
            ..Default::default()
        };
        top.build_exclusions();
        let mut state = State::zeros(2);
        state.positions[1] = Vec3::new(1.0, 0.0, 0.0);
        let sys = System::new(top, PbcBox::VACUUM, state).unwrap();
        let ff = ForceField::new(NonbondedParams { cutoff: 10.0, dielectric: 1.0, salt_molar: 0.0, ph: 7.0 });
        let e = ff.energy(&sys);
        assert_eq!(e.coulomb, 0.0, "bonded pair must be excluded");
        assert_eq!(e.lj, 0.0);
    }

    #[test]
    fn salt_changes_energy_of_charged_system() {
        let (sys, mut ff) = rich_system(5);
        let e0 = ff.energy(&sys).coulomb;
        ff.nonbonded.salt_molar = 2.0;
        let e1 = ff.energy(&sys).coulomb;
        assert!((e0 - e1).abs() > 1e-9, "salt must perturb Coulomb energy");
    }

    #[test]
    fn restraint_energy_appears_only_in_restraint_channel() {
        let (sys, mut ff) = rich_system(6);
        let with = ff.energy(&sys);
        ff.set_restraints(vec![]);
        let without = ff.energy(&sys);
        assert_eq!(without.restraint, 0.0);
        assert!((with.physical() - without.total()).abs() < 1e-12);
    }

    #[test]
    fn large_system_uses_cell_list_and_matches() {
        // Cross the CELL_LIST_THRESHOLD and verify against direct O(N^2).
        let mut rng = StdRng::seed_from_u64(9);
        let n = 500;
        let l = 24.0;
        let top = Topology {
            atoms: vec![Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.15 }; n],
            ..Default::default()
        };
        let mut state = State::zeros(n);
        for p in &mut state.positions {
            *p = Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l);
        }
        let sys = System::new(top, PbcBox::cubic(l), state).unwrap();
        let ff = ForceField::new(NonbondedParams { cutoff: 6.0, dielectric: 1.0, salt_molar: 0.0, ph: 7.0 });
        // Direct evaluation (bypass the threshold by scanning all pairs).
        let mut direct = 0.0;
        for (i, j) in all_pairs(n) {
            let d = sys.pbc.min_image(sys.state.positions[i as usize], sys.state.positions[j as usize]);
            direct += lj_pair_energy(&sys.topology.atoms[i as usize], &sys.topology.atoms[j as usize], d.norm_sq(), 6.0);
        }
        let e = ff.energy(&sys);
        assert!((e.lj - direct).abs() < 1e-6 * direct.abs().max(1.0), "{} vs {direct}", e.lj);
    }
}
