//! The complete force field: bonded + nonbonded + umbrella restraints.
//!
//! [`ForceField::energy_forces_ctx`] is the serial evaluation used by the
//! `sander`-like engine; [`ForceField::energy_forces_par_ctx`] is the
//! Rayon-parallel evaluation used by the `pmemd`-like engine for multi-core
//! replicas. Both produce identical energies (up to floating-point
//! reassociation in the parallel reduction).
//!
//! All hot paths take an [`EvalContext`], which owns the persistent state
//! that makes repeated evaluations cheap: the Verlet neighbor list (reused
//! across MD steps until an atom moves more than half the skin), the
//! precomputed Lennard-Jones mixing table, the pH-adjusted charge buffer,
//! the structure-of-arrays kernel lanes (see `soa.rs`) and the pooled
//! per-chunk force buffers of the parallel reduction. The context-free
//! wrappers ([`ForceField::energy_forces`] and friends) build a throwaway
//! context and exist for one-shot calls and tests.
//!
//! The nonbonded inner loop itself lives in `soa.rs` as a blocked,
//! branch-free pass over flat `f64` arrays;
//! [`ForceField::energy_forces_scalar_ctx`] keeps the original
//! pair-at-a-time kernel as the correctness reference and benchmark
//! baseline.

pub mod bonded;
pub mod nonbonded;
pub mod restraint;
mod soa;

pub use nonbonded::NonbondedParams;
pub use restraint::DihedralRestraint;

use crate::neighbor::NeighborCache;
use crate::system::System;
use crate::vec3::Vec3;
use nonbonded::{LjTable, NbScalars};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use soa::SoaNonbonded;

/// Energy decomposition mirroring an Amber `mdinfo` record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    pub bond: f64,
    pub angle: f64,
    pub torsion: f64,
    pub lj: f64,
    pub coulomb: f64,
    pub restraint: f64,
}

impl EnergyBreakdown {
    /// Total potential energy in kcal/mol.
    pub fn total(&self) -> f64 {
        self.bond + self.angle + self.torsion + self.lj + self.coulomb + self.restraint
    }

    /// Potential energy excluding restraints (the "physical" energy used by
    /// temperature-exchange acceptance).
    pub fn physical(&self) -> f64 {
        self.total() - self.restraint
    }
}

/// Persistent evaluation state threaded through integrators and engines.
///
/// Owns everything the force loop would otherwise rebuild or reallocate per
/// call: the Verlet neighbor list, the LJ mixing table, the effective-charge
/// buffer and the pooled force buffers of the parallel reduction. A context
/// belongs to one [`System`] at a time; it detects coordinate, box, atom
/// count and cutoff changes automatically and rebuilds what is stale, so
/// sharing one across the single-point evaluations of an exchange batch (same
/// coordinates, different [`NonbondedParams`]) reuses the pair list for all
/// of them.
#[derive(Debug, Clone, Default)]
pub struct EvalContext {
    /// The Verlet list (public so callers can inspect rebuild statistics).
    pub neighbors: NeighborCache,
    lj: Option<LjTable>,
    /// Effective per-atom charges (base charge plus pH shift on titratable
    /// sites), refreshed every evaluation without allocating.
    charges: Vec<f64>,
    /// Pooled per-chunk force buffers for the parallel reduction.
    par_forces: Vec<Vec<Vec3>>,
    /// Structure-of-arrays view of atoms and pairs for the vectorizable
    /// kernel; pair lanes are regathered only on neighbor-list rebuilds.
    soa: SoaNonbonded,
}

impl EvalContext {
    /// Context with the default Verlet skin.
    pub fn new() -> Self {
        Self::with_skin(NeighborCache::DEFAULT_SKIN)
    }

    /// Context with an explicit skin width (0 = rebuild whenever the
    /// coordinates change at all; the fresh-build reference behavior).
    pub fn with_skin(skin: f64) -> Self {
        EvalContext {
            neighbors: NeighborCache::new(skin),
            lj: None,
            charges: Vec::new(),
            par_forces: Vec::new(),
            soa: SoaNonbonded::default(),
        }
    }

    /// Drop all cached state (e.g. after the caller swapped to a different
    /// system or mutated the topology).
    pub fn invalidate(&mut self) {
        self.neighbors.invalidate();
        self.lj = None;
    }

    /// Refresh every cached component for `system` under `ff`'s parameters.
    fn prepare(&mut self, ff: &ForceField, system: &System) {
        let rebuilt = self.neighbors.ensure(system, ff.nonbonded.cutoff);
        let top = &system.topology;
        let lj_fresh =
            self.lj.as_ref().is_some_and(|t| t.matches(top.atoms.len(), ff.nonbonded.cutoff));
        if !lj_fresh {
            self.lj = Some(LjTable::build(&top.atoms, ff.nonbonded.cutoff));
        }
        self.charges.clear();
        self.charges.extend(top.atoms.iter().map(|a| a.charge));
        for site in &top.titratable {
            self.charges[site.atom as usize] += site.charge_shift(ff.nonbonded.ph);
        }
        // SoA pair lanes follow the neighbor list + LJ table; atom lanes
        // (positions, effective charges, box) are refreshed every call.
        let table = self.lj.as_ref().expect("just built");
        if rebuilt || !lj_fresh || self.soa.n_pairs() != self.neighbors.pairs().len() {
            self.soa.sync_pairs(self.neighbors.pairs(), table);
        }
        self.soa.sync_atoms(&system.state.positions, &self.charges, &system.pbc);
    }
}

/// A complete parameterized force field.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ForceField {
    pub nonbonded: NonbondedParams,
    /// Umbrella restraints on named dihedrals.
    pub restraints: Vec<DihedralRestraint>,
}

impl ForceField {
    pub fn new(nonbonded: NonbondedParams) -> Self {
        ForceField { nonbonded, restraints: Vec::new() }
    }

    /// Replace all restraints (used when a replica adopts a new umbrella
    /// window after an exchange).
    pub fn set_restraints(&mut self, restraints: Vec<DihedralRestraint>) {
        self.restraints = restraints;
    }

    /// Serial evaluation through a persistent context: fills `forces` (must
    /// be `n_atoms` long, will be zeroed) and returns the energy breakdown.
    /// The nonbonded loop runs the blocked SoA kernel.
    pub fn energy_forces_ctx(
        &self,
        system: &System,
        ctx: &mut EvalContext,
        forces: &mut [Vec3],
    ) -> EnergyBreakdown {
        assert_eq!(forces.len(), system.n_atoms());
        forces.fill(Vec3::ZERO);
        let mut e = self.bonded_energy_forces(system, forces);
        ctx.prepare(self, system);
        let sc = NbScalars::new(&self.nonbonded);
        let (lj, coul) = ctx.soa.eval(&sc, 0..ctx.soa.n_pairs(), Some(forces));
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Serial evaluation over the scalar pair-at-a-time kernel
    /// ([`nonbonded::LjTable::pair_eval`]). This is the reference path the
    /// SoA kernel is validated against (to 1e-9 in the module proptests)
    /// and the "before" side of `bench_neighbor`'s kernel comparison.
    pub fn energy_forces_scalar_ctx(
        &self,
        system: &System,
        ctx: &mut EvalContext,
        forces: &mut [Vec3],
    ) -> EnergyBreakdown {
        assert_eq!(forces.len(), system.n_atoms());
        forces.fill(Vec3::ZERO);
        let mut e = self.bonded_energy_forces(system, forces);
        ctx.prepare(self, system);
        let sc = NbScalars::new(&self.nonbonded);
        let table = ctx.lj.as_ref().expect("prepared");
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let mut lj = 0.0;
        let mut coul = 0.0;
        for &(i, j) in ctx.neighbors.pairs() {
            let (iu, ju) = (i as usize, j as usize);
            let d = pbc.min_image(pos[iu], pos[ju]);
            let r2 = d.norm_sq();
            let (e_lj, e_coul, f_over_r) =
                table.pair_eval(&sc, ctx.charges[iu], ctx.charges[ju], iu, ju, r2);
            lj += e_lj;
            coul += e_coul;
            let f = d * f_over_r;
            forces[iu] += f;
            forces[ju] -= f;
        }
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Parallel evaluation through a persistent context, using Rayon for the
    /// nonbonded loop (the dominant cost). Bonded terms stay serial: they
    /// are O(N) with tiny constants. Chunk results are merged serially in
    /// chunk order, so the result is deterministic for a given thread-pool
    /// size.
    pub fn energy_forces_par_ctx(
        &self,
        system: &System,
        ctx: &mut EvalContext,
        forces: &mut [Vec3],
    ) -> EnergyBreakdown {
        assert_eq!(forces.len(), system.n_atoms());
        forces.fill(Vec3::ZERO);
        let mut e = self.bonded_energy_forces(system, forces);
        ctx.prepare(self, system);
        let sc = NbScalars::new(&self.nonbonded);
        let n = system.n_atoms();

        // Disjoint borrows: the SoA lanes are read while the pooled force
        // buffers are written.
        let EvalContext { soa, par_forces, .. } = ctx;
        let n_pairs = soa.n_pairs();

        // Retuned for the SoA kernel: it chews through pairs ~2x faster
        // than the scalar path, so chunks are bigger to keep the per-chunk
        // O(N) force-buffer zero/merge from dominating.
        let chunk = (n_pairs / (rayon::current_num_threads() * 2)).max(4096);
        let n_chunks = n_pairs.div_ceil(chunk);
        if par_forces.len() < n_chunks {
            par_forces.resize_with(n_chunks, Vec::new);
        }
        for buf in par_forces.iter_mut().take(n_chunks) {
            buf.resize(n, Vec3::ZERO);
            buf.fill(Vec3::ZERO);
        }

        // Each Rayon task owns a pooled force buffer; no per-chunk O(N)
        // allocation and no atomics in the hot pair loop.
        let soa: &SoaNonbonded = soa;
        let sums: Vec<(f64, f64)> = par_forces[..n_chunks]
            .par_iter_mut()
            .enumerate()
            .map(|(c, local)| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n_pairs);
                soa.eval(&sc, lo..hi, Some(local.as_mut_slice()))
            })
            .collect();
        let mut lj = 0.0;
        let mut coul = 0.0;
        for &(l, c) in &sums {
            lj += l;
            coul += c;
        }
        for local in &par_forces[..n_chunks] {
            for (f, p) in forces.iter_mut().zip(local) {
                *f += *p;
            }
        }
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Energy-only evaluation through a persistent context: no force
    /// accumulation anywhere (single-point energies for exchange phases).
    pub fn energy_ctx(&self, system: &System, ctx: &mut EvalContext) -> EnergyBreakdown {
        let mut e = self.bonded_energy(system);
        ctx.prepare(self, system);
        let sc = NbScalars::new(&self.nonbonded);
        // Same kernel as the force path with the scatter skipped, so the
        // energies agree bit for bit.
        let (lj, coul) = ctx.soa.eval(&sc, 0..ctx.soa.n_pairs(), None);
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Parallel energy-only evaluation: scalar-only Rayon reduction over the
    /// cached pair list, merged deterministically in chunk order.
    pub fn energy_par_ctx(&self, system: &System, ctx: &mut EvalContext) -> EnergyBreakdown {
        let mut e = self.bonded_energy(system);
        ctx.prepare(self, system);
        let sc = NbScalars::new(&self.nonbonded);
        let soa = &ctx.soa;
        let n_pairs = soa.n_pairs();
        let chunk = (n_pairs / (rayon::current_num_threads() * 2)).max(4096);
        let n_chunks = n_pairs.div_ceil(chunk);
        let sums: Vec<(f64, f64)> = (0..n_chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk;
                let hi = (lo + chunk).min(n_pairs);
                soa.eval(&sc, lo..hi, None)
            })
            .collect();
        let mut lj = 0.0;
        let mut coul = 0.0;
        for &(l, c) in &sums {
            lj += l;
            coul += c;
        }
        e.lj = lj;
        e.coulomb = coul;
        e
    }

    /// Serial evaluation with a throwaway context (one-shot calls, tests).
    pub fn energy_forces(&self, system: &System, forces: &mut [Vec3]) -> EnergyBreakdown {
        self.energy_forces_ctx(system, &mut EvalContext::new(), forces)
    }

    /// Parallel evaluation with a throwaway context.
    pub fn energy_forces_par(&self, system: &System, forces: &mut [Vec3]) -> EnergyBreakdown {
        self.energy_forces_par_ctx(system, &mut EvalContext::new(), forces)
    }

    /// Energy-only evaluation with a throwaway context (single-point energy;
    /// skips force accumulation entirely).
    pub fn energy(&self, system: &System) -> EnergyBreakdown {
        self.energy_ctx(system, &mut EvalContext::new())
    }

    /// Bonded terms + restraints with force accumulation; returns a
    /// breakdown with the nonbonded channels still zero.
    fn bonded_energy_forces(&self, system: &System, forces: &mut [Vec3]) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let top = &system.topology;
        for b in &top.bonds {
            e.bond += bonded::bond_energy_force(b, pos, pbc, forces);
        }
        for a in &top.angles {
            e.angle += bonded::angle_energy_force(a, pos, pbc, forces);
        }
        for t in &top.torsions {
            e.torsion += bonded::torsion_energy_force(t, pos, pbc, forces);
        }
        for r in &self.restraints {
            if let Some(d) = top.dihedral(&r.dihedral) {
                e.restraint += r.energy_force(d.atoms, pos, pbc, forces);
            }
        }
        e
    }

    /// Bonded terms + restraints, energy only.
    fn bonded_energy(&self, system: &System) -> EnergyBreakdown {
        let mut e = EnergyBreakdown::default();
        let pos = &system.state.positions;
        let pbc = &system.pbc;
        let top = &system.topology;
        for b in &top.bonds {
            e.bond += bonded::bond_energy(b, pos, pbc);
        }
        for a in &top.angles {
            e.angle += bonded::angle_energy(a, pos, pbc);
        }
        for t in &top.torsions {
            e.torsion += bonded::torsion_energy(t, pos, pbc);
        }
        for r in &self.restraints {
            if let Some(d) = top.dihedral(&r.dihedral) {
                e.restraint += r.energy(d.atoms, pos, pbc);
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neighbor::all_pairs;
    use crate::system::{PbcBox, State};
    use crate::topology::{Angle, Atom, Bond, NamedDihedral, Titratable, Topology, Torsion};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// LJ-only shifted pair energy, as an independent reference for the
    /// kernel's split (the production path gets it from one evaluation).
    fn lj_pair_energy(ai: &Atom, aj: &Atom, r2: f64, rc: f64) -> f64 {
        if r2 >= rc * rc || r2 < 1e-12 {
            return 0.0;
        }
        let eps = (ai.lj_epsilon * aj.lj_epsilon).sqrt();
        if eps <= 0.0 {
            return 0.0;
        }
        let sigma = 0.5 * (ai.lj_sigma + aj.lj_sigma);
        let sr2 = (sigma * sigma) / r2;
        let sr6 = sr2 * sr2 * sr2;
        let src2 = (sigma * sigma) / (rc * rc);
        let src6 = src2 * src2 * src2;
        4.0 * eps * (sr6 * sr6 - sr6) - 4.0 * eps * (src6 * src6 - src6)
    }

    /// A small but fully-featured system: a 4-atom chain with bonds, an
    /// angle, a torsion, a named dihedral and a few charged LJ particles.
    fn rich_system(seed: u64) -> (System, ForceField) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut atoms = vec![
            Atom { mass: 12.0, charge: 0.3, lj_epsilon: 0.1, lj_sigma: 3.4 },
            Atom { mass: 12.0, charge: -0.3, lj_epsilon: 0.1, lj_sigma: 3.4 },
            Atom { mass: 14.0, charge: 0.2, lj_epsilon: 0.12, lj_sigma: 3.3 },
            Atom { mass: 12.0, charge: -0.2, lj_epsilon: 0.1, lj_sigma: 3.4 },
        ];
        for _ in 0..8 {
            atoms.push(Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.15 });
        }
        let mut top = Topology {
            atoms,
            bonds: vec![
                Bond { i: 0, j: 1, k: 300.0, r0: 1.5 },
                Bond { i: 1, j: 2, k: 330.0, r0: 1.45 },
                Bond { i: 2, j: 3, k: 300.0, r0: 1.5 },
            ],
            angles: vec![
                Angle { i: 0, j: 1, k_atom: 2, k: 50.0, theta0: 1.95 },
                Angle { i: 1, j: 2, k_atom: 3, k: 50.0, theta0: 1.95 },
            ],
            torsions: vec![Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 1.4, n: 3, delta: 0.0 }],
            named_dihedrals: vec![NamedDihedral { name: "phi".into(), atoms: [0, 1, 2, 3] }],
            titratable: vec![],
            exclusions: vec![],
        };
        top.build_exclusions();

        let n = top.n_atoms();
        let mut state = State::zeros(n);
        // Chain along x; solvent on a lattice well clear of the chain so no
        // near-contact pair makes finite differencing ill-conditioned.
        state.positions[0] = Vec3::new(0.0, 0.4, 0.0);
        state.positions[1] = Vec3::new(1.4, 0.0, 0.1);
        state.positions[2] = Vec3::new(2.5, 0.8, -0.2);
        state.positions[3] = Vec3::new(3.8, 0.5, 0.6);
        for i in 4..n {
            let k = i - 4;
            let jitter = rng.gen::<f64>() * 0.2;
            state.positions[i] = Vec3::new(
                (k % 4) as f64 * 3.8 - 2.0 + jitter,
                4.0 + (k / 4) as f64 * 3.8,
                3.5 + (k % 3) as f64 * 0.7,
            );
        }
        let sys = System::new(top, PbcBox::VACUUM, state).unwrap();
        let mut ff = ForceField::new(NonbondedParams {
            cutoff: 10.0,
            dielectric: 4.0,
            salt_molar: 0.15,
            ph: 7.0,
        });
        ff.set_restraints(vec![DihedralRestraint::new("phi", 0.02, 60.0)]);
        (sys, ff)
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // index pairs (atom, axis) read best this way
    fn forces_match_finite_difference_of_total_energy() {
        let (mut sys, ff) = rich_system(1);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        ff.energy_forces(&sys, &mut forces);
        let h = 1e-6;
        for atom in 0..sys.n_atoms() {
            for axis in 0..3 {
                let orig = sys.state.positions[atom];
                let mut bump = |delta: f64| {
                    let mut p = orig;
                    match axis {
                        0 => p.x += delta,
                        1 => p.y += delta,
                        _ => p.z += delta,
                    }
                    sys.state.positions[atom] = p;
                    let e = ff.energy(&sys).total();
                    sys.state.positions[atom] = orig;
                    e
                };
                let de = (bump(h) - bump(-h)) / (2.0 * h);
                let f = forces[atom][axis];
                assert!(
                    (de + f).abs() < 1e-4 * de.abs().max(1.0),
                    "atom {atom} axis {axis}: FD {de}, force {f}"
                );
            }
        }
    }

    #[test]
    fn total_force_is_zero() {
        let (sys, ff) = rich_system(2);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        ff.energy_forces(&sys, &mut forces);
        let total: Vec3 = forces.iter().copied().sum();
        assert!(total.norm() < 1e-9, "net force {}", total.norm());
    }

    #[test]
    fn parallel_matches_serial() {
        let (sys, ff) = rich_system(3);
        let mut f_ser = vec![Vec3::ZERO; sys.n_atoms()];
        let mut f_par = vec![Vec3::ZERO; sys.n_atoms()];
        let e_ser = ff.energy_forces(&sys, &mut f_ser);
        let e_par = ff.energy_forces_par(&sys, &mut f_par);
        assert!((e_ser.total() - e_par.total()).abs() < 1e-9);
        assert!((e_ser.lj - e_par.lj).abs() < 1e-9);
        assert!((e_ser.coulomb - e_par.coulomb).abs() < 1e-9);
        for (a, b) in f_ser.iter().zip(&f_par) {
            assert!((*a - *b).norm() < 1e-9);
        }
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let (sys, ff) = rich_system(4);
        let e = ff.energy(&sys);
        let total = e.bond + e.angle + e.torsion + e.lj + e.coulomb + e.restraint;
        assert!((e.total() - total).abs() < 1e-12);
        assert!((e.physical() - (total - e.restraint)).abs() < 1e-12);
        assert!(e.restraint >= 0.0, "harmonic restraint energy can't be negative");
    }

    #[test]
    fn exclusions_remove_bonded_pairs_from_nonbonded() {
        // Two strongly charged atoms bonded together: excluded, so the
        // Coulomb contribution must come only from non-bonded pairs.
        let mut top = Topology {
            atoms: vec![
                Atom { mass: 1.0, charge: 5.0, lj_epsilon: 0.0, lj_sigma: 3.0 },
                Atom { mass: 1.0, charge: -5.0, lj_epsilon: 0.0, lj_sigma: 3.0 },
            ],
            bonds: vec![Bond { i: 0, j: 1, k: 100.0, r0: 1.0 }],
            ..Default::default()
        };
        top.build_exclusions();
        let mut state = State::zeros(2);
        state.positions[1] = Vec3::new(1.0, 0.0, 0.0);
        let sys = System::new(top, PbcBox::VACUUM, state).unwrap();
        let ff = ForceField::new(NonbondedParams {
            cutoff: 10.0,
            dielectric: 1.0,
            salt_molar: 0.0,
            ph: 7.0,
        });
        let e = ff.energy(&sys);
        assert_eq!(e.coulomb, 0.0, "bonded pair must be excluded");
        assert_eq!(e.lj, 0.0);
    }

    #[test]
    fn salt_changes_energy_of_charged_system() {
        let (sys, mut ff) = rich_system(5);
        let e0 = ff.energy(&sys).coulomb;
        ff.nonbonded.salt_molar = 2.0;
        let e1 = ff.energy(&sys).coulomb;
        assert!((e0 - e1).abs() > 1e-9, "salt must perturb Coulomb energy");
    }

    #[test]
    fn restraint_energy_appears_only_in_restraint_channel() {
        let (sys, mut ff) = rich_system(6);
        let with = ff.energy(&sys);
        ff.set_restraints(vec![]);
        let without = ff.energy(&sys);
        assert_eq!(without.restraint, 0.0);
        assert!((with.physical() - without.total()).abs() < 1e-12);
    }

    #[test]
    fn energy_only_matches_energy_forces() {
        let (sys, ff) = rich_system(7);
        let mut forces = vec![Vec3::ZERO; sys.n_atoms()];
        let with_forces = ff.energy_forces(&sys, &mut forces);
        let energy_only = ff.energy(&sys);
        let mut ctx = EvalContext::new();
        let par_energy_only = ff.energy_par_ctx(&sys, &mut ctx);
        assert!((with_forces.total() - energy_only.total()).abs() < 1e-12);
        assert_eq!(with_forces, energy_only, "energy-only path must agree exactly");
        assert!((with_forces.total() - par_energy_only.total()).abs() < 1e-9);
    }

    #[test]
    fn ctx_reuse_matches_throwaway() {
        // One persistent context across several evaluations with drifting
        // coordinates must match fresh-context evaluations each time.
        let (mut sys, ff) = rich_system(8);
        let mut ctx = EvalContext::new();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let mut f_ctx = vec![Vec3::ZERO; sys.n_atoms()];
            let mut f_fresh = vec![Vec3::ZERO; sys.n_atoms()];
            let e_ctx = ff.energy_forces_ctx(&sys, &mut ctx, &mut f_ctx);
            let e_fresh = ff.energy_forces(&sys, &mut f_fresh);
            assert!((e_ctx.total() - e_fresh.total()).abs() < 1e-9);
            for (a, b) in f_ctx.iter().zip(&f_fresh) {
                assert!((*a - *b).norm() < 1e-9);
            }
            for p in &mut sys.state.positions {
                *p += Vec3::new(
                    rng.gen::<f64>() * 0.1 - 0.05,
                    rng.gen::<f64>() * 0.1 - 0.05,
                    rng.gen::<f64>() * 0.1 - 0.05,
                );
            }
        }
    }

    #[test]
    fn titratable_charges_respond_to_ph() {
        let (mut sys, mut ff) = rich_system(10);
        sys.topology.titratable = vec![Titratable { atom: 2, pka: 6.5, proton_charge: 1.0 }];
        ff.nonbonded.ph = 4.0; // well below pKa: site nearly fully protonated
        let acidic = ff.energy(&sys).coulomb;
        ff.nonbonded.ph = 10.0; // well above: deprotonated
        let basic = ff.energy(&sys).coulomb;
        assert!(
            (acidic - basic).abs() > 1e-6,
            "pH must change the Coulomb energy: {acidic} vs {basic}"
        );
        // The ctx path sees the pH change even when the context is reused.
        let mut ctx = EvalContext::new();
        ff.nonbonded.ph = 4.0;
        let acidic_ctx = ff.energy_ctx(&sys, &mut ctx).coulomb;
        ff.nonbonded.ph = 10.0;
        let basic_ctx = ff.energy_ctx(&sys, &mut ctx).coulomb;
        assert!((acidic - acidic_ctx).abs() < 1e-12);
        assert!((basic - basic_ctx).abs() < 1e-12);
    }

    /// A 500-atom LJ fluid in a periodic box: crosses CELL_LIST_THRESHOLD.
    fn lj_fluid(n: usize, l: f64, seed: u64) -> System {
        let mut rng = StdRng::seed_from_u64(seed);
        let top = Topology {
            atoms: vec![Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.15 }; n],
            ..Default::default()
        };
        let mut state = State::zeros(n);
        for p in &mut state.positions {
            *p = Vec3::new(rng.gen::<f64>() * l, rng.gen::<f64>() * l, rng.gen::<f64>() * l);
        }
        System::new(top, PbcBox::cubic(l), state).unwrap()
    }

    #[test]
    fn exchange_batch_reuses_pair_list() {
        // The S-exchange shape: repeated single-point energies on identical
        // coordinates under different salt concentrations. With one shared
        // context the pair list is built once and reused for the rest.
        let sys = lj_fluid(500, 24.0, 12);
        let mut ctx = EvalContext::new();
        for salt in [0.0, 0.15, 0.5, 2.0] {
            let ff = ForceField::new(NonbondedParams {
                cutoff: 6.0,
                dielectric: 1.0,
                salt_molar: salt,
                ph: 7.0,
            });
            ff.energy_ctx(&sys, &mut ctx);
        }
        assert_eq!(ctx.neighbors.rebuilds(), 1, "one build for the whole batch");
        assert_eq!(ctx.neighbors.reuses(), 3);
    }

    #[test]
    fn large_system_uses_cell_list_and_matches() {
        // Cross the CELL_LIST_THRESHOLD and verify against direct O(N^2).
        let sys = lj_fluid(500, 24.0, 9);
        let n = 500;
        let ff = ForceField::new(NonbondedParams {
            cutoff: 6.0,
            dielectric: 1.0,
            salt_molar: 0.0,
            ph: 7.0,
        });
        // Direct evaluation (bypass the threshold by scanning all pairs).
        let mut direct = 0.0;
        for (i, j) in all_pairs(n) {
            let d =
                sys.pbc.min_image(sys.state.positions[i as usize], sys.state.positions[j as usize]);
            direct += lj_pair_energy(
                &sys.topology.atoms[i as usize],
                &sys.topology.atoms[j as usize],
                d.norm_sq(),
                6.0,
            );
        }
        let e = ff.energy(&sys);
        assert!((e.lj - direct).abs() < 1e-6 * direct.abs().max(1.0), "{} vs {direct}", e.lj);
    }

    #[test]
    fn soa_force_path_matches_scalar_reference_on_fluid() {
        // Deterministic spot check (the proptest below fuzzes widely): the
        // SoA kernel against the scalar reference on a periodic LJ fluid
        // crossing the cell-list threshold.
        let sys = lj_fluid(600, 26.0, 17);
        let ff = ForceField::new(NonbondedParams {
            cutoff: 6.0,
            dielectric: 1.0,
            salt_molar: 0.0,
            ph: 7.0,
        });
        let mut f_soa = vec![Vec3::ZERO; sys.n_atoms()];
        let mut f_ref = vec![Vec3::ZERO; sys.n_atoms()];
        let e_soa = ff.energy_forces_ctx(&sys, &mut EvalContext::new(), &mut f_soa);
        let e_ref = ff.energy_forces_scalar_ctx(&sys, &mut EvalContext::new(), &mut f_ref);
        let scale = e_ref.total().abs().max(1.0);
        assert!((e_soa.lj - e_ref.lj).abs() < 1e-9 * scale);
        assert!((e_soa.coulomb - e_ref.coulomb).abs() < 1e-9 * scale);
        for (a, b) in f_soa.iter().zip(&f_ref) {
            assert!((*a - *b).norm() < 1e-9 * scale, "{a:?} vs {b:?}");
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        /// The SoA kernel is a pure layout/scheduling transform: on random
        /// systems — vacuum and periodic, with and without exclusions,
        /// screened and unscreened, charged and neutral, LJ-inactive types
        /// mixed in — energies and forces must match the scalar reference
        /// kernel to 1e-9 (relative to the energy scale).
        #[test]
        fn soa_matches_scalar_reference(
            seed in 0u64..1000,
            n in 2usize..60,
            periodic in proptest::bool::ANY,
            bonded in proptest::bool::ANY,
            salted in proptest::bool::ANY,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let l = 14.0;
            let atoms: Vec<Atom> = (0..n)
                .map(|k| Atom {
                    mass: 12.0,
                    charge: [0.0, 0.4, -0.4][k % 3],
                    lj_epsilon: if k % 4 == 0 { 0.0 } else { 0.12 },
                    lj_sigma: 3.2,
                })
                .collect();
            let mut top = Topology { atoms, ..Default::default() };
            if bonded {
                for i in 0..(n as u32 - 1).min(6) {
                    top.bonds.push(Bond { i, j: i + 1, k: 200.0, r0: 1.4 });
                }
                top.build_exclusions();
            }
            let mut state = State::zeros(n);
            // Jittered lattice: dense enough for many in-cutoff pairs,
            // without pathological overlaps.
            for (k, p) in state.positions.iter_mut().enumerate() {
                let jitter = Vec3::new(rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>());
                *p = Vec3::new(
                    (k % 4) as f64 * 3.4,
                    ((k / 4) % 4) as f64 * 3.4,
                    (k / 16) as f64 * 3.4,
                ) + jitter;
            }
            let pbc = if periodic { PbcBox::cubic(l) } else { PbcBox::VACUUM };
            let sys = System::new(top, pbc, state).unwrap();
            let ff = ForceField::new(NonbondedParams {
                cutoff: 6.0,
                dielectric: 4.0,
                salt_molar: if salted { 0.5 } else { 0.0 },
                ph: 7.0,
            });
            let mut f_soa = vec![Vec3::ZERO; n];
            let mut f_ref = vec![Vec3::ZERO; n];
            let e_soa = ff.energy_forces_ctx(&sys, &mut EvalContext::new(), &mut f_soa);
            let e_ref = ff.energy_forces_scalar_ctx(&sys, &mut EvalContext::new(), &mut f_ref);
            let scale = e_ref.total().abs().max(1.0);
            proptest::prop_assert!((e_soa.lj - e_ref.lj).abs() < 1e-9 * scale,
                "lj {} vs {}", e_soa.lj, e_ref.lj);
            proptest::prop_assert!((e_soa.coulomb - e_ref.coulomb).abs() < 1e-9 * scale,
                "coulomb {} vs {}", e_soa.coulomb, e_ref.coulomb);
            for (a, b) in f_soa.iter().zip(&f_ref) {
                proptest::prop_assert!((*a - *b).norm() < 1e-9 * scale, "{:?} vs {:?}", a, b);
            }
        }
    }
}
