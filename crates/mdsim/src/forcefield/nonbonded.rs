//! Nonbonded interactions: Lennard-Jones and salt-screened Coulomb.
//!
//! The Coulomb term uses Debye–Hückel screening, `E = C q_i q_j
//! exp(-kappa r) / (eps_r r)`, where the inverse Debye length `kappa` grows
//! with the square root of the salt concentration. This is what makes the
//! paper's S-REMD (salt-concentration exchange) physically meaningful in the
//! substrate: changing the salt parameter changes the potential, so exchanges
//! require re-evaluating single-point energies in the swapped salt states.
//!
//! Both terms are truncated at a cutoff with energy shifting so the potential
//! is continuous (no impulsive heating at the cutoff).

use crate::topology::Atom;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Coulomb constant in kcal·Å/(mol·e²).
pub const COULOMB_K: f64 = 332.063_71;

/// Debye length prefactor for water at ~300 K: `lambda_D = 3.04 / sqrt(I)` Å
/// with ionic strength `I` in mol/L.
pub const DEBYE_PREFACTOR: f64 = 3.04;

/// Parameters controlling the nonbonded evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NonbondedParams {
    /// Interaction cutoff in Å.
    pub cutoff: f64,
    /// Relative dielectric constant.
    pub dielectric: f64,
    /// Salt concentration in mol/L (0 = unscreened Coulomb).
    pub salt_molar: f64,
    /// Solvent pH (pH-REMD exchange parameter). Affects the effective
    /// charges of titratable sites via their Henderson–Hasselbalch
    /// protonation fraction; 7.0 is the neutral reference.
    pub ph: f64,
}

impl Default for NonbondedParams {
    fn default() -> Self {
        NonbondedParams { cutoff: 9.0, dielectric: 78.5, salt_molar: 0.0, ph: 7.0 }
    }
}

impl NonbondedParams {
    /// Inverse Debye screening length in Å⁻¹ for the current salt
    /// concentration (0 if no salt).
    #[inline]
    pub fn kappa(&self) -> f64 {
        if self.salt_molar <= 0.0 {
            0.0
        } else {
            self.salt_molar.sqrt() / DEBYE_PREFACTOR
        }
    }
}

/// Per-evaluation scalar invariants of the nonbonded kernel, hoisted out of
/// the inner pair loop: the screening length involves a `sqrt`, the Coulomb
/// prefactor a division, and the cutoff screening factor an `exp`, none of
/// which depend on the pair.
///
/// All derived quantities are computed with exactly the arithmetic (operand
/// order and association) of the reference kernel [`pair_energy_force`], so
/// the fast path is bitwise-identical, not merely close.
#[derive(Debug, Clone, Copy)]
pub struct NbScalars {
    /// Cutoff distance rc.
    pub rc: f64,
    /// rc².
    pub rc2: f64,
    /// Inverse Debye length.
    pub kappa: f64,
    /// `COULOMB_K / dielectric`.
    pub pref: f64,
    /// `exp(-kappa * rc)` — the Coulomb energy-shift screening factor.
    pub exp_mkrc: f64,
    /// `1 / rc` (hoisted so the SoA kernel never divides by the cutoff).
    pub inv_rc: f64,
    /// `exp(-kappa * rc) / rc` — the full Coulomb energy shift per unit
    /// `pref·q_i·q_j`, as a single multiply for the SoA kernel.
    pub cshift: f64,
}

impl NbScalars {
    pub fn new(params: &NonbondedParams) -> Self {
        let rc = params.cutoff;
        let kappa = params.kappa();
        let exp_mkrc = (-kappa * rc).exp();
        let inv_rc = 1.0 / rc;
        NbScalars {
            rc,
            rc2: rc * rc,
            kappa,
            pref: COULOMB_K / params.dielectric,
            exp_mkrc,
            inv_rc,
            cshift: exp_mkrc * inv_rc,
        }
    }
}

/// Mixed Lennard-Jones constants for one (type, type) combination.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LjEntry {
    /// `4 ε_ij` (Lorentz–Berthelot mixed); 0 marks an inactive pair.
    pub(crate) eps4: f64,
    /// `σ_ij²`.
    pub(crate) sigma2: f64,
    /// Energy shift so the LJ term vanishes at the cutoff.
    pub(crate) eshift: f64,
}

const LJ_INACTIVE: LjEntry = LjEntry { eps4: 0.0, sigma2: 0.0, eshift: 0.0 };

/// Precomputed Lennard-Jones mixing table.
///
/// Atoms are deduplicated into types by their exact `(ε, σ)` bits; the table
/// stores the mixed constants (including the cutoff shift, which costs a
/// division and two multiplies per pair in the naive kernel) for every type
/// combination. Real systems have a handful of types, so the table is tiny
/// and stays in cache.
///
/// The table depends only on the atoms' LJ parameters and the cutoff — not
/// on charges (pH adjustment changes charges only) nor on salt/dielectric —
/// so one table serves every salt/pH variant evaluated on a system.
#[derive(Debug, Clone)]
pub struct LjTable {
    cutoff: f64,
    n_types: usize,
    /// LJ type index per atom.
    type_of: Vec<u32>,
    /// Flattened `n_types × n_types` symmetric matrix.
    table: Vec<LjEntry>,
}

impl LjTable {
    /// Build the type assignment and mixing table for `atoms` at `cutoff`.
    pub fn build(atoms: &[Atom], cutoff: f64) -> Self {
        let mut index: HashMap<(u64, u64), u32> = HashMap::new();
        let mut types: Vec<(f64, f64)> = Vec::new();
        let type_of: Vec<u32> = atoms
            .iter()
            .map(|a| {
                *index.entry((a.lj_epsilon.to_bits(), a.lj_sigma.to_bits())).or_insert_with(|| {
                    types.push((a.lj_epsilon, a.lj_sigma));
                    (types.len() - 1) as u32
                })
            })
            .collect();
        let n_types = types.len();
        let mut table = vec![LJ_INACTIVE; n_types * n_types];
        for (ti, &(ei, si)) in types.iter().enumerate() {
            for (tj, &(ej, sj)) in types.iter().enumerate() {
                // Same expressions as the reference kernel, hoisted.
                let eps = (ei * ej).sqrt();
                if eps > 0.0 {
                    let sigma = 0.5 * (si + sj);
                    let src2 = (sigma * sigma) / (cutoff * cutoff);
                    let src6 = src2 * src2 * src2;
                    table[ti * n_types + tj] = LjEntry {
                        eps4: 4.0 * eps,
                        sigma2: sigma * sigma,
                        eshift: 4.0 * eps * (src6 * src6 - src6),
                    };
                }
            }
        }
        LjTable { cutoff, n_types, type_of, table }
    }

    /// Cheap staleness check: the table keys on atom count and cutoff (LJ
    /// parameters are immutable for any one [`crate::system::System`]).
    pub fn matches(&self, n_atoms: usize, cutoff: f64) -> bool {
        self.type_of.len() == n_atoms && self.cutoff == cutoff
    }

    /// Number of distinct LJ types found.
    pub fn n_types(&self) -> usize {
        self.n_types
    }

    /// Mixed constants for the atom pair `(i, j)` — used by the SoA kernel
    /// to gather per-pair parameters once per neighbor-list rebuild.
    #[inline]
    pub(crate) fn entry(&self, i: usize, j: usize) -> LjEntry {
        self.table[self.type_of[i] as usize * self.n_types + self.type_of[j] as usize]
    }

    /// Single-pass pair evaluation: `(lj_energy, coulomb_energy,
    /// force_over_r)` for atoms `i` and `j` at squared separation `r2`,
    /// with charges passed explicitly (they may be pH-adjusted copies).
    ///
    /// The energy split comes from the one evaluation — no second LJ-only
    /// pass. Arithmetic matches [`pair_energy_force`] bit for bit.
    #[inline]
    pub fn pair_eval(
        &self,
        sc: &NbScalars,
        qi: f64,
        qj: f64,
        i: usize,
        j: usize,
        r2: f64,
    ) -> (f64, f64, f64) {
        if r2 >= sc.rc2 || r2 < 1e-12 {
            return (0.0, 0.0, 0.0);
        }
        let r = r2.sqrt();
        let mut lj = 0.0;
        let mut de_dr = 0.0;

        let e = &self.table[self.type_of[i] as usize * self.n_types + self.type_of[j] as usize];
        if e.eps4 > 0.0 {
            let sr2 = e.sigma2 / r2;
            let sr6 = sr2 * sr2 * sr2;
            let sr12 = sr6 * sr6;
            lj = e.eps4 * (sr12 - sr6) - e.eshift;
            de_dr += e.eps4 * (-12.0 * sr12 + 6.0 * sr6) / r;
        }

        let mut coulomb = 0.0;
        let qq = qi * qj;
        if qq != 0.0 {
            coulomb = sc.pref * qq * (-sc.kappa * r).exp() / r - sc.pref * qq * sc.exp_mkrc / sc.rc;
            de_dr += -sc.pref * qq * (-sc.kappa * r).exp() * (sc.kappa * r + 1.0) / r2;
        }

        (lj, coulomb, -de_dr / r)
    }
}

/// Pairwise energy and `-(1/r) dE/dr` scaling factor for one LJ + screened
/// Coulomb pair. Returns `(energy, force_over_r)` so that the force on atom
/// `i` is `d * force_over_r` with `d = r_i - r_j`.
///
/// This is the straight-line reference kernel; the hot paths use
/// [`LjTable::pair_eval`], which hoists the per-pair invariants and returns
/// the LJ/Coulomb split from a single evaluation. The table kernel is
/// validated against this one bit for bit in the module tests.
#[inline]
pub fn pair_energy_force(ai: &Atom, aj: &Atom, r2: f64, params: &NonbondedParams) -> (f64, f64) {
    let rc = params.cutoff;
    if r2 >= rc * rc || r2 < 1e-12 {
        return (0.0, 0.0);
    }
    let r = r2.sqrt();
    let mut energy = 0.0;
    let mut de_dr = 0.0; // dE/dr

    // Lorentz-Berthelot mixing.
    let eps = (ai.lj_epsilon * aj.lj_epsilon).sqrt();
    if eps > 0.0 {
        let sigma = 0.5 * (ai.lj_sigma + aj.lj_sigma);
        let sr2 = (sigma * sigma) / r2;
        let sr6 = sr2 * sr2 * sr2;
        let sr12 = sr6 * sr6;
        // Shifted so E(rc) = 0.
        let src2 = (sigma * sigma) / (rc * rc);
        let src6 = src2 * src2 * src2;
        let eshift = 4.0 * eps * (src6 * src6 - src6);
        energy += 4.0 * eps * (sr12 - sr6) - eshift;
        de_dr += 4.0 * eps * (-12.0 * sr12 + 6.0 * sr6) / r;
    }

    let qq = ai.charge * aj.charge;
    if qq != 0.0 {
        let kappa = params.kappa();
        let pref = COULOMB_K / params.dielectric;
        let screened = |rr: f64| pref * qq * (-kappa * rr).exp() / rr;
        energy += screened(r) - screened(rc);
        // dE/dr of pref*qq*exp(-kr)/r = -pref*qq*exp(-kr)*(k r + 1)/r^2
        de_dr += -pref * qq * (-kappa * r).exp() * (kappa * r + 1.0) / r2;
    }

    (energy, -de_dr / r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lj_atom() -> Atom {
        Atom { mass: 16.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.2 }
    }

    fn charged(q: f64) -> Atom {
        Atom { mass: 23.0, charge: q, lj_epsilon: 0.0, lj_sigma: 3.0 }
    }

    #[test]
    fn lj_minimum_at_two_pow_sixth_sigma() {
        let a = lj_atom();
        let params = NonbondedParams { cutoff: 50.0, ..Default::default() };
        let rmin = 2f64.powf(1.0 / 6.0) * a.lj_sigma;
        let (_, f_over_r) = pair_energy_force(&a, &a, rmin * rmin, &params);
        assert!(f_over_r.abs() < 1e-9, "force at minimum should vanish: {f_over_r}");
        // Slightly closer -> repulsive (positive force_over_r pushes apart).
        let (_, f_in) = pair_energy_force(&a, &a, (rmin * 0.95).powi(2), &params);
        assert!(f_in > 0.0);
        // Slightly farther -> attractive.
        let (_, f_out) = pair_energy_force(&a, &a, (rmin * 1.05).powi(2), &params);
        assert!(f_out < 0.0);
    }

    #[test]
    fn energy_is_zero_at_cutoff() {
        let a = lj_atom();
        let params = NonbondedParams { cutoff: 9.0, ..Default::default() };
        let (e, f) = pair_energy_force(&a, &a, 81.0, &params);
        assert_eq!(e, 0.0);
        assert_eq!(f, 0.0);
        // Just inside the cutoff the shifted energy is continuous (tiny).
        let (e_in, _) = pair_energy_force(&a, &a, 80.9, &params);
        assert!(e_in.abs() < 1e-3, "shifted LJ near cutoff: {e_in}");
    }

    #[test]
    fn opposite_charges_attract() {
        let params = NonbondedParams { cutoff: 30.0, dielectric: 1.0, salt_molar: 0.0, ph: 7.0 };
        let (e, f_over_r) = pair_energy_force(&charged(1.0), &charged(-1.0), 25.0, &params);
        assert!(e < 0.0);
        assert!(f_over_r < 0.0, "attractive pair must pull together");
        let (e2, f2) = pair_energy_force(&charged(1.0), &charged(1.0), 25.0, &params);
        assert!(e2 > 0.0);
        assert!(f2 > 0.0);
    }

    #[test]
    fn salt_screens_coulomb() {
        let lo = NonbondedParams { cutoff: 30.0, dielectric: 1.0, salt_molar: 0.0, ph: 7.0 };
        let hi = NonbondedParams { cutoff: 30.0, dielectric: 1.0, salt_molar: 1.0, ph: 7.0 };
        let (e_lo, _) = pair_energy_force(&charged(1.0), &charged(1.0), 16.0, &lo);
        let (e_hi, _) = pair_energy_force(&charged(1.0), &charged(1.0), 16.0, &hi);
        assert!(e_hi < e_lo, "screening must reduce repulsion: {e_hi} vs {e_lo}");
        assert!(e_hi > 0.0);
    }

    #[test]
    fn kappa_scales_with_sqrt_concentration() {
        let p1 = NonbondedParams { salt_molar: 0.25, ..Default::default() };
        let p2 = NonbondedParams { salt_molar: 1.0, ..Default::default() };
        assert!((p2.kappa() / p1.kappa() - 2.0).abs() < 1e-12);
        assert_eq!(NonbondedParams::default().kappa(), 0.0);
    }

    #[test]
    fn table_kernel_matches_reference_bitwise() {
        // The precomputed-table kernel must reproduce the reference kernel
        // exactly: energies (split LJ/Coulomb summing to the reference
        // total) and force_over_r, for a mix of charged, neutral, LJ-only
        // and inert atoms across several parameter sets.
        let atoms = vec![
            Atom { mass: 12.0, charge: 0.3, lj_epsilon: 0.1, lj_sigma: 3.4 },
            Atom { mass: 14.0, charge: -0.5, lj_epsilon: 0.12, lj_sigma: 3.3 },
            Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.15, lj_sigma: 3.15 },
            Atom { mass: 23.0, charge: 1.0, lj_epsilon: 0.0, lj_sigma: 3.0 },
            Atom { mass: 12.0, charge: 0.3, lj_epsilon: 0.1, lj_sigma: 3.4 }, // dup type
        ];
        for params in [
            NonbondedParams::default(),
            NonbondedParams { cutoff: 12.0, dielectric: 2.0, salt_molar: 0.5, ph: 7.0 },
            NonbondedParams { cutoff: 7.5, dielectric: 78.5, salt_molar: 1.0, ph: 4.0 },
        ] {
            let table = LjTable::build(&atoms, params.cutoff);
            let sc = NbScalars::new(&params);
            for i in 0..atoms.len() {
                for j in (i + 1)..atoms.len() {
                    for r in [0.5, 2.9, 3.6, 5.0, 7.4, 9.1, 14.0] {
                        let r2 = r * r;
                        let (e_ref, f_ref) = pair_energy_force(&atoms[i], &atoms[j], r2, &params);
                        let (lj, coul, f) =
                            table.pair_eval(&sc, atoms[i].charge, atoms[j].charge, i, j, r2);
                        assert_eq!(lj + coul, e_ref, "energy i={i} j={j} r={r}");
                        assert_eq!(f, f_ref, "force i={i} j={j} r={r}");
                    }
                }
            }
        }
    }

    #[test]
    fn lj_table_dedups_types() {
        let atoms = vec![
            Atom::lj(18.0, 0.15, 3.15),
            Atom::lj(18.0, 0.15, 3.15),
            Atom::lj(12.0, 0.1, 3.4),
            Atom::lj(18.0, 0.15, 3.15),
        ];
        let table = LjTable::build(&atoms, 9.0);
        assert_eq!(table.n_types(), 2);
        assert!(table.matches(4, 9.0));
        assert!(!table.matches(5, 9.0));
        assert!(!table.matches(4, 8.0));
    }

    #[test]
    fn coulomb_force_matches_finite_difference() {
        let params = NonbondedParams { cutoff: 30.0, dielectric: 2.0, salt_molar: 0.5, ph: 7.0 };
        let (ai, aj) = (charged(0.8), charged(-0.6));
        let r = 6.0;
        let h = 1e-6;
        let (e_plus, _) = pair_energy_force(&ai, &aj, (r + h) * (r + h), &params);
        let (e_minus, _) = pair_energy_force(&ai, &aj, (r - h) * (r - h), &params);
        let de_dr_fd = (e_plus - e_minus) / (2.0 * h);
        let (_, f_over_r) = pair_energy_force(&ai, &aj, r * r, &params);
        // force_over_r = -(1/r) dE/dr  =>  dE/dr = -f_over_r * r
        assert!((de_dr_fd + f_over_r * r).abs() < 1e-6, "fd {de_dr_fd} vs {}", -f_over_r * r);
    }

    #[test]
    fn lj_force_matches_finite_difference() {
        let params = NonbondedParams { cutoff: 15.0, ..Default::default() };
        let a = lj_atom();
        for r in [3.0, 3.6, 4.5, 7.0] {
            let h = 1e-6;
            let (e_plus, _) = pair_energy_force(&a, &a, (r + h) * (r + h), &params);
            let (e_minus, _) = pair_energy_force(&a, &a, (r - h) * (r - h), &params);
            let de_dr_fd = (e_plus - e_minus) / (2.0 * h);
            let (_, f_over_r) = pair_energy_force(&a, &a, r * r, &params);
            assert!(
                (de_dr_fd + f_over_r * r).abs() < 1e-4 * de_dr_fd.abs().max(1.0),
                "r={r}: fd {de_dr_fd} vs {}",
                -f_over_r * r
            );
        }
    }
}
