//! Bonded force-field terms: harmonic bonds, harmonic angles and periodic
//! torsions. Each function accumulates forces in-place and returns the term
//! energy. All formulations are validated against finite differences in the
//! module tests of [`crate::forcefield`].

use crate::system::PbcBox;
use crate::topology::{Angle, Bond, Torsion};
use crate::vec3::Vec3;

/// Harmonic bond energy `k (r - r0)^2` (Amber convention, no 1/2 factor).
pub fn bond_energy_force(
    bond: &Bond,
    positions: &[Vec3],
    pbc: &PbcBox,
    forces: &mut [Vec3],
) -> f64 {
    let (i, j) = (bond.i as usize, bond.j as usize);
    let d = pbc.min_image(positions[i], positions[j]);
    let r = d.norm();
    let dr = r - bond.r0;
    let energy = bond.k * dr * dr;
    if r > 1e-12 {
        // dE/dr = 2 k (r - r0); force on i is -dE/dr * d/r.
        let f = d * (-2.0 * bond.k * dr / r);
        forces[i] += f;
        forces[j] -= f;
    }
    energy
}

/// Energy of a harmonic bond without force accumulation (single-point path).
/// Uses the same expressions as [`bond_energy_force`], so the two agree
/// bitwise.
pub fn bond_energy(bond: &Bond, positions: &[Vec3], pbc: &PbcBox) -> f64 {
    let (i, j) = (bond.i as usize, bond.j as usize);
    let d = pbc.min_image(positions[i], positions[j]);
    let r = d.norm();
    let dr = r - bond.r0;
    bond.k * dr * dr
}

/// Harmonic angle energy `k (theta - theta0)^2`.
pub fn angle_energy_force(
    angle: &Angle,
    positions: &[Vec3],
    pbc: &PbcBox,
    forces: &mut [Vec3],
) -> f64 {
    let (i, j, k) = (angle.i as usize, angle.j as usize, angle.k_atom as usize);
    let u = pbc.min_image(positions[i], positions[j]);
    let v = pbc.min_image(positions[k], positions[j]);
    let nu = u.norm();
    let nv = v.norm();
    if nu < 1e-12 || nv < 1e-12 {
        return 0.0;
    }
    let cos_t = (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0);
    let theta = cos_t.acos();
    let dtheta = theta - angle.theta0;
    let energy = angle.k * dtheta * dtheta;

    let sin_t = (1.0 - cos_t * cos_t).sqrt().max(1e-8);
    let de_dtheta = 2.0 * angle.k * dtheta;
    // dtheta/dri = -(v_hat - u_hat cos_t) / (|u| sin_t); F_i = -dE/dtheta * dtheta/dri.
    let fi = (v / nv - u * (cos_t / nu)) * (de_dtheta / (nu * sin_t));
    let fk = (u / nu - v * (cos_t / nv)) * (de_dtheta / (nv * sin_t));
    forces[i] += fi;
    forces[k] += fk;
    forces[j] -= fi + fk;
    energy
}

/// Energy of a harmonic angle without force accumulation.
pub fn angle_energy(angle: &Angle, positions: &[Vec3], pbc: &PbcBox) -> f64 {
    let (i, j, k) = (angle.i as usize, angle.j as usize, angle.k_atom as usize);
    let u = pbc.min_image(positions[i], positions[j]);
    let v = pbc.min_image(positions[k], positions[j]);
    let nu = u.norm();
    let nv = v.norm();
    if nu < 1e-12 || nv < 1e-12 {
        return 0.0;
    }
    let cos_t = (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0);
    let theta = cos_t.acos();
    let dtheta = theta - angle.theta0;
    angle.k * dtheta * dtheta
}

/// Dihedral angle over four positions, radians in `(-pi, pi]`, plus the
/// intermediates needed for the force evaluation.
#[inline]
pub(crate) fn dihedral_geometry(
    ri: Vec3,
    rj: Vec3,
    rk: Vec3,
    rl: Vec3,
    pbc: &PbcBox,
) -> Option<(f64, Vec3, Vec3, Vec3, Vec3, Vec3)> {
    let b1 = pbc.min_image(rj, ri);
    let b2 = pbc.min_image(rk, rj);
    let b3 = pbc.min_image(rl, rk);
    let n1 = b1.cross(b2);
    let n2 = b2.cross(b3);
    let b2n = b2.norm();
    if n1.norm_sq() < 1e-18 || n2.norm_sq() < 1e-18 || b2n < 1e-9 {
        return None; // degenerate geometry: torsion undefined
    }
    let m1 = n1.cross(b2 / b2n);
    let x = n1.dot(n2);
    let y = m1.dot(n2);
    let phi = y.atan2(x);
    Some((phi, b1, b2, b3, n1, n2))
}

/// Apply a generalized torsion force given `dE/dphi` at the four atoms.
///
/// Shared by the periodic torsion term and by harmonic dihedral (umbrella)
/// restraints, which differ only in their `E(phi)`.
#[allow(clippy::too_many_arguments)] // geometry intermediates, hot path
#[inline]
pub(crate) fn apply_dihedral_force(
    atoms: [usize; 4],
    de_dphi: f64,
    b1: Vec3,
    b2: Vec3,
    b3: Vec3,
    n1: Vec3,
    n2: Vec3,
    forces: &mut [Vec3],
) {
    let b2n = b2.norm();
    let fi = n1 * (-de_dphi * b2n / n1.norm_sq());
    let fl = n2 * (de_dphi * b2n / n2.norm_sq());
    // Distribute the torque to the inner atoms (exact gradient identity,
    // verified against finite differences in the forcefield tests):
    // F_j = -(1+p) F_i + q F_l,  F_k = p F_i - (1+q) F_l, with
    // p = b1.b2/|b2|^2 and q = b3.b2/|b2|^2.
    let p = b1.dot(b2) / b2.norm_sq();
    let q = b3.dot(b2) / b2.norm_sq();
    let sv = fi * p - fl * q;
    let fj = -fi - sv;
    let fk = -fl + sv;
    forces[atoms[0]] += fi;
    forces[atoms[1]] += fj;
    forces[atoms[2]] += fk;
    forces[atoms[3]] += fl;
}

/// Periodic torsion energy `k (1 + cos(n phi - delta))`.
pub fn torsion_energy_force(
    torsion: &Torsion,
    positions: &[Vec3],
    pbc: &PbcBox,
    forces: &mut [Vec3],
) -> f64 {
    let (i, j, k, l) =
        (torsion.i as usize, torsion.j as usize, torsion.k_atom as usize, torsion.l as usize);
    let Some((phi, b1, b2, b3, n1, n2)) =
        dihedral_geometry(positions[i], positions[j], positions[k], positions[l], pbc)
    else {
        return 0.0;
    };
    let n = torsion.n as f64;
    let arg = n * phi - torsion.delta;
    let energy = torsion.k * (1.0 + arg.cos());
    let de_dphi = -torsion.k * n * arg.sin();
    apply_dihedral_force([i, j, k, l], de_dphi, b1, b2, b3, n1, n2, forces);
    energy
}

/// Energy of a periodic torsion without force accumulation.
pub fn torsion_energy(torsion: &Torsion, positions: &[Vec3], pbc: &PbcBox) -> f64 {
    let (i, j, k, l) =
        (torsion.i as usize, torsion.j as usize, torsion.k_atom as usize, torsion.l as usize);
    let Some((phi, ..)) =
        dihedral_geometry(positions[i], positions[j], positions[k], positions[l], pbc)
    else {
        return 0.0;
    };
    let n = torsion.n as f64;
    let arg = n * phi - torsion.delta;
    torsion.k * (1.0 + arg.cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_only_matches_energy_force_variants() {
        let pos = [
            Vec3::new(0.1, 1.0, 0.2),
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(1.3, -0.9, 0.7),
        ];
        let pbc = PbcBox::VACUUM;
        let mut f = vec![Vec3::ZERO; 4];
        let bond = Bond { i: 0, j: 1, k: 120.0, r0: 1.2 };
        assert_eq!(bond_energy(&bond, &pos, &pbc), bond_energy_force(&bond, &pos, &pbc, &mut f));
        let angle = Angle { i: 0, j: 1, k_atom: 2, k: 35.0, theta0: 1.9 };
        assert_eq!(
            angle_energy(&angle, &pos, &pbc),
            angle_energy_force(&angle, &pos, &pbc, &mut f)
        );
        let t = Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 3.0, n: 3, delta: 0.4 };
        assert_eq!(torsion_energy(&t, &pos, &pbc), torsion_energy_force(&t, &pos, &pbc, &mut f));
    }

    #[test]
    fn bond_at_equilibrium_has_zero_energy_and_force() {
        let bond = Bond { i: 0, j: 1, k: 300.0, r0: 1.5 };
        let pos = [Vec3::ZERO, Vec3::new(1.5, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bond_energy_force(&bond, &pos, &PbcBox::VACUUM, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f[0].norm() < 1e-12);
    }

    #[test]
    fn stretched_bond_pulls_atoms_together() {
        let bond = Bond { i: 0, j: 1, k: 100.0, r0: 1.0 };
        let pos = [Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 2];
        let e = bond_energy_force(&bond, &pos, &PbcBox::VACUUM, &mut f);
        assert!((e - 100.0).abs() < 1e-12); // k * (2-1)^2
        assert!(f[0].x > 0.0, "atom 0 pulled toward atom 1");
        assert!(f[1].x < 0.0);
        assert!((f[0] + f[1]).norm() < 1e-12, "Newton's third law");
    }

    #[test]
    fn angle_at_equilibrium_is_zero() {
        let angle = Angle { i: 0, j: 1, k_atom: 2, k: 50.0, theta0: std::f64::consts::FRAC_PI_2 };
        let pos = [Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO, Vec3::new(0.0, 1.0, 0.0)];
        let mut f = vec![Vec3::ZERO; 3];
        let e = angle_energy_force(&angle, &pos, &PbcBox::VACUUM, &mut f);
        assert!(e.abs() < 1e-12);
        assert!(f.iter().all(|v| v.norm() < 1e-9));
    }

    #[test]
    fn angle_forces_sum_to_zero() {
        let angle = Angle { i: 0, j: 1, k_atom: 2, k: 35.0, theta0: 1.9 };
        let pos = [Vec3::new(1.0, 0.3, -0.2), Vec3::ZERO, Vec3::new(-0.4, 1.1, 0.6)];
        let mut f = vec![Vec3::ZERO; 3];
        angle_energy_force(&angle, &pos, &PbcBox::VACUUM, &mut f);
        let total: Vec3 = f.iter().copied().sum();
        assert!(total.norm() < 1e-10);
    }

    #[test]
    fn torsion_minimum_energy_at_phase() {
        // E = k (1 + cos(phi)) has minimum 0 at phi = ±pi (trans).
        let t = Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 2.0, n: 1, delta: 0.0 };
        let pos = [
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, -1.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = torsion_energy_force(&t, &pos, &PbcBox::VACUUM, &mut f);
        assert!(e.abs() < 1e-9, "E = {e}");
        assert!(f.iter().all(|v| v.norm() < 1e-8));
    }

    #[test]
    fn torsion_forces_conserve_momentum() {
        let t = Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 3.0, n: 3, delta: 0.4 };
        let pos = [
            Vec3::new(0.1, 1.0, 0.2),
            Vec3::new(0.0, 0.0, 0.1),
            Vec3::new(1.0, 0.1, 0.0),
            Vec3::new(1.3, -0.9, 0.7),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        torsion_energy_force(&t, &pos, &PbcBox::VACUUM, &mut f);
        let total: Vec3 = f.iter().copied().sum();
        assert!(total.norm() < 1e-10, "net force {}", total.norm());
    }

    #[test]
    fn degenerate_torsion_returns_zero() {
        // Collinear atoms: n1 = 0 -> undefined torsion must not NaN.
        let t = Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 3.0, n: 2, delta: 0.0 };
        let pos = [
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        let mut f = vec![Vec3::ZERO; 4];
        let e = torsion_energy_force(&t, &pos, &PbcBox::VACUUM, &mut f);
        assert_eq!(e, 0.0);
        assert!(f.iter().all(|v| v.is_finite()));
    }
}
