//! Simple Lennard-Jones fluid — a second workload family used by tests,
//! benches and the quickstart example (argon-like parameters).

use crate::forcefield::{ForceField, NonbondedParams};
use crate::system::{PbcBox, State, System};
use crate::topology::{Atom, Topology};
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build an LJ fluid of `n` argon-like atoms at reduced density `rho_star`
/// (atoms per σ³; liquid argon ≈ 0.8).
pub fn lj_fluid(n: usize, rho_star: f64, seed: u64) -> System {
    assert!(n > 0 && rho_star > 0.0);
    let sigma: f64 = 3.4;
    let volume = n as f64 * sigma.powi(3) / rho_star;
    let l = volume.cbrt();
    let top = Topology { atoms: vec![Atom::lj(39.95, 0.238, sigma); n], ..Default::default() };

    let mut state = State::zeros(n);
    let per_side = (n as f64).cbrt().ceil() as usize;
    let spacing = l / per_side as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut placed = 0;
    'fill: for x in 0..per_side {
        for y in 0..per_side {
            for z in 0..per_side {
                if placed == n {
                    break 'fill;
                }
                let jitter = Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 0.2,
                    (rng.gen::<f64>() - 0.5) * 0.2,
                    (rng.gen::<f64>() - 0.5) * 0.2,
                );
                state.positions[placed] = Vec3::new(
                    (x as f64 + 0.5) * spacing,
                    (y as f64 + 0.5) * spacing,
                    (z as f64 + 0.5) * spacing,
                ) + jitter;
                placed += 1;
            }
        }
    }
    System::new(top, PbcBox::cubic(l), state).expect("fluid topology is valid")
}

/// Force field matched to [`lj_fluid`].
pub fn lj_forcefield() -> ForceField {
    ForceField::new(NonbondedParams { cutoff: 8.5, dielectric: 1.0, salt_molar: 0.0, ph: 7.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{EvalMode, Integrator, LangevinBaoab};
    use rand::SeedableRng;

    #[test]
    fn density_is_respected() {
        let sys = lj_fluid(125, 0.8, 1);
        let v = sys.pbc.volume().unwrap();
        let rho = 125.0 * 3.4f64.powi(3) / v;
        assert!((rho - 0.8).abs() < 1e-9);
    }

    #[test]
    fn fluid_equilibrates() {
        let mut sys = lj_fluid(64, 0.6, 2);
        let ff = lj_forcefield();
        let mut integ = LangevinBaoab::new(0.004, 95.0, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        sys.assign_maxwell_boltzmann(95.0, &mut rng);
        for _ in 0..1500 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        assert!(sys.state.is_finite());
        let e = ff.energy(&sys);
        assert!(e.lj < 0.0, "liquid should be cohesive, E_lj = {}", e.lj);
    }
}
