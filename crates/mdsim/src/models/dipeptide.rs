//! Reduced alanine-dipeptide model (Ace-Ala-Nme backbone).
//!
//! The paper validates RepEx with alanine dipeptide solvated in water
//! (2 881 atoms; 64 366 for the multi-core experiments) and measures free
//! energy over the φ/ψ backbone torsions. Our reduced model keeps exactly
//! the observable that matters — a 2-D Ramachandran-like free-energy surface
//! over (φ, ψ) with few-kcal/mol barriers — on a 7-atom heavy-backbone
//! chain:
//!
//! ```text
//!   CH3 - C' - N - CA - C' - N - CH3
//!    0     1   2    3    4    5    6
//!           φ = (1,2,3,4)   ψ = (2,3,4,5)
//! ```
//!
//! Solvated variants add neutral LJ "water" particles in a periodic box at
//! liquid-water number density, which reproduces the *computational cost*
//! scale of the paper's systems without changing the torsional physics.

use crate::forcefield::{ForceField, NonbondedParams};
use crate::system::{PbcBox, State, System};
use crate::topology::{Angle, Atom, Bond, NamedDihedral, Titratable, Topology, Torsion};
use crate::vec3::Vec3;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of backbone atoms in the reduced dipeptide.
pub const BACKBONE_ATOMS: usize = 7;

/// Liquid-water number density in atoms/Å³ (one site per water).
const WATER_NUMBER_DENSITY: f64 = 0.0334;

fn backbone_topology() -> Topology {
    let b = |i: u32, j: u32| Bond { i, j, k: 300.0, r0: 1.45 };
    let a = |i: u32, j: u32, k_atom: u32| Angle { i, j, k_atom, k: 60.0, theta0: 1.95 };
    // Ramachandran-like torsion terms: a 2-fold + 1-fold combination per
    // backbone dihedral produces two basins separated by ~3-5 kcal/mol.
    let torsions = vec![
        // phi (1-2-3-4)
        Torsion { i: 1, j: 2, k_atom: 3, l: 4, k: 1.6, n: 2, delta: 0.0 },
        Torsion { i: 1, j: 2, k_atom: 3, l: 4, k: 0.8, n: 1, delta: std::f64::consts::FRAC_PI_3 },
        // psi (2-3-4-5)
        Torsion { i: 2, j: 3, k_atom: 4, l: 5, k: 1.4, n: 2, delta: 0.5 },
        Torsion { i: 2, j: 3, k_atom: 4, l: 5, k: 0.7, n: 1, delta: -std::f64::consts::FRAC_PI_4 },
        // End-cap torsions keep the chain from collapsing.
        Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 0.4, n: 3, delta: 0.0 },
        Torsion { i: 3, j: 4, k_atom: 5, l: 6, k: 0.4, n: 3, delta: 0.0 },
    ];
    // Alternating partial charges make the Coulomb term (and hence salt
    // screening, i.e. S-REMD) matter.
    let charges = [0.0, 0.45, -0.35, 0.10, 0.45, -0.35, 0.0];
    let atoms = charges
        .iter()
        .map(|&q| Atom { mass: 13.0, charge: q, lj_epsilon: 0.09, lj_sigma: 3.3 })
        .collect();
    let mut top = Topology {
        atoms,
        bonds: (0..6).map(|i| b(i, i + 1)).collect(),
        angles: (0..5).map(|i| a(i, i + 1, i + 2)).collect(),
        torsions,
        named_dihedrals: vec![
            NamedDihedral { name: "phi".into(), atoms: [1, 2, 3, 4] },
            NamedDihedral { name: "psi".into(), atoms: [2, 3, 4, 5] },
        ],
        // Two titratable sites (amide-nitrogen-like) so pH-REMD has real
        // physics to act on: protonation shifts their effective charges.
        titratable: vec![
            Titratable { atom: 2, pka: 6.5, proton_charge: 0.5 },
            Titratable { atom: 5, pka: 4.5, proton_charge: 0.5 },
        ],
        exclusions: vec![],
    };
    top.build_exclusions();
    top
}

/// Extended-chain starting coordinates for the backbone, centred at `origin`.
fn backbone_positions(origin: Vec3) -> Vec<Vec3> {
    // Zig-zag along x so no torsion starts degenerate.
    (0..BACKBONE_ATOMS)
        .map(|i| {
            origin
                + Vec3::new(
                    i as f64 * 1.25,
                    if i % 2 == 0 { 0.45 } else { -0.45 },
                    (i % 3) as f64 * 0.15,
                )
        })
        .collect()
}

/// The vacuum reduced dipeptide (7 atoms) — cheap enough for real REMD
/// sampling in tests, examples and the Fig. 4 validation run.
pub fn alanine_dipeptide() -> System {
    let top = backbone_topology();
    let mut state = State::zeros(BACKBONE_ATOMS);
    state.positions = backbone_positions(Vec3::ZERO);
    System::new(top, PbcBox::VACUUM, state).expect("backbone topology is valid")
}

/// A solvated dipeptide with `total_atoms` atoms (backbone + LJ solvent) in
/// a periodic box at liquid-water density. Matches the paper's cost scale:
/// `total_atoms = 2881` for the 1-D experiments, `64366` for Fig. 12.
pub fn solvated_alanine_dipeptide(total_atoms: usize, seed: u64) -> System {
    assert!(
        total_atoms >= BACKBONE_ATOMS,
        "need at least {BACKBONE_ATOMS} atoms, got {total_atoms}"
    );
    let n_solvent = total_atoms - BACKBONE_ATOMS;
    let volume = total_atoms as f64 / WATER_NUMBER_DENSITY;
    let l = volume.cbrt();

    let mut top = backbone_topology();
    for _ in 0..n_solvent {
        top.atoms.push(Atom { mass: 18.0, charge: 0.0, lj_epsilon: 0.152, lj_sigma: 3.15 });
    }

    let mut state = State::zeros(total_atoms);
    let centre = Vec3::splat(l / 2.0);
    let bb = backbone_positions(centre - Vec3::new(3.75, 0.0, 0.0));
    state.positions[..BACKBONE_ATOMS].copy_from_slice(&bb);

    // Solvent on a jittered cubic lattice, skipping sites too close to the
    // backbone — avoids initial overlaps that would blow up the integrator.
    let mut rng = StdRng::seed_from_u64(seed);
    let per_side = (total_atoms as f64).cbrt().ceil() as usize;
    let spacing = l / per_side as f64;
    let mut placed = 0;
    'fill: for x in 0..per_side {
        for y in 0..per_side {
            for z in 0..per_side {
                if placed == n_solvent {
                    break 'fill;
                }
                let site = Vec3::new(
                    (x as f64 + 0.5) * spacing,
                    (y as f64 + 0.5) * spacing,
                    (z as f64 + 0.5) * spacing,
                );
                if bb.iter().any(|p| p.distance(site) < 2.5) {
                    continue;
                }
                let jitter = Vec3::new(
                    (rng.gen::<f64>() - 0.5) * 0.3,
                    (rng.gen::<f64>() - 0.5) * 0.3,
                    (rng.gen::<f64>() - 0.5) * 0.3,
                );
                state.positions[BACKBONE_ATOMS + placed] = site + jitter;
                placed += 1;
            }
        }
    }
    assert_eq!(placed, n_solvent, "lattice too small to place all solvent");
    System::new(top, PbcBox::cubic(l), state).expect("solvated topology is valid")
}

/// The force field the dipeptide models are parameterized for.
pub fn dipeptide_forcefield() -> ForceField {
    ForceField::new(NonbondedParams { cutoff: 9.0, dielectric: 78.5, salt_molar: 0.0, ph: 7.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrator::{EvalMode, Integrator, LangevinBaoab};

    #[test]
    fn vacuum_model_shape() {
        let sys = alanine_dipeptide();
        assert_eq!(sys.n_atoms(), BACKBONE_ATOMS);
        assert!(sys.topology.dihedral("phi").is_some());
        assert!(sys.topology.dihedral("psi").is_some());
        assert!(sys.topology.validate().is_ok());
        // Starting geometry is non-degenerate: both dihedrals measurable.
        assert!(sys.named_dihedral_angle("phi").unwrap().is_finite());
        assert!(sys.named_dihedral_angle("psi").unwrap().is_finite());
    }

    #[test]
    fn paper_atom_counts_build() {
        let small = solvated_alanine_dipeptide(2881, 1);
        assert_eq!(small.n_atoms(), 2881);
        assert!(small.pbc.lengths().is_some());
        // Density within 10% of water.
        let v = small.pbc.volume().unwrap();
        let density = 2881.0 / v;
        assert!((density - 0.0334).abs() < 0.004, "density {density}");
    }

    #[test]
    fn no_initial_overlaps_in_solvated_system() {
        let sys = solvated_alanine_dipeptide(600, 3);
        let p = &sys.state.positions;
        for i in 0..sys.n_atoms() {
            for j in (i + 1)..sys.n_atoms() {
                let r = sys.pbc.min_image(p[i], p[j]).norm();
                assert!(r > 0.8, "atoms {i},{j} overlap at r={r}");
            }
        }
    }

    #[test]
    fn vacuum_dynamics_is_stable() {
        let mut sys = alanine_dipeptide();
        let ff = dipeptide_forcefield();
        let mut integ = LangevinBaoab::new(0.002, 300.0, 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        for _ in 0..5000 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        assert!(sys.state.is_finite(), "trajectory blew up");
        // Chain stays bonded: no bond stretched beyond 2x equilibrium.
        for b in &sys.topology.bonds {
            let r = (sys.state.positions[b.i as usize] - sys.state.positions[b.j as usize]).norm();
            assert!(r < 2.0 * b.r0, "bond {}-{} at {r} Å", b.i, b.j);
        }
    }

    #[test]
    fn torsional_surface_has_multiple_basins() {
        // Scan the phi torsion energy through rotation of the terminal
        // group: the potential must be non-constant with at least ~2 kcal/mol
        // of corrugation (otherwise T-REMD would be pointless).
        let sys = alanine_dipeptide();
        let phi_terms: Vec<_> = sys
            .topology
            .torsions
            .iter()
            .filter(|t| (t.i, t.j, t.k_atom, t.l) == (1, 2, 3, 4))
            .collect();
        assert!(phi_terms.len() >= 2);
        let energy_at = |phi: f64| -> f64 {
            phi_terms.iter().map(|t| t.k * (1.0 + (t.n as f64 * phi - t.delta).cos())).sum()
        };
        let samples: Vec<f64> =
            (0..72).map(|i| energy_at(i as f64 * 5.0_f64.to_radians())).collect();
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        assert!(max - min > 2.0, "torsional corrugation only {} kcal/mol", max - min);
    }

    #[test]
    fn solvated_dynamics_short_run_is_stable() {
        let mut sys = solvated_alanine_dipeptide(500, 7);
        let ff = dipeptide_forcefield();
        let mut integ = LangevinBaoab::new(0.001, 300.0, 5.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        for _ in 0..200 {
            integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
        }
        assert!(sys.state.is_finite());
        let t = sys.instantaneous_temperature();
        assert!(t > 50.0 && t < 1500.0, "T = {t} K after 200 steps");
    }
}
