//! Ready-made molecular systems used throughout the workspace.

mod dipeptide;
mod fluid;

pub use dipeptide::{
    alanine_dipeptide, dipeptide_forcefield, solvated_alanine_dipeptide, BACKBONE_ATOMS,
};
pub use fluid::{lj_fluid, lj_forcefield};
