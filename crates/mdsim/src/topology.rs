//! Molecular topology: atoms and the bonded terms that connect them.
//!
//! The topology is immutable during a simulation; it is shared between the
//! force field and the engines. Indices are `u32` to keep hot structs small
//! (see the type-size guidance in the HPC coding guides).

use serde::{Deserialize, Serialize};

/// Static per-atom parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Mass in amu.
    pub mass: f64,
    /// Partial charge in units of e.
    pub charge: f64,
    /// Lennard-Jones well depth ε in kcal/mol.
    pub lj_epsilon: f64,
    /// Lennard-Jones diameter σ in Å.
    pub lj_sigma: f64,
}

impl Atom {
    /// A neutral LJ particle (used for the synthetic "solvent").
    pub fn lj(mass: f64, epsilon: f64, sigma: f64) -> Self {
        Atom { mass, charge: 0.0, lj_epsilon: epsilon, lj_sigma: sigma }
    }
}

/// Harmonic bond: `E = k (r - r0)^2` (Amber convention, no 1/2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bond {
    pub i: u32,
    pub j: u32,
    /// Force constant in kcal/mol/Å².
    pub k: f64,
    /// Equilibrium length in Å.
    pub r0: f64,
}

/// Harmonic angle: `E = k (θ - θ0)^2` with θ in radians.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Angle {
    pub i: u32,
    pub j: u32,
    pub k_atom: u32,
    /// Force constant in kcal/mol/rad².
    pub k: f64,
    /// Equilibrium angle in radians.
    pub theta0: f64,
}

/// Periodic torsion: `E = k (1 + cos(n φ - δ))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Torsion {
    pub i: u32,
    pub j: u32,
    pub k_atom: u32,
    pub l: u32,
    /// Barrier height in kcal/mol.
    pub k: f64,
    /// Periodicity (1, 2, 3, ...).
    pub n: u32,
    /// Phase δ in radians.
    pub delta: f64,
}

/// A titratable site for constant-pH / pH-exchange simulations. The atom's
/// `charge` stores the deprotonated charge; when protonated (fraction given
/// by Henderson–Hasselbalch at the solvent pH) the site carries
/// `charge + proton_charge`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Titratable {
    pub atom: u32,
    /// Acid dissociation constant of the site.
    pub pka: f64,
    /// Charge added on protonation (usually +1 scaled by partial-charge
    /// conventions).
    pub proton_charge: f64,
}

impl Titratable {
    /// Henderson–Hasselbalch protonated fraction at `ph`.
    #[inline]
    pub fn protonated_fraction(&self, ph: f64) -> f64 {
        1.0 / (1.0 + 10f64.powf(ph - self.pka))
    }

    /// Effective extra charge at `ph`.
    #[inline]
    pub fn charge_shift(&self, ph: f64) -> f64 {
        self.protonated_fraction(ph) * self.proton_charge
    }
}

/// A named torsion that exchange/analysis code can address symbolically
/// (e.g. the φ and ψ backbone dihedrals of the dipeptide model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedDihedral {
    pub name: String,
    pub atoms: [u32; 4],
}

/// Complete bonded topology plus per-atom parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    pub atoms: Vec<Atom>,
    pub bonds: Vec<Bond>,
    pub angles: Vec<Angle>,
    pub torsions: Vec<Torsion>,
    /// Dihedrals addressable by name (restraint targets, order parameters).
    pub named_dihedrals: Vec<NamedDihedral>,
    /// Titratable sites (pH-REMD exchange parameter).
    #[serde(default)]
    pub titratable: Vec<Titratable>,
    /// Pairs excluded from nonbonded interactions (1-2 and 1-3 neighbours),
    /// stored sorted as (min, max).
    pub exclusions: Vec<(u32, u32)>,
}

impl Topology {
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Look up a named dihedral (e.g. "phi").
    pub fn dihedral(&self, name: &str) -> Option<&NamedDihedral> {
        self.named_dihedrals.iter().find(|d| d.name == name)
    }

    /// Derive the standard exclusion list from bonds (1-2) and angles (1-3).
    /// Idempotent: clears any existing exclusions first.
    pub fn build_exclusions(&mut self) {
        self.exclusions.clear();
        for b in &self.bonds {
            self.exclusions.push(ordered(b.i, b.j));
        }
        for a in &self.angles {
            self.exclusions.push(ordered(a.i, a.k_atom));
        }
        self.exclusions.sort_unstable();
        self.exclusions.dedup();
    }

    /// True if the nonbonded pair (i, j) is excluded.
    pub fn is_excluded(&self, i: u32, j: u32) -> bool {
        self.exclusions.binary_search(&ordered(i, j)).is_ok()
    }

    /// Validate internal consistency (all indices in range, positive masses).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.atoms.len() as u32;
        let check = |idx: u32, what: &str| -> Result<(), String> {
            if idx >= n {
                Err(format!("{what} references atom {idx} but topology has {n} atoms"))
            } else {
                Ok(())
            }
        };
        for (k, a) in self.atoms.iter().enumerate() {
            if a.mass <= 0.0 {
                return Err(format!("atom {k} has non-positive mass {}", a.mass));
            }
        }
        for b in &self.bonds {
            check(b.i, "bond")?;
            check(b.j, "bond")?;
            if b.i == b.j {
                return Err(format!("bond connects atom {} to itself", b.i));
            }
        }
        for a in &self.angles {
            check(a.i, "angle")?;
            check(a.j, "angle")?;
            check(a.k_atom, "angle")?;
        }
        for t in &self.torsions {
            for idx in [t.i, t.j, t.k_atom, t.l] {
                check(idx, "torsion")?;
            }
        }
        for d in &self.named_dihedrals {
            for idx in d.atoms {
                check(idx, "named dihedral")?;
            }
        }
        for t in &self.titratable {
            check(t.atom, "titratable site")?;
        }
        Ok(())
    }

    /// Total mass in amu.
    pub fn total_mass(&self) -> f64 {
        self.atoms.iter().map(|a| a.mass).sum()
    }

    /// Number of degrees of freedom used for instantaneous temperature.
    ///
    /// We subtract 3 for the removed centre-of-mass translation; Langevin
    /// dynamics does not conserve COM momentum exactly, but the convention
    /// matches what the restart/mdinfo files report.
    pub fn degrees_of_freedom(&self) -> usize {
        (3 * self.atoms.len()).saturating_sub(3).max(1)
    }
}

#[inline]
fn ordered(i: u32, j: u32) -> (u32, u32) {
    if i <= j {
        (i, j)
    } else {
        (j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Topology {
        let mut top = Topology {
            atoms: vec![Atom::lj(12.0, 0.1, 3.4); 4],
            bonds: vec![
                Bond { i: 0, j: 1, k: 300.0, r0: 1.5 },
                Bond { i: 1, j: 2, k: 300.0, r0: 1.5 },
                Bond { i: 2, j: 3, k: 300.0, r0: 1.5 },
            ],
            angles: vec![
                Angle { i: 0, j: 1, k_atom: 2, k: 50.0, theta0: 1.9 },
                Angle { i: 1, j: 2, k_atom: 3, k: 50.0, theta0: 1.9 },
            ],
            torsions: vec![Torsion { i: 0, j: 1, k_atom: 2, l: 3, k: 1.0, n: 3, delta: 0.0 }],
            named_dihedrals: vec![NamedDihedral { name: "phi".into(), atoms: [0, 1, 2, 3] }],
            titratable: vec![],
            exclusions: vec![],
        };
        top.build_exclusions();
        top
    }

    #[test]
    fn exclusions_cover_12_and_13() {
        let top = toy();
        assert!(top.is_excluded(0, 1));
        assert!(top.is_excluded(1, 0)); // symmetric
        assert!(top.is_excluded(0, 2)); // 1-3 via angle
        assert!(!top.is_excluded(0, 3)); // 1-4 not excluded
    }

    #[test]
    fn build_exclusions_is_idempotent() {
        let mut top = toy();
        let before = top.exclusions.clone();
        top.build_exclusions();
        assert_eq!(before, top.exclusions);
    }

    #[test]
    fn validate_accepts_toy() {
        assert!(toy().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_index() {
        let mut top = toy();
        top.bonds.push(Bond { i: 0, j: 99, k: 1.0, r0: 1.0 });
        assert!(top.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_bond_and_bad_mass() {
        let mut top = toy();
        top.bonds.push(Bond { i: 2, j: 2, k: 1.0, r0: 1.0 });
        assert!(top.validate().is_err());

        let mut top2 = toy();
        top2.atoms[0].mass = 0.0;
        assert!(top2.validate().is_err());
    }

    #[test]
    fn named_dihedral_lookup() {
        let top = toy();
        assert_eq!(top.dihedral("phi").unwrap().atoms, [0, 1, 2, 3]);
        assert!(top.dihedral("psi").is_none());
    }

    #[test]
    fn dof_and_mass() {
        let top = toy();
        assert_eq!(top.degrees_of_freedom(), 9);
        assert!((top.total_mass() - 48.0).abs() < 1e-12);
    }
}
