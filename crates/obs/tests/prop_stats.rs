//! Property tests pinning `obs::stats::LogHistogram` quantiles to exact
//! sorted-vector quantiles within the documented bucket resolution, for
//! both the direct-record and the merge path.

use obs::LogHistogram;
use proptest::prelude::*;

/// Exact nearest-rank quantile over a sorted copy of `values`.
fn exact_quantile(values: &[f64], q: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Histogram quantile must sit within one bucket (relative) of the exact
/// nearest-rank answer, and always inside the observed value range.
fn assert_within_resolution(h: &LogHistogram, values: &[f64], q: f64) {
    let got = h.quantile(q);
    let exact = exact_quantile(values, q);
    let bound = LogHistogram::relative_error_bound();
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(got >= lo - 1e-12 && got <= hi + 1e-12, "q{q}: {got} outside [{lo}, {hi}]");
    // The representative may fall one bucket to either side of the exact
    // value when the exact value sits on a bucket edge, so allow a full
    // bucket width (twice the half-bucket representative error).
    let tol = exact * (2.0 * bound) + 1e-12;
    assert!(
        (got - exact).abs() <= tol,
        "q{q}: got {got}, exact {exact}, tol {tol} over {} values",
        values.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_track_exact_sorted_quantiles(
        values in prop::collection::vec(1e-6f64..1e6, 1..400),
        qs in prop::collection::vec(0.0f64..=1.0, 1..8),
    ) {
        let h: LogHistogram = values.iter().copied().collect();
        prop_assert_eq!(h.count(), values.len() as u64);
        for q in qs {
            assert_within_resolution(&h, &values, q);
        }
        // min/max/mean are tracked exactly, not bucketed.
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert_eq!(h.min(), lo);
        prop_assert_eq!(h.max(), hi);
        prop_assert!((h.mean() - mean).abs() <= mean.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn merged_histogram_matches_single_histogram(
        a in prop::collection::vec(1e-6f64..1e6, 0..200),
        b in prop::collection::vec(1e-6f64..1e6, 0..200),
    ) {
        let mut merged: LogHistogram = a.iter().copied().collect();
        let hb: LogHistogram = b.iter().copied().collect();
        merged.merge(&hb);
        let combined: LogHistogram = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), combined.count());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), combined.quantile(q), "q={}", q);
        }
        // The merged quantiles also track the exact pooled quantiles.
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        if !all.is_empty() {
            for q in [0.1, 0.5, 0.9, 0.99] {
                assert_within_resolution(&merged, &all, q);
            }
        }
    }

    #[test]
    fn zeros_and_subnormals_never_panic(
        values in prop::collection::vec(prop_oneof![
            Just(0.0f64),
            1e-40f64..1e-20,
            0.001f64..1000.0,
        ], 1..100),
    ) {
        let h: LogHistogram = values.iter().copied().collect();
        for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let v = h.quantile(q);
            prop_assert!(v.is_finite());
            prop_assert!(v >= 0.0);
        }
    }
}
