#![cfg(loom)]
//! Loom model of the [`obs::Recorder`] shared sink.
//!
//! The recorder is cloned into the driver, the executor and the timeline,
//! and the local executor's worker threads count completions concurrently.
//! These models let loom exhaustively interleave those accesses:
//!
//! ```sh
//! cargo add loom --dev --package obs
//! RUSTFLAGS="--cfg loom" cargo test -p obs --test loom_recorder
//! ```

use obs::{Event, Recorder};

fn md(replica: usize) -> Event {
    Event::MdSegment {
        replica,
        slot: replica,
        cycle: 0,
        dim: 0,
        attempt: 0,
        cores: 1,
        start: 0.0,
        end: 1.0,
        ok: true,
    }
}

#[test]
fn concurrent_clones_lose_no_events_or_counts() {
    loom::model(|| {
        let rec = Recorder::enabled();
        let a = rec.clone();
        let b = rec.clone();
        let t1 = loom::thread::spawn(move || {
            a.record(md(0));
            a.count("pilot.units_failed", 1);
        });
        let t2 = loom::thread::spawn(move || {
            b.record(md(1));
            b.count("pilot.units_failed", 1);
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(rec.event_count(), 2);
        assert_eq!(rec.counters().get("pilot.units_failed"), Some(&2));
    });
}

#[test]
fn count_is_an_atomic_read_modify_write() {
    loom::model(|| {
        let rec = Recorder::enabled();
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let r = rec.clone();
                loom::thread::spawn(move || r.count("n", 1))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // A torn read-modify-write would make one increment vanish.
        assert_eq!(rec.counters().get("n"), Some(&2));
    });
}

#[test]
fn gauge_overwrite_races_to_one_of_two_outcomes() {
    loom::model(|| {
        let rec = Recorder::enabled();
        let counter = rec.clone();
        let gauge = rec.clone();
        let t1 = loom::thread::spawn(move || counter.count("g", 1));
        let t2 = loom::thread::spawn(move || gauge.set_gauge("g", 10));
        t1.join().unwrap();
        t2.join().unwrap();
        // set-then-count → 11; count-then-set → 10. Anything else is a
        // lost update.
        let v = *rec.counters().get("g").unwrap();
        assert!(v == 10 || v == 11, "lost update: {v}");
    });
}

#[test]
fn snapshot_during_concurrent_extend_sees_a_prefix() {
    loom::model(|| {
        let rec = Recorder::enabled();
        let writer = rec.clone();
        let t = loom::thread::spawn(move || writer.extend([md(0), md(1)]));
        // extend holds the lock for the whole batch: a reader sees either
        // nothing or both events, never a torn batch.
        let seen = rec.event_count();
        assert!(seen == 0 || seen == 2, "torn batch: {seen}");
        t.join().unwrap();
        assert_eq!(rec.event_count(), 2);
    });
}
