//! Structured tracing and metrics for the RepEx cost model.
//!
//! The paper's evaluation hangs off the per-cycle decomposition
//! `Tc = T_MD + T_EX + T_data + T_RepEx_over + T_RP_over` (Eq. 1) and off
//! per-replica timelines (Figs. 5-13). This crate provides the one source
//! of truth both are derived from: drivers emit typed [`Event`]s into a
//! [`Recorder`], and consumers either aggregate them into per-cycle
//! breakdowns ([`cycle_breakdowns`]) or export them as a Chrome-trace
//! timeline ([`chrome_trace_json`]) and a flat metrics JSON.
//!
//! The recorder is zero-cost when disabled: [`Recorder::disabled`] carries
//! no allocation and every call on it is a no-op, so instrumented hot paths
//! pay only a branch on an `Option`.
//!
//! The crate is intentionally std-only — it sits below every other crate in
//! the workspace and must not drag dependencies into their builds.

pub mod aggregate;
pub mod chrome;
pub mod critical_path;
pub mod event;
pub mod health;
pub mod json;
pub mod live;
pub mod recorder;
pub mod stats;
pub mod timeline_stats;

pub use aggregate::{
    average_breakdown, cycle_breakdowns, md_busy_core_seconds, replica_spans, CycleBreakdown,
};
pub use chrome::chrome_trace_json;
pub use critical_path::{critical_path, cycle_critical_paths, CriticalPath, CycleCriticalPath};
pub use event::{Event, OverheadScope};
pub use health::{exchange_health, implied_slot_count, replay_slot_walk, DimExchangeHealth};
pub use live::{
    campaign_label, evaluate_rules, merge_snapshots, prometheus_text, render_progress_line,
    sanitize_metric_name, validate_campaign_id, CampaignIdError, DimSnapshot, EmitStats, Finding,
    HistSummary, LiveBaseline, LiveConfig, LiveState, TelemetrySnapshot, CAMPAIGN_ID_MAX_LEN,
};
pub use recorder::Recorder;
pub use stats::LogHistogram;
pub use timeline_stats::{timeline_stats, StragglerPolicy, TimelineStats};
