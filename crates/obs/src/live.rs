//! The live telemetry plane: a bounded snapshot bus layered on the
//! [`Recorder`](crate::Recorder).
//!
//! Post-hoc analysis (`repex analyze`) re-reads a finished trace; a
//! multi-day campaign needs the same health signals *while it runs*. This
//! module folds the recorder's event stream incrementally into a
//! [`LiveState`] — cumulative and windowed counters, windowed
//! [`LogHistogram`] percentiles, per-dimension acceptance, a round-trip
//! counter replayed from exchange outcomes — and periodically emits a
//! campaign-labeled [`TelemetrySnapshot`]. Snapshots serialize to one JSONL
//! line each (a tailer — `repex watch` — never sees a torn record because
//! the sink appends each line with a single write) and to Prometheus text
//! exposition, and an online rule engine evaluates SLO-style thresholds on
//! every snapshot, emitting W2xx findings that mirror the post-hoc rule
//! catalog (W201 ↔ A101, W202 ↔ A104, W203 ↔ L401).
//!
//! Consistency contract: the fold uses the *same* accumulation semantics as
//! the post-hoc aggregators — per-cycle Tc via the
//! [`CycleBreakdown`](crate::CycleBreakdown) match arms, acceptance via
//! `ExchangeOutcome` counting exactly as [`crate::exchange_health`], the
//! slot walk and round-trip endpoints exactly as
//! [`crate::replay_slot_walk`] feeds the drivers' tracker — so the merged
//! snapshot stream reproduces the end-of-run report (asserted to 1e-9, and
//! exactly for integer counters, in `tests/it_telemetry.rs`).
//!
//! Window semantics: `window_*` fields cover events folded since the
//! previous emitted snapshot; cumulative twins cover the whole campaign
//! (seeded from a [`LiveBaseline`] on `--resume`, so windows telescope:
//! summing every deduplicated snapshot's window equals the last snapshot's
//! cumulative value). `seq` increments once per emission and survives
//! resume through the checkpoint's telemetry cursor; a tailer merging a
//! stream that spans a kill keeps the *last* record per `seq`.

use crate::event::Event;
use crate::stats::LogHistogram;
use crate::timeline_stats::{timeline_stats, StragglerPolicy};
use crate::CycleBreakdown;
use std::collections::BTreeMap;

/// How the live fold is configured when the plane is enabled.
#[derive(Debug, Clone, Default)]
pub struct LiveConfig {
    /// Campaign label baked into every snapshot and Prometheus sample — the
    /// multi-tenant namespacing seed.
    pub campaign: String,
    /// Number of ladder slots (0 disables the slot walk / round trips).
    pub n_slots: usize,
    /// Ladder length of the single dimension; round trips are counted only
    /// when `>= 2` and the layout is 1-D (`n_slots == ladder_len`).
    pub ladder_len: usize,
    /// Dimension kind letters in dimension order (so snapshots carry every
    /// configured dimension even before its first exchange outcome).
    pub dim_kinds: Vec<char>,
    /// Prior-leg state for a resumed campaign.
    pub baseline: LiveBaseline,
}

/// Cumulative state restored from a checkpoint so a resumed leg's
/// cumulative fields continue where the interrupted leg stopped.
#[derive(Debug, Clone, Default)]
pub struct LiveBaseline {
    /// Snapshot cursor: the last `seq` emitted before the interruption.
    pub seq: u64,
    /// Work units completed at resume (cycles for sync, ok segments for
    /// async) — the ETA rate estimator's origin.
    pub completed: u64,
    /// Virtual clock at resume.
    pub sim_time: f64,
    /// Per-dimension (attempts, accepted), aligned with `dim_kinds`.
    pub dims: Vec<(u64, u64)>,
    pub failed_tasks: u64,
    pub relaunched_tasks: u64,
    /// Successful MD segments completed before the resume.
    pub md_segments: u64,
    /// replica id -> slot at resume (empty = identity).
    pub slot_of: Vec<usize>,
    /// Round-trip endpoint state per replica (-1 none, 0 bottom, 1 top).
    pub rt_last_end: Vec<i8>,
    /// Completed half-trips per replica (2 half-trips = 1 round trip).
    pub rt_half_trips: Vec<u64>,
}

/// Driver-supplied facts at emission time (the counters the drivers own
/// directly rather than deriving from events — e.g. failed *exchange* units
/// leave no event, so `failed_tasks` cannot be replayed from the stream).
#[derive(Debug, Clone, Copy)]
pub struct EmitStats {
    /// Work units completed so far (cycles for sync, ok segments for async).
    pub completed: u64,
    /// Total work units in the campaign (denominator of the ETA).
    pub total: u64,
    /// Virtual clock seconds at emission.
    pub time: f64,
    pub failed_tasks: u64,
    pub relaunched_tasks: u64,
    /// Final snapshot of the campaign (tailers stop here).
    pub done: bool,
}

/// Summary of a [`LogHistogram`] at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    pub count: u64,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
}

impl HistSummary {
    pub fn of(h: &LogHistogram) -> Self {
        HistSummary {
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            min: h.min(),
            max: h.max(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
        }
    }

    fn json(&self) -> String {
        use crate::json::num_exact as n;
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count,
            n(self.sum),
            n(self.mean),
            n(self.min),
            n(self.max),
            n(self.p50),
            n(self.p90),
            n(self.p99)
        )
    }
}

/// Per-dimension exchange acceptance, cumulative and windowed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DimSnapshot {
    pub dim: usize,
    pub kind: char,
    pub attempts: u64,
    pub accepted: u64,
    pub window_attempts: u64,
    pub window_accepted: u64,
}

impl DimSnapshot {
    /// Cumulative acceptance ratio (0 when no attempts — never NaN).
    pub fn ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }
}

/// One W2xx finding from the online rule engine. Uses the shared
/// diagnostics vocabulary (code / severity / message); the CLI converts it
/// into a `repex::Diagnostic` for rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: &'static str,
    pub severity: &'static str,
    pub message: String,
}

/// One emission of the snapshot bus: everything a tailer needs to render a
/// health line, plus the cumulative truth the consistency proof folds over.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic emission counter; survives resume (checkpoint cursor).
    pub seq: u64,
    pub campaign: String,
    /// Virtual clock seconds at emission.
    pub time: f64,
    /// Work units completed / total (cycles for sync, segments for async).
    pub completed: u64,
    pub total: u64,
    /// Seconds to the projected makespan (0 when the rate is unknown).
    pub eta_seconds: f64,
    /// Final snapshot of the campaign.
    pub done: bool,
    /// Pilot-level unit counters at emission time.
    pub units_submitted: u64,
    pub units_completed: u64,
    pub failed_tasks: u64,
    pub window_failed: u64,
    pub relaunched_tasks: u64,
    pub window_relaunched: u64,
    /// Successful MD segments.
    pub md_segments: u64,
    pub window_md_segments: u64,
    pub round_trips: u64,
    pub window_round_trips: u64,
    /// Straggler flags this leg (per-window timeline stats, accumulated).
    pub stragglers: u64,
    pub window_stragglers: u64,
    pub dims: Vec<DimSnapshot>,
    /// Per-cycle Tc histogram over this leg (sync only; empty for async).
    pub tc: HistSummary,
    pub window_tc: HistSummary,
    /// MD segment durations in this window (ok and failed attempts).
    pub window_seg: HistSummary,
    pub findings: Vec<Finding>,
}

impl TelemetrySnapshot {
    /// One JSONL record (no trailing newline). Numbers use the exact
    /// round-trip encoding so a parsed stream folds to the same floats.
    pub fn to_jsonl(&self) -> String {
        use crate::json::{escape, num_exact as n};
        let mut out = String::with_capacity(640);
        out.push_str(&format!(
            "{{\"seq\":{},\"campaign\":\"{}\",\"time\":{},\"completed\":{},\"total\":{},\
             \"eta_seconds\":{},\"done\":{},\"units_submitted\":{},\"units_completed\":{},\
             \"failed_tasks\":{},\"window_failed\":{},\"relaunched_tasks\":{},\
             \"window_relaunched\":{},\"md_segments\":{},\"window_md_segments\":{},\
             \"round_trips\":{},\"window_round_trips\":{},\"stragglers\":{},\
             \"window_stragglers\":{}",
            self.seq,
            escape(&self.campaign),
            n(self.time),
            self.completed,
            self.total,
            n(self.eta_seconds),
            self.done,
            self.units_submitted,
            self.units_completed,
            self.failed_tasks,
            self.window_failed,
            self.relaunched_tasks,
            self.window_relaunched,
            self.md_segments,
            self.window_md_segments,
            self.round_trips,
            self.window_round_trips,
            self.stragglers,
            self.window_stragglers,
        ));
        out.push_str(",\"dims\":[");
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"dim\":{},\"kind\":\"{}\",\"attempts\":{},\"accepted\":{},\
                 \"window_attempts\":{},\"window_accepted\":{},\"ratio\":{}}}",
                d.dim,
                d.kind,
                d.attempts,
                d.accepted,
                d.window_attempts,
                d.window_accepted,
                n(d.ratio())
            ));
        }
        out.push(']');
        out.push_str(&format!(
            ",\"tc\":{},\"window_tc\":{},\"window_seg\":{}",
            self.tc.json(),
            self.window_tc.json(),
            self.window_seg.json()
        ));
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"}}",
                f.code,
                f.severity,
                escape(&f.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Render the snapshot as the classic `--progress` run-health line. The
/// format (and every number in it) matches the line the sync driver used to
/// compute from its ad-hoc in-driver accounting — the snapshot bus is now
/// the single source of truth, and `tests/it_telemetry.rs` proves the
/// equivalence against an independent replay of the old algorithm.
pub fn render_progress_line(s: &TelemetrySnapshot) -> String {
    let mut acc = String::new();
    for d in &s.dims {
        acc.push_str(&format!(" acc[{}] {:.2}", d.kind, d.ratio()));
    }
    format!(
        "[repex] cycle {}/{}  Tc p50 {:.2}s p99 {:.2}s {} stragglers {}",
        s.completed, s.total, s.tc.p50, s.tc.p99, acc, s.stragglers
    )
}

/// Sanitize a name into the Prometheus metric-name alphabet
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (invalid characters map to `_`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Maximum length accepted by [`validate_campaign_id`].
pub const CAMPAIGN_ID_MAX_LEN: usize = 64;

/// Why [`validate_campaign_id`] rejected an id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignIdError {
    /// The id is the empty string.
    Empty,
    /// The id exceeds [`CAMPAIGN_ID_MAX_LEN`] characters.
    TooLong { len: usize },
    /// The first character is not ASCII alphanumeric.
    BadStart { ch: char },
    /// A character outside `[A-Za-z0-9._-]` appears at `index`.
    BadChar { ch: char, index: usize },
}

impl std::fmt::Display for CampaignIdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignIdError::Empty => write!(f, "campaign id is empty"),
            CampaignIdError::TooLong { len } => write!(
                f,
                "campaign id is {len} characters, longer than the {CAMPAIGN_ID_MAX_LEN}-character cap"
            ),
            CampaignIdError::BadStart { ch } => write!(
                f,
                "campaign id must start with an ASCII letter or digit, not {ch:?}"
            ),
            CampaignIdError::BadChar { ch, index } => write!(
                f,
                "campaign id contains {ch:?} at position {index}; allowed characters are [A-Za-z0-9._-]"
            ),
        }
    }
}

/// Validate a campaign id: 1..=64 characters of `[A-Za-z0-9._-]`, starting
/// with an ASCII alphanumeric. These are exactly the ids for which
/// [`campaign_label`] is the identity, so a valid id renders unescaped in
/// Prometheus label values, survives a JSONL round trip unchanged, and is
/// safe as a spool/checkpoint directory name. The campaign service and the
/// exporter share this one gate instead of each sanitizing its own way.
pub fn validate_campaign_id(id: &str) -> Result<(), CampaignIdError> {
    let mut chars = id.chars();
    let Some(first) = chars.next() else {
        return Err(CampaignIdError::Empty);
    };
    let len = id.chars().count();
    if len > CAMPAIGN_ID_MAX_LEN {
        return Err(CampaignIdError::TooLong { len });
    }
    if !first.is_ascii_alphanumeric() {
        return Err(CampaignIdError::BadStart { ch: first });
    }
    for (index, ch) in id.chars().enumerate().skip(1) {
        if !(ch.is_ascii_alphanumeric() || matches!(ch, '.' | '_' | '-')) {
            return Err(CampaignIdError::BadChar { ch, index });
        }
    }
    Ok(())
}

/// Escape any campaign string as a Prometheus label value (`\` → `\\`,
/// `"` → `\"`, newline → `\n`). This is the single shared sanitizer: the
/// exporter uses it for the `campaign` label and the campaign service uses
/// it for service-level series, so the two can never drift. For ids
/// accepted by [`validate_campaign_id`] it is the identity.
pub fn campaign_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render one snapshot as Prometheus text exposition. Every sample carries
/// the `campaign` label; metric names are sanitized through
/// [`sanitize_metric_name`].
pub fn prometheus_text(s: &TelemetrySnapshot) -> String {
    use crate::json::num_exact as n;
    let campaign = campaign_label(&s.campaign);
    let mut out = String::with_capacity(1024);
    let mut gauge = |name: &str, help: &str, value: String| {
        let name = sanitize_metric_name(name);
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name}{{campaign=\"{campaign}\"}} {value}\n"
        ));
    };
    gauge("repex_snapshot_seq", "monotonic telemetry snapshot counter", s.seq.to_string());
    gauge("repex_sim_time_seconds", "virtual clock at snapshot time", n(s.time));
    gauge(
        "repex_completed_units",
        "work units completed (cycles or segments)",
        s.completed.to_string(),
    );
    gauge("repex_total_units", "work units in the whole campaign", s.total.to_string());
    gauge("repex_eta_seconds", "projected seconds to makespan", n(s.eta_seconds));
    gauge("repex_done", "1 when the campaign has finished", u64::from(s.done).to_string());
    gauge(
        "repex_units_submitted_total",
        "pilot compute units submitted",
        s.units_submitted.to_string(),
    );
    gauge(
        "repex_units_completed_total",
        "pilot compute units completed",
        s.units_completed.to_string(),
    );
    gauge("repex_failed_tasks_total", "task failures observed", s.failed_tasks.to_string());
    gauge(
        "repex_relaunched_tasks_total",
        "task relaunches performed",
        s.relaunched_tasks.to_string(),
    );
    gauge("repex_md_segments_total", "successful MD segments", s.md_segments.to_string());
    gauge("repex_round_trips_total", "completed ladder round trips", s.round_trips.to_string());
    gauge("repex_stragglers_total", "straggler flags this leg", s.stragglers.to_string());
    gauge("repex_cycle_seconds_p50", "median per-cycle Tc this leg", n(s.tc.p50));
    gauge("repex_cycle_seconds_p99", "p99 per-cycle Tc this leg", n(s.tc.p99));
    for prefix in [
        "repex_exchange_attempts_total",
        "repex_exchange_accepted_total",
        "repex_exchange_acceptance_ratio",
    ] {
        let name = sanitize_metric_name(prefix);
        let (help, kind) = match prefix {
            "repex_exchange_attempts_total" => ("exchange attempts per dimension", "gauge"),
            "repex_exchange_accepted_total" => ("accepted exchanges per dimension", "gauge"),
            _ => ("cumulative acceptance ratio per dimension", "gauge"),
        };
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
        for d in &s.dims {
            let value = match prefix {
                "repex_exchange_attempts_total" => d.attempts.to_string(),
                "repex_exchange_accepted_total" => d.accepted.to_string(),
                _ => n(d.ratio()),
            };
            out.push_str(&format!(
                "{name}{{campaign=\"{campaign}\",dim=\"{}\"}} {value}\n",
                campaign_label(&d.kind.to_string())
            ));
        }
    }
    if !s.findings.is_empty() {
        let name = "repex_finding_active";
        out.push_str(&format!(
            "# HELP {name} 1 while the W2xx rule is firing\n# TYPE {name} gauge\n"
        ));
        for f in &s.findings {
            out.push_str(&format!(
                "{name}{{campaign=\"{campaign}\",code=\"{}\"}} 1\n",
                campaign_label(f.code)
            ));
        }
    }
    out
}

/// Deduplicate and order a parsed snapshot stream: one record per `seq`,
/// keeping the *last* occurrence in file order (a resumed leg re-emits any
/// seq the killed leg wrote past its checkpoint; the later record wins),
/// sorted by `seq` ascending.
pub fn merge_snapshots(snapshots: Vec<TelemetrySnapshot>) -> Vec<TelemetrySnapshot> {
    let mut by_seq: BTreeMap<u64, TelemetrySnapshot> = BTreeMap::new();
    for s in snapshots {
        by_seq.insert(s.seq, s);
    }
    by_seq.into_values().collect()
}

/// Internal per-dimension fold counters.
#[derive(Debug, Clone, Default)]
struct DimAcc {
    kind: char,
    attempts: u64,
    accepted: u64,
    win_attempts: u64,
    win_accepted: u64,
}

/// The fold: events stream in through [`LiveState::fold`], snapshots come
/// out of [`LiveState::emit`]. Memory is bounded — the only event buffer is
/// the current window (cleared at each emission), and the pending per-cycle
/// breakdown map is drained at each emission too.
#[derive(Debug)]
pub struct LiveState {
    cfg: LiveConfig,
    seq: u64,
    dims: Vec<DimAcc>,
    md_ok: u64,
    win_md_ok: u64,
    // Slot walk mirroring `replay_slot_walk`: owner[slot] = replica,
    // slot_of[replica] = slot.
    owner: Vec<usize>,
    slot_of: Vec<usize>,
    rt_enabled: bool,
    rt_last_end: Vec<i8>,
    rt_half_trips: Vec<u64>,
    rt_total_at_emit: u64,
    // Per-cycle Tc accumulation (sync; async cycles never see an MdPhase
    // and are discarded at emit).
    pending: BTreeMap<u64, (CycleBreakdown, bool)>,
    leg_tc: LogHistogram,
    win_tc: LogHistogram,
    win_seg: LogHistogram,
    window_events: Vec<Event>,
    stragglers: u64,
    idle_windows: u32,
    last_failed: u64,
    last_relaunched: u64,
    done_emitted: bool,
}

impl LiveState {
    pub fn new(cfg: LiveConfig) -> Self {
        let n = cfg.n_slots;
        let rt_enabled = cfg.ladder_len >= 2 && n == cfg.ladder_len && n >= 2;
        let slot_of: Vec<usize> = if cfg.baseline.slot_of.len() == n {
            cfg.baseline.slot_of.clone()
        } else {
            (0..n).collect()
        };
        let mut owner = vec![0usize; n];
        for (replica, &slot) in slot_of.iter().enumerate() {
            if slot < n {
                owner[slot] = replica;
            }
        }
        let rt_last_end = if cfg.baseline.rt_last_end.len() == n {
            cfg.baseline.rt_last_end.clone()
        } else {
            vec![-1; n]
        };
        let rt_half_trips = if cfg.baseline.rt_half_trips.len() == n {
            cfg.baseline.rt_half_trips.clone()
        } else {
            vec![0; n]
        };
        let rt_total_at_emit = rt_half_trips.iter().map(|h| h / 2).sum();
        let dims = cfg
            .dim_kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| {
                let (attempts, accepted) = cfg.baseline.dims.get(i).copied().unwrap_or((0, 0));
                DimAcc { kind, attempts, accepted, ..Default::default() }
            })
            .collect();
        let (last_failed, last_relaunched) =
            (cfg.baseline.failed_tasks, cfg.baseline.relaunched_tasks);
        let (seq, md_ok) = (cfg.baseline.seq, cfg.baseline.md_segments);
        LiveState {
            cfg,
            seq,
            dims,
            md_ok,
            win_md_ok: 0,
            owner,
            slot_of,
            rt_enabled,
            rt_last_end,
            rt_half_trips,
            rt_total_at_emit,
            pending: BTreeMap::new(),
            leg_tc: LogHistogram::new(),
            win_tc: LogHistogram::new(),
            win_seg: LogHistogram::new(),
            window_events: Vec::new(),
            stragglers: 0,
            idle_windows: 0,
            last_failed,
            last_relaunched,
            done_emitted: false,
        }
    }

    /// The last emitted snapshot sequence number (the checkpoint cursor).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    fn dim_mut(&mut self, dim: usize, kind: Option<char>) -> &mut DimAcc {
        while self.dims.len() <= dim {
            self.dims.push(DimAcc::default());
        }
        let d = &mut self.dims[dim];
        if let Some(k) = kind {
            d.kind = k;
        }
        d
    }

    /// Record one replica's current rung into the round-trip endpoint
    /// counter — the exact semantics of `exchange::RoundTripTracker`.
    fn rt_record(&mut self, replica: usize, rung: usize) {
        let end = if rung == 0 {
            0i8
        } else if rung + 1 == self.cfg.ladder_len {
            1
        } else {
            return;
        };
        if self.rt_last_end[replica] != -1 && self.rt_last_end[replica] != end {
            self.rt_half_trips[replica] += 1;
        }
        self.rt_last_end[replica] = end;
    }

    /// Fold one event into the rolling window and cumulative state.
    pub fn fold(&mut self, event: &Event) {
        match *event {
            Event::MdPhase { cycle, start, end, .. } => {
                let entry = self
                    .pending
                    .entry(cycle)
                    .or_insert_with(|| (CycleBreakdown { cycle, ..Default::default() }, false));
                entry.0.t_md += end - start;
                entry.1 = true;
            }
            Event::ExchangeWindow { kind, dim, cycle, participants, start, end } => {
                let entry = self
                    .pending
                    .entry(cycle)
                    .or_insert_with(|| (CycleBreakdown { cycle, ..Default::default() }, false));
                entry.0.t_ex.push((kind, end - start));
                self.dim_mut(dim, Some(kind));
                // Snapshot the walk at every participating window — the
                // cadence `replay_slot_walk` documents and the drivers'
                // tracker follows (re-recording unchanged positions never
                // adds a half-trip, so windows whose exchange failed are
                // harmless no-ops here exactly as they are in-process).
                if participants > 0 && self.rt_enabled {
                    for replica in 0..self.slot_of.len() {
                        self.rt_record(replica, self.slot_of[replica]);
                    }
                }
            }
            Event::DataStage { cycle, start, end, .. } => {
                let entry = self
                    .pending
                    .entry(cycle)
                    .or_insert_with(|| (CycleBreakdown { cycle, ..Default::default() }, false));
                entry.0.t_data += end - start;
            }
            Event::Overhead { scope, cycle, start, end } => {
                let entry = self
                    .pending
                    .entry(cycle)
                    .or_insert_with(|| (CycleBreakdown { cycle, ..Default::default() }, false));
                match scope {
                    crate::event::OverheadScope::Repex => entry.0.t_repex_over += end - start,
                    crate::event::OverheadScope::Rp => entry.0.t_rp_over += end - start,
                }
            }
            Event::MdSegment { start, end, ok, .. } => {
                self.win_seg.record(end - start);
                if ok {
                    self.md_ok += 1;
                    self.win_md_ok += 1;
                }
            }
            Event::ExchangeOutcome { dim, slot_lo, slot_hi, accepted, .. } => {
                let d = self.dim_mut(dim, None);
                d.attempts += 1;
                d.win_attempts += 1;
                if accepted {
                    d.accepted += 1;
                    d.win_accepted += 1;
                    // Identical guard to `replay_slot_walk`.
                    if slot_hi < self.owner.len() {
                        self.owner.swap(slot_lo, slot_hi);
                        self.slot_of[self.owner[slot_lo]] = slot_lo;
                        self.slot_of[self.owner[slot_hi]] = slot_hi;
                    }
                }
            }
            Event::TaskRelaunch { .. } | Event::CacheRebuild { .. } => {}
        }
        self.window_events.push(event.clone());
    }

    /// Close the current window: finalize completed cycles, evaluate the
    /// rule engine, and produce the snapshot.
    pub fn emit(
        &mut self,
        stats: &EmitStats,
        units_submitted: u64,
        units_completed: u64,
    ) -> TelemetrySnapshot {
        self.seq += 1;
        // Finalize every pending cycle that saw an MdPhase (sync cycles
        // complete within one window; async rounds never emit MdPhase and
        // their partial breakdowns are discarded — Tc has no meaning
        // without global cycles).
        let pending = std::mem::take(&mut self.pending);
        for (_, (breakdown, saw_md_phase)) in pending {
            if saw_md_phase {
                let tc = breakdown.total();
                self.leg_tc.record(tc);
                self.win_tc.record(tc);
            }
        }
        let win_stragglers =
            timeline_stats(&self.window_events, StragglerPolicy::default()).straggler_count as u64;
        self.stragglers += win_stragglers;
        let rt_total: u64 = self.rt_half_trips.iter().map(|h| h / 2).sum();
        let window_round_trips = rt_total - self.rt_total_at_emit;
        let eta_seconds = {
            let base = &self.cfg.baseline;
            if stats.completed > base.completed && stats.total > stats.completed {
                let rate = (stats.time - base.sim_time) / (stats.completed - base.completed) as f64;
                rate.max(0.0) * (stats.total - stats.completed) as f64
            } else {
                0.0
            }
        };
        if self.win_md_ok == 0 && !stats.done {
            self.idle_windows += 1;
        } else {
            self.idle_windows = 0;
        }
        let mut snap = TelemetrySnapshot {
            seq: self.seq,
            campaign: self.cfg.campaign.clone(),
            time: stats.time,
            completed: stats.completed,
            total: stats.total,
            eta_seconds,
            done: stats.done,
            units_submitted,
            units_completed,
            failed_tasks: stats.failed_tasks,
            window_failed: stats.failed_tasks.saturating_sub(self.last_failed),
            relaunched_tasks: stats.relaunched_tasks,
            window_relaunched: stats.relaunched_tasks.saturating_sub(self.last_relaunched),
            md_segments: self.md_ok,
            window_md_segments: self.win_md_ok,
            round_trips: rt_total,
            window_round_trips,
            stragglers: self.stragglers,
            window_stragglers: win_stragglers,
            dims: self
                .dims
                .iter()
                .enumerate()
                .map(|(dim, d)| DimSnapshot {
                    dim,
                    kind: if d.kind == '\0' { '?' } else { d.kind },
                    attempts: d.attempts,
                    accepted: d.accepted,
                    window_attempts: d.win_attempts,
                    window_accepted: d.win_accepted,
                })
                .collect(),
            tc: HistSummary::of(&self.leg_tc),
            window_tc: HistSummary::of(&self.win_tc),
            window_seg: HistSummary::of(&self.win_seg),
            findings: Vec::new(),
        };
        snap.findings = evaluate_rules(&snap, self.idle_windows);
        // Reset the window.
        self.win_md_ok = 0;
        self.win_tc = LogHistogram::new();
        self.win_seg = LogHistogram::new();
        self.window_events.clear();
        self.rt_total_at_emit = rt_total;
        self.last_failed = stats.failed_tasks;
        self.last_relaunched = stats.relaunched_tasks;
        for d in &mut self.dims {
            d.win_attempts = 0;
            d.win_accepted = 0;
        }
        self.done_emitted |= stats.done;
        snap
    }
}

/// Minimum cumulative attempts before W201 (starved ladder) can fire.
const W201_MIN_ATTEMPTS: u64 = 12;
/// Window failure count that constitutes a live failure burst (W202).
const W202_BURST: u64 = 3;
/// Predicted-acceptance band (W203) — the same thresholds the plan linter's
/// L401 uses (`lint::LintOptions::default()`).
const W203_MIN_RATIO: f64 = 0.05;
const W203_MAX_RATIO: f64 = 0.99;
/// Minimum attempts before the W203 band is judged.
const W203_MIN_ATTEMPTS: u64 = 20;
/// Consecutive windows with no completed segments before W205 (stall).
const W205_IDLE_WINDOWS: u32 = 3;

/// The online rule engine: SLO thresholds evaluated per snapshot.
///
/// | code | fires when | post-hoc twin |
/// |------|-----------|---------------|
/// | W201 | a dimension has ≥ 12 attempts and 0 acceptances | A101 |
/// | W202 | ≥ 3 task failures inside one window | A104 |
/// | W203 | cumulative acceptance outside [0.05, 0.99] after ≥ 20 attempts | L401 |
/// | W204 | straggler flags inside the window | A102/timeline |
/// | W205 | 3 consecutive windows without a completed segment | — |
pub fn evaluate_rules(s: &TelemetrySnapshot, idle_windows: u32) -> Vec<Finding> {
    let mut findings = Vec::new();
    for d in &s.dims {
        if d.attempts >= W201_MIN_ATTEMPTS && d.accepted == 0 {
            findings.push(Finding {
                code: "W201",
                severity: "warning",
                message: format!(
                    "{}-exchange ladder is starved: 0/{} attempts accepted so far",
                    d.kind, d.attempts
                ),
            });
        } else if d.attempts >= W203_MIN_ATTEMPTS {
            let r = d.ratio();
            if r < W203_MIN_RATIO || r > W203_MAX_RATIO {
                findings.push(Finding {
                    code: "W203",
                    severity: "warning",
                    message: format!(
                        "{}-exchange acceptance {:.3} is outside the predicted band [{}, {}]",
                        d.kind, r, W203_MIN_RATIO, W203_MAX_RATIO
                    ),
                });
            }
        }
    }
    if s.window_failed >= W202_BURST {
        findings.push(Finding {
            code: "W202",
            severity: "warning",
            message: format!(
                "failure burst: {} task failures in window {} ({} total)",
                s.window_failed, s.seq, s.failed_tasks
            ),
        });
    }
    if s.window_stragglers > 0 {
        findings.push(Finding {
            code: "W204",
            severity: "warning",
            message: format!(
                "{} straggler task(s) flagged in window {}",
                s.window_stragglers, s.seq
            ),
        });
    }
    if idle_windows >= W205_IDLE_WINDOWS {
        findings.push(Finding {
            code: "W205",
            severity: "warning",
            message: format!(
                "campaign stalled: no completed MD segments for {idle_windows} consecutive windows"
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(cycle: u64, replica: usize, start: f64, end: f64, ok: bool) -> Event {
        Event::MdSegment {
            replica,
            slot: replica,
            cycle,
            dim: 0,
            attempt: 0,
            cores: 1,
            start,
            end,
            ok,
        }
    }

    fn outcome(lo: usize, hi: usize, accepted: bool) -> Event {
        Event::ExchangeOutcome { dim: 0, cycle: 0, slot_lo: lo, slot_hi: hi, accepted, at: 1.0 }
    }

    fn window(cycle: u64, participants: usize, start: f64, end: f64) -> Event {
        Event::ExchangeWindow { kind: 'T', dim: 0, cycle, participants, start, end }
    }

    fn stats(completed: u64, total: u64, time: f64) -> EmitStats {
        EmitStats { completed, total, time, failed_tasks: 0, relaunched_tasks: 0, done: false }
    }

    fn state(n: usize) -> LiveState {
        LiveState::new(LiveConfig {
            campaign: "test".into(),
            n_slots: n,
            ladder_len: n,
            dim_kinds: vec!['T'],
            baseline: LiveBaseline::default(),
        })
    }

    #[test]
    fn fold_counts_acceptance_like_exchange_health() {
        let mut st = state(4);
        let events = vec![
            seg(0, 0, 0.0, 1.0, true),
            seg(0, 1, 0.0, 1.1, true),
            outcome(0, 1, true),
            outcome(2, 3, false),
            window(0, 4, 1.2, 1.4),
        ];
        for e in &events {
            st.fold(e);
        }
        let snap = st.emit(&stats(1, 4, 1.4), 0, 0);
        assert_eq!(snap.dims.len(), 1);
        assert_eq!(snap.dims[0].attempts, 2);
        assert_eq!(snap.dims[0].accepted, 1);
        assert_eq!(snap.dims[0].window_attempts, 2);
        let health = crate::exchange_health(&events);
        assert_eq!(health[0].attempts, snap.dims[0].attempts);
        assert_eq!(health[0].accepted, snap.dims[0].accepted);
        assert_eq!(snap.md_segments, 2);
        assert_eq!(snap.seq, 1);
    }

    #[test]
    fn windows_reset_and_cumulatives_persist() {
        let mut st = state(4);
        st.fold(&outcome(0, 1, true));
        st.fold(&window(0, 4, 0.0, 0.1));
        let s1 = st.emit(&stats(1, 4, 1.0), 0, 0);
        assert_eq!(s1.dims[0].window_attempts, 1);
        st.fold(&outcome(1, 2, false));
        st.fold(&window(1, 4, 1.0, 1.1));
        let s2 = st.emit(&stats(2, 4, 2.0), 0, 0);
        assert_eq!(s2.dims[0].window_attempts, 1);
        assert_eq!(s2.dims[0].attempts, 2, "cumulative keeps counting");
        assert_eq!(s2.seq, 2);
        // Windows telescope: sum of window attempts == final cumulative.
        assert_eq!(s1.dims[0].window_attempts + s2.dims[0].window_attempts, s2.dims[0].attempts);
    }

    #[test]
    fn round_trips_match_replay_slot_walk_semantics() {
        // 2-slot ladder: one accepted swap moves both replicas across the
        // whole ladder; swapping back and forth yields half-trips exactly as
        // the in-process tracker counts them.
        let mut st = state(2);
        for i in 0..4u64 {
            st.fold(&outcome(0, 1, true));
            st.fold(&window(i, 2, i as f64, i as f64 + 0.1));
        }
        let snap = st.emit(&stats(4, 4, 4.0), 0, 0);
        // Walk: each swap alternates both replicas between rungs 0 and 1.
        // First window fixes last_end; three subsequent alternations = 3
        // half-trips each = 1 round trip each.
        assert_eq!(snap.round_trips, 2, "both replicas complete one round trip");
    }

    #[test]
    fn baseline_seeds_cumulative_state() {
        let mut st = LiveState::new(LiveConfig {
            campaign: "resumed".into(),
            n_slots: 2,
            ladder_len: 2,
            dim_kinds: vec!['T'],
            baseline: LiveBaseline {
                seq: 7,
                completed: 3,
                sim_time: 30.0,
                dims: vec![(10, 4)],
                failed_tasks: 2,
                relaunched_tasks: 1,
                md_segments: 6,
                slot_of: vec![1, 0],
                rt_last_end: vec![1, 0],
                rt_half_trips: vec![3, 2],
                ..Default::default()
            },
        });
        st.fold(&outcome(0, 1, true));
        st.fold(&window(3, 2, 30.0, 30.1));
        let snap = st.emit(
            &EmitStats {
                completed: 4,
                total: 8,
                time: 40.0,
                failed_tasks: 2,
                relaunched_tasks: 1,
                done: false,
            },
            0,
            0,
        );
        assert_eq!(snap.seq, 8, "cursor continues after the baseline");
        assert_eq!(snap.dims[0].attempts, 11);
        assert_eq!(snap.dims[0].accepted, 5);
        assert_eq!(snap.dims[0].window_attempts, 1, "window covers only the new leg");
        assert_eq!(snap.window_failed, 0, "baseline failures are not re-windowed");
        assert_eq!(snap.md_segments, 6);
        // ETA: 1 unit took 10 s, 4 remain.
        assert!((snap.eta_seconds - 40.0).abs() < 1e-9, "{}", snap.eta_seconds);
        // rt baseline: replica0 had 3 half-trips ending top, replica1 had 2
        // ending bottom; the swap moves r0 to bottom (4 half) and r1 to top
        // (3 half) => 2 + 1 = 3 round trips.
        assert_eq!(snap.round_trips, 3);
    }

    #[test]
    fn rule_engine_fires_its_catalog() {
        let mut s = TelemetrySnapshot {
            dims: vec![DimSnapshot {
                dim: 0,
                kind: 'T',
                attempts: 12,
                accepted: 0,
                ..Default::default()
            }],
            window_failed: 3,
            window_stragglers: 1,
            ..Default::default()
        };
        let codes: Vec<_> = evaluate_rules(&s, 3).iter().map(|f| f.code).collect();
        assert_eq!(codes, vec!["W201", "W202", "W204", "W205"]);
        // Band rule replaces starvation once acceptances exist.
        s.dims[0].accepted = 12;
        s.dims[0].attempts = 12;
        assert!(evaluate_rules(&s, 0).iter().all(|f| f.code != "W203"), "needs 20 attempts");
        s.dims[0].attempts = 20;
        s.dims[0].accepted = 20;
        let codes: Vec<_> = evaluate_rules(&s, 0).iter().map(|f| f.code).collect();
        assert!(codes.contains(&"W203"), "ratio 1.0 is outside the band: {codes:?}");
        s.dims[0].accepted = 10;
        assert!(evaluate_rules(&s, 0).iter().all(|f| f.code != "W203"), "0.5 is in band");
        assert!(evaluate_rules(&s, 0).iter().all(|f| f.severity == "warning"));
    }

    #[test]
    fn jsonl_line_is_single_line_and_balanced() {
        let mut st = state(4);
        st.fold(&seg(0, 0, 0.0, 1.5, true));
        st.fold(&outcome(0, 1, true));
        st.fold(&window(0, 4, 1.5, 1.6));
        let mut snap = st.emit(&stats(1, 4, 1.6), 5, 4);
        snap.campaign = "storm \"A\"\nrun".into();
        snap.findings.push(Finding { code: "W202", severity: "warning", message: "x".into() });
        let line = snap.to_jsonl();
        assert!(!line.contains('\n'), "one record per line: {line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert!(line.contains("\"campaign\":\"storm \\\"A\\\"\\nrun\""), "{line}");
        assert!(line.contains("\"units_submitted\":5"));
        assert!(line.contains("\"findings\":[{\"code\":\"W202\""));
    }

    #[test]
    fn prometheus_names_and_labels_are_well_formed() {
        assert_eq!(sanitize_metric_name("repex.cycle-p50"), "repex_cycle_p50");
        assert_eq!(sanitize_metric_name("9lives"), "_lives");
        assert_eq!(sanitize_metric_name(""), "_");
        let mut st = state(4);
        st.fold(&outcome(0, 1, true));
        st.fold(&window(0, 4, 0.0, 0.1));
        let mut snap = st.emit(&stats(1, 4, 1.0), 0, 0);
        snap.campaign = "multi \"tenant\"".into();
        snap.findings.push(Finding { code: "W202", severity: "warning", message: "x".into() });
        let text = prometheus_text(&snap);
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(
                name.chars().enumerate().all(|(i, c)| c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit())),
                "bad metric name {name:?}"
            );
            assert!(line.contains("campaign=\"multi \\\"tenant\\\"\""), "{line}");
        }
        assert!(text.contains(
            "repex_exchange_attempts_total{campaign=\"multi \\\"tenant\\\"\",dim=\"T\"} 1"
        ));
        assert!(text.contains("repex_finding_active"));
    }

    #[test]
    fn campaign_id_validation_accepts_exactly_the_escape_free_ids() {
        for id in ["a", "run-1", "tenant.a_2026", "X", "0th", &"a".repeat(64)] {
            assert_eq!(validate_campaign_id(id), Ok(()), "{id:?}");
            assert_eq!(campaign_label(id), id, "valid ids need no escaping: {id:?}");
        }
        assert_eq!(validate_campaign_id(""), Err(CampaignIdError::Empty));
        assert_eq!(
            validate_campaign_id(&"a".repeat(65)),
            Err(CampaignIdError::TooLong { len: 65 })
        );
        assert_eq!(
            validate_campaign_id("-leading"),
            Err(CampaignIdError::BadStart { ch: '-' })
        );
        assert_eq!(
            validate_campaign_id(".hidden"),
            Err(CampaignIdError::BadStart { ch: '.' })
        );
        assert_eq!(
            validate_campaign_id("has space"),
            Err(CampaignIdError::BadChar { ch: ' ', index: 3 })
        );
        assert_eq!(
            validate_campaign_id("quo\"te"),
            Err(CampaignIdError::BadChar { ch: '"', index: 3 })
        );
        // Every rejection renders a human-readable reason.
        for bad in ["", "has space", "-x", &"a".repeat(65)] {
            let err = validate_campaign_id(bad).unwrap_err();
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn campaign_label_escapes_what_validation_rejects() {
        assert_eq!(campaign_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        // Any string that needs escaping is an invalid id — the exporter
        // can render it, but the service refuses it at admission.
        assert!(validate_campaign_id("a\\b\"c\nd").is_err());
    }

    #[test]
    fn merge_keeps_last_record_per_seq() {
        let snap =
            |seq: u64, completed: u64| TelemetrySnapshot { seq, completed, ..Default::default() };
        let merged = merge_snapshots(vec![snap(1, 1), snap(2, 99), snap(3, 3), snap(2, 2)]);
        let seqs: Vec<u64> = merged.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        assert_eq!(merged[1].completed, 2, "later occurrence wins");
    }

    #[test]
    fn progress_line_matches_the_legacy_format() {
        let snap = TelemetrySnapshot {
            completed: 3,
            total: 10,
            stragglers: 2,
            dims: vec![DimSnapshot {
                dim: 0,
                kind: 'T',
                attempts: 8,
                accepted: 2,
                ..Default::default()
            }],
            tc: HistSummary { p50: 16.0, p99: 17.5, ..Default::default() },
            ..Default::default()
        };
        assert_eq!(
            render_progress_line(&snap),
            "[repex] cycle 3/10  Tc p50 16.00s p99 17.50s  acc[T] 0.25 stragglers 2"
        );
    }

    #[test]
    fn pending_cycles_without_md_phase_are_discarded() {
        // Async-style stream: windows keyed by round, no MdPhase — the Tc
        // histogram must stay empty (Tc is undefined without global cycles).
        let mut st = state(4);
        st.fold(&window(0, 3, 0.0, 0.1));
        st.fold(&window(1, 2, 1.0, 1.1));
        let snap = st.emit(&stats(2, 8, 1.1), 0, 0);
        assert_eq!(snap.tc.count, 0);
        assert_eq!(snap.window_tc.count, 0);
    }

    #[test]
    fn tc_fold_matches_cycle_breakdowns() {
        let mut st = state(2);
        let events = vec![
            Event::Overhead {
                scope: crate::event::OverheadScope::Repex,
                cycle: 0,
                start: 0.0,
                end: 0.3,
            },
            Event::Overhead {
                scope: crate::event::OverheadScope::Rp,
                cycle: 0,
                start: 0.3,
                end: 0.5,
            },
            seg(0, 0, 0.5, 2.0, true),
            Event::MdPhase { cycle: 0, dim: 0, start: 0.5, end: 2.1 },
            Event::DataStage { kind: 'T', dim: 0, cycle: 0, start: 2.1, end: 2.4 },
            window(0, 2, 2.4, 2.9),
        ];
        for e in &events {
            st.fold(e);
        }
        let snap = st.emit(&stats(1, 1, 2.9), 0, 0);
        let expect = crate::cycle_breakdowns(&events)[0].total();
        assert_eq!(snap.tc.count, 1);
        assert_eq!(snap.tc.sum, expect, "same accumulation order, identical float");
    }
}
