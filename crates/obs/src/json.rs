//! Minimal JSON emission helpers (this crate is dependency-free).

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format a float as a JSON number. Non-finite values (never produced by a
/// healthy run) degrade to 0 rather than emitting invalid JSON.
pub fn num(x: f64) -> String {
    if x.is_finite() {
        // Three decimals is sub-nanosecond once scaled to microseconds.
        format!("{x:.3}")
    } else {
        "0".to_string()
    }
}

/// Format a float as a JSON number with shortest round-trip precision
/// (metrics gauges, where 3 decimals would truncate ratios). Non-finite
/// values degrade to 0 like [`num`].
pub fn num_exact(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_guards_non_finite() {
        assert_eq!(num(1.5), "1.500");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }

    #[test]
    fn num_exact_round_trips_and_guards_non_finite() {
        assert_eq!(num_exact(0.25), "0.25");
        assert_eq!(num_exact(1.0 / 3.0).parse::<f64>().unwrap(), 1.0 / 3.0);
        assert_eq!(num_exact(f64::NAN), "0");
        assert_eq!(num_exact(f64::NEG_INFINITY), "0");
    }
}
