//! The shared event sink and metrics registry.

use crate::event::Event;
use crate::live::{EmitStats, LiveConfig, LiveState, TelemetrySnapshot};
use crate::{aggregate, chrome};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::PoisonError;

// Under `--cfg loom` the sync primitives come from loom so the model
// checker can explore interleavings (tests/loom_recorder.rs).
#[cfg(loom)]
use loom::sync::{Arc, Mutex, MutexGuard};
#[cfg(not(loom))]
use std::sync::{Arc, Mutex, MutexGuard};

struct Inner {
    // When false the recorder only feeds the live fold — the unbounded
    // event buffer stays empty (long campaigns with telemetry but no
    // `--trace` must not accumulate the whole run in memory).
    buffer_events: bool,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges_f64: Mutex<BTreeMap<String, f64>>,
    live: Mutex<Option<LiveState>>,
}

impl Inner {
    fn new(buffer_events: bool) -> Self {
        Inner {
            buffer_events,
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges_f64: Mutex::new(BTreeMap::new()),
            live: Mutex::new(None),
        }
    }
}

/// A cloneable handle to one recording session.
///
/// [`Recorder::disabled`] (also the `Default`) holds nothing and every
/// method on it is a no-op — instrumented code calls it unconditionally.
/// [`Recorder::enabled`] allocates the shared sink; clones record into the
/// same sink, so a driver, its executor, and the timeline can all hold one.
///
/// Thread-safe: the local (real-thread) executor counts completions from
/// worker threads.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A no-op recorder: nothing is stored, nothing is allocated.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// A live recorder; clone it into every component that should feed the
    /// same event stream.
    pub fn enabled() -> Self {
        Recorder { inner: Some(Arc::new(Inner::new(true))) }
    }

    /// A recorder that feeds only the live telemetry fold: events are
    /// consumed by the streaming fold and then dropped, so memory stays
    /// bounded over arbitrarily long campaigns. Counters and gauges behave
    /// as in [`Recorder::enabled`].
    pub fn live_only() -> Self {
        Recorder { inner: Some(Arc::new(Inner::new(false))) }
    }

    /// Whether events are being captured. Use to skip building events whose
    /// construction itself costs something (allocation, counter reads).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Install the live telemetry fold. Every subsequently recorded event is
    /// folded into the rolling window; [`Recorder::live_emit`] closes a
    /// window and returns the snapshot. Replaces any previous fold.
    pub fn enable_live(&self, cfg: LiveConfig) {
        if let Some(inner) = &self.inner {
            *lock(&inner.live) = Some(LiveState::new(cfg));
        }
    }

    /// Whether a live fold is installed.
    pub fn has_live(&self) -> bool {
        match &self.inner {
            Some(inner) => lock(&inner.live).is_some(),
            None => false,
        }
    }

    /// Close the current telemetry window and return its snapshot. The
    /// pilot's unit counters are read from this recorder's own counter map
    /// (executors count `pilot.units_submitted` / `pilot.units_completed`
    /// into the same sink). Returns `None` when no fold is installed.
    pub fn live_emit(&self, stats: &EmitStats) -> Option<TelemetrySnapshot> {
        let inner = self.inner.as_ref()?;
        let (submitted, completed) = {
            let counters = lock(&inner.counters);
            (
                counters.get("pilot.units_submitted").copied().unwrap_or(0),
                counters.get("pilot.units_completed").copied().unwrap_or(0),
            )
        };
        lock(&inner.live).as_mut().map(|st| st.emit(stats, submitted, completed))
    }

    /// The last emitted snapshot sequence number (0 before the first emit;
    /// resumes from the checkpoint cursor). `None` when no fold is active.
    pub fn live_seq(&self) -> Option<u64> {
        let inner = self.inner.as_ref()?;
        lock(&inner.live).as_ref().map(|st| st.seq())
    }

    /// Append one event.
    pub fn record(&self, event: Event) {
        if let Some(inner) = &self.inner {
            if let Some(st) = lock(&inner.live).as_mut() {
                st.fold(&event);
            }
            if inner.buffer_events {
                lock(&inner.events).push(event);
            }
        }
    }

    /// Append a batch of events (drivers collect per-cycle, then flush).
    pub fn extend<I: IntoIterator<Item = Event>>(&self, events: I) {
        if let Some(inner) = &self.inner {
            let mut live = lock(&inner.live);
            if inner.buffer_events {
                let mut buf = lock(&inner.events);
                for event in events {
                    if let Some(st) = live.as_mut() {
                        st.fold(&event);
                    }
                    buf.push(event);
                }
            } else if let Some(st) = live.as_mut() {
                for event in events {
                    st.fold(&event);
                }
            }
        }
    }

    /// Add `delta` to the named counter (created at 0 on first use).
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            *lock(&inner.counters).entry(name.to_string()).or_insert(0) += delta;
        }
    }

    /// Overwrite the named counter with an absolute value (for totals read
    /// from an external source, e.g. process-wide atomics).
    pub fn set_gauge(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            lock(&inner.counters).insert(name.to_string(), value);
        }
    }

    /// Overwrite a named floating-point gauge (ratios, seconds). Non-finite
    /// values are stored as recorded; export sanitizes them to 0.
    pub fn set_gauge_f64(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.gauges_f64).insert(name.to_string(), value);
        }
    }

    /// Snapshot of the event stream in recording order.
    pub fn events(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => lock(&inner.events).clone(),
            None => Vec::new(),
        }
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        match &self.inner {
            Some(inner) => lock(&inner.events).len(),
            None => 0,
        }
    }

    /// Snapshot of all counters (sorted by name).
    pub fn counters(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            Some(inner) => lock(&inner.counters).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Snapshot of all floating-point gauges (sorted by name).
    pub fn gauges_f64(&self) -> BTreeMap<String, f64> {
        match &self.inner {
            Some(inner) => lock(&inner.gauges_f64).clone(),
            None => BTreeMap::new(),
        }
    }

    /// Export the event stream in Chrome Trace Event Format.
    pub fn chrome_trace_json(&self) -> String {
        chrome::chrome_trace_json(&self.events())
    }

    /// Export counters and f64 gauges as one flat JSON object, keys sorted
    /// across both kinds. Counters shadow a same-named gauge; f64 values go
    /// through [`crate::json::num`], so non-finite gauges export as 0.
    pub fn metrics_json(&self) -> String {
        let counters = self.counters();
        let gauges = self.gauges_f64();
        let mut entries: BTreeMap<String, String> = BTreeMap::new();
        for (name, value) in &gauges {
            entries.insert(name.clone(), crate::json::num_exact(*value));
        }
        for (name, value) in &counters {
            entries.insert(name.clone(), value.to_string());
        }
        let mut out = String::from("{\n");
        for (i, (name, value)) in entries.iter().enumerate() {
            let comma = if i + 1 < entries.len() { "," } else { "" };
            out.push_str(&format!("  \"{}\": {}{}\n", crate::json::escape(name), value, comma));
        }
        out.push('}');
        out
    }

    /// Derive per-cycle Eq. 1 breakdowns from the recorded events.
    pub fn cycle_breakdowns(&self) -> Vec<aggregate::CycleBreakdown> {
        aggregate::cycle_breakdowns(&self.events())
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("Recorder")
                .field("events", &lock(&inner.events).len())
                .field("counters", &lock(&inner.counters).len())
                .finish(),
            None => f.write_str("Recorder(disabled)"),
        }
    }
}

/// A payload panic on a worker thread must not wedge tracing for everyone.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn md(cycle: u64, start: f64, end: f64) -> Event {
        Event::MdSegment {
            replica: 0,
            slot: 0,
            cycle,
            dim: 0,
            attempt: 0,
            cores: 1,
            start,
            end,
            ok: true,
        }
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.record(md(0, 0.0, 1.0));
        rec.count("x", 3);
        assert_eq!(rec.event_count(), 0);
        assert!(rec.events().is_empty());
        assert!(rec.counters().is_empty());
        assert_eq!(rec.metrics_json(), "{\n}");
    }

    #[test]
    fn clones_share_one_sink() {
        let rec = Recorder::enabled();
        let clone = rec.clone();
        clone.record(md(0, 0.0, 1.0));
        clone.count("tasks", 2);
        rec.count("tasks", 1);
        assert_eq!(rec.event_count(), 1);
        assert_eq!(rec.counters().get("tasks"), Some(&3));
    }

    #[test]
    fn set_gauge_overwrites() {
        let rec = Recorder::enabled();
        rec.count("g", 5);
        rec.set_gauge("g", 2);
        assert_eq!(rec.counters().get("g"), Some(&2));
    }

    #[test]
    fn metrics_json_is_sorted_and_parsable_shape() {
        let rec = Recorder::enabled();
        rec.count("b.second", 2);
        rec.count("a.first", 1);
        let json = rec.metrics_json();
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "keys sorted: {json}");
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn f64_gauges_merge_into_metrics_json() {
        let rec = Recorder::enabled();
        rec.count("exchange.attempts", 10);
        rec.set_gauge_f64("exchange.ratio.T", 0.25);
        rec.set_gauge_f64("bad.value", f64::NAN);
        let json = rec.metrics_json();
        assert!(json.contains("\"exchange.ratio.T\": 0.25"), "{json}");
        assert!(json.contains("\"exchange.attempts\": 10"), "{json}");
        assert!(json.contains("\"bad.value\": 0"), "non-finite sanitized: {json}");
        assert!(!json.contains("NaN"));
        // Sorted merge across both maps.
        let a = json.find("bad.value").unwrap();
        let b = json.find("exchange.attempts").unwrap();
        let c = json.find("exchange.ratio.T").unwrap();
        assert!(a < b && b < c, "{json}");
    }

    #[test]
    fn live_only_folds_without_buffering() {
        let rec = Recorder::live_only();
        assert!(!rec.has_live());
        rec.enable_live(crate::live::LiveConfig {
            campaign: "c".into(),
            dim_kinds: vec!['T'],
            ..Default::default()
        });
        assert!(rec.has_live());
        rec.count("pilot.units_submitted", 4);
        rec.count("pilot.units_completed", 3);
        rec.record(md(0, 0.0, 1.0));
        rec.extend(vec![md(0, 0.0, 2.0), md(1, 2.0, 3.0)]);
        assert_eq!(rec.event_count(), 0, "live-only recorder buffers nothing");
        let stats = crate::live::EmitStats {
            completed: 1,
            total: 4,
            time: 3.0,
            failed_tasks: 0,
            relaunched_tasks: 0,
            done: false,
        };
        let snap = rec.live_emit(&stats).expect("fold installed");
        assert_eq!(snap.md_segments, 3);
        assert_eq!(snap.units_submitted, 4);
        assert_eq!(snap.units_completed, 3);
        assert_eq!(rec.live_seq(), Some(1));
        // An enabled() recorder both folds and buffers.
        let rec = Recorder::enabled();
        rec.enable_live(crate::live::LiveConfig::default());
        rec.record(md(0, 0.0, 1.0));
        assert_eq!(rec.event_count(), 1);
        assert_eq!(rec.live_emit(&stats).unwrap().md_segments, 1);
        // And a plain enabled() recorder without a fold emits nothing.
        assert!(Recorder::enabled().live_emit(&stats).is_none());
        assert_eq!(Recorder::disabled().live_seq(), None);
    }

    #[test]
    fn debug_impl_does_not_dump_events() {
        let rec = Recorder::enabled();
        rec.record(md(0, 0.0, 1.0));
        let dbg = format!("{rec:?}");
        assert!(dbg.contains("events"), "{dbg}");
        assert!(format!("{:?}", Recorder::disabled()).contains("disabled"));
    }
}
