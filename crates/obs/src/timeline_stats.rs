//! Per-replica / per-slot interval statistics and straggler detection.
//!
//! The asynchronous pattern exists because of straggler imbalance: one slow
//! replica stalls every synchronous barrier (Bussi, arXiv:0812.1633). This
//! module turns the recorded `MdSegment` stream into the numbers that make
//! that imbalance visible: per-replica busy/idle fractions over the run,
//! per-slot aggregates, per-phase Mode II batch statistics (how many waves
//! the MD phase serialized into), and straggler flags under a configurable
//! z-score + ratio policy.

use crate::event::Event;
use std::collections::BTreeMap;

/// When is a replica a straggler? Both tests must pass: its mean segment
/// duration is `z_threshold` standard deviations above the across-replica
/// mean, *and* at least `ratio_threshold` times the across-replica median.
/// The ratio test keeps tightly-packed distributions (tiny σ) from flagging
/// ordinary noise; the z test keeps wide ones honest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StragglerPolicy {
    pub z_threshold: f64,
    pub ratio_threshold: f64,
}

impl Default for StragglerPolicy {
    fn default() -> Self {
        StragglerPolicy { z_threshold: 2.0, ratio_threshold: 1.5 }
    }
}

/// MD activity of one lane (a replica id or a slot index) over the run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneStats {
    pub lane: usize,
    /// Completed (ok) segments.
    pub segments: usize,
    pub failed_segments: usize,
    /// Seconds spent inside ok MD segments.
    pub busy: f64,
    /// Mean duration of ok segments (0 when none).
    pub mean_segment: f64,
    pub max_segment: f64,
    /// busy / run span (first event start to last event end, all lanes).
    pub busy_fraction: f64,
    /// 1 − busy_fraction.
    pub idle_fraction: f64,
    /// Mean-segment z-score against the other lanes.
    pub z_score: f64,
    /// Mean segment over the across-lane median mean-segment.
    pub ratio_to_median: f64,
    /// Flagged under the [`StragglerPolicy`].
    pub straggler: bool,
}

/// One MD phase's batching statistics (per cycle × dimension).
///
/// `stretch` is the phase window over its longest single segment — in
/// Execution Mode I every replica runs concurrently so stretch ≈ 1; in Mode
/// II with a core:replica ratio of 1/k the phase serializes into ~k waves
/// and stretch ≈ k. `imbalance` is the wait the batching added beyond the
/// slowest segment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseBatchStats {
    pub cycle: u64,
    pub dim: usize,
    /// MD phase window (submission to barrier), seconds.
    pub window: f64,
    /// Sum of segment durations inside the phase (ok and failed).
    pub busy: f64,
    /// Longest single segment in the phase.
    pub max_segment: f64,
    /// window / max_segment (1.0 when the phase is empty).
    pub stretch: f64,
    /// window − max_segment.
    pub imbalance: f64,
}

/// Everything [`timeline_stats`] derives from the event stream.
#[derive(Debug, Clone, Default)]
pub struct TimelineStats {
    /// Keyed by replica id, ascending.
    pub replicas: Vec<LaneStats>,
    /// Keyed by slot index, ascending.
    pub slots: Vec<LaneStats>,
    /// One entry per (cycle, dim) MD phase, in (cycle, dim) order.
    pub phases: Vec<PhaseBatchStats>,
    /// First event start to last event end over all interval events.
    pub span: f64,
    /// Replicas flagged as stragglers.
    pub straggler_count: usize,
    pub mean_stretch: f64,
    pub max_stretch: f64,
}

impl TimelineStats {
    /// Replica ids flagged as stragglers.
    pub fn stragglers(&self) -> Vec<usize> {
        self.replicas.iter().filter(|r| r.straggler).map(|r| r.lane).collect()
    }
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn finish_lanes(
    per_lane: BTreeMap<usize, LaneStats>,
    span: f64,
    policy: &StragglerPolicy,
) -> Vec<LaneStats> {
    let mut lanes: Vec<LaneStats> = per_lane.into_values().collect();
    for lane in &mut lanes {
        lane.mean_segment = if lane.segments > 0 { lane.busy / lane.segments as f64 } else { 0.0 };
        lane.busy_fraction = if span > 0.0 { (lane.busy / span).clamp(0.0, 1.0) } else { 0.0 };
        lane.idle_fraction = 1.0 - lane.busy_fraction;
    }
    // Straggler tests over the lanes that actually ran something.
    let means: Vec<f64> = lanes.iter().filter(|l| l.segments > 0).map(|l| l.mean_segment).collect();
    if means.len() >= 2 {
        let n = means.len() as f64;
        let mu = means.iter().sum::<f64>() / n;
        let var = means.iter().map(|m| (m - mu) * (m - mu)).sum::<f64>() / n;
        let sigma = var.sqrt();
        let mut sorted = means.clone();
        sorted.sort_by(f64::total_cmp);
        let med = median(&sorted);
        for lane in &mut lanes {
            if lane.segments == 0 {
                continue;
            }
            lane.z_score = if sigma > 0.0 { (lane.mean_segment - mu) / sigma } else { 0.0 };
            lane.ratio_to_median = if med > 0.0 { lane.mean_segment / med } else { 0.0 };
            lane.straggler =
                lane.z_score > policy.z_threshold && lane.ratio_to_median > policy.ratio_threshold;
        }
    }
    lanes
}

/// Derive per-replica, per-slot and per-phase statistics from the stream.
pub fn timeline_stats(events: &[Event], policy: StragglerPolicy) -> TimelineStats {
    let mut replicas: BTreeMap<usize, LaneStats> = BTreeMap::new();
    let mut slots: BTreeMap<usize, LaneStats> = BTreeMap::new();
    let mut phases: BTreeMap<(u64, usize), PhaseBatchStats> = BTreeMap::new();
    let mut first_start = f64::INFINITY;
    let mut last_end = f64::NEG_INFINITY;

    for event in events {
        if event.duration() > 0.0 || matches!(event, Event::MdSegment { .. }) {
            if let Some((start, end)) = interval_of(event) {
                first_start = first_start.min(start);
                last_end = last_end.max(end);
            }
        }
        match event {
            Event::MdSegment { replica, slot, cycle, dim, start, end, ok, .. } => {
                let dur = end - start;
                for (key, map) in [(*replica, &mut replicas), (*slot, &mut slots)] {
                    let lane = map
                        .entry(key)
                        .or_insert_with(|| LaneStats { lane: key, ..Default::default() });
                    if *ok {
                        lane.segments += 1;
                        lane.busy += dur;
                        lane.max_segment = lane.max_segment.max(dur);
                    } else {
                        lane.failed_segments += 1;
                    }
                }
                let phase = phases.entry((*cycle, *dim)).or_insert_with(|| PhaseBatchStats {
                    cycle: *cycle,
                    dim: *dim,
                    ..Default::default()
                });
                phase.busy += dur;
                phase.max_segment = phase.max_segment.max(dur);
            }
            Event::MdPhase { cycle, dim, start, end } => {
                let phase = phases.entry((*cycle, *dim)).or_insert_with(|| PhaseBatchStats {
                    cycle: *cycle,
                    dim: *dim,
                    ..Default::default()
                });
                phase.window += end - start;
            }
            _ => {}
        }
    }

    let span = if last_end > first_start { last_end - first_start } else { 0.0 };
    let mut phase_list: Vec<PhaseBatchStats> = phases.into_values().collect();
    for p in &mut phase_list {
        p.stretch =
            if p.max_segment > 0.0 && p.window > 0.0 { p.window / p.max_segment } else { 1.0 };
        p.imbalance = (p.window - p.max_segment).max(0.0);
    }
    let stretches: Vec<f64> = phase_list.iter().map(|p| p.stretch).collect();
    let mean_stretch = if stretches.is_empty() {
        1.0
    } else {
        stretches.iter().sum::<f64>() / stretches.len() as f64
    };
    let max_stretch = stretches.iter().copied().fold(1.0f64, f64::max);

    let replicas = finish_lanes(replicas, span, &policy);
    let straggler_count = replicas.iter().filter(|r| r.straggler).count();
    TimelineStats {
        replicas,
        slots: finish_lanes(slots, span, &policy),
        phases: phase_list,
        span,
        straggler_count,
        mean_stretch,
        max_stretch,
    }
}

/// `[start, end]` of an interval event; `None` for point events.
fn interval_of(event: &Event) -> Option<(f64, f64)> {
    match event {
        Event::MdSegment { start, end, .. }
        | Event::MdPhase { start, end, .. }
        | Event::ExchangeWindow { start, end, .. }
        | Event::DataStage { start, end, .. }
        | Event::Overhead { start, end, .. } => Some((*start, *end)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(replica: usize, cycle: u64, start: f64, end: f64, ok: bool) -> Event {
        Event::MdSegment {
            replica,
            slot: replica,
            cycle,
            dim: 0,
            attempt: 0,
            cores: 1,
            start,
            end,
            ok,
        }
    }

    #[test]
    fn busy_and_idle_fractions_over_the_run_span() {
        let events = vec![
            seg(0, 0, 0.0, 10.0, true),
            seg(1, 0, 0.0, 5.0, true),
            Event::MdPhase { cycle: 0, dim: 0, start: 0.0, end: 10.0 },
        ];
        let tl = timeline_stats(&events, StragglerPolicy::default());
        assert_eq!(tl.span, 10.0);
        assert_eq!(tl.replicas.len(), 2);
        assert!((tl.replicas[0].busy_fraction - 1.0).abs() < 1e-12);
        assert!((tl.replicas[1].busy_fraction - 0.5).abs() < 1e-12);
        assert!((tl.replicas[1].idle_fraction - 0.5).abs() < 1e-12);
        assert_eq!(tl.slots.len(), 2);
    }

    #[test]
    fn straggler_needs_both_z_and_ratio() {
        // 7 fast replicas at ~1.0s, one at 3.0s: z ≈ 2.5, ratio 3.0.
        let mut events: Vec<Event> = (0..7).map(|r| seg(r, 0, 0.0, 1.0, true)).collect();
        events.push(seg(7, 0, 0.0, 3.0, true));
        let tl = timeline_stats(&events, StragglerPolicy::default());
        assert_eq!(tl.stragglers(), vec![7]);
        assert_eq!(tl.straggler_count, 1);
        // An impossible ratio threshold suppresses the flag.
        let strict = StragglerPolicy { z_threshold: 2.0, ratio_threshold: 10.0 };
        assert_eq!(timeline_stats(&events, strict).straggler_count, 0);
        // Identical lanes never straggle (σ = 0).
        let even: Vec<Event> = (0..4).map(|r| seg(r, 0, 0.0, 2.0, true)).collect();
        assert_eq!(timeline_stats(&even, StragglerPolicy::default()).straggler_count, 0);
    }

    #[test]
    fn mode_two_waves_show_up_as_stretch() {
        // Two waves of 2 segments on 2 cores: phase window 2× a segment.
        let events = vec![
            seg(0, 0, 0.0, 10.0, true),
            seg(1, 0, 0.0, 10.0, true),
            seg(2, 0, 10.0, 20.0, true),
            seg(3, 0, 10.0, 20.0, true),
            Event::MdPhase { cycle: 0, dim: 0, start: 0.0, end: 20.0 },
        ];
        let tl = timeline_stats(&events, StragglerPolicy::default());
        assert_eq!(tl.phases.len(), 1);
        let p = &tl.phases[0];
        assert!((p.stretch - 2.0).abs() < 1e-12, "stretch {}", p.stretch);
        assert!((p.imbalance - 10.0).abs() < 1e-12);
        assert!((p.busy - 40.0).abs() < 1e-12);
        assert!((tl.mean_stretch - 2.0).abs() < 1e-12);
    }

    #[test]
    fn failed_segments_counted_separately() {
        let events = vec![seg(0, 0, 0.0, 4.0, false), seg(0, 0, 4.0, 8.0, true)];
        let tl = timeline_stats(&events, StragglerPolicy::default());
        assert_eq!(tl.replicas[0].segments, 1);
        assert_eq!(tl.replicas[0].failed_segments, 1);
        assert!((tl.replicas[0].busy - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_yields_empty_stats() {
        let tl = timeline_stats(&[], StragglerPolicy::default());
        assert!(tl.replicas.is_empty());
        assert_eq!(tl.span, 0.0);
        assert_eq!(tl.mean_stretch, 1.0);
        assert_eq!(tl.straggler_count, 0);
    }

    #[test]
    fn replica_and_slot_lanes_diverge_after_swaps() {
        // Replica 1 runs in slot 0 during cycle 1 (post-swap): the slot lane
        // aggregates both replicas' segments.
        let mut events = vec![seg(0, 0, 0.0, 1.0, true), seg(1, 0, 0.0, 1.0, true)];
        events.push(Event::MdSegment {
            replica: 1,
            slot: 0,
            cycle: 1,
            dim: 0,
            attempt: 0,
            cores: 1,
            start: 1.0,
            end: 2.0,
            ok: true,
        });
        let tl = timeline_stats(&events, StragglerPolicy::default());
        let slot0 = tl.slots.iter().find(|l| l.lane == 0).unwrap();
        assert_eq!(slot0.segments, 2);
        let rep1 = tl.replicas.iter().find(|l| l.lane == 1).unwrap();
        assert_eq!(rep1.segments, 2);
        let rep0 = tl.replicas.iter().find(|l| l.lane == 0).unwrap();
        assert_eq!(rep0.segments, 1);
    }
}
