//! Longest-chain (critical-path) analysis over the event DAG.
//!
//! An interval event `v` depends on `u` when `v` starts at or after `u`
//! ends; the critical path is the dependency chain with the largest total
//! duration. For a synchronous cycle the phase-level events (overheads → MD
//! phase → data → exchange, per dimension) are contiguous on the virtual
//! clock, so the per-cycle critical path sums to exactly the Eq. 1 total —
//! the integration tests pin that to 1e-9. For asynchronous runs there are
//! no phase events; the chain threads segment → exchange window → segment
//! across the whole stream, honoring the windows' actual edges.

use crate::event::{Event, OverheadScope};

/// Chaining tolerance: `v` may start up to this many seconds before `u`
/// ends and still count as a successor (float-rounding slack).
const EPS: f64 = 1e-9;

/// Eq. 1 bucket names used for path attribution.
pub const CATEGORIES: [&str; 5] = ["md", "exchange", "data", "repex_over", "rp_over"];

/// One interval on a critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathNode {
    /// One of [`CATEGORIES`].
    pub category: &'static str,
    pub start: f64,
    pub end: f64,
}

impl PathNode {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A critical path plus its attribution.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Sum of durations along the chain.
    pub total: f64,
    /// Wall span of the analyzed intervals (first start to last end).
    pub span: f64,
    /// `span − total`: time not covered by the chain (parallel slack or
    /// genuine gaps). ~0 for a synchronous cycle.
    pub slack: f64,
    /// Seconds on the path per Eq. 1 bucket, ordered as [`CATEGORIES`].
    pub by_category: Vec<(&'static str, f64)>,
    /// The bucket with the largest share of the path ("what bounds us").
    pub dominant: &'static str,
    /// The chain itself, in time order.
    pub nodes: Vec<PathNode>,
}

/// Per-cycle critical path (synchronous runs).
#[derive(Debug, Clone, Default)]
pub struct CycleCriticalPath {
    pub cycle: u64,
    pub path: CriticalPath,
}

/// Phase-level node for an event, if it is a phase-level interval.
///
/// `MdSegment`s are *excluded* here: a cycle's segments are contained in its
/// `MdPhase` window, and Eq. 1 charges the whole window (including barrier
/// idle) to T_MD.
fn phase_node(event: &Event) -> Option<(Option<u64>, PathNode)> {
    match event {
        Event::MdPhase { cycle, start, end, .. } => {
            Some((Some(*cycle), PathNode { category: "md", start: *start, end: *end }))
        }
        Event::ExchangeWindow { cycle, start, end, .. } => {
            Some((Some(*cycle), PathNode { category: "exchange", start: *start, end: *end }))
        }
        Event::DataStage { cycle, start, end, .. } => {
            Some((Some(*cycle), PathNode { category: "data", start: *start, end: *end }))
        }
        Event::Overhead { scope, cycle, start, end } => {
            let category = match scope {
                OverheadScope::Repex => "repex_over",
                OverheadScope::Rp => "rp_over",
            };
            Some((Some(*cycle), PathNode { category, start: *start, end: *end }))
        }
        _ => None,
    }
}

/// Longest-duration chain over a set of intervals. O(n²) in the interval
/// count — per-cycle sets are tiny and full-run analysis is offline.
fn longest_chain(mut nodes: Vec<PathNode>) -> CriticalPath {
    if nodes.is_empty() {
        return CriticalPath { dominant: "md", ..Default::default() };
    }
    nodes.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.end.total_cmp(&b.end)));
    let n = nodes.len();
    // best[i]: largest chain duration ending with node i; prev[i] backlink.
    let mut best: Vec<f64> = nodes.iter().map(PathNode::duration).collect();
    let mut prev: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        for j in 0..i {
            if nodes[j].end <= nodes[i].start + EPS {
                let candidate = best[j] + nodes[i].duration();
                if candidate > best[i] {
                    best[i] = candidate;
                    prev[i] = Some(j);
                }
            }
        }
    }
    let mut tail = 0;
    for i in 1..n {
        if best[i] > best[tail] {
            tail = i;
        }
    }
    let mut chain = Vec::new();
    let mut cursor = Some(tail);
    while let Some(i) = cursor {
        chain.push(nodes[i].clone());
        cursor = prev[i];
    }
    chain.reverse();

    let span_start = nodes.iter().map(|x| x.start).fold(f64::INFINITY, f64::min);
    let span_end = nodes.iter().map(|x| x.end).fold(f64::NEG_INFINITY, f64::max);
    let span = (span_end - span_start).max(0.0);
    let total = best[tail];
    let mut by_category: Vec<(&'static str, f64)> = CATEGORIES.iter().map(|c| (*c, 0.0)).collect();
    for node in &chain {
        if let Some(slot) = by_category.iter_mut().find(|(c, _)| *c == node.category) {
            slot.1 += node.duration();
        }
    }
    let dominant = by_category.iter().max_by(|a, b| a.1.total_cmp(&b.1)).map_or("md", |(c, _)| *c);
    CriticalPath {
        total,
        span,
        slack: (span - total).max(0.0),
        by_category,
        dominant,
        nodes: chain,
    }
}

/// Critical path of each cycle, from the cycle's phase-level events.
///
/// Synchronous drivers emit those events back-to-back on one clock, so
/// `path.total` equals the cycle's [`crate::CycleBreakdown::total`] to
/// floating-point rounding.
pub fn cycle_critical_paths(events: &[Event]) -> Vec<CycleCriticalPath> {
    let mut per_cycle: std::collections::BTreeMap<u64, Vec<PathNode>> = Default::default();
    for event in events {
        if let Some((Some(cycle), node)) = phase_node(event) {
            per_cycle.entry(cycle).or_default().push(node);
        }
    }
    per_cycle
        .into_iter()
        .map(|(cycle, nodes)| CycleCriticalPath { cycle, path: longest_chain(nodes) })
        .collect()
}

/// Critical path of the whole run.
///
/// Phase-level events are used when present (synchronous runs). Without
/// them (asynchronous runs) the chain is built from MD segments and
/// exchange windows — the MD → exchange → MD dependency structure of the
/// async pattern, where a window chains only after the segments that ended
/// before it opened.
pub fn critical_path(events: &[Event]) -> CriticalPath {
    let has_phases = events.iter().any(|e| matches!(e, Event::MdPhase { .. }));
    let nodes: Vec<PathNode> = if has_phases {
        events.iter().filter_map(|e| phase_node(e).map(|(_, n)| n)).collect()
    } else {
        events
            .iter()
            .filter_map(|e| match e {
                Event::MdSegment { start, end, .. } => {
                    Some(PathNode { category: "md", start: *start, end: *end })
                }
                Event::ExchangeWindow { start, end, .. } => {
                    Some(PathNode { category: "exchange", start: *start, end: *end })
                }
                Event::DataStage { start, end, .. } => {
                    Some(PathNode { category: "data", start: *start, end: *end })
                }
                _ => None,
            })
            .collect()
    };
    longest_chain(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sync_cycle(cycle: u64, t0: f64) -> Vec<Event> {
        vec![
            Event::Overhead { scope: OverheadScope::Repex, cycle, start: t0, end: t0 + 0.5 },
            Event::Overhead { scope: OverheadScope::Rp, cycle, start: t0 + 0.5, end: t0 + 1.0 },
            Event::MdPhase { cycle, dim: 0, start: t0 + 1.0, end: t0 + 11.0 },
            Event::DataStage { kind: 'T', dim: 0, cycle, start: t0 + 11.0, end: t0 + 11.5 },
            Event::ExchangeWindow {
                kind: 'T',
                dim: 0,
                cycle,
                participants: 4,
                start: t0 + 11.5,
                end: t0 + 12.5,
            },
        ]
    }

    #[test]
    fn contiguous_sync_cycle_has_zero_slack_and_md_dominates() {
        let events = sync_cycle(0, 0.0);
        let paths = cycle_critical_paths(&events);
        assert_eq!(paths.len(), 1);
        let p = &paths[0].path;
        assert!((p.total - 12.5).abs() < 1e-12);
        assert!((p.span - 12.5).abs() < 1e-12);
        assert!(p.slack.abs() < 1e-12);
        assert_eq!(p.dominant, "md");
        assert_eq!(p.nodes.len(), 5, "the chain covers every phase");
        // Per-cycle path total equals the Eq. 1 breakdown total.
        let b = crate::aggregate::cycle_breakdowns(&events);
        assert!((p.total - b[0].total()).abs() < 1e-12);
    }

    #[test]
    fn two_cycles_are_analyzed_independently() {
        let mut events = sync_cycle(0, 0.0);
        events.extend(sync_cycle(1, 12.5));
        let paths = cycle_critical_paths(&events);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[1].cycle, 1);
        assert!((paths[1].path.total - 12.5).abs() < 1e-12);
    }

    #[test]
    fn segments_inside_the_phase_do_not_shadow_the_window() {
        // The MD phase window includes barrier idle; the per-cycle path must
        // charge the window, not a shorter inner segment chain.
        let mut events = sync_cycle(0, 0.0);
        events.push(Event::MdSegment {
            replica: 0,
            slot: 0,
            cycle: 0,
            dim: 0,
            attempt: 0,
            cores: 1,
            start: 1.0,
            end: 7.0,
            ok: true,
        });
        let p = &cycle_critical_paths(&events)[0].path;
        assert!((p.total - 12.5).abs() < 1e-12);
    }

    #[test]
    fn async_stream_chains_segments_through_windows() {
        // r0: [0,10] then [12,22]; r1: [0,11]. Window [11,12] chains after
        // r1's segment; the longest chain is r1 → window → r0's second
        // segment = 11 + 1 + 10 = 22.
        let seg = |replica: usize, start: f64, end: f64| Event::MdSegment {
            replica,
            slot: replica,
            cycle: 0,
            dim: 0,
            attempt: 0,
            cores: 1,
            start,
            end,
            ok: true,
        };
        let events = vec![
            seg(0, 0.0, 10.0),
            seg(1, 0.0, 11.0),
            Event::ExchangeWindow {
                kind: 'T',
                dim: 0,
                cycle: 1,
                participants: 2,
                start: 11.0,
                end: 12.0,
            },
            seg(0, 12.0, 22.0),
        ];
        let p = critical_path(&events);
        assert!((p.total - 22.0).abs() < 1e-12, "total {}", p.total);
        assert_eq!(p.nodes.len(), 3);
        assert_eq!(p.dominant, "md");
        assert!((p.span - 22.0).abs() < 1e-12);
        assert!(p.slack.abs() < 1e-12);
    }

    #[test]
    fn slack_appears_when_phases_overlap_or_gap() {
        // Two parallel 10s intervals: path picks one, slack stays 0 (span
        // 10); a gap afterwards inflates span but a chain can bridge it.
        let events = vec![
            Event::MdPhase { cycle: 0, dim: 0, start: 0.0, end: 10.0 },
            Event::MdPhase { cycle: 0, dim: 1, start: 0.0, end: 10.0 },
            Event::ExchangeWindow {
                kind: 'T',
                dim: 0,
                cycle: 0,
                participants: 2,
                start: 15.0,
                end: 16.0,
            },
        ];
        let p = &cycle_critical_paths(&events)[0].path;
        assert!((p.total - 11.0).abs() < 1e-12, "one phase + the window");
        assert!((p.span - 16.0).abs() < 1e-12);
        assert!((p.slack - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_yields_empty_path() {
        let p = critical_path(&[]);
        assert_eq!(p.total, 0.0);
        assert!(p.nodes.is_empty());
        assert!(cycle_critical_paths(&[]).is_empty());
    }
}
