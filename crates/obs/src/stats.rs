//! Streaming log-bucketed histograms for duration statistics.
//!
//! The analyzer needs percentiles (Tc p50/p99, per-segment p90, ...) over
//! streams whose length is unknown up front, and the live progress path in
//! the drivers must be able to record into one without allocating. The
//! histogram therefore uses a fixed array of logarithmic buckets — eight per
//! octave, covering 2^-30 s (≈ 1 ns) to 2^34 s (≈ 540 years) — so every
//! `record` is a couple of float ops and an array increment, and any two
//! histograms merge by adding counts.
//!
//! Quantiles are approximate: a value is reported as the geometric midpoint
//! of its bucket, so the relative error is bounded by half the bucket width
//! (2^(1/16) ≈ 4.4%). The proptest suite in `tests/prop_stats.rs` pins this
//! bound against exact sorted-vector quantiles, including after merges.

/// Sub-buckets per power of two. 8 gives ~9% bucket width (2^(1/8)).
const BUCKETS_PER_OCTAVE: usize = 8;
/// Lowest representable exponent: values below 2^-30 s clamp into bucket 0.
const MIN_EXP: i32 = -30;
/// Octaves covered; values above 2^(MIN_EXP + OCTAVES) clamp into the top.
const OCTAVES: usize = 64;
const N_BUCKETS: usize = OCTAVES * BUCKETS_PER_OCTAVE;

/// A fixed-size streaming histogram over positive durations (seconds).
///
/// Zero and negative values are counted separately (they have no logarithm)
/// and sort below every positive bucket in quantile queries; non-finite
/// values are dropped (and counted in [`LogHistogram::dropped`]).
#[derive(Clone)]
pub struct LogHistogram {
    counts: [u64; N_BUCKETS],
    /// Values ≤ 0.0 (quantile rank treats them as exactly 0).
    zeros: u64,
    dropped: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; N_BUCKETS],
            zeros: 0,
            dropped: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        let idx = ((value.log2() - MIN_EXP as f64) * BUCKETS_PER_OCTAVE as f64).floor();
        if idx < 0.0 {
            0
        } else {
            (idx as usize).min(N_BUCKETS - 1)
        }
    }

    /// Geometric midpoint of a bucket — the representative reported by
    /// quantile queries.
    fn bucket_value(index: usize) -> f64 {
        let lo = MIN_EXP as f64 + index as f64 / BUCKETS_PER_OCTAVE as f64;
        let hi = lo + 1.0 / BUCKETS_PER_OCTAVE as f64;
        ((lo + hi) / 2.0).exp2()
    }

    /// Record one value. No allocation, O(1).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.dropped += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= 0.0 {
            self.zeros += 1;
        } else {
            self.counts[Self::bucket_index(value)] += 1;
        }
    }

    /// Fold another histogram into this one (exact: bucket-wise addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.dropped += other.dropped;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Non-finite values rejected by `record`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (the sum is tracked outside the buckets). 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The q-quantile (q in [0, 1]) as a bucket-representative value,
    /// clamped to the observed [min, max]. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest value with cumulative count ≥ rank.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // The extreme ranks are tracked exactly outside the buckets.
        if rank >= self.count {
            return self.max;
        }
        if rank == 1 {
            return self.min;
        }
        if rank <= self.zeros {
            return 0.0f64.clamp(self.min, self.max);
        }
        let mut seen = self.zeros;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Upper bound on the relative error of a quantile representative for
    /// in-range positive values: half a bucket in log space.
    pub fn relative_error_bound() -> f64 {
        (1.0f64 / (2 * BUCKETS_PER_OCTAVE) as f64).exp2() - 1.0
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl FromIterator<f64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        // Clamping to [min, max] makes one-value histograms exact.
        let mut h = LogHistogram::new();
        h.record(13.96);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 13.96, "q={q}");
        }
        assert_eq!(h.mean(), 13.96);
    }

    #[test]
    fn quantiles_within_relative_bound() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.01).collect();
        let h: LogHistogram = values.iter().copied().collect();
        let bound = LogHistogram::relative_error_bound();
        for (q, exact) in [(0.5, 5.0), (0.9, 9.0), (0.99, 9.9)] {
            let got = h.quantile(q);
            assert!(
                (got / exact - 1.0).abs() <= bound + 1e-9,
                "q{q}: got {got}, exact {exact}, bound {bound}"
            );
        }
    }

    #[test]
    fn zeros_sort_below_positives() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(0.0);
        h.record(0.0);
        h.record(5.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn non_finite_values_are_dropped_not_recorded() {
        let mut h = LogHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.dropped(), 2);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn out_of_range_values_clamp_into_end_buckets() {
        let mut h = LogHistogram::new();
        h.record(1e-30); // below 2^-30
        h.record(1e30); // above 2^34
        assert_eq!(h.count(), 2);
        // Quantiles stay clamped to the observed range.
        assert_eq!(h.quantile(0.0), 1e-30);
        assert_eq!(h.quantile(1.0), 1e30);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500 {
            let v = 0.001 * (i as f64 + 1.0) * if i % 2 == 0 { 1.0 } else { 37.5 };
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn mean_is_exact_not_bucketed() {
        let h: LogHistogram = [1.0, 2.0, 4.0].into_iter().collect();
        assert!((h.mean() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }
}
