//! Deriving the Eq. 1 cycle decomposition from the event stream.

use crate::event::{Event, OverheadScope};
use std::collections::BTreeMap;

/// Per-cycle Eq. 1 decomposition derived purely from trace events:
/// `Tc = T_MD + T_EX + T_data + T_RepEx_over + T_RP_over`.
///
/// `t_ex` keeps one entry per exchange window in event order, so multi-dim
/// layouts (e.g. T-U-U) preserve their per-dimension attribution exactly as
/// the driver emitted it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleBreakdown {
    pub cycle: u64,
    pub t_md: f64,
    pub t_ex: Vec<(char, f64)>,
    pub t_data: f64,
    pub t_repex_over: f64,
    pub t_rp_over: f64,
}

impl CycleBreakdown {
    /// Exchange time summed over all dimensions.
    pub fn t_ex_total(&self) -> f64 {
        self.t_ex.iter().map(|(_, t)| t).sum()
    }

    /// Total cycle time `Tc`.
    pub fn total(&self) -> f64 {
        self.t_md + self.t_ex_total() + self.t_data + self.t_repex_over + self.t_rp_over
    }
}

/// Group interval events by cycle and sum them into Eq. 1 buckets.
///
/// Returns one breakdown per cycle id in ascending cycle order. Durations
/// are accumulated in event order, so a driver that emits its probes in the
/// same order it used to accumulate legacy timings reproduces them bit for
/// bit.
pub fn cycle_breakdowns(events: &[Event]) -> Vec<CycleBreakdown> {
    let mut per_cycle: BTreeMap<u64, CycleBreakdown> = BTreeMap::new();
    for event in events {
        match event {
            Event::MdPhase { cycle, start, end, .. } => {
                let b = per_cycle
                    .entry(*cycle)
                    .or_insert_with(|| CycleBreakdown { cycle: *cycle, ..Default::default() });
                b.t_md += end - start;
            }
            Event::ExchangeWindow { kind, cycle, start, end, .. } => {
                let b = per_cycle
                    .entry(*cycle)
                    .or_insert_with(|| CycleBreakdown { cycle: *cycle, ..Default::default() });
                b.t_ex.push((*kind, end - start));
            }
            Event::DataStage { cycle, start, end, .. } => {
                let b = per_cycle
                    .entry(*cycle)
                    .or_insert_with(|| CycleBreakdown { cycle: *cycle, ..Default::default() });
                b.t_data += end - start;
            }
            Event::Overhead { scope, cycle, start, end } => {
                let b = per_cycle
                    .entry(*cycle)
                    .or_insert_with(|| CycleBreakdown { cycle: *cycle, ..Default::default() });
                match scope {
                    OverheadScope::Repex => b.t_repex_over += end - start,
                    OverheadScope::Rp => b.t_rp_over += end - start,
                }
            }
            // MdSegment feeds utilization, not the phase decomposition: the
            // phase window already covers its segments (plus barrier idle).
            // ExchangeOutcome is a point event inside its window.
            Event::MdSegment { .. }
            | Event::TaskRelaunch { .. }
            | Event::CacheRebuild { .. }
            | Event::ExchangeOutcome { .. } => {}
        }
    }
    per_cycle.into_values().collect()
}

/// Busy core-seconds of successful MD work: `sum((end-start) * cores)` over
/// ok segments. Numerator of the Eq. 4 utilization.
pub fn md_busy_core_seconds(events: &[Event]) -> f64 {
    events
        .iter()
        .map(|e| match e {
            Event::MdSegment { cores, start, end, ok: true, .. } => (end - start) * *cores as f64,
            _ => 0.0,
        })
        .sum()
}

/// Per-replica MD spans `(start, end)` sorted by start time — the rows of a
/// per-replica timeline plot.
pub fn replica_spans(events: &[Event]) -> BTreeMap<usize, Vec<(f64, f64)>> {
    let mut rows: BTreeMap<usize, Vec<(f64, f64)>> = BTreeMap::new();
    for event in events {
        if let Event::MdSegment { replica, start, end, .. } = event {
            rows.entry(*replica).or_default().push((*start, *end));
        }
    }
    for spans in rows.values_mut() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    rows
}

/// Average breakdowns the way `repex::timing::average_cycles` does: scalar
/// fields are plain means; `t_ex` averages positionally when every cycle
/// shares one dimension layout, and by exchange-kind letter otherwise
/// (heterogeneous async cycles), each kind averaged over the cycles where
/// it appears.
pub fn average_breakdown(cycles: &[CycleBreakdown]) -> CycleBreakdown {
    let Some(first) = cycles.first() else { return CycleBreakdown::default() };
    let n = cycles.len() as f64;
    let mut avg = CycleBreakdown {
        cycle: 0,
        t_md: cycles.iter().map(|c| c.t_md).sum::<f64>() / n,
        t_ex: Vec::new(),
        t_data: cycles.iter().map(|c| c.t_data).sum::<f64>() / n,
        t_repex_over: cycles.iter().map(|c| c.t_repex_over).sum::<f64>() / n,
        t_rp_over: cycles.iter().map(|c| c.t_rp_over).sum::<f64>() / n,
    };
    let homogeneous = cycles.iter().all(|c| {
        c.t_ex.len() == first.t_ex.len() && c.t_ex.iter().zip(&first.t_ex).all(|(a, b)| a.0 == b.0)
    });
    if homogeneous {
        for d in 0..first.t_ex.len() {
            let mean = cycles.iter().map(|c| c.t_ex[d].1).sum::<f64>() / n;
            avg.t_ex.push((first.t_ex[d].0, mean));
        }
    } else {
        let mut kinds: Vec<char> = Vec::new();
        for c in cycles {
            for (k, _) in &c.t_ex {
                if !kinds.contains(k) {
                    kinds.push(*k);
                }
            }
        }
        for kind in kinds {
            let mut sum = 0.0;
            let mut occurrences = 0u64;
            for c in cycles {
                let mut present = false;
                for (k, t) in &c.t_ex {
                    if *k == kind {
                        sum += t;
                        present = true;
                    }
                }
                if present {
                    occurrences += 1;
                }
            }
            avg.t_ex.push((kind, sum / occurrences as f64));
        }
    }
    avg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(replica: usize, cycle: u64, start: f64, end: f64, cores: usize, ok: bool) -> Event {
        Event::MdSegment {
            replica,
            slot: replica,
            cycle,
            dim: 0,
            attempt: 0,
            cores,
            start,
            end,
            ok,
        }
    }

    #[test]
    fn breakdown_sums_each_bucket() {
        let events = vec![
            Event::Overhead { scope: OverheadScope::Repex, cycle: 0, start: 0.0, end: 0.4 },
            Event::Overhead { scope: OverheadScope::Rp, cycle: 0, start: 0.4, end: 1.0 },
            Event::MdPhase { cycle: 0, dim: 0, start: 1.0, end: 11.0 },
            Event::DataStage { kind: 'T', dim: 0, cycle: 0, start: 11.0, end: 11.5 },
            Event::ExchangeWindow {
                kind: 'T',
                dim: 0,
                cycle: 0,
                participants: 4,
                start: 11.5,
                end: 12.5,
            },
            Event::MdPhase { cycle: 1, dim: 0, start: 12.5, end: 20.5 },
        ];
        let cycles = cycle_breakdowns(&events);
        assert_eq!(cycles.len(), 2);
        let c0 = &cycles[0];
        assert_eq!(c0.cycle, 0);
        assert!((c0.t_md - 10.0).abs() < 1e-12);
        assert!((c0.t_repex_over - 0.4).abs() < 1e-12);
        assert!((c0.t_rp_over - 0.6).abs() < 1e-12);
        assert!((c0.t_data - 0.5).abs() < 1e-12);
        assert_eq!(c0.t_ex, vec![('T', 1.0)]);
        assert!((c0.total() - 12.5).abs() < 1e-12);
        assert_eq!(cycles[1].cycle, 1);
        assert!((cycles[1].t_md - 8.0).abs() < 1e-12);
    }

    #[test]
    fn multidim_exchange_order_is_preserved() {
        let mk = |kind, start: f64| Event::ExchangeWindow {
            kind,
            dim: 0,
            cycle: 0,
            participants: 2,
            start,
            end: start + 1.0,
        };
        let cycles = cycle_breakdowns(&[mk('T', 0.0), mk('U', 1.0), mk('U', 2.0)]);
        let letters: Vec<char> = cycles[0].t_ex.iter().map(|(k, _)| *k).collect();
        assert_eq!(letters, vec!['T', 'U', 'U'], "duplicate kinds keep their slots");
    }

    #[test]
    fn busy_core_seconds_skips_failures() {
        let events = vec![seg(0, 0, 0.0, 10.0, 2, true), seg(1, 0, 0.0, 5.0, 2, false)];
        assert!((md_busy_core_seconds(&events) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn replica_spans_sorted_per_row() {
        let events = vec![seg(1, 1, 20.0, 30.0, 1, true), seg(1, 0, 0.0, 10.0, 1, true)];
        let rows = replica_spans(&events);
        assert_eq!(rows[&1], vec![(0.0, 10.0), (20.0, 30.0)]);
    }

    #[test]
    fn average_of_empty_is_default() {
        assert_eq!(average_breakdown(&[]), CycleBreakdown::default());
    }

    #[test]
    fn average_homogeneous_is_positional() {
        let c = |a: f64, b: f64| CycleBreakdown {
            t_ex: vec![('T', a), ('U', b), ('U', b + 1.0)],
            ..Default::default()
        };
        let avg = average_breakdown(&[c(1.0, 2.0), c(3.0, 4.0)]);
        assert_eq!(avg.t_ex.len(), 3);
        assert_eq!(avg.t_ex[0], ('T', 2.0));
        assert_eq!(avg.t_ex[1], ('U', 3.0));
        assert_eq!(avg.t_ex[2], ('U', 4.0));
    }

    #[test]
    fn average_heterogeneous_keys_by_kind() {
        let a = CycleBreakdown { t_ex: vec![('T', 10.0)], ..Default::default() };
        let b = CycleBreakdown { t_ex: vec![('T', 20.0), ('S', 5.0)], ..Default::default() };
        let avg = average_breakdown(&[a, b]);
        assert_eq!(avg.t_ex, vec![('T', 15.0), ('S', 5.0)]);
    }
}
