//! Exchange health derived from the trace alone.
//!
//! Nadler & Hansmann (arXiv:0708.3627) make acceptance ratios and ladder
//! round trips *the* quantities that determine REMD sampling efficiency.
//! The drivers emit one [`Event::ExchangeOutcome`] per Metropolis attempt,
//! so a recorded trace carries everything needed to recompute per-dimension
//! acceptance statistics and to replay the slot-occupancy walk — no access
//! to the in-process `exchange::stats` state required. The integration
//! tests assert both derivations match the in-process numbers exactly.

use crate::event::Event;
use std::collections::BTreeMap;

/// Acceptance statistics for one dimension, recomputed from outcome events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DimExchangeHealth {
    pub dim: usize,
    /// Exchange-kind letter from the dimension's windows ('?' if the trace
    /// carries no window for the dimension).
    pub kind: char,
    pub attempts: u64,
    pub accepted: u64,
}

impl DimExchangeHealth {
    /// Acceptance ratio in [0, 1]; 0.0 when no attempts were recorded.
    pub fn ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempts as f64
        }
    }
}

/// Per-dimension acceptance recomputed from [`Event::ExchangeOutcome`]s
/// (window events contribute the kind letter), ascending by dimension.
pub fn exchange_health(events: &[Event]) -> Vec<DimExchangeHealth> {
    let mut dims: BTreeMap<usize, DimExchangeHealth> = BTreeMap::new();
    for event in events {
        match event {
            Event::ExchangeOutcome { dim, accepted, .. } => {
                let h = dims.entry(*dim).or_insert_with(|| DimExchangeHealth {
                    dim: *dim,
                    kind: '?',
                    ..Default::default()
                });
                h.attempts += 1;
                if *accepted {
                    h.accepted += 1;
                }
            }
            Event::ExchangeWindow { kind, dim, .. } => {
                let h = dims.entry(*dim).or_insert_with(|| DimExchangeHealth {
                    dim: *dim,
                    kind: '?',
                    ..Default::default()
                });
                h.kind = *kind;
            }
            _ => {}
        }
    }
    dims.into_values().collect()
}

/// The slot-occupancy walk replayed from accepted outcomes.
///
/// Replicas start at the identity assignment (replica i in slot i — how the
/// drivers initialize) and trade slots on every accepted outcome. After
/// each exchange window (`participants > 0`; zero-participant windows are
/// `no-exchange` placeholders with no swap application) a snapshot of every
/// replica's slot is taken — the same cadence at which the drivers feed
/// their `RoundTripTracker`, so round-trip counts derived from these
/// records match the in-process tracker.
#[derive(Debug, Clone, Default)]
pub struct SlotReplay {
    pub n_slots: usize,
    /// `records[k][replica]` = the replica's slot after the k-th window.
    pub records: Vec<Vec<usize>>,
    /// Final assignment: `slot_of[replica]`.
    pub slot_of: Vec<usize>,
}

/// Number of slots implied by the stream (max slot index + 1 over segments
/// and outcomes).
pub fn implied_slot_count(events: &[Event]) -> usize {
    let mut max_slot = None::<usize>;
    for event in events {
        let s = match event {
            Event::MdSegment { slot, .. } => Some(*slot),
            Event::ExchangeOutcome { slot_hi, .. } => Some(*slot_hi),
            _ => None,
        };
        if let Some(s) = s {
            max_slot = Some(max_slot.map_or(s, |m: usize| m.max(s)));
        }
    }
    max_slot.map_or(0, |m| m + 1)
}

/// Replay the slot walk for a 1-D run. Outcomes must precede their window
/// in the stream (the drivers emit them in that order).
pub fn replay_slot_walk(events: &[Event], n_slots: usize) -> SlotReplay {
    let mut slot_of: Vec<usize> = (0..n_slots).collect(); // replica -> slot
    let mut owner: Vec<usize> = (0..n_slots).collect(); // slot -> replica
    let mut records = Vec::new();
    for event in events {
        match event {
            Event::ExchangeOutcome { slot_lo, slot_hi, accepted: true, .. } => {
                if *slot_hi < n_slots {
                    let (a, b) = (*slot_lo, *slot_hi);
                    owner.swap(a, b);
                    slot_of[owner[a]] = a;
                    slot_of[owner[b]] = b;
                }
            }
            Event::ExchangeWindow { participants, .. } if *participants > 0 => {
                records.push(slot_of.clone());
            }
            _ => {}
        }
    }
    SlotReplay { n_slots, records, slot_of }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(dim: usize, lo: usize, hi: usize, accepted: bool) -> Event {
        Event::ExchangeOutcome { dim, cycle: 0, slot_lo: lo, slot_hi: hi, accepted, at: 1.0 }
    }

    fn window(dim: usize, kind: char) -> Event {
        Event::ExchangeWindow { kind, dim, cycle: 0, participants: 4, start: 1.0, end: 2.0 }
    }

    #[test]
    fn health_counts_per_dimension() {
        let events = vec![
            outcome(0, 0, 1, true),
            outcome(0, 2, 3, false),
            window(0, 'T'),
            outcome(1, 0, 2, false),
            window(1, 'U'),
        ];
        let health = exchange_health(&events);
        assert_eq!(health.len(), 2);
        assert_eq!(health[0].dim, 0);
        assert_eq!(health[0].kind, 'T');
        assert_eq!(health[0].attempts, 2);
        assert_eq!(health[0].accepted, 1);
        assert!((health[0].ratio() - 0.5).abs() < 1e-12);
        assert_eq!(health[1].attempts, 1);
        assert_eq!(health[1].accepted, 0);
        assert_eq!(health[1].ratio(), 0.0);
    }

    #[test]
    fn zero_attempt_dimension_has_zero_ratio_not_nan() {
        let health = exchange_health(&[window(0, 'T')]);
        assert_eq!(health[0].attempts, 0);
        assert_eq!(health[0].ratio(), 0.0);
        assert!(health[0].ratio().is_finite());
    }

    #[test]
    fn replay_applies_accepted_swaps_and_snapshots_at_windows() {
        let events = vec![
            outcome(0, 0, 1, true),
            outcome(0, 2, 3, false),
            window(0, 'T'),
            outcome(0, 1, 2, true),
            window(0, 'T'),
        ];
        let replay = replay_slot_walk(&events, 4);
        assert_eq!(replay.records.len(), 2);
        // After window 1: replicas 0 and 1 traded slots.
        assert_eq!(replay.records[0], vec![1, 0, 2, 3]);
        // After window 2: the occupant of slot 1 (replica 0) moved to 2.
        assert_eq!(replay.records[1], vec![2, 0, 1, 3]);
        assert_eq!(replay.slot_of, vec![2, 0, 1, 3]);
    }

    #[test]
    fn zero_participant_windows_take_no_snapshot() {
        let events = vec![Event::ExchangeWindow {
            kind: 'T',
            dim: 0,
            cycle: 0,
            participants: 0,
            start: 1.0,
            end: 1.0,
        }];
        assert!(replay_slot_walk(&events, 4).records.is_empty());
    }

    #[test]
    fn implied_slot_count_from_segments_and_outcomes() {
        assert_eq!(implied_slot_count(&[]), 0);
        assert_eq!(implied_slot_count(&[outcome(0, 5, 6, true)]), 7);
        let seg = Event::MdSegment {
            replica: 2,
            slot: 9,
            cycle: 0,
            dim: 0,
            attempt: 0,
            cores: 1,
            start: 0.0,
            end: 1.0,
            ok: true,
        };
        assert_eq!(implied_slot_count(&[seg]), 10);
    }
}
