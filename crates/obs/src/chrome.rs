//! Chrome Trace Event Format export.
//!
//! The output loads in `chrome://tracing` or <https://ui.perfetto.dev>:
//! process 0 ("replicas") has one row (tid) per replica showing its MD
//! segments; process 1 ("framework") shows exchange/data/overhead windows
//! per dimension plus instant marks for relaunches and cache rebuilds.
//! Timestamps are microseconds, converted from sim-clock seconds.

use crate::event::{Event, OverheadScope};
use crate::json::{escape, num};

const PID_REPLICAS: u32 = 0;
const PID_FRAMEWORK: u32 = 1;
/// Framework rows that must not collide with per-dimension tids.
const TID_MD_PHASE: u32 = 50;
const TID_REPEX_OVER: u32 = 100;
const TID_RP_OVER: u32 = 101;
const TID_RELAUNCH: u32 = 102;
const TID_CACHE: u32 = 103;

fn us(seconds: f64) -> String {
    num(seconds * 1e6)
}

/// A `ph:"X"` complete event.
#[allow(clippy::too_many_arguments)]
fn complete(
    pid: u32,
    tid: u32,
    cat: &str,
    name: &str,
    start: f64,
    end: f64,
    args: &[(&str, String)],
) -> String {
    let args_json: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
        escape(name),
        us(start),
        us(end - start),
        args_json.join(",")
    )
}

/// A `ph:"i"` instant event (global scope).
fn instant(pid: u32, tid: u32, cat: &str, name: &str, at: f64, args: &[(&str, String)]) -> String {
    let args_json: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
    format!(
        "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{},\"args\":{{{}}}}}",
        escape(name),
        us(at),
        args_json.join(",")
    )
}

fn process_name(pid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

/// `thread_name` + `thread_sort_index` metadata so viewers label rows and
/// sort them numerically (tid 10 below tid 9, not lexically after tid 1).
fn thread_meta(pid: u32, tid: u32, name: &str, sort_index: u32) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}},\n\
         {{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{sort_index}}}}}",
        escape(name)
    )
}

/// Render the full event stream as one Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(events.len() + 2);
    parts.push(process_name(PID_REPLICAS, "replicas"));
    parts.push(process_name(PID_FRAMEWORK, "framework"));
    // Row metadata: name + numeric sort index per tid actually in use.
    let mut replicas: std::collections::BTreeSet<usize> = Default::default();
    let mut dims: std::collections::BTreeSet<usize> = Default::default();
    let mut fixed: std::collections::BTreeSet<u32> = Default::default();
    for event in events {
        match event {
            Event::MdSegment { replica, .. } => {
                replicas.insert(*replica);
            }
            Event::ExchangeWindow { dim, .. }
            | Event::DataStage { dim, .. }
            | Event::ExchangeOutcome { dim, .. } => {
                dims.insert(*dim);
            }
            Event::MdPhase { .. } => {
                fixed.insert(TID_MD_PHASE);
            }
            Event::Overhead { scope, .. } => {
                fixed.insert(match scope {
                    OverheadScope::Repex => TID_REPEX_OVER,
                    OverheadScope::Rp => TID_RP_OVER,
                });
            }
            Event::TaskRelaunch { .. } => {
                fixed.insert(TID_RELAUNCH);
            }
            Event::CacheRebuild { .. } => {
                fixed.insert(TID_CACHE);
            }
        }
    }
    for r in &replicas {
        parts.push(thread_meta(PID_REPLICAS, *r as u32, &format!("replica {r}"), *r as u32));
    }
    for d in &dims {
        parts.push(thread_meta(PID_FRAMEWORK, *d as u32, &format!("dim {d}"), *d as u32));
    }
    for tid in &fixed {
        let name = match *tid {
            TID_MD_PHASE => "md-phase",
            TID_REPEX_OVER => "repex-overhead",
            TID_RP_OVER => "rp-overhead",
            TID_RELAUNCH => "relaunches",
            _ => "neighbor-cache",
        };
        parts.push(thread_meta(PID_FRAMEWORK, *tid, name, *tid));
    }
    for event in events {
        match event {
            Event::MdSegment { replica, slot, cycle, dim, attempt, cores, start, end, ok } => {
                parts.push(complete(
                    PID_REPLICAS,
                    *replica as u32,
                    "md",
                    &format!("MD r{replica} c{cycle}"),
                    *start,
                    *end,
                    &[
                        ("replica", replica.to_string()),
                        ("slot", slot.to_string()),
                        ("cycle", cycle.to_string()),
                        ("dim", dim.to_string()),
                        ("attempt", attempt.to_string()),
                        ("cores", cores.to_string()),
                        ("ok", ok.to_string()),
                    ],
                ));
            }
            Event::MdPhase { cycle, dim, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    TID_MD_PHASE,
                    "phase",
                    &format!("MD_PHASE c{cycle} d{dim}"),
                    *start,
                    *end,
                    &[("cycle", cycle.to_string()), ("dim", dim.to_string())],
                ));
            }
            Event::ExchangeWindow { kind, dim, cycle, participants, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    *dim as u32,
                    "exchange",
                    &format!("EX {kind} c{cycle}"),
                    *start,
                    *end,
                    &[
                        ("kind", format!("\"{}\"", escape(&kind.to_string()))),
                        ("cycle", cycle.to_string()),
                        ("participants", participants.to_string()),
                    ],
                ));
            }
            Event::DataStage { kind, dim, cycle, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    *dim as u32,
                    "data",
                    &format!("DATA {kind} c{cycle}"),
                    *start,
                    *end,
                    &[
                        ("kind", format!("\"{}\"", escape(&kind.to_string()))),
                        ("cycle", cycle.to_string()),
                        ("dim", dim.to_string()),
                    ],
                ));
            }
            Event::ExchangeOutcome { dim, cycle, slot_lo, slot_hi, accepted, at } => {
                parts.push(instant(
                    PID_FRAMEWORK,
                    *dim as u32,
                    "exchange_outcome",
                    &format!("EX_PAIR {slot_lo}-{slot_hi}"),
                    *at,
                    &[
                        ("dim", dim.to_string()),
                        ("cycle", cycle.to_string()),
                        ("slot_lo", slot_lo.to_string()),
                        ("slot_hi", slot_hi.to_string()),
                        ("accepted", accepted.to_string()),
                    ],
                ));
            }
            Event::Overhead { scope, cycle, start, end } => {
                let (tid, name) = match scope {
                    OverheadScope::Repex => (TID_REPEX_OVER, format!("REPEX_OVER c{cycle}")),
                    OverheadScope::Rp => (TID_RP_OVER, format!("RP_OVER c{cycle}")),
                };
                parts.push(complete(
                    PID_FRAMEWORK,
                    tid,
                    "overhead",
                    &name,
                    *start,
                    *end,
                    &[("cycle", cycle.to_string())],
                ));
            }
            Event::TaskRelaunch { name, slot, attempt, at } => {
                parts.push(instant(
                    PID_FRAMEWORK,
                    TID_RELAUNCH,
                    "fault",
                    &format!("RELAUNCH {name}"),
                    *at,
                    &[("slot", slot.to_string()), ("attempt", attempt.to_string())],
                ));
            }
            Event::CacheRebuild { cycle, rebuilds, at } => {
                parts.push(instant(
                    PID_FRAMEWORK,
                    TID_CACHE,
                    "cache",
                    "NEIGHBOR_REBUILD",
                    *at,
                    &[("cycle", cycle.to_string()), ("rebuilds", rebuilds.to_string())],
                ));
            }
        }
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}", parts.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_metadata_and_events() {
        let events = vec![
            Event::MdSegment {
                replica: 2,
                slot: 2,
                cycle: 0,
                dim: 0,
                attempt: 0,
                cores: 1,
                start: 1.0,
                end: 2.5,
                ok: true,
            },
            Event::TaskRelaunch { name: "md-x\"y".into(), slot: 1, attempt: 1, at: 3.0 },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("process_name"));
        assert!(json.contains("\"ts\":1000000.000"), "{json}");
        assert!(json.contains("\"dur\":1500000.000"), "{json}");
        // Escaped quote from the unit name survives as valid JSON.
        assert!(json.contains("md-x\\\"y"));
        // Crude balance check on the document shape.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_stream_is_still_valid_shape() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert_eq!(json.matches("process_name").count(), 2);
        assert!(!json.contains("thread_name"), "no rows, no row metadata");
    }

    #[test]
    fn thread_metadata_labels_and_sorts_used_rows() {
        let events = vec![
            Event::MdSegment {
                replica: 10,
                slot: 10,
                cycle: 0,
                dim: 0,
                attempt: 0,
                cores: 1,
                start: 0.0,
                end: 1.0,
                ok: true,
            },
            Event::MdPhase { cycle: 0, dim: 0, start: 0.0, end: 1.0 },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"replica 10\""), "{json}");
        assert!(json.contains("\"sort_index\":10"), "{json}");
        assert!(json.contains("\"name\":\"md-phase\""));
        // Only rows in use get metadata.
        assert!(!json.contains("relaunches"));
        assert_eq!(
            json.matches("thread_sort_index").count(),
            2,
            "one replica row + the md-phase row"
        );
    }

    #[test]
    fn exchange_outcomes_export_as_instants_with_args() {
        let events = vec![Event::ExchangeOutcome {
            dim: 1,
            cycle: 4,
            slot_lo: 2,
            slot_hi: 3,
            accepted: true,
            at: 9.0,
        }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"cat\":\"exchange_outcome\""), "{json}");
        assert!(json.contains("\"slot_lo\":2"));
        assert!(json.contains("\"slot_hi\":3"));
        assert!(json.contains("\"accepted\":true"));
        assert!(json.contains("\"dim\":1"));
    }

    #[test]
    fn data_stage_args_carry_kind_and_dim() {
        let events = vec![Event::DataStage { kind: 'T', dim: 2, cycle: 1, start: 0.0, end: 0.5 }];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"kind\":\"T\""), "{json}");
        assert!(json.contains("\"dim\":2"), "{json}");
    }
}
