//! Chrome Trace Event Format export.
//!
//! The output loads in `chrome://tracing` or <https://ui.perfetto.dev>:
//! process 0 ("replicas") has one row (tid) per replica showing its MD
//! segments; process 1 ("framework") shows exchange/data/overhead windows
//! per dimension plus instant marks for relaunches and cache rebuilds.
//! Timestamps are microseconds, converted from sim-clock seconds.

use crate::event::{Event, OverheadScope};
use crate::json::{escape, num};

const PID_REPLICAS: u32 = 0;
const PID_FRAMEWORK: u32 = 1;
/// Framework rows that must not collide with per-dimension tids.
const TID_MD_PHASE: u32 = 50;
const TID_REPEX_OVER: u32 = 100;
const TID_RP_OVER: u32 = 101;
const TID_RELAUNCH: u32 = 102;
const TID_CACHE: u32 = 103;

fn us(seconds: f64) -> String {
    num(seconds * 1e6)
}

/// A `ph:"X"` complete event.
#[allow(clippy::too_many_arguments)]
fn complete(
    pid: u32,
    tid: u32,
    cat: &str,
    name: &str,
    start: f64,
    end: f64,
    args: &[(&str, String)],
) -> String {
    let args_json: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
    format!(
        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
        escape(name),
        us(start),
        us(end - start),
        args_json.join(",")
    )
}

/// A `ph:"i"` instant event (global scope).
fn instant(pid: u32, tid: u32, cat: &str, name: &str, at: f64, args: &[(&str, String)]) -> String {
    let args_json: Vec<String> =
        args.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v)).collect();
    format!(
        "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{cat}\",\"name\":\"{}\",\"ts\":{},\"args\":{{{}}}}}",
        escape(name),
        us(at),
        args_json.join(",")
    )
}

fn process_name(pid: u32, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{}\"}}}}",
        escape(name)
    )
}

/// Render the full event stream as one Chrome-trace JSON document.
pub fn chrome_trace_json(events: &[Event]) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(events.len() + 2);
    parts.push(process_name(PID_REPLICAS, "replicas"));
    parts.push(process_name(PID_FRAMEWORK, "framework"));
    for event in events {
        match event {
            Event::MdSegment { replica, slot, cycle, dim, attempt, cores, start, end, ok } => {
                parts.push(complete(
                    PID_REPLICAS,
                    *replica as u32,
                    "md",
                    &format!("MD r{replica} c{cycle}"),
                    *start,
                    *end,
                    &[
                        ("replica", replica.to_string()),
                        ("slot", slot.to_string()),
                        ("cycle", cycle.to_string()),
                        ("dim", dim.to_string()),
                        ("attempt", attempt.to_string()),
                        ("cores", cores.to_string()),
                        ("ok", ok.to_string()),
                    ],
                ));
            }
            Event::MdPhase { cycle, dim, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    TID_MD_PHASE,
                    "phase",
                    &format!("MD_PHASE c{cycle} d{dim}"),
                    *start,
                    *end,
                    &[("cycle", cycle.to_string()), ("dim", dim.to_string())],
                ));
            }
            Event::ExchangeWindow { kind, dim, cycle, participants, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    *dim as u32,
                    "exchange",
                    &format!("EX {kind} c{cycle}"),
                    *start,
                    *end,
                    &[
                        ("kind", format!("\"{}\"", escape(&kind.to_string()))),
                        ("cycle", cycle.to_string()),
                        ("participants", participants.to_string()),
                    ],
                ));
            }
            Event::DataStage { kind, dim, cycle, start, end } => {
                parts.push(complete(
                    PID_FRAMEWORK,
                    *dim as u32,
                    "data",
                    &format!("DATA {kind} c{cycle}"),
                    *start,
                    *end,
                    &[("cycle", cycle.to_string())],
                ));
            }
            Event::Overhead { scope, cycle, start, end } => {
                let (tid, name) = match scope {
                    OverheadScope::Repex => (TID_REPEX_OVER, format!("REPEX_OVER c{cycle}")),
                    OverheadScope::Rp => (TID_RP_OVER, format!("RP_OVER c{cycle}")),
                };
                parts.push(complete(
                    PID_FRAMEWORK,
                    tid,
                    "overhead",
                    &name,
                    *start,
                    *end,
                    &[("cycle", cycle.to_string())],
                ));
            }
            Event::TaskRelaunch { name, slot, attempt, at } => {
                parts.push(instant(
                    PID_FRAMEWORK,
                    TID_RELAUNCH,
                    "fault",
                    &format!("RELAUNCH {name}"),
                    *at,
                    &[("slot", slot.to_string()), ("attempt", attempt.to_string())],
                ));
            }
            Event::CacheRebuild { cycle, rebuilds, at } => {
                parts.push(instant(
                    PID_FRAMEWORK,
                    TID_CACHE,
                    "cache",
                    "NEIGHBOR_REBUILD",
                    *at,
                    &[("cycle", cycle.to_string()), ("rebuilds", rebuilds.to_string())],
                ));
            }
        }
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}", parts.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_has_metadata_and_events() {
        let events = vec![
            Event::MdSegment {
                replica: 2,
                slot: 2,
                cycle: 0,
                dim: 0,
                attempt: 0,
                cores: 1,
                start: 1.0,
                end: 2.5,
                ok: true,
            },
            Event::TaskRelaunch { name: "md-x\"y".into(), slot: 1, attempt: 1, at: 3.0 },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("process_name"));
        assert!(json.contains("\"ts\":1000000.000"), "{json}");
        assert!(json.contains("\"dur\":1500000.000"), "{json}");
        // Escaped quote from the unit name survives as valid JSON.
        assert!(json.contains("md-x\\\"y"));
        // Crude balance check on the document shape.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn empty_stream_is_still_valid_shape() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("traceEvents"));
        assert_eq!(json.matches("process_name").count(), 2);
    }
}
