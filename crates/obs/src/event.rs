//! Typed trace records emitted by the drivers.
//!
//! All timestamps are simulation-clock seconds (`SimTime::as_secs`), so the
//! same event shapes work for the virtual-time and the wall-clock executor.
//! Exchange kinds travel as their single-letter code (`T`/`U`/`S`/`P`) to
//! keep this crate independent of `hpc`.

/// Which Eq. 1 overhead bucket a framework-overhead window belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadScope {
    /// RepEx framework overhead (`T_RepEx_over`): exchange bookkeeping,
    /// swap application, cycle setup.
    Repex,
    /// Pilot/RP overhead (`T_RP_over`): unit launch and scheduling costs.
    Rp,
}

/// One structured trace record.
///
/// Interval events carry `[start, end]` in sim-clock seconds; point events
/// carry a single `at` timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One MD task occupying its cores from `start` to `end`.
    MdSegment {
        replica: usize,
        slot: usize,
        cycle: u64,
        dim: usize,
        /// 0 for the first launch, incremented per relaunch of the same work.
        attempt: u32,
        cores: usize,
        start: f64,
        end: f64,
        /// `false` when the task failed (fault injection or payload error).
        ok: bool,
    },
    /// The whole MD phase of one dimension pass: from first submission to
    /// the barrier where every replica's segment (and relaunches) finished.
    /// `T_MD` in Eq. 1 is the sum of these windows over a cycle.
    MdPhase { cycle: u64, dim: usize, start: f64, end: f64 },
    /// One exchange window (`T_EX` contribution). `kind` is the exchange
    /// kind letter; `participants` counts the replicas considered.
    ExchangeWindow { kind: char, dim: usize, cycle: u64, participants: usize, start: f64, end: f64 },
    /// One data-staging window (`T_data` contribution).
    DataStage { kind: char, dim: usize, cycle: u64, start: f64, end: f64 },
    /// One Metropolis exchange attempt between the replicas occupying
    /// adjacent slots `slot_lo < slot_hi` in dimension `dim`. Emitted before
    /// the covering [`Event::ExchangeWindow`], so acceptance ratios and
    /// round trips are derivable from the trace alone.
    ExchangeOutcome {
        dim: usize,
        cycle: u64,
        slot_lo: usize,
        slot_hi: usize,
        accepted: bool,
        at: f64,
    },
    /// Framework overhead charged to the pipeline (`T_RepEx_over` or
    /// `T_RP_over` depending on `scope`).
    Overhead { scope: OverheadScope, cycle: u64, start: f64, end: f64 },
    /// A failed task was resubmitted. `name` is the unit name of the failed
    /// attempt; `attempt` is the attempt number of the relaunch.
    TaskRelaunch { name: String, slot: usize, attempt: u32, at: f64 },
    /// Neighbor-cache rebuilds observed during a cycle (process-wide delta).
    CacheRebuild { cycle: u64, rebuilds: u64, at: f64 },
}

impl Event {
    /// The cycle this event belongs to, if it is cycle-scoped.
    pub fn cycle(&self) -> Option<u64> {
        match self {
            Event::MdSegment { cycle, .. }
            | Event::MdPhase { cycle, .. }
            | Event::ExchangeWindow { cycle, .. }
            | Event::DataStage { cycle, .. }
            | Event::ExchangeOutcome { cycle, .. }
            | Event::Overhead { cycle, .. }
            | Event::CacheRebuild { cycle, .. } => Some(*cycle),
            Event::TaskRelaunch { .. } => None,
        }
    }

    /// Interval duration in seconds; 0 for point events.
    pub fn duration(&self) -> f64 {
        match self {
            Event::MdSegment { start, end, .. }
            | Event::MdPhase { start, end, .. }
            | Event::ExchangeWindow { start, end, .. }
            | Event::DataStage { start, end, .. }
            | Event::Overhead { start, end, .. } => end - start,
            Event::TaskRelaunch { .. }
            | Event::CacheRebuild { .. }
            | Event::ExchangeOutcome { .. } => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_and_duration_accessors() {
        let seg = Event::MdSegment {
            replica: 3,
            slot: 3,
            cycle: 7,
            dim: 0,
            attempt: 0,
            cores: 2,
            start: 10.0,
            end: 24.0,
            ok: true,
        };
        assert_eq!(seg.cycle(), Some(7));
        assert!((seg.duration() - 14.0).abs() < 1e-12);

        let relaunch = Event::TaskRelaunch { name: "md-x".into(), slot: 1, attempt: 2, at: 30.0 };
        assert_eq!(relaunch.cycle(), None);
        assert_eq!(relaunch.duration(), 0.0);
    }
}
