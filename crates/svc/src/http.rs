//! A deliberately tiny HTTP/1.1 layer over `std::net` — no external
//! dependencies, enough for a JSON control plane: one request per
//! connection, `Content-Length` bodies, `Connection: close` semantics.
//! The control plane sees a handful of concurrent clients, not thousands,
//! so the server is a blocking accept loop with one thread per connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bound on accepted request bodies. A submitted config is a few
/// kilobytes; this is a guard against runaway clients, not a tuning knob.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request: method, path, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, doc: &serde_json::Value) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: doc.to_string().into_bytes(),
        }
    }

    /// A plain-text response (Prometheus exposition uses this).
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response { status, content_type: "text/plain", body: body.into().into_bytes() }
    }
}

/// The request handler: pure function of the request, shared across
/// connection threads.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// A running HTTP server. Dropping (or calling [`HttpServer::stop`])
/// stops the accept loop; in-flight connection threads finish on their
/// own.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving `handler` in a background accept loop.
    pub fn bind(addr: &str, handler: Handler) -> Result<Self, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("repex-svc-http".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if loop_stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let handler = Arc::clone(&handler);
                    let _ = std::thread::Builder::new()
                        .name("repex-svc-conn".into())
                        .spawn(move || handle_connection(stream, &handler));
                }
            })
            .map_err(|e| format!("spawn accept thread: {e}"))?;
        Ok(HttpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so the blocking accept wakes up and sees the
        // stop flag; an empty connection is handled as a no-op.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown();
        }
    }
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err()
        || stream.set_write_timeout(Some(Duration::from_secs(10))).is_err()
    {
        return;
    }
    let mut reader = BufReader::new(stream);
    let resp = match read_request(&mut reader) {
        Ok(Some(req)) => handler(&req),
        Ok(None) => return, // empty connection (e.g. the shutdown poke)
        Err(msg) => Response::json(400, &serde_json::json!({ "error": msg })),
    };
    let mut stream = reader.into_inner();
    let _ = write_response(&mut stream, &resp);
}

fn read_request<R: BufRead>(r: &mut R) -> Result<Option<Request>, String> {
    let mut line = String::new();
    r.read_line(&mut line).map_err(|e| format!("read request line: {e}"))?;
    if line.trim().is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || !path.starts_with('/') {
        return Err(format!("malformed request line {line:?}"));
    }
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        r.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {:?}", value.trim()))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!(
            "request body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
    Ok(Some(Request { method, path, body }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Minimal blocking client: one request, returns `(status, body)`. The
/// CLI verbs (`repex submit/status/cancel/results/metrics`) and the
/// integration tests drive the service through this.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Vec<u8>), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let body = body.unwrap_or(&[]);
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let mut stream = stream;
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("send request: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("read status line: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| format!("read header: {e}"))?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(n) => {
            body.resize(n, 0);
            reader.read_exact(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
        None => {
            reader.read_to_end(&mut body).map_err(|e| format!("read body: {e}"))?;
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/echo" {
                let mut body = req.method.clone().into_bytes();
                body.push(b' ');
                body.extend_from_slice(&req.body);
                Response { status: 200, content_type: "text/plain", body }
            } else {
                Response::json(404, &serde_json::json!({ "error": "no such route" }))
            }
        });
        HttpServer::bind("127.0.0.1:0", handler).unwrap()
    }

    #[test]
    fn round_trip_with_body() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let (status, body) = request(&addr, "POST", "/echo", Some(b"hello")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"POST hello");
        // Several sequential clients — every connection is independent.
        for _ in 0..3 {
            let (status, _) = request(&addr, "GET", "/echo", None).unwrap();
            assert_eq!(status, 200);
        }
        server.stop();
    }

    #[test]
    fn unknown_route_is_404_json() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let (status, body) = request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let doc: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(doc["error"], "no such route");
        server.stop();
    }

    #[test]
    fn malformed_request_line_is_400() {
        let server = echo_server();
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut out = String::new();
        BufReader::new(stream).read_line(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
        server.stop();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = echo_server();
        let addr = server.addr().to_string();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let payload = format!("client-{i}");
                    let (status, body) =
                        request(&addr, "POST", "/echo", Some(payload.as_bytes())).unwrap();
                    assert_eq!(status, 200);
                    assert_eq!(body, format!("POST {payload}").into_bytes());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.stop();
    }
}
