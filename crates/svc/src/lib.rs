//! # svc — RepEx as a service
//!
//! A long-running multi-tenant campaign service: many REMD campaigns
//! multiplexed over **one** shared virtual cluster, the paper's pilot-job
//! decoupling pushed to its production conclusion. Four layers:
//!
//! * [`http`] — a deliberately tiny dependency-free HTTP/1.1 server and
//!   client over `std::net`, enough for a JSON control plane;
//! * [`queue`] — the durable spool: one directory per campaign, control
//!   records written with the same atomic tmp+rename discipline as
//!   `repex::checkpoint`, so a restarted service reconstructs its queue
//!   by scanning the spool;
//! * [`sched`] — weighted fair-share planning over an [`hpc::CorePool`]:
//!   tenants are charged normalized core-seconds, the least-charged tenant
//!   is served first, and head-of-line blocking keeps wide campaigns from
//!   starving;
//! * [`service`] — the orchestrator: lint-gated admission with typed
//!   `S0xx` diagnostics, sliced resumable runs (each slice checkpoints,
//!   releases its cores and re-queues), per-campaign cancellation that
//!   forces a final checkpoint, and the REST/JSON API
//!   (`POST /campaigns`, `GET /campaigns/:id`, `DELETE /campaigns/:id`,
//!   `GET /campaigns/:id/results`, `GET /metrics`).
//!
//! Campaign results are *bit-identical* to standalone `repex run` output:
//! the service never touches a campaign's configuration, all RNG in the
//! core is a pure function of checkpointable identity, and telemetry,
//! checkpointing and recording are side-effect-free on the virtual
//! execution (proven end to end in `tests/it_service.rs`).

pub mod http;
pub mod metrics;
pub mod queue;
pub mod sched;
pub mod service;

pub use queue::{JobRecord, JobState};
pub use sched::{Candidate, FairShare};
pub use service::{CampaignService, ServiceConfig};
