//! The campaign service: durable queue + fair-share scheduler + REST API.
//!
//! One scheduler thread plans queued jobs onto the shared pool every tick
//! (or whenever woken by a submission/completion); each planned job runs
//! **one slice** on its own runner thread — resume from its checkpoint if
//! one exists, run up to `slice_cycles` cycles, checkpoint, release the
//! cores, re-queue. Slicing is what makes fair-share real: a long
//! campaign cannot squat on the pool, because between slices its cores
//! return to the planner and the least-charged tenant goes first.
//!
//! Admission is lint-gated (the same pass as `repex run`) and rejects
//! with typed `S0xx` diagnostics:
//!
//! | code | condition | HTTP |
//! |------|-----------|------|
//! | S001 | invalid campaign id                      | 400 |
//! | S002 | duplicate campaign id                    | 409 |
//! | S003 | config cluster ≠ service pool cluster    | 422 |
//! | S004 | campaign needs more cores than the pool  | 422 |
//! | S006 | non-positive / non-finite weight         | 400 |
//! | S010 | queue at capacity (backpressure)         | 429 |
//! | P010 | predicted cost exceeds the per-campaign budget | 422 |
//!
//! Admission is also *predictive* (DESIGN.md §14): the planner's Eq. 1
//! cost model prices every campaign before it queues. Predictions above
//! the service budget reject with the same typed `P010` the `repex plan`
//! CLI emits, and accepted jobs carry the estimate as an up-front
//! fair-share charge that is credited back when they terminate.
//!
//! Lint findings at Error level reject with 422 and the full diagnostic
//! list in the body (same JSON schema as `repex check --json` findings).

use crate::http::{Handler, HttpServer, Request, Response};
use crate::metrics::{merge_prometheus, service_gauge};
use crate::queue::{load_record, save_record, scan_spool, JobDirs, JobRecord, JobState};
use crate::sched::{Candidate, FairShare};
use parking_lot::{Condvar, Mutex};
use repex::config::SimulationConfig;
use repex::diag::Diagnostic;
use repex::emm::LiveTelemetry;
use repex::simulation::RemdSimulation;
use serde::Deserialize;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service configuration (`repex serve` flags).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Spool root: one subdirectory per campaign.
    pub spool: PathBuf,
    /// Shared virtual cluster preset (`supermic|stampede|small:<cores>`).
    /// Submitted configs must name the same preset — every tenant's pilot
    /// is carved out of this one pool.
    pub cluster: String,
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Backpressure: submissions beyond this many queued jobs are
    /// rejected with 429/S010.
    pub max_queue: usize,
    /// Cycles per scheduling slice for synchronous campaigns (0 = run
    /// each campaign to completion in one slice). Asynchronous campaigns
    /// always run in one slice — their doneness is not observable from a
    /// partial report — but still honor cancellation mid-run.
    pub slice_cycles: u64,
    /// Scheduler tick: the idle re-plan interval (submissions and
    /// completions wake the planner immediately).
    pub tick: Duration,
    /// Per-campaign admission budget in core·seconds: submissions whose
    /// *predicted* cost (`lint::plan::predicted_core_seconds`) exceeds
    /// this reject with 422/P010 before they ever queue. Unlimited by
    /// default.
    pub budget_core_seconds: f64,
}

impl ServiceConfig {
    /// Defaults for everything but the spool directory.
    pub fn new(spool: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            spool: spool.into(),
            cluster: "small:64".into(),
            addr: "127.0.0.1:0".into(),
            max_queue: 64,
            slice_cycles: 4,
            tick: Duration::from_millis(200),
            budget_core_seconds: f64::INFINITY,
        }
    }
}

/// One campaign job: the durable record plus in-process runtime state.
struct Job {
    record: JobRecord,
    dirs: JobDirs,
    /// Cooperative stop flag handed to the running slice.
    cancel: Arc<AtomicBool>,
    /// Distinguishes user cancellation (terminal) from a service-shutdown
    /// stop (job re-queues and resumes on restart).
    user_cancelled: bool,
    /// Shared across all slices of this job: accumulates the full event
    /// stream for the final Chrome trace and busy-core integral.
    recorder: obs::Recorder,
}

struct State {
    jobs: HashMap<String, Job>,
    fair: FairShare,
    next_seq: u64,
    stopping: bool,
    /// Live runner threads (graceful stop waits for zero).
    running: usize,
}

struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    wake: Condvar,
}

/// A running campaign service. [`CampaignService::stop`] (or drop) shuts
/// down gracefully: running slices are stopped at their next consistency
/// point, checkpointed, and re-queued durably so a restarted service
/// resumes them.
pub struct CampaignService {
    inner: Arc<Inner>,
    addr: SocketAddr,
    http: Option<HttpServer>,
    sched: Option<std::thread::JoinHandle<()>>,
}

#[derive(Deserialize)]
struct SubmitRequest {
    campaign: String,
    #[serde(default = "default_tenant")]
    tenant: String,
    #[serde(default = "default_weight")]
    weight: f64,
    #[serde(default)]
    priority: u8,
    config: serde_json::Value,
}

fn default_tenant() -> String {
    "default".into()
}

fn default_weight() -> f64 {
    1.0
}

/// JSON body for a typed rejection: top-level error plus the full
/// diagnostic list (same schema as `repex check --json` findings).
fn reject(status: u16, diags: Vec<Diagnostic>) -> Response {
    let error = diags.first().map(|d| d.message.clone()).unwrap_or_else(|| "rejected".to_string());
    let doc = serde_json::json!({
        "error": error,
        "diagnostics": diags,
    });
    Response::json(status, &doc)
}

impl CampaignService {
    /// Stand up the service: resolve the shared cluster, replay the spool
    /// into the queue, start the scheduler thread and bind the API.
    pub fn start(cfg: ServiceConfig) -> Result<Self, String> {
        let cluster = repex::config::cluster_preset(&cfg.cluster)?;
        let pool_cores = cluster.total_cores();
        std::fs::create_dir_all(&cfg.spool)
            .map_err(|e| format!("cannot create spool {}: {e}", cfg.spool.display()))?;
        let mut jobs = HashMap::new();
        let mut next_seq = 0u64;
        for mut record in scan_spool(&cfg.spool)? {
            next_seq = next_seq.max(record.seq + 1);
            let dirs = JobDirs::new(&cfg.spool, &record.campaign);
            // A record stuck in `running` means the previous service
            // process died mid-slice; its checkpoint covers everything up
            // to the last consistency point, so it simply re-queues.
            if record.state == JobState::Running {
                record.state = JobState::Queued;
                save_record(&dirs, &record)?;
            }
            jobs.insert(
                record.campaign.clone(),
                Job {
                    record,
                    dirs,
                    cancel: Arc::new(AtomicBool::new(false)),
                    user_cancelled: false,
                    recorder: obs::Recorder::enabled(),
                },
            );
        }
        let mut fair = FairShare::new(pool_cores);
        // Replayed jobs that have not terminated still carry their
        // admission-time estimate; terminal ones were already credited.
        for job in jobs.values() {
            if !job.record.state.is_terminal() {
                fair.charge_estimate(
                    &job.record.tenant,
                    job.record.weight,
                    job.record.predicted_core_seconds,
                );
            }
        }
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State { jobs, fair, next_seq, stopping: false, running: 0 }),
            wake: Condvar::new(),
        });
        let sched_inner = Arc::clone(&inner);
        let sched = std::thread::Builder::new()
            .name("repex-svc-sched".into())
            .spawn(move || scheduler_loop(&sched_inner))
            .map_err(|e| format!("spawn scheduler: {e}"))?;
        let handler_inner = Arc::clone(&inner);
        let handler: Handler = Arc::new(move |req: &Request| route(&handler_inner, req));
        let http = HttpServer::bind(&inner.cfg.addr, handler)?;
        let addr = http.addr();
        Ok(CampaignService { inner, addr, http: Some(http), sched: Some(sched) })
    }

    /// The bound API address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, signal running slices to stop at
    /// their next consistency point (final checkpoint + durable re-queue),
    /// and wait for every runner to finish.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        {
            let mut st = self.inner.state.lock();
            st.stopping = true;
            for job in st.jobs.values() {
                if job.record.state == JobState::Running {
                    job.cancel.store(true, Ordering::Relaxed);
                }
            }
        }
        self.inner.wake.notify_all();
        if let Some(t) = self.sched.take() {
            let _ = t.join();
        }
        if let Some(h) = self.http.take() {
            h.stop();
        }
    }
}

impl Drop for CampaignService {
    fn drop(&mut self) {
        if self.sched.is_some() || self.http.is_some() {
            self.shutdown();
        }
    }
}

fn scheduler_loop(inner: &Arc<Inner>) {
    let mut st = inner.state.lock();
    loop {
        if st.stopping {
            if st.running == 0 {
                return;
            }
        } else {
            let queued: Vec<Candidate> = st
                .jobs
                .values()
                .filter(|j| j.record.state == JobState::Queued)
                .map(|j| Candidate {
                    id: j.record.campaign.clone(),
                    tenant: j.record.tenant.clone(),
                    weight: j.record.weight,
                    priority: j.record.priority,
                    seq: j.record.seq,
                    cores: j.record.cores,
                })
                .collect();
            for c in st.fair.plan(&queued) {
                if st.fair.start(&c).is_err() {
                    continue;
                }
                let Some(job) = st.jobs.get_mut(&c.id) else { continue };
                job.record.state = JobState::Running;
                // A fresh flag per slice: a stale stop request from a
                // previous shutdown must not cancel the new slice.
                job.cancel = Arc::new(AtomicBool::new(false));
                if let Err(e) = save_record(&job.dirs, &job.record) {
                    eprintln!("[repex-svc] {}: {e}", c.id);
                }
                st.running += 1;
                let runner_inner = Arc::clone(inner);
                let id = c.id.clone();
                let spawned = std::thread::Builder::new()
                    .name("repex-svc-runner".into())
                    .spawn(move || run_slice(&runner_inner, &id));
                if spawned.is_err() {
                    // Could not start the runner: undo the lease and
                    // requeue so the job is not stranded in `running`.
                    st.running -= 1;
                    let _ = st.fair.finish(&c.id, &c.tenant, 0.0);
                    if let Some(job) = st.jobs.get_mut(&c.id) {
                        job.record.state = JobState::Queued;
                        let _ = save_record(&job.dirs, &job.record);
                    }
                }
            }
        }
        inner.wake.wait_for(&mut st, inner.cfg.tick);
    }
}

/// Run one slice of campaign `id`: resume (or start) the simulation with
/// checkpointing, live telemetry and the job's stop flag attached, then
/// fold the outcome back into the job state.
fn run_slice(inner: &Arc<Inner>, id: &str) {
    let (config, dirs, cancel, recorder, slice_cycles) = {
        let st = inner.state.lock();
        let Some(job) = st.jobs.get(id) else { return };
        (
            job.record.config.clone(),
            job.dirs.clone(),
            Arc::clone(&job.cancel),
            job.recorder.clone(),
            inner.cfg.slice_cycles,
        )
    };
    let is_async = matches!(config.pattern, repex::config::Pattern::Asynchronous { .. });
    let started = Instant::now();
    let result = run_leg(&config, &dirs, &cancel, &recorder, is_async, slice_cycles);
    let elapsed = started.elapsed().as_secs_f64();

    let mut st = inner.state.lock();
    let Some(job) = st.jobs.get_mut(id) else { return };
    let tenant = job.record.tenant.clone();
    match result {
        Err(e) => {
            job.record.state = JobState::Failed;
            job.record.error = Some(e);
        }
        Ok(report) => {
            let done = if is_async {
                !cancel.load(Ordering::Relaxed)
            } else {
                report.cycles.len() as u64 >= config.n_cycles
            };
            if done {
                match finalize(&dirs, &report, &job.recorder) {
                    Ok(()) => job.record.state = JobState::Done,
                    Err(e) => {
                        job.record.state = JobState::Failed;
                        job.record.error = Some(e);
                    }
                }
            } else if job.user_cancelled {
                // The driver already wrote the final checkpoint at the
                // stop point; the spool keeps it for post-mortems.
                job.record.state = JobState::Cancelled;
            } else {
                // Slice limit reached, or a service shutdown stop: either
                // way the job re-queues durably and resumes later.
                job.record.state = JobState::Queued;
            }
        }
    }
    let weight = job.record.weight;
    let predicted = job.record.predicted_core_seconds;
    let terminal = job.record.state.is_terminal();
    if let Err(e) = save_record(&job.dirs, &job.record) {
        eprintln!("[repex-svc] {id}: {e}");
    }
    let _ = st.fair.finish(id, &tenant, elapsed);
    if terminal {
        // The estimate's job is done: only actual slice charges remain.
        st.fair.credit_estimate(&tenant, weight, predicted);
    }
    st.running -= 1;
    inner.wake.notify_all();
}

fn run_leg(
    config: &SimulationConfig,
    dirs: &JobDirs,
    cancel: &Arc<AtomicBool>,
    recorder: &obs::Recorder,
    is_async: bool,
    slice_cycles: u64,
) -> Result<repex::SimulationReport, String> {
    let ckpt_dir = dirs.checkpoint();
    let ckpt_file = ckpt_dir.join(repex::checkpoint::CHECKPOINT_FILE);
    let mut sim = if ckpt_file.exists() {
        RemdSimulation::resume(&ckpt_dir)?
    } else {
        RemdSimulation::new(config.clone())?
    };
    sim = sim
        .with_checkpoints(&ckpt_dir, 1)
        .with_stop_flag(Arc::clone(cancel))
        .with_recorder(recorder.clone())
        .with_live_telemetry(LiveTelemetry {
            stream: Some(dirs.stream()),
            prom: Some(dirs.prom()),
            campaign: Some(
                dirs.dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| config.title.clone()),
            ),
        });
    if !is_async && slice_cycles > 0 {
        sim = sim.with_cycle_limit(slice_cycles);
    }
    sim.run()
}

/// Write the terminal artifacts: the canonical report document (built by
/// the same encoder as `repex run --json`, hence bit-identical) and the
/// whole-campaign Chrome trace.
fn finalize(
    dirs: &JobDirs,
    report: &repex::SimulationReport,
    recorder: &obs::Recorder,
) -> Result<(), String> {
    let body = serde_json::to_string_pretty(&report.to_json_doc())
        .map_err(|e| format!("encode report: {e}"))?;
    std::fs::write(dirs.report(), body)
        .map_err(|e| format!("write {}: {e}", dirs.report().display()))?;
    std::fs::write(dirs.trace(), recorder.chrome_trace_json())
        .map_err(|e| format!("write {}: {e}", dirs.trace().display()))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Routing

fn route(inner: &Arc<Inner>, req: &Request) -> Response {
    let path = req.path.split('?').next().unwrap_or("");
    let segs: Vec<&str> = path.trim_matches('/').split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["metrics"]) => metrics(inner),
        ("POST", ["campaigns"]) => submit(inner, &req.body),
        ("GET", ["campaigns"]) => list(inner),
        ("GET", ["campaigns", id]) => status(inner, id),
        ("DELETE", ["campaigns", id]) => cancel(inner, id),
        ("GET", ["campaigns", id, "results"]) => results(inner, id),
        ("GET", _) | ("DELETE", _) => {
            Response::json(404, &serde_json::json!({ "error": format!("no route {path}") }))
        }
        (m, _) => {
            Response::json(405, &serde_json::json!({ "error": format!("method {m} not allowed") }))
        }
    }
}

fn submit(inner: &Arc<Inner>, body: &[u8]) -> Response {
    let req: SubmitRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(e) => {
            return Response::json(
                400,
                &serde_json::json!({ "error": format!("bad submit body: {e}") }),
            )
        }
    };
    if let Err(e) = obs::validate_campaign_id(&req.campaign) {
        return reject(
            400,
            vec![Diagnostic::error("S001", format!("invalid campaign id: {e}"))
                .with_hint("ids are 1-64 characters of [A-Za-z0-9._-], starting alphanumeric")],
        );
    }
    if !(req.weight.is_finite() && req.weight > 0.0) {
        return reject(
            400,
            vec![Diagnostic::error(
                "S006",
                format!("fair-share weight must be a positive finite number, got {}", req.weight),
            )],
        );
    }
    let config: SimulationConfig = match serde_json::from_value(req.config) {
        Ok(c) => c,
        Err(e) => {
            return Response::json(
                400,
                &serde_json::json!({ "error": format!("config parse error: {e}") }),
            )
        }
    };
    // The pool constraint: every tenant's pilot is carved out of the one
    // shared cluster, so the config must target exactly that preset.
    if config.resource.cluster != inner.cfg.cluster {
        return reject(
            422,
            vec![Diagnostic::error(
                "S003",
                format!(
                    "config targets cluster {:?} but this service schedules onto {:?}",
                    config.resource.cluster, inner.cfg.cluster
                ),
            )
            .with_path("/resource/cluster")
            .with_hint(format!("set resource.cluster to {:?}", inner.cfg.cluster))],
        );
    }
    let cores = match config.pilot_cores() {
        Ok(c) => c,
        Err(e) => return reject(422, vec![Diagnostic::error("C002", e)]),
    };
    let pool_cores = {
        let st = inner.state.lock();
        st.fair.pool().total()
    };
    if cores > pool_cores {
        return reject(
            422,
            vec![Diagnostic::error(
                "S004",
                format!("campaign needs {cores} cores but the shared pool has only {pool_cores}"),
            )
            .with_path("/resource")],
        );
    }
    // Predictive admission: price the campaign with the planner's Eq. 1
    // model before it queues. A config the cost model cannot price has a
    // structural problem the lint gate below reports in full.
    let predicted = lint::plan::predicted_core_seconds(&config).unwrap_or(0.0);
    if predicted > inner.cfg.budget_core_seconds {
        return reject(
            422,
            vec![Diagnostic::error(
                "P010",
                format!(
                    "predicted cost ≈{predicted:.0} core·s exceeds this service's \
                     per-campaign budget of {:.0} core·s",
                    inner.cfg.budget_core_seconds
                ),
            )
            .with_path("/resource/cores")
            .with_hint("`repex plan` ranks cheaper ladders and core counts for this config")],
        );
    }
    // The same lint pass that gates `repex run`: error findings reject.
    let diags = lint::lint_config(&config, &lint::LintOptions::default());
    if repex::diag::has_errors(&diags) {
        return reject(422, diags);
    }

    let mut st = inner.state.lock();
    if st.stopping {
        return Response::json(503, &serde_json::json!({ "error": "service is shutting down" }));
    }
    if st.jobs.contains_key(&req.campaign) {
        return reject(
            409,
            vec![Diagnostic::error(
                "S002",
                format!("campaign id {:?} already exists", req.campaign),
            )
            .with_hint("pick a fresh id; ids are never reused within one spool")],
        );
    }
    let queued = st.jobs.values().filter(|j| j.record.state == JobState::Queued).count();
    if queued >= inner.cfg.max_queue {
        return reject(
            429,
            vec![Diagnostic::error(
                "S010",
                format!(
                    "queue is at capacity ({queued}/{} jobs); retry after campaigns drain",
                    inner.cfg.max_queue
                ),
            )],
        );
    }
    let record = JobRecord {
        campaign: req.campaign.clone(),
        tenant: req.tenant,
        weight: req.weight,
        priority: req.priority,
        seq: st.next_seq,
        cores,
        predicted_core_seconds: predicted,
        state: JobState::Queued,
        error: None,
        config,
    };
    st.next_seq += 1;
    // Charge the estimate up front; credited back at the terminal state.
    st.fair.charge_estimate(&record.tenant, record.weight, predicted);
    let dirs = JobDirs::new(&inner.cfg.spool, &req.campaign);
    if let Err(e) = save_record(&dirs, &record) {
        return Response::json(500, &serde_json::json!({ "error": e }));
    }
    let doc = serde_json::json!({
        "campaign": record.campaign,
        "tenant": record.tenant,
        "state": record.state.as_str(),
        "seq": record.seq,
        "cores": record.cores,
        "warnings": diags,
    });
    st.jobs.insert(
        req.campaign,
        Job {
            record,
            dirs,
            cancel: Arc::new(AtomicBool::new(false)),
            user_cancelled: false,
            recorder: obs::Recorder::enabled(),
        },
    );
    drop(st);
    inner.wake.notify_all();
    Response::json(201, &doc)
}

/// Job summary shared by the list and status endpoints.
fn job_doc(job: &Job) -> serde_json::Value {
    serde_json::json!({
        "campaign": job.record.campaign,
        "tenant": job.record.tenant,
        "weight": job.record.weight,
        "priority": job.record.priority,
        "seq": job.record.seq,
        "cores": job.record.cores,
        "state": job.record.state.as_str(),
        "error": job.record.error,
    })
}

fn list(inner: &Arc<Inner>) -> Response {
    let st = inner.state.lock();
    let mut campaigns: Vec<&Job> = st.jobs.values().collect();
    campaigns.sort_by_key(|j| j.record.seq);
    let doc = serde_json::json!({
        "pool": {
            "cluster": inner.cfg.cluster,
            "total_cores": st.fair.pool().total(),
            "free_cores": st.fair.free_cores(),
            "peak_leased_cores": st.fair.peak_leased(),
        },
        "queue_depth": st.jobs.values().filter(|j| j.record.state == JobState::Queued).count(),
        "campaigns": campaigns.iter().map(|j| job_doc(j)).collect::<Vec<_>>(),
    });
    Response::json(200, &doc)
}

/// Latest complete parseable snapshot line from a campaign's JSONL stream.
fn latest_snapshot(path: &std::path::Path) -> Option<serde_json::Value> {
    let text = std::fs::read_to_string(path).ok()?;
    text.lines().rev().find_map(|l| serde_json::from_str(l.trim()).ok())
}

fn status(inner: &Arc<Inner>, id: &str) -> Response {
    let st = inner.state.lock();
    let Some(job) = st.jobs.get(id) else {
        return Response::json(404, &serde_json::json!({ "error": format!("no campaign {id:?}") }));
    };
    let mut doc = job_doc(job);
    if let Some(obj) = doc.as_object_mut() {
        obj.insert(
            "snapshot".into(),
            latest_snapshot(&job.dirs.stream()).unwrap_or(serde_json::Value::Null),
        );
        obj.insert(
            "checkpoint_exists".into(),
            serde_json::Value::Bool(
                job.dirs.checkpoint().join(repex::checkpoint::CHECKPOINT_FILE).exists(),
            ),
        );
    }
    Response::json(200, &doc)
}

fn cancel(inner: &Arc<Inner>, id: &str) -> Response {
    let mut st = inner.state.lock();
    let Some(job) = st.jobs.get_mut(id) else {
        return Response::json(404, &serde_json::json!({ "error": format!("no campaign {id:?}") }));
    };
    match job.record.state {
        s if s.is_terminal() => Response::json(
            409,
            &serde_json::json!({
                "error": format!("campaign {id:?} is already {}", s.as_str()),
                "state": s.as_str(),
            }),
        ),
        JobState::Queued => {
            job.user_cancelled = true;
            job.record.state = JobState::Cancelled;
            let tenant = job.record.tenant.clone();
            let (weight, predicted) = (job.record.weight, job.record.predicted_core_seconds);
            if let Err(e) = save_record(&job.dirs, &job.record) {
                return Response::json(500, &serde_json::json!({ "error": e }));
            }
            // A job cancelled before it ever ran owes nothing.
            st.fair.credit_estimate(&tenant, weight, predicted);
            Response::json(200, &serde_json::json!({ "campaign": id, "state": "cancelled" }))
        }
        JobState::Running => {
            // The runner observes the flag at the next consistency point,
            // writes a final checkpoint and marks the job cancelled.
            job.user_cancelled = true;
            job.cancel.store(true, Ordering::Relaxed);
            Response::json(202, &serde_json::json!({ "campaign": id, "state": "cancelling" }))
        }
        _ => unreachable!("terminal states matched above"),
    }
}

fn results(inner: &Arc<Inner>, id: &str) -> Response {
    let st = inner.state.lock();
    let Some(job) = st.jobs.get(id) else {
        return Response::json(404, &serde_json::json!({ "error": format!("no campaign {id:?}") }));
    };
    if job.record.state != JobState::Done {
        return Response::json(
            409,
            &serde_json::json!({
                "error": format!(
                    "campaign {id:?} is {}, results are available once done",
                    job.record.state.as_str()
                ),
                "state": job.record.state.as_str(),
                "job_error": job.record.error,
            }),
        );
    }
    let report: serde_json::Value = match std::fs::read_to_string(job.dirs.report())
        .map_err(|e| e.to_string())
        .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
    {
        Ok(doc) => doc,
        Err(e) => {
            return Response::json(
                500,
                &serde_json::json!({ "error": format!("report unreadable: {e}") }),
            )
        }
    };
    // Busy-core integral two ways: from the in-process event trace, and
    // from the report's own utilization identity (Eq. 4) — the latter
    // survives service restarts, the former proves the trace agrees.
    let trace_busy = obs::md_busy_core_seconds(&job.recorder.events());
    let report_busy = report["utilization_percent"].as_f64().unwrap_or(0.0) / 100.0
        * report["pilot_cores"].as_f64().unwrap_or(0.0)
        * report["makespan_s"].as_f64().unwrap_or(0.0);
    let doc = serde_json::json!({
        "campaign": id,
        "state": "done",
        "report": report,
        "service": {
            "tenant": job.record.tenant,
            "weight": job.record.weight,
            "cores": job.record.cores,
            "md_busy_core_seconds": report_busy,
            "trace_md_busy_core_seconds": trace_busy,
            "artifacts": {
                "report": job.dirs.report(),
                "trace": job.dirs.trace(),
                "stream": job.dirs.stream(),
                "prometheus": job.dirs.prom(),
                "checkpoint": job.dirs.checkpoint(),
            },
        },
    });
    Response::json(200, &doc)
}

fn metrics(inner: &Arc<Inner>) -> Response {
    let st = inner.state.lock();
    let mut parts = Vec::new();
    let mut by_state: HashMap<&'static str, usize> = HashMap::new();
    for job in st.jobs.values() {
        *by_state.entry(job.record.state.as_str()).or_default() += 1;
    }
    parts.push(service_gauge(
        "repex_svc_pool_cores",
        "cores in the shared virtual cluster",
        &[],
        st.fair.pool().total(),
    ));
    parts.push(service_gauge(
        "repex_svc_free_cores",
        "cores not currently leased to a campaign",
        &[],
        st.fair.free_cores(),
    ));
    parts.push(service_gauge(
        "repex_svc_peak_leased_cores",
        "high-water mark of simultaneously leased cores",
        &[],
        st.fair.peak_leased(),
    ));
    parts.push(service_gauge(
        "repex_svc_queue_depth",
        "campaigns waiting for cores",
        &[],
        st.jobs.values().filter(|j| j.record.state == JobState::Queued).count(),
    ));
    for (state, count) in by_state {
        parts.push(service_gauge(
            "repex_svc_jobs",
            "campaigns by lifecycle state",
            &[("state", state)],
            count,
        ));
    }
    // Per-campaign exporter files, one unique `campaign` label each
    // (validated and deduplicated at admission, so series stay disjoint).
    let mut jobs: Vec<&Job> = st.jobs.values().collect();
    jobs.sort_by_key(|j| j.record.seq);
    for job in jobs {
        if let Ok(text) = std::fs::read_to_string(job.dirs.prom()) {
            parts.push(text);
        }
    }
    Response::text(200, merge_prometheus(&parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `reject` bodies carry machine-readable codes in a stable schema.
    #[test]
    fn reject_body_schema() {
        let resp = reject(
            429,
            vec![Diagnostic::error("S010", "queue is at capacity").with_hint("retry later")],
        );
        assert_eq!(resp.status, 429);
        let doc: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(doc["error"], "queue is at capacity");
        assert_eq!(doc["diagnostics"][0]["code"], "S010");
        assert_eq!(doc["diagnostics"][0]["severity"], "error");
        assert_eq!(doc["diagnostics"][0]["hint"], "retry later");
    }

    #[test]
    fn latest_snapshot_skips_torn_tail() {
        let dir = std::env::temp_dir().join(format!("repex-svc-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        std::fs::write(&path, "{\"seq\":1}\n{\"seq\":2}\n{\"seq\":3,\"tr").unwrap();
        let snap = latest_snapshot(&path).unwrap();
        assert_eq!(snap["seq"], 2, "torn trailing line is skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
