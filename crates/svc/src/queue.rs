//! The durable campaign spool: one directory per campaign under the spool
//! root, holding the job's control record, checkpoint directory, live
//! telemetry stream, Prometheus file and final artifacts. Control records
//! are written with the same atomic tmp+rename discipline as
//! `repex::checkpoint`, so a crash never leaves a half-written record and
//! a restarted service reconstructs its queue by scanning the spool.
//!
//! ```text
//! spool/
//!   <campaign-id>/
//!     job.json        control record (atomic rewrite on every transition)
//!     checkpoint/     repex::checkpoint directory (slices + cancellation)
//!     snap.jsonl      live telemetry stream (repex watch tails this)
//!     metrics.prom    per-campaign Prometheus text (merged into /metrics)
//!     trace.json      Chrome trace of the whole campaign (written at end)
//!     report.json     canonical report document (written when done)
//! ```

use repex::config::SimulationConfig;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Lifecycle of a campaign job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum JobState {
    /// Admitted, waiting for cores (or re-queued between slices / after a
    /// service restart).
    Queued,
    /// Currently holding cores and running a slice.
    Running,
    /// All cycles completed; `report.json` is final.
    Done,
    /// Cancelled by the user; the final checkpoint is retained.
    Cancelled,
    /// The run errored; the message is in [`JobRecord::error`].
    Failed,
}

impl JobState {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }

    /// The kebab-case wire name (matches the serde encoding).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// The durable control record of one campaign job.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct JobRecord {
    /// Campaign id: validated by `obs::validate_campaign_id` at admission,
    /// doubles as the spool directory name and the Prometheus `campaign`
    /// label.
    pub campaign: String,
    /// Tenant this job's usage is charged to.
    pub tenant: String,
    /// Fair-share weight of the tenant as submitted with this job.
    pub weight: f64,
    /// Higher runs first among equally-charged tenants (FIFO within a
    /// priority).
    pub priority: u8,
    /// Admission order — the FIFO tie-break and resume ordering.
    pub seq: u64,
    /// Pilot cores this campaign holds while running.
    pub cores: usize,
    /// Predicted cost (core·seconds, `lint::plan::predicted_core_seconds`)
    /// charged to the tenant up front at admission and credited back at
    /// the terminal state. Defaults to 0 for records written before the
    /// planner existed.
    #[serde(default)]
    pub predicted_core_seconds: f64,
    pub state: JobState,
    /// Error message (only for [`JobState::Failed`]).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
    /// The submitted configuration, stored verbatim — the service never
    /// rewrites it, which is what makes results bit-identical to a
    /// standalone run.
    pub config: SimulationConfig,
}

/// One job's paths inside the spool.
#[derive(Debug, Clone)]
pub struct JobDirs {
    pub dir: PathBuf,
}

impl JobDirs {
    pub fn new(spool: &Path, campaign: &str) -> Self {
        JobDirs { dir: spool.join(campaign) }
    }

    pub fn record(&self) -> PathBuf {
        self.dir.join("job.json")
    }

    pub fn checkpoint(&self) -> PathBuf {
        self.dir.join("checkpoint")
    }

    pub fn stream(&self) -> PathBuf {
        self.dir.join("snap.jsonl")
    }

    pub fn prom(&self) -> PathBuf {
        self.dir.join("metrics.prom")
    }

    pub fn trace(&self) -> PathBuf {
        self.dir.join("trace.json")
    }

    pub fn report(&self) -> PathBuf {
        self.dir.join("report.json")
    }
}

/// Durably write `record` (atomic tmp+rename, like `checkpoint.rs`): a
/// reader never observes a partial record, and a crash between tmp-write
/// and rename leaves the previous record intact.
pub fn save_record(dirs: &JobDirs, record: &JobRecord) -> Result<(), String> {
    std::fs::create_dir_all(&dirs.dir)
        .map_err(|e| format!("cannot create {}: {e}", dirs.dir.display()))?;
    let body = serde_json::to_string_pretty(record)
        .map_err(|e| format!("cannot encode job record: {e}"))?;
    let target = dirs.record();
    let tmp = dirs.dir.join("job.json.tmp");
    std::fs::write(&tmp, body).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &target).map_err(|e| format!("cannot move job record into place: {e}"))
}

/// Load one job's control record.
pub fn load_record(dirs: &JobDirs) -> Result<JobRecord, String> {
    let path = dirs.record();
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("bad job record {}: {e}", path.display()))
}

/// Scan a spool root: every subdirectory with a parseable `job.json`, in
/// admission (`seq`) order. Directories without a record (or with an
/// unparseable one) are reported, not silently skipped.
pub fn scan_spool(spool: &Path) -> Result<Vec<JobRecord>, String> {
    let mut out = Vec::new();
    if !spool.exists() {
        return Ok(out);
    }
    let entries =
        std::fs::read_dir(spool).map_err(|e| format!("cannot scan {}: {e}", spool.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot scan {}: {e}", spool.display()))?;
        let path = entry.path();
        if !path.is_dir() {
            continue;
        }
        let dirs = JobDirs { dir: path };
        if !dirs.record().exists() {
            return Err(format!(
                "spool entry {} has no job.json (not a campaign directory?)",
                dirs.dir.display()
            ));
        }
        out.push(load_record(&dirs)?);
    }
    out.sort_by_key(|r| r.seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(campaign: &str, seq: u64) -> JobRecord {
        JobRecord {
            campaign: campaign.to_string(),
            tenant: "t".into(),
            weight: 1.0,
            priority: 0,
            seq,
            cores: 4,
            predicted_core_seconds: 0.0,
            state: JobState::Queued,
            error: None,
            config: SimulationConfig::t_remd(4, 600, 2),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("repex-svc-queue-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_round_trips_and_leaves_no_tmp() {
        let spool = tmpdir("roundtrip");
        let dirs = JobDirs::new(&spool, "camp-a");
        let mut rec = record("camp-a", 3);
        rec.state = JobState::Running;
        save_record(&dirs, &rec).unwrap();
        assert!(!dirs.dir.join("job.json.tmp").exists(), "tmp file left behind");
        let loaded = load_record(&dirs).unwrap();
        assert_eq!(loaded.campaign, "camp-a");
        assert_eq!(loaded.state, JobState::Running);
        assert_eq!(loaded.seq, 3);
        assert_eq!(loaded.config.title, rec.config.title);
        // States encode kebab-case on the wire.
        let text = std::fs::read_to_string(dirs.record()).unwrap();
        assert!(text.contains("\"running\""), "{text}");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn scan_orders_by_admission_seq() {
        let spool = tmpdir("scan");
        for (name, seq) in [("b", 2), ("a", 1), ("c", 0)] {
            save_record(&JobDirs::new(&spool, name), &record(name, seq)).unwrap();
        }
        let recs = scan_spool(&spool).unwrap();
        let names: Vec<&str> = recs.iter().map(|r| r.campaign.as_str()).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn scan_reports_a_foreign_directory() {
        let spool = tmpdir("foreign");
        std::fs::create_dir_all(spool.join("not-a-job")).unwrap();
        let err = scan_spool(&spool).unwrap_err();
        assert!(err.contains("job.json"), "{err}");
        let _ = std::fs::remove_dir_all(&spool);
    }

    #[test]
    fn missing_spool_scans_empty() {
        let spool = std::env::temp_dir().join("repex-svc-queue-nonexistent");
        let _ = std::fs::remove_dir_all(&spool);
        assert!(scan_spool(&spool).unwrap().is_empty());
    }

    #[test]
    fn terminal_states() {
        assert!(JobState::Done.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
        assert!(JobState::Failed.is_terminal());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running.is_terminal());
        assert_eq!(JobState::Cancelled.as_str(), "cancelled");
    }
}
