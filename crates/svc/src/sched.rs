//! Weighted fair-share scheduling over one shared core pool.
//!
//! Tenants are charged `core-seconds / weight` for every slice their
//! campaigns run; the planner always serves the least-charged tenant
//! first (deficit fairness), with priority-then-FIFO order within equal
//! charge. Admission into a planning round is head-of-line: the scan
//! stops at the first candidate that does not fit, so a wide campaign
//! cannot be starved by a stream of narrow ones slipping past it — the
//! cores it is waiting for drain and it starts on the next tick.
//!
//! Combined with sliced execution (a running campaign checkpoints,
//! releases its cores and re-queues every few cycles), this converges to
//! long-run busy-core shares proportional to tenant weights whenever the
//! queue is saturated — the property tests below drive exactly that.

use hpc::pool::{CorePool, PoolError};
use std::collections::HashMap;

/// Weights below this are clamped — a zero or negative weight would make
/// normalized usage meaningless (admission rejects them anyway).
const MIN_WEIGHT: f64 = 1e-6;

/// One schedulable candidate (a queued job, or a queued slice of one).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    pub id: String,
    pub tenant: String,
    pub weight: f64,
    pub priority: u8,
    pub seq: u64,
    pub cores: usize,
}

/// The fair-share planner: a [`CorePool`] plus per-tenant normalized
/// usage accounting.
#[derive(Debug)]
pub struct FairShare {
    pool: CorePool,
    /// Cumulative normalized usage (core-seconds / weight) per tenant.
    charged: HashMap<String, f64>,
    /// Latest weight seen per tenant (updated at start time).
    weights: HashMap<String, f64>,
    peak_leased: usize,
}

impl FairShare {
    pub fn new(pool_cores: usize) -> Self {
        FairShare {
            pool: CorePool::new(pool_cores),
            charged: HashMap::new(),
            weights: HashMap::new(),
            peak_leased: 0,
        }
    }

    /// The underlying pool (read-only).
    pub fn pool(&self) -> &CorePool {
        &self.pool
    }

    /// Cores available right now.
    pub fn free_cores(&self) -> usize {
        self.pool.free()
    }

    /// High-water mark of simultaneously leased cores.
    pub fn peak_leased(&self) -> usize {
        self.peak_leased
    }

    /// Normalized usage of a tenant (0 for tenants never charged).
    pub fn usage(&self, tenant: &str) -> f64 {
        self.charged.get(tenant).copied().unwrap_or(0.0)
    }

    /// Plan which queued candidates start now. Pure: the caller commits a
    /// planned start with [`Self::start`] (and the plan is recomputed
    /// every scheduling tick, so a plan is never stale for long).
    pub fn plan(&self, queued: &[Candidate]) -> Vec<Candidate> {
        let mut order: Vec<&Candidate> = queued.iter().collect();
        order.sort_by(|a, b| {
            self.usage(&a.tenant)
                .partial_cmp(&self.usage(&b.tenant))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.priority.cmp(&a.priority))
                .then(a.seq.cmp(&b.seq))
        });
        let mut free = self.pool.free();
        let mut out = Vec::new();
        for c in order {
            if c.cores <= free {
                free -= c.cores;
                out.push(c.clone());
            } else {
                // Head-of-line blocking: leave the remaining cores idle
                // for this round rather than let later (more-charged or
                // newer) candidates jump past a wide campaign forever.
                break;
            }
        }
        out
    }

    /// Commit a planned start: lease the candidate's cores.
    pub fn start(&mut self, c: &Candidate) -> Result<(), PoolError> {
        self.pool.try_lease(&c.id, &c.tenant, c.cores)?;
        self.weights.insert(c.tenant.clone(), c.weight.max(MIN_WEIGHT));
        self.peak_leased = self.peak_leased.max(self.pool.leased());
        Ok(())
    }

    /// Charge a tenant the *predicted* cost of a campaign up front, at
    /// admission time (DESIGN.md §14). Until the estimate is credited
    /// back at the job's terminal state, the tenant's fair-share rank
    /// already reflects the allocation it has spoken for — a tenant
    /// cannot jump the queue by front-loading expensive campaigns that
    /// have not started burning cores yet.
    pub fn charge_estimate(&mut self, tenant: &str, weight: f64, core_seconds: f64) {
        let w = weight.max(MIN_WEIGHT);
        *self.charged.entry(tenant.to_string()).or_default() += core_seconds.max(0.0) / w;
    }

    /// Credit an up-front estimate back once the job reaches a terminal
    /// state: from then on only the *actual* slice charges (see
    /// [`Self::finish`]) remain on the tenant's account. Pass the same
    /// weight used at [`Self::charge_estimate`] so the two cancel
    /// exactly; the balance is floored at zero.
    pub fn credit_estimate(&mut self, tenant: &str, weight: f64, core_seconds: f64) {
        let w = weight.max(MIN_WEIGHT);
        let e = self.charged.entry(tenant.to_string()).or_default();
        *e = (*e - core_seconds.max(0.0) / w).max(0.0);
    }

    /// Release a job's cores and charge its tenant for the slice it ran.
    /// The cores are free for the very next [`Self::plan`] call — which
    /// is what "cancellation frees cores within one scheduling tick"
    /// means operationally.
    pub fn finish(
        &mut self,
        id: &str,
        tenant: &str,
        elapsed_seconds: f64,
    ) -> Result<usize, PoolError> {
        let cores = self.pool.release(id)?;
        let weight = self.weights.get(tenant).copied().unwrap_or(1.0).max(MIN_WEIGHT);
        *self.charged.entry(tenant.to_string()).or_default() +=
            cores as f64 * elapsed_seconds.max(0.0) / weight;
        Ok(cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cand(id: &str, tenant: &str, weight: f64, cores: usize, seq: u64) -> Candidate {
        Candidate {
            id: id.to_string(),
            tenant: tenant.to_string(),
            weight,
            priority: 0,
            seq,
            cores,
        }
    }

    #[test]
    fn plan_fills_the_pool_in_fifo_order_when_usage_is_equal() {
        let fs = FairShare::new(8);
        let queued = vec![
            cand("a", "t1", 1.0, 4, 0),
            cand("b", "t2", 1.0, 4, 1),
            cand("c", "t3", 1.0, 4, 2),
        ];
        let planned = fs.plan(&queued);
        let ids: Vec<&str> = planned.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "b"], "third 4-core job cannot fit in 8 cores");
    }

    #[test]
    fn least_charged_tenant_is_served_first() {
        let mut fs = FairShare::new(4);
        fs.start(&cand("warm", "hog", 1.0, 4, 0)).unwrap();
        fs.finish("warm", "hog", 100.0).unwrap();
        let queued = vec![cand("h2", "hog", 1.0, 4, 1), cand("n1", "newcomer", 1.0, 4, 2)];
        let planned = fs.plan(&queued);
        assert_eq!(planned[0].id, "n1", "uncharged tenant outranks the charged one");
    }

    #[test]
    fn weights_scale_the_charge() {
        let mut fs = FairShare::new(8);
        fs.start(&cand("a", "heavy", 2.0, 4, 0)).unwrap();
        fs.start(&cand("b", "light", 1.0, 4, 1)).unwrap();
        fs.finish("a", "heavy", 10.0).unwrap();
        fs.finish("b", "light", 10.0).unwrap();
        // Same core-seconds, but the weight-2 tenant is charged half.
        assert!((fs.usage("heavy") - 20.0).abs() < 1e-9);
        assert!((fs.usage("light") - 40.0).abs() < 1e-9);
    }

    #[test]
    fn upfront_estimate_reorders_the_plan_until_credited() {
        let mut fs = FairShare::new(4);
        // "greedy" has admitted a huge predicted campaign; until it
        // terminates, the estimate outranks it against a fresh tenant.
        fs.charge_estimate("greedy", 1.0, 500.0);
        let queued = vec![cand("g", "greedy", 1.0, 4, 0), cand("f", "fresh", 1.0, 4, 1)];
        assert_eq!(fs.plan(&queued)[0].id, "f", "estimate must count against the tenant");
        // Credit with the same weight: the balance cancels exactly and
        // FIFO order (seq) decides again.
        fs.credit_estimate("greedy", 1.0, 500.0);
        assert_eq!(fs.usage("greedy"), 0.0);
        assert_eq!(fs.plan(&queued)[0].id, "g");
        // Over-crediting floors at zero rather than going negative.
        fs.credit_estimate("greedy", 1.0, 100.0);
        assert_eq!(fs.usage("greedy"), 0.0);
    }

    #[test]
    fn head_of_line_blocking_protects_wide_jobs() {
        let mut fs = FairShare::new(8);
        // The wide job is first in line (lowest seq, equal usage): nothing
        // may jump past it even though the narrow job would fit.
        fs.start(&cand("running", "t0", 1.0, 6, 0)).unwrap();
        let queued = vec![cand("wide", "t1", 1.0, 8, 1), cand("narrow", "t2", 1.0, 2, 2)];
        assert!(fs.plan(&queued).is_empty(), "narrow job must not starve the wide one");
        // Once the running job finishes, the wide one starts.
        fs.finish("running", "t0", 1.0).unwrap();
        let planned = fs.plan(&queued);
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].id, "wide");
    }

    #[test]
    fn priority_breaks_ties_within_equal_usage() {
        let fs = FairShare::new(4);
        let mut urgent = cand("urgent", "t1", 1.0, 4, 5);
        urgent.priority = 9;
        let queued = vec![cand("old", "t2", 1.0, 4, 0), urgent];
        assert_eq!(fs.plan(&queued)[0].id, "urgent");
    }

    #[test]
    fn cancellation_frees_cores_within_one_tick() {
        let mut fs = FairShare::new(8);
        fs.start(&cand("a", "t1", 1.0, 8, 0)).unwrap();
        let queued = vec![cand("b", "t2", 1.0, 8, 1)];
        assert!(fs.plan(&queued).is_empty(), "pool is full");
        // Cancel: finish releases the lease; the very next plan admits b.
        fs.finish("a", "t1", 0.5).unwrap();
        assert_eq!(fs.plan(&queued).len(), 1);
        assert_eq!(fs.free_cores(), 8);
    }

    /// Saturating round-based simulation: every tenant keeps an unbounded
    /// backlog of `cores`-wide unit-time jobs; each round plans, starts
    /// everything planned, runs one time unit, finishes everything.
    /// Returns per-tenant total core-seconds.
    fn saturate(weights: &[f64], cores_per_job: usize, pool: usize, rounds: usize) -> Vec<f64> {
        let mut fs = FairShare::new(pool);
        let mut served = vec![0.0f64; weights.len()];
        let mut seq = 0u64;
        for _ in 0..rounds {
            let queued: Vec<Candidate> = weights
                .iter()
                .enumerate()
                .flat_map(|(t, &w)| {
                    // Enough backlog per tenant to saturate the pool alone.
                    (0..pool / cores_per_job + 1).map(move |k| Candidate {
                        id: format!("t{t}-job{k}"),
                        tenant: format!("t{t}"),
                        weight: w,
                        priority: 0,
                        seq: 0,
                        cores: cores_per_job,
                    })
                })
                .collect();
            // Re-number seqs in submission order for a stable FIFO.
            let queued: Vec<Candidate> = queued
                .into_iter()
                .map(|mut c| {
                    c.seq = seq;
                    seq += 1;
                    c
                })
                .collect();
            let planned = fs.plan(&queued);
            for c in &planned {
                fs.start(c).unwrap();
            }
            for c in &planned {
                let t: usize = c.tenant[1..].parse().unwrap();
                served[t] += c.cores as f64;
                fs.finish(&c.id, &c.tenant, 1.0).unwrap();
            }
        }
        served
    }

    #[test]
    fn saturated_queue_converges_to_weighted_shares() {
        let weights = [2.0, 1.0, 1.0];
        let served = saturate(&weights, 1, 8, 400);
        let total: f64 = served.iter().sum();
        assert!((total - 8.0 * 400.0).abs() < 1e-6, "saturated pool stays full: {served:?}");
        let wsum: f64 = weights.iter().sum();
        for (t, &s) in served.iter().enumerate() {
            let expect = total * weights[t] / wsum;
            let rel = (s - expect).abs() / expect;
            assert!(rel < 0.05, "tenant {t}: served {s}, expected {expect} (rel {rel:.3})");
        }
    }

    proptest! {
        /// Invariant: a plan never over-commits the pool, whatever the mix
        /// of candidate widths; and with 1-core saturation it fills it.
        #[test]
        fn plan_never_exceeds_free_cores(
            widths in proptest::collection::vec(1usize..12, 1..20),
            pool in 1usize..32,
        ) {
            let fs = FairShare::new(pool);
            let queued: Vec<Candidate> = widths
                .iter()
                .enumerate()
                .map(|(i, &w)| cand(&format!("j{i}"), &format!("t{}", i % 3), 1.0, w, i as u64))
                .collect();
            let planned = fs.plan(&queued);
            let sum: usize = planned.iter().map(|c| c.cores).sum();
            prop_assert!(sum <= pool, "planned {sum} cores into a {pool}-core pool");
            // Committing the whole plan must succeed exactly as planned.
            let mut fs = FairShare::new(pool);
            for c in &planned {
                prop_assert!(fs.start(c).is_ok());
            }
            prop_assert_eq!(fs.pool().leased(), sum);
        }

        /// No tenant starves: under a saturating queue of equal-width jobs,
        /// every tenant with nonzero weight is served, with long-run shares
        /// within 10% of its weight fraction.
        #[test]
        fn no_tenant_starves_under_saturation(
            weights in proptest::collection::vec(0.5f64..4.0, 2..5),
        ) {
            let served = saturate(&weights, 1, 8, 600);
            let total: f64 = served.iter().sum();
            let wsum: f64 = weights.iter().sum();
            for (t, &s) in served.iter().enumerate() {
                prop_assert!(s > 0.0, "tenant {} starved: {:?}", t, served);
                let expect = total * weights[t] / wsum;
                let rel = (s - expect).abs() / expect;
                prop_assert!(rel < 0.10,
                    "tenant {} served {} vs expected {} (weights {:?})", t, s, expect, weights);
            }
        }

        /// Cancellation (or any finish) frees capacity for the immediately
        /// following plan: after filling the pool and releasing one lease,
        /// a candidate no wider than the released width is planned.
        #[test]
        fn release_is_visible_to_the_next_plan(
            widths in proptest::collection::vec(1usize..6, 2..8),
        ) {
            let pool: usize = widths.iter().sum();
            let mut fs = FairShare::new(pool);
            for (i, &w) in widths.iter().enumerate() {
                fs.start(&cand(&format!("j{i}"), "t", 1.0, w, i as u64)).unwrap();
            }
            prop_assert_eq!(fs.free_cores(), 0);
            let victim = widths.len() / 2;
            fs.finish(&format!("j{victim}"), "t", 1.0).unwrap();
            let queued = vec![cand("next", "u", 1.0, widths[victim], 99)];
            prop_assert_eq!(fs.plan(&queued).len(), 1, "freed cores not replannable");
        }
    }
}
