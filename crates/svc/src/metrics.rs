//! Merging per-campaign Prometheus text into one `/metrics` exposition.
//!
//! Every running campaign writes its own `metrics.prom` through the
//! `obs::live` exporter, each sample already carrying a unique (validated,
//! admission-deduplicated) `campaign` label. Concatenating the files
//! verbatim would repeat `# HELP`/`# TYPE` headers per campaign, which the
//! Prometheus text format forbids — so the merger groups samples by metric
//! name under one header block, first-seen header text winning, and keeps
//! file order deterministic (metric names in first-appearance order,
//! samples in input order).

use std::collections::HashMap;

#[derive(Default)]
struct MetricBlock {
    help: Option<String>,
    typ: Option<String>,
    samples: Vec<String>,
}

/// Extract the metric name from a sample line (`name{labels} value` or
/// `name value`).
fn sample_name(line: &str) -> &str {
    let end = line.find(['{', ' ']).unwrap_or(line.len());
    &line[..end]
}

/// Merge several Prometheus text expositions into one: a single
/// `# HELP`/`# TYPE` block per metric name, all samples preserved. The
/// inputs' `campaign` labels keep the merged series disjoint — the merger
/// itself never rewrites a sample line.
pub fn merge_prometheus(parts: &[String]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut blocks: HashMap<String, MetricBlock> = HashMap::new();
    for text in parts {
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            let (name, kind) = if let Some(rest) = line.strip_prefix("# HELP ") {
                (sample_name(rest).to_string(), "help")
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                (sample_name(rest).to_string(), "type")
            } else if line.starts_with('#') {
                continue; // stray comment: not representable in the merge
            } else {
                (sample_name(line).to_string(), "sample")
            };
            if !blocks.contains_key(&name) {
                order.push(name.clone());
            }
            let block = blocks.entry(name).or_default();
            match kind {
                "help" if block.help.is_none() => block.help = Some(line.to_string()),
                "type" if block.typ.is_none() => block.typ = Some(line.to_string()),
                "sample" => block.samples.push(line.to_string()),
                _ => {}
            }
        }
    }
    let mut out = String::new();
    for name in order {
        let Some(block) = blocks.get(&name) else { continue };
        if let Some(help) = &block.help {
            out.push_str(help);
            out.push('\n');
        }
        if let Some(typ) = &block.typ {
            out.push_str(typ);
            out.push('\n');
        }
        for sample in &block.samples {
            out.push_str(sample);
            out.push('\n');
        }
    }
    out
}

/// Render one service-level gauge block (name sanitized through the same
/// `obs` alphabet as campaign metrics, labels escaped through the shared
/// [`obs::campaign_label`] sanitizer).
pub fn service_gauge(name: &str, help: &str, labels: &[(&str, &str)], value: impl std::fmt::Display) -> String {
    let name = obs::sanitize_metric_name(name);
    let label_text = if labels.is_empty() {
        String::new()
    } else {
        let inner: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", obs::campaign_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    };
    format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name}{label_text} {value}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prom(campaign: &str, completed: u64) -> String {
        format!(
            "# HELP repex_snapshot_seq monotonic telemetry snapshot counter\n\
             # TYPE repex_snapshot_seq gauge\n\
             repex_snapshot_seq{{campaign=\"{campaign}\"}} 3\n\
             # HELP repex_completed_units work units completed (cycles or segments)\n\
             # TYPE repex_completed_units gauge\n\
             repex_completed_units{{campaign=\"{campaign}\"}} {completed}\n"
        )
    }

    #[test]
    fn merge_emits_one_header_block_per_metric() {
        let merged = merge_prometheus(&[prom("a", 1), prom("b", 2)]);
        assert_eq!(merged.matches("# TYPE repex_completed_units gauge").count(), 1);
        assert_eq!(merged.matches("# HELP repex_completed_units").count(), 1);
        assert!(merged.contains("repex_completed_units{campaign=\"a\"} 1"));
        assert!(merged.contains("repex_completed_units{campaign=\"b\"} 2"));
        // Samples of one metric are grouped directly under its header.
        let type_pos = merged.find("# TYPE repex_completed_units").unwrap();
        let a_pos = merged.find("repex_completed_units{campaign=\"a\"}").unwrap();
        let next_help = merged[type_pos..].find("# HELP repex_snapshot_seq");
        assert!(a_pos > type_pos);
        assert!(next_help.is_none() || a_pos - type_pos < next_help.unwrap());
    }

    #[test]
    fn merged_series_stay_disjoint_per_campaign_label() {
        let merged = merge_prometheus(&[prom("a", 1), prom("b", 2)]);
        let mut seen = std::collections::HashSet::new();
        for line in merged.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
            let series = line.rsplit_once(' ').map(|(s, _)| s).unwrap_or(line);
            assert!(seen.insert(series.to_string()), "duplicate series {series}");
        }
    }

    #[test]
    fn service_gauges_render_with_and_without_labels() {
        let plain = service_gauge("repex_svc_queue_depth", "queued jobs", &[], 4);
        assert!(plain.contains("repex_svc_queue_depth 4\n"), "{plain}");
        let labeled = service_gauge("repex_svc_jobs", "jobs by state", &[("state", "done")], 2);
        assert!(labeled.contains("repex_svc_jobs{state=\"done\"} 2\n"), "{labeled}");
        // Name goes through the shared sanitizer.
        let odd = service_gauge("repex.svc-odd", "x", &[], 1);
        assert!(odd.contains("repex_svc_odd 1"), "{odd}");
    }

    #[test]
    fn merge_is_deterministic_and_order_preserving() {
        let a = prom("a", 1);
        let b = prom("b", 2);
        let once = merge_prometheus(&[a.clone(), b.clone()]);
        let twice = merge_prometheus(&[a, b]);
        assert_eq!(once, twice);
        let seq_pos = once.find("# HELP repex_snapshot_seq").unwrap();
        let units_pos = once.find("# HELP repex_completed_units").unwrap();
        assert!(seq_pos < units_pos, "first-appearance order is kept");
    }
}
