//! Shared-pool core accounting for multi-campaign scheduling.
//!
//! A [`CorePool`] tracks how many cores of one shared virtual cluster are
//! leased out to concurrently running campaigns. It is deliberately dumb:
//! no policy, no time, just conservation of cores with typed errors — the
//! fair-share planner in the campaign service layers policy on top, and
//! property tests there lean on the invariant enforced here (the sum of
//! live leases never exceeds the pool).

use std::collections::HashMap;

/// Why a lease operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A lease for zero cores is meaningless and almost certainly a bug.
    ZeroCores { id: String },
    /// The request can never fit, even on an idle pool.
    ExceedsPool { id: String, want: usize, pool: usize },
    /// The request does not fit right now.
    Exhausted { id: String, want: usize, free: usize },
    /// A lease with this id is already live.
    DuplicateLease { id: String },
    /// No live lease with this id.
    UnknownLease { id: String },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::ZeroCores { id } => write!(f, "lease {id:?} requests zero cores"),
            PoolError::ExceedsPool { id, want, pool } => write!(
                f,
                "lease {id:?} requests {want} cores but the shared pool has only {pool}"
            ),
            PoolError::Exhausted { id, want, free } => write!(
                f,
                "lease {id:?} requests {want} cores but only {free} are free"
            ),
            PoolError::DuplicateLease { id } => write!(f, "lease {id:?} is already live"),
            PoolError::UnknownLease { id } => write!(f, "no live lease {id:?}"),
        }
    }
}

#[derive(Debug, Clone)]
struct Lease {
    cores: usize,
    tenant: String,
}

/// A fixed pool of cores shared by many tenants' pilots.
#[derive(Debug, Clone)]
pub struct CorePool {
    total: usize,
    leases: HashMap<String, Lease>,
}

impl CorePool {
    /// A pool of `total` cores with no live leases.
    pub fn new(total: usize) -> Self {
        CorePool { total, leases: HashMap::new() }
    }

    /// Pool capacity.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cores currently leased out.
    pub fn leased(&self) -> usize {
        self.leases.values().map(|l| l.cores).sum()
    }

    /// Cores available for new leases.
    pub fn free(&self) -> usize {
        self.total - self.leased()
    }

    /// Number of live leases.
    pub fn active(&self) -> usize {
        self.leases.len()
    }

    /// Cores held by lease `id`, if live.
    pub fn lease_cores(&self, id: &str) -> Option<usize> {
        self.leases.get(id).map(|l| l.cores)
    }

    /// Cores held by `tenant` across all of its live leases.
    pub fn tenant_cores(&self, tenant: &str) -> usize {
        self.leases.values().filter(|l| l.tenant == tenant).map(|l| l.cores).sum()
    }

    /// Take `cores` out of the pool for lease `id` owned by `tenant`.
    /// Distinguishes "can never fit" ([`PoolError::ExceedsPool`], an
    /// admission-time rejection) from "does not fit now"
    /// ([`PoolError::Exhausted`], a wait-your-turn condition).
    pub fn try_lease(&mut self, id: &str, tenant: &str, cores: usize) -> Result<(), PoolError> {
        if cores == 0 {
            return Err(PoolError::ZeroCores { id: id.to_string() });
        }
        if cores > self.total {
            return Err(PoolError::ExceedsPool {
                id: id.to_string(),
                want: cores,
                pool: self.total,
            });
        }
        if self.leases.contains_key(id) {
            return Err(PoolError::DuplicateLease { id: id.to_string() });
        }
        let free = self.free();
        if cores > free {
            return Err(PoolError::Exhausted { id: id.to_string(), want: cores, free });
        }
        self.leases.insert(id.to_string(), Lease { cores, tenant: tenant.to_string() });
        Ok(())
    }

    /// Return lease `id`'s cores to the pool; yields the core count so the
    /// caller can charge the tenant for the slice that just ended.
    pub fn release(&mut self, id: &str) -> Result<usize, PoolError> {
        match self.leases.remove(id) {
            Some(l) => Ok(l.cores),
            None => Err(PoolError::UnknownLease { id: id.to_string() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_conserve_cores() {
        let mut p = CorePool::new(16);
        assert_eq!(p.free(), 16);
        p.try_lease("a", "t1", 8).unwrap();
        p.try_lease("b", "t2", 4).unwrap();
        assert_eq!(p.leased(), 12);
        assert_eq!(p.free(), 4);
        assert_eq!(p.active(), 2);
        assert_eq!(p.lease_cores("a"), Some(8));
        assert_eq!(p.tenant_cores("t1"), 8);
        assert_eq!(p.release("a").unwrap(), 8);
        assert_eq!(p.free(), 12);
        assert_eq!(p.lease_cores("a"), None);
    }

    #[test]
    fn typed_rejections() {
        let mut p = CorePool::new(8);
        assert_eq!(
            p.try_lease("z", "t", 0),
            Err(PoolError::ZeroCores { id: "z".into() })
        );
        assert_eq!(
            p.try_lease("big", "t", 9),
            Err(PoolError::ExceedsPool { id: "big".into(), want: 9, pool: 8 })
        );
        p.try_lease("a", "t", 6).unwrap();
        assert_eq!(
            p.try_lease("b", "t", 4),
            Err(PoolError::Exhausted { id: "b".into(), want: 4, free: 2 })
        );
        assert_eq!(
            p.try_lease("a", "t", 1),
            Err(PoolError::DuplicateLease { id: "a".into() })
        );
        assert_eq!(p.release("nope"), Err(PoolError::UnknownLease { id: "nope".into() }));
        // A failed lease leaves the pool untouched.
        assert_eq!(p.leased(), 6);
        // Errors render human-readable text.
        let msg = PoolError::Exhausted { id: "b".into(), want: 4, free: 2 }.to_string();
        assert!(msg.contains("only 2 are free"), "{msg}");
    }

    #[test]
    fn exact_fit_fills_the_pool() {
        let mut p = CorePool::new(4);
        p.try_lease("a", "t", 4).unwrap();
        assert_eq!(p.free(), 0);
        assert!(matches!(
            p.try_lease("b", "t", 1),
            Err(PoolError::Exhausted { .. })
        ));
        p.release("a").unwrap();
        p.try_lease("b", "t", 1).unwrap();
    }
}
