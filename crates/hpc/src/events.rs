//! Pooled, indexed min-heap event queue for the discrete-event engine.
//!
//! The seed implementation kept one `BinaryHeap` entry per core and per
//! pending completion (plus a side `HashMap` for payloads) and rebuilt the
//! whole heap on every barrier. This queue replaces those patterns:
//!
//! - **O(log n) push/pop** with explicit sift operations over a flat `Vec`
//!   — no drain-and-rebuild anywhere, no reconstruction on resize beyond
//!   the `Vec`'s amortized growth;
//! - **pooled payload slots**: payloads live in a slab indexed by the heap
//!   entries, and freed slots are recycled, so steady-state operation does
//!   not allocate and payloads never move while queued;
//! - **FIFO among equal timestamps**: a strictly increasing sequence number
//!   breaks ties, which the executors rely on for deterministic completion
//!   order (equal-time events pop in push order).

use crate::time::SimTime;

/// A heap entry: the event time, its FIFO tie-break, and the slab slot
/// holding the payload.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Min-ordered event queue over [`SimTime`] with pooled payload storage.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: Vec<HeapEntry>,
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue { heap: Vec::new(), slots: Vec::new(), free: Vec::new(), seq: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(cap),
            slots: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
            seq: 0,
        }
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Timestamp of the earliest queued event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Payload slots ever allocated (diagnostics: in steady state this
    /// plateaus at the maximum number of simultaneously queued events).
    pub fn pool_size(&self) -> usize {
        self.slots.len()
    }

    /// Queue `payload` at `time`. Equal-time events preserve push order.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(payload);
                s
            }
            None => {
                assert!(self.slots.len() < u32::MAX as usize, "event queue slot overflow");
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        let entry = HeapEntry { time, seq: self.seq, slot };
        self.seq += 1;
        self.heap.push(entry);
        self.sift_up(self.heap.len() - 1);
    }

    /// Remove and return the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        let payload = self.slots[entry.slot as usize].take().expect("queued slot is occupied");
        self.free.push(entry.slot);
        Some((entry.time, payload))
    }

    /// Earliest event's time and a borrow of its payload.
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.heap.first().map(|e| {
            let payload = self.slots[e.slot as usize].as_ref().expect("queued slot is occupied");
            (e.time, payload)
        })
    }

    /// Pop the earliest event and push `payload` at `time` in one heap
    /// operation: the root entry is replaced in place (reusing its payload
    /// slot) and re-sunk once, instead of a `swap_remove` + sift-down
    /// followed by a push + sift-up. The pushed event still receives a fresh
    /// FIFO sequence number, so tie-breaking behaves exactly as a `pop`
    /// followed by a `push`.
    ///
    /// Panics if the queue is empty (callers pair this with a non-empty
    /// invariant, e.g. the timeline's "group counts sum to n_cores").
    pub fn pop_push(&mut self, time: SimTime, payload: T) -> (SimTime, T) {
        let root = *self.heap.first().expect("pop_push on empty queue");
        let out = self.slots[root.slot as usize].replace(payload).expect("queued slot is occupied");
        self.heap[0] = HeapEntry { time, seq: self.seq, slot: root.slot };
        self.seq += 1;
        self.sift_down(0);
        (root.time, out)
    }

    /// Hole-based sift (the `std::collections::BinaryHeap` technique): the
    /// displaced entry is held in a register and written once at its final
    /// position, one copy per level instead of a three-write swap.
    fn sift_up(&mut self, mut i: usize) {
        let entry = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if entry.key() < self.heap[parent].key() {
                self.heap[i] = self.heap[parent];
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        let entry = self.heap[i];
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let child = if r < n && self.heap[r].key() < self.heap[l].key() { r } else { l };
            if self.heap[child].key() < entry.key() {
                self.heap[i] = self.heap[child];
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = entry;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, v) in [(5.0, "e"), (1.0, "a"), (3.0, "c"), (2.0, "b"), (4.0, "d")] {
            q.push(SimTime::seconds(t), v);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn fifo_among_equal_timestamps() {
        // The executor contract: completions with identical end times are
        // delivered in submission order.
        let mut q = EventQueue::new();
        let t = SimTime::seconds(7.0);
        for i in 0..100 {
            q.push(t, i);
        }
        // Interleave an earlier and a later event to exercise sifting.
        q.push(SimTime::seconds(1.0), -1);
        q.push(SimTime::seconds(9.0), 100);
        assert_eq!(q.pop(), Some((SimTime::seconds(1.0), -1)));
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)), "equal-time events must pop FIFO");
        }
        assert_eq!(q.pop(), Some((SimTime::seconds(9.0), 100)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slots_are_pooled_and_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50 {
            for i in 0..8 {
                q.push(SimTime::seconds(round as f64 + i as f64 * 0.1), i);
            }
            for _ in 0..8 {
                q.pop().expect("eight queued");
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.pool_size(), 8, "pool plateaus at peak occupancy");
    }

    #[test]
    fn pop_push_equals_pop_then_push() {
        // The fused operation must be observationally identical to the
        // two-step sequence, including FIFO order among equal timestamps.
        let mut fused = EventQueue::new();
        let mut twostep = EventQueue::new();
        for (t, v) in [(3.0, 'a'), (1.0, 'b'), (3.0, 'c'), (2.0, 'd')] {
            fused.push(SimTime::seconds(t), v);
            twostep.push(SimTime::seconds(t), v);
        }
        let got = fused.pop_push(SimTime::seconds(3.0), 'e');
        let expect = twostep.pop().expect("non-empty");
        twostep.push(SimTime::seconds(3.0), 'e');
        assert_eq!(got, expect);
        let mut a = Vec::new();
        while let Some(x) = fused.pop() {
            a.push(x);
        }
        let mut b = Vec::new();
        while let Some(x) = twostep.pop() {
            b.push(x);
        }
        assert_eq!(a, b, "drain order diverged after pop_push");
        // 'e' entered at t=3 after 'a' and 'c' were queued: it pops last
        // among the equal-time events.
        assert_eq!(a.last(), Some(&(SimTime::seconds(3.0), 'e')));
    }

    #[test]
    fn pop_push_reuses_the_slot() {
        let mut q = EventQueue::new();
        q.push(SimTime::seconds(1.0), 10);
        q.push(SimTime::seconds(2.0), 20);
        for i in 0..100 {
            q.pop_push(SimTime::seconds(3.0 + f64::from(i)), 30 + i);
        }
        assert_eq!(q.pool_size(), 2, "fused replace must not grow the pool");
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::seconds(2.0), 'b');
        q.push(SimTime::seconds(1.0), 'a');
        assert_eq!(q.peek_time(), Some(SimTime::seconds(1.0)));
        assert_eq!(q.peek().map(|(t, &v)| (t, v)), Some((SimTime::seconds(1.0), 'a')));
        assert_eq!(q.len(), 2);
        let (t, v) = q.pop().expect("two queued");
        assert_eq!((t, v), (SimTime::seconds(1.0), 'a'));
    }

    proptest::proptest! {
        /// Against the model: popping everything yields the input stably
        /// sorted by (time, insertion index).
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u32..50, 0..200)) {
            let mut q = EventQueue::new();
            let mut model: Vec<(u32, usize)> = Vec::new();
            for (idx, &t) in times.iter().enumerate() {
                q.push(SimTime::seconds(f64::from(t)), idx);
                model.push((t, idx));
            }
            model.sort_by_key(|&(t, idx)| (t, idx));
            let mut got = Vec::new();
            while let Some((t, idx)) = q.pop() {
                got.push((t.as_secs() as u32, idx));
            }
            proptest::prop_assert_eq!(got, model);
        }
    }
}
