//! Virtual time for the discrete-event cluster.
//!
//! Simulated wall-clock time is a plain `f64` count of seconds wrapped in a
//! newtype so it is totally ordered (NaN is rejected at construction) and can
//! live in heaps.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since pilot start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds; panics on NaN (programming error).
    pub fn seconds(s: f64) -> Self {
        assert!(!s.is_nan(), "SimTime cannot be NaN");
        SimTime(s)
    }

    pub fn as_secs(self) -> f64 {
        self.0
    }

    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::seconds(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::seconds(1.0);
        let b = a + 2.5;
        assert!(b > a);
        assert_eq!(b - a, 2.5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let mut c = a;
        c += 1.0;
        assert_eq!(c.as_secs(), 2.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let _ = SimTime::seconds(f64::NAN);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::seconds(1.5).to_string(), "1.500s");
    }

    #[test]
    fn sortable_in_collections() {
        let mut v = [SimTime::seconds(3.0), SimTime::ZERO, SimTime::seconds(1.0)];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::seconds(3.0));
    }
}
