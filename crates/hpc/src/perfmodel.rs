//! Calibrated task-duration models.
//!
//! The virtual cluster charges each task a wall-clock duration from these
//! models. The constants are calibrated against the paper's measured
//! values so that the *shapes* of the evaluation figures reproduce:
//!
//! * `sander`, 2 881 atoms, 6 000 steps, 1 SuperMIC core → **139.6 s**
//!   (Fig. 6: "the time to perform 6000 time-steps is nearly identical …
//!   139.6 seconds");
//! * NAMD, 2 881 atoms, 4 000 steps → ≈ 215 s (Fig. 8);
//! * TSU M-REMD on Stampede: per-cycle MD across 3 dimensions ≈ 495 s
//!   (Fig. 9), i.e. ≈ 165 s per dimension on Stampede's slower cores;
//! * `pmemd.MPI` multi-core scaling saturating for the 64 366-atom system
//!   (Fig. 12);
//! * RP overhead ∝ number of concurrently launched tasks, ≈ 45 s at 1 728
//!   replicas on SuperMIC (Fig. 5);
//! * data staging times ordered T < U < S with S ≈ 6.3 s at 1 728 replicas
//!   (Fig. 5).

use crate::cluster::ClusterSpec;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Which executable a task runs (determines the cost model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    Sander,
    PmemdMpi,
    /// GPU build of pmemd (the paper's Section 5: "preliminary results show
    /// that RepEx can easily be extended to support use of GPUs").
    PmemdCuda,
    Namd2,
    GmxMdrun,
}

impl EngineKind {
    pub fn executable(self) -> &'static str {
        match self {
            EngineKind::Sander => "sander",
            EngineKind::PmemdMpi => "pmemd.MPI",
            EngineKind::PmemdCuda => "pmemd.cuda",
            EngineKind::Namd2 => "namd2",
            EngineKind::GmxMdrun => "gmx mdrun",
        }
    }
}

/// Exchange parameter type (determines exchange + data cost models).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExchangeKind {
    Temperature,
    Umbrella,
    Salt,
    /// pH exchange (the paper's proposed extension; cost profile like T —
    /// a single light task using already-staged energies).
    Ph,
}

impl ExchangeKind {
    pub fn letter(self) -> char {
        match self {
            ExchangeKind::Temperature => 'T',
            ExchangeKind::Umbrella => 'U',
            ExchangeKind::Salt => 'S',
            ExchangeKind::Ph => 'P',
        }
    }
}

/// MD wall-time model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MdCostModel {
    /// sander: seconds per (atom × step) on a speed-1.0 core.
    pub sander_per_atom_step: f64,
    /// namd2: seconds per (atom × step).
    pub namd_per_atom_step: f64,
    /// pmemd.MPI serial-equivalent speed advantage over sander.
    pub pmemd_speedup: f64,
    /// Amdahl parallel fraction of pmemd.MPI.
    pub pmemd_parallel_fraction: f64,
    /// gmx mdrun single-core speed advantage over sander.
    pub gmx_speedup: f64,
    /// pmemd.cuda speedup over single-core sander (one GPU per replica;
    /// K20-era GPUs of the paper's Stampede ran pmemd.cuda at roughly 25-30x a
    /// single Sandy Bridge core).
    pub gpu_speedup: f64,
}

impl Default for MdCostModel {
    fn default() -> Self {
        MdCostModel {
            // 139.6 s / (2881 atoms × 6000 steps)
            sander_per_atom_step: 139.6 / (2881.0 * 6000.0),
            // ≈215 s / (2881 atoms × 4000 steps)
            namd_per_atom_step: 215.0 / (2881.0 * 4000.0),
            pmemd_speedup: 1.6,
            pmemd_parallel_fraction: 0.995,
            gmx_speedup: 2.1,
            gpu_speedup: 28.0,
        }
    }
}

impl MdCostModel {
    /// Wall seconds for an MD segment of `steps` steps on `atoms` atoms using
    /// `cores` cores of a machine with relative `core_speed`.
    pub fn md_seconds(
        &self,
        engine: EngineKind,
        atoms: usize,
        steps: u64,
        cores: usize,
        core_speed: f64,
    ) -> f64 {
        assert!(cores >= 1 && core_speed > 0.0);
        let work = atoms as f64 * steps as f64 / core_speed;
        match engine {
            EngineKind::Sander => self.sander_per_atom_step * work,
            EngineKind::Namd2 => self.namd_per_atom_step * work,
            EngineKind::GmxMdrun => self.sander_per_atom_step * work / self.gmx_speedup,
            EngineKind::PmemdCuda => self.sander_per_atom_step * work / self.gpu_speedup,
            EngineKind::PmemdMpi => {
                let t1 = self.sander_per_atom_step * work / self.pmemd_speedup;
                let f = self.pmemd_parallel_fraction;
                t1 * ((1.0 - f) + f / cores as f64)
            }
        }
    }
}

/// Exchange-phase compute-time model.
///
/// T- and U-exchange run as a single task whose cost grows linearly with the
/// number of participating replicas. S-exchange additionally launches one
/// single-point-energy task per replica (using Amber group files that need
/// as many cores as the group has members), which is why its constants are
/// an order of magnitude larger (Fig. 6, Section 4.2).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ExchangeCostModel {
    pub t_base: f64,
    pub t_per_replica: f64,
    pub u_base: f64,
    pub u_per_replica: f64,
    /// S-exchange: serialized launch cost per single-point task (through the
    /// RP agent) — the reason S-exchange grows linearly with replicas even
    /// in Execution Mode I (Fig. 6).
    pub sp_launch: f64,
    /// S-exchange: wall seconds of one single-point energy task (Amber
    /// startup + group-file evaluation).
    pub sp_task: f64,
    /// NAMD's exchange path has extra, bursty per-cycle variance
    /// ("growth rate for exchange times can't be characterized as
    /// monomial", Fig. 8); modelled as a larger lognormal sigma.
    pub namd_sigma: f64,
}

impl Default for ExchangeCostModel {
    fn default() -> Self {
        ExchangeCostModel {
            t_base: 0.8,
            t_per_replica: 0.019,
            u_base: 1.0,
            u_per_replica: 0.022,
            sp_launch: 0.12,
            sp_task: 8.75,
            namd_sigma: 0.35,
        }
    }
}

impl ExchangeCostModel {
    /// Deterministic exchange compute seconds for T- and U-exchange (a
    /// single MPI task whose cost grows linearly with the replica count).
    /// For S-exchange this returns the Execution-Mode-I 1-D value; use
    /// [`ExchangeCostModel::salt_wall_seconds`] when core counts matter.
    pub fn exchange_seconds(&self, kind: ExchangeKind, n_replicas: usize) -> f64 {
        let n = n_replicas as f64;
        match kind {
            ExchangeKind::Temperature => self.t_base + self.t_per_replica * n,
            ExchangeKind::Umbrella => self.u_base + self.u_per_replica * n,
            ExchangeKind::Salt => self.salt_wall_seconds(n_replicas, n_replicas, n_replicas),
            // pH exchange re-evaluates charges analytically on staged
            // energies; cost profile mirrors the T single-task exchange.
            ExchangeKind::Ph => 0.9 + 0.020 * n,
        }
    }

    /// S-exchange wall time: one single-point task per replica, each needing
    /// as many cores as it evaluates states (the sub-ladder for M-REMD, a
    /// pair for 1-D), launched serially through the agent and batched onto
    /// the pilot's cores. Reproduces both the Mode-I linear growth of Fig. 6
    /// (≈225 s at 1728 replicas) and the Mode-II blow-up of Fig. 10
    /// (≈1800 s at 112 cores).
    pub fn salt_wall_seconds(
        &self,
        n_replicas: usize,
        pilot_cores: usize,
        group_len: usize,
    ) -> f64 {
        if n_replicas == 0 {
            return 0.0;
        }
        let pilot_cores = pilot_cores.max(1);
        // States evaluated per task: the whole sub-ladder in M-REMD; for a
        // 1-D ladder (group == all replicas) only the candidate pair.
        let eval_cores = if group_len >= n_replicas { 2 } else { group_len.max(2) };
        let eval_cores = eval_cores.min(pilot_cores);
        let concurrent = (pilot_cores / eval_cores).max(1);
        let waves = n_replicas.div_ceil(concurrent);
        self.sp_launch * n_replicas as f64 + self.sp_task * waves as f64
    }
}

/// Data-staging time model (`T_data` of Eq. 1).
///
/// Data movement per exchange type differs in file count and size (mdinfo
/// files, restart swaps, DISANG rewrites, group files for S). Coefficients
/// are calibrated to Fig. 5 on SuperMIC and scale with the target machine's
/// filesystem latency relative to SuperMIC's.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DataCostModel {
    pub t_base: f64,
    pub t_per_replica: f64,
    pub u_base: f64,
    pub u_per_replica: f64,
    pub s_base: f64,
    pub s_per_replica: f64,
    /// SuperMIC filesystem latency the coefficients were calibrated on.
    pub reference_fs_latency: f64,
}

impl Default for DataCostModel {
    fn default() -> Self {
        DataCostModel {
            t_base: 1.2,
            t_per_replica: 0.0012,
            u_base: 1.5,
            u_per_replica: 0.0018,
            s_base: 1.8,
            s_per_replica: 0.0026, // 1.8 + 0.0026*1728 ≈ 6.3 s (Fig. 5 max)
            reference_fs_latency: 0.010,
        }
    }
}

impl DataCostModel {
    pub fn data_seconds(
        &self,
        kind: ExchangeKind,
        n_replicas: usize,
        cluster: &ClusterSpec,
    ) -> f64 {
        let n = n_replicas as f64;
        let raw = match kind {
            ExchangeKind::Temperature | ExchangeKind::Ph => self.t_base + self.t_per_replica * n,
            ExchangeKind::Umbrella => self.u_base + self.u_per_replica * n,
            ExchangeKind::Salt => self.s_base + self.s_per_replica * n,
        };
        raw * (cluster.fs.latency / self.reference_fs_latency)
    }
}

/// Framework and runtime overhead model (`T_RepEx-over`, `T_RP-over`).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OverheadModel {
    /// RepEx task-preparation overhead, 1-D simulations: base + per-replica.
    pub repex_1d_base: f64,
    pub repex_1d_per_replica: f64,
    /// 3-D simulations carry more state per replica (Section 4.1).
    pub repex_3d_base: f64,
    pub repex_3d_per_replica: f64,
    /// Fraction of the cluster's task-launch latency that serializes in the
    /// RP agent per concurrently-launched task (RP 0.35 behaviour).
    pub rp_serial_fraction: f64,
    /// RP 0.35's MPI task-scheduling issue in Execution Mode II: when task
    /// waves must be re-scheduled onto partially-freed cores, the agent pays
    /// a per-cycle cost proportional to the pilot's core count. This is the
    /// defect the paper blames for the strong-scaling efficiency dip that
    /// vanishes at cores = replicas (Fig. 11b): "This behavior is caused by
    /// the MPI task scheduling issue of RP."
    pub mode2_sched_per_core: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            repex_1d_base: 0.8,
            repex_1d_per_replica: 0.0008,
            repex_3d_base: 2.0,
            repex_3d_per_replica: 0.0025,
            rp_serial_fraction: 0.33,
            mode2_sched_per_core: 0.79,
        }
    }
}

impl OverheadModel {
    /// RepEx overhead per cycle for an n-dimensional simulation.
    pub fn repex_seconds(&self, dims: usize, n_replicas: usize) -> f64 {
        let n = n_replicas as f64;
        if dims >= 3 {
            self.repex_3d_base + self.repex_3d_per_replica * n
        } else {
            self.repex_1d_base + self.repex_1d_per_replica * n
        }
    }

    /// RP overhead per cycle: proportional to concurrently launched tasks
    /// (Fig. 5: "RP overhead is proportional to the number of replicas").
    pub fn rp_seconds(&self, concurrent_tasks: usize, cluster: &ClusterSpec) -> f64 {
        0.5 + self.rp_serial_fraction * cluster.task_launch_latency * concurrent_tasks as f64
    }
}

/// Multiplicative lognormal noise for task durations (stragglers).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Lognormal sigma for MD tasks.
    pub md_sigma: f64,
    /// Lognormal sigma for exchange tasks.
    pub exchange_sigma: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel { md_sigma: 0.015, exchange_sigma: 0.10 }
    }
}

impl NoiseModel {
    /// Draw a multiplicative factor with median 1.0.
    pub fn factor<R: Rng + ?Sized>(&self, sigma: f64, rng: &mut R) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        LogNormal::new(0.0, sigma).expect("positive sigma").sample(rng)
    }
}

/// Bundle of all calibrated models: what a virtual cluster charges.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PerfModel {
    pub md: MdCostModel,
    pub exchange: ExchangeCostModel,
    pub data: DataCostModel,
    pub overhead: OverheadModel,
    pub noise: NoiseModel,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sander_calibration_point() {
        let m = MdCostModel::default();
        let t = m.md_seconds(EngineKind::Sander, 2881, 6000, 1, 1.0);
        assert!((t - 139.6).abs() < 1e-9, "sander calibration broke: {t}");
    }

    #[test]
    fn namd_calibration_point() {
        let m = MdCostModel::default();
        let t = m.md_seconds(EngineKind::Namd2, 2881, 4000, 1, 1.0);
        assert!((t - 215.0).abs() < 1e-9);
    }

    #[test]
    fn md_time_independent_of_replica_count_depends_on_atoms_steps() {
        let m = MdCostModel::default();
        let t1 = m.md_seconds(EngineKind::Sander, 2881, 6000, 1, 1.0);
        let t2 = m.md_seconds(EngineKind::Sander, 5762, 6000, 1, 1.0);
        assert!((t2 / t1 - 2.0).abs() < 1e-9, "linear in atoms");
        let t3 = m.md_seconds(EngineKind::Sander, 2881, 12000, 1, 1.0);
        assert!((t3 / t1 - 2.0).abs() < 1e-9, "linear in steps");
    }

    #[test]
    fn pmemd_scaling_shape_matches_fig12() {
        // 64 366 atoms, 20 000 steps (Fig. 12 workload): large drop from
        // 1→16 cores, diminishing returns beyond.
        let m = MdCostModel::default();
        let t = |c| m.md_seconds(EngineKind::PmemdMpi, 64366, 20000, c, 0.85);
        let t16 = t(16);
        let t32 = t(32);
        let t64 = t(64);
        assert!(t16 < t(2) / 4.0, "16 cores ≥4x faster than 2");
        let gain_16_32 = t16 / t32;
        let gain_32_64 = t32 / t64;
        assert!(gain_16_32 < 2.0 && gain_16_32 > 1.2, "sublinear: {gain_16_32}");
        assert!(gain_32_64 < gain_16_32, "diminishing returns: {gain_32_64} vs {gain_16_32}");
        // sander single-core on the same workload is ~12000 s (paper plots
        // it divided by 10, ~1200 s bars).
        let sander = m.md_seconds(EngineKind::Sander, 64366, 20000, 1, 0.85);
        assert!(sander > 10_000.0 && sander < 15_000.0, "sander {sander}");
    }

    #[test]
    fn exchange_ordering_s_much_larger() {
        let m = ExchangeCostModel::default();
        for n in [64, 216, 512, 1000, 1728] {
            let t = m.exchange_seconds(ExchangeKind::Temperature, n);
            let u = m.exchange_seconds(ExchangeKind::Umbrella, n);
            let s = m.exchange_seconds(ExchangeKind::Salt, n);
            assert!(s > 3.0 * t, "S-exchange must dominate: {s} vs {t}");
            assert!((u - t).abs() < 0.3 * t.max(u), "T and U similar: {t} vs {u}");
        }
        // Fig. 6: S-exchange ≈ 225 s at 1728 replicas in Mode I.
        let s1728 = m.exchange_seconds(ExchangeKind::Salt, 1728);
        assert!(s1728 > 180.0 && s1728 < 280.0, "{s1728}");
    }

    #[test]
    fn salt_mode_ii_blowup_matches_fig10() {
        let m = ExchangeCostModel::default();
        // TSU with a 12-rung S dimension, 1728 replicas.
        let mode_i = m.salt_wall_seconds(1728, 1728, 12);
        let mode_ii = m.salt_wall_seconds(1728, 112, 12);
        assert!(mode_i > 250.0 && mode_i < 400.0, "Mode I TSU: {mode_i}");
        assert!(mode_ii > 1500.0 && mode_ii < 2100.0, "Fig. 10 at 112 cores ≈1800 s: {mode_ii}");
        // More cores -> cheaper exchange (the Fig. 10 trend).
        let mut prev = f64::INFINITY;
        for cores in [112usize, 224, 432, 864, 1728] {
            let w = m.salt_wall_seconds(1728, cores, 12);
            assert!(w <= prev, "S-exchange time must fall with cores: {w} > {prev}");
            prev = w;
        }
    }

    #[test]
    fn salt_wall_edge_cases() {
        let m = ExchangeCostModel::default();
        assert_eq!(m.salt_wall_seconds(0, 64, 4), 0.0);
        // One core still works (everything serializes).
        let w = m.salt_wall_seconds(10, 1, 4);
        assert!(w > 10.0 * m.sp_task * 0.99);
    }

    #[test]
    fn exchange_growth_is_linear() {
        let m = ExchangeCostModel::default();
        let t = |n| m.exchange_seconds(ExchangeKind::Temperature, n);
        let slope1 = (t(1000) - t(500)) / 500.0;
        let slope2 = (t(1728) - t(1000)) / 728.0;
        assert!((slope1 - slope2).abs() < 1e-12, "nearly linear growth");
    }

    #[test]
    fn data_times_ordered_and_calibrated() {
        let m = DataCostModel::default();
        let c = ClusterSpec::supermic();
        let t = m.data_seconds(ExchangeKind::Temperature, 1728, &c);
        let u = m.data_seconds(ExchangeKind::Umbrella, 1728, &c);
        let s = m.data_seconds(ExchangeKind::Salt, 1728, &c);
        assert!(t < u && u < s, "T < U < S data times");
        assert!((s - 6.3).abs() < 0.5, "S data at 1728 ≈ 6.3 s, got {s}");
    }

    #[test]
    fn rp_overhead_proportional_to_tasks() {
        let m = OverheadModel::default();
        let c = ClusterSpec::supermic();
        let r64 = m.rp_seconds(64, &c);
        let r1728 = m.rp_seconds(1728, &c);
        assert!(r1728 > 20.0 * r64 / 27.0 * 10.0, "grows ~linearly: {r64} -> {r1728}");
        assert!(r1728 > 40.0 && r1728 < 60.0, "≈45 s at 1728 on SuperMIC, got {r1728}");
    }

    #[test]
    fn repex_overhead_3d_exceeds_1d() {
        let m = OverheadModel::default();
        for n in [64, 512, 1728] {
            assert!(m.repex_seconds(3, n) > m.repex_seconds(1, n));
        }
    }

    #[test]
    fn noise_has_median_one() {
        use rand::SeedableRng;
        let n = NoiseModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut samples: Vec<f64> = (0..2001).map(|_| n.factor(0.1, &mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert_eq!(n.factor(0.0, &mut rng), 1.0);
    }
}
