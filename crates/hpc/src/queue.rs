//! Batch-queue wait-time model.
//!
//! Pilot jobs sit in the machine's batch queue before becoming active; the
//! whole point of the pilot abstraction is to pay this wait once rather than
//! per task. We model wait time as lognormal, growing with the fraction of
//! the machine requested.

use crate::cluster::ClusterSpec;
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Queue wait model parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchQueue {
    /// Median wait for a tiny job, in seconds.
    pub base_median: f64,
    /// Lognormal sigma (spread).
    pub sigma: f64,
    /// How strongly wait grows with requested machine fraction.
    pub size_exponent: f64,
}

impl Default for BatchQueue {
    fn default() -> Self {
        BatchQueue { base_median: 600.0, sigma: 0.8, size_exponent: 1.5 }
    }
}

impl BatchQueue {
    /// Sample a queue wait for a pilot requesting `cores` on `cluster`.
    pub fn sample_wait<R: Rng + ?Sized>(
        &self,
        cores: usize,
        cluster: &ClusterSpec,
        rng: &mut R,
    ) -> f64 {
        let fraction = (cores as f64 / cluster.total_cores() as f64).clamp(0.0, 1.0);
        let median = self.base_median * (1.0 + fraction).powf(self.size_exponent * 10.0);
        let dist = LogNormal::new(median.ln(), self.sigma).expect("sigma > 0");
        dist.sample(rng)
    }

    /// Median (deterministic) wait, for reporting.
    pub fn median_wait(&self, cores: usize, cluster: &ClusterSpec) -> f64 {
        let fraction = (cores as f64 / cluster.total_cores() as f64).clamp(0.0, 1.0);
        self.base_median * (1.0 + fraction).powf(self.size_exponent * 10.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bigger_requests_wait_longer_in_median() {
        let q = BatchQueue::default();
        let c = ClusterSpec::supermic();
        let small = q.median_wait(64, &c);
        let large = q.median_wait(c.total_cores() / 2, &c);
        assert!(large > small * 2.0, "{small} vs {large}");
    }

    #[test]
    fn samples_are_positive_and_spread() {
        let q = BatchQueue::default();
        let c = ClusterSpec::supermic();
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..200).map(|_| q.sample_wait(1000, &c, &mut rng)).collect();
        assert!(samples.iter().all(|s| *s > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let spread = samples.iter().map(|s| (s - mean).abs()).sum::<f64>() / samples.len() as f64;
        assert!(spread > 0.0, "lognormal must have spread");
    }

    #[test]
    fn deterministic_median_is_stable() {
        let q = BatchQueue::default();
        let c = ClusterSpec::stampede();
        assert_eq!(q.median_wait(100, &c), q.median_wait(100, &c));
    }
}
