//! Failure injection.
//!
//! Large-scale RE simulations "are more susceptive to both hardware and
//! software failures, which result in failures of individual replicas"
//! (Section 2.1). Tasks fail independently with an exponential time-to-
//! failure; the framework layer decides whether to relaunch or continue.

use rand::Rng;
use rand_distr::{Distribution, Exp};

/// Exponential per-task failure model.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Mean time between failures for a single running task, in seconds.
    /// `f64::INFINITY` disables failures.
    pub mtbf_seconds: f64,
}

impl FaultModel {
    pub const NONE: FaultModel = FaultModel { mtbf_seconds: f64::INFINITY };

    pub fn new(mtbf_seconds: f64) -> Self {
        assert!(mtbf_seconds > 0.0);
        FaultModel { mtbf_seconds }
    }

    /// If the task fails before completing `duration` seconds of work,
    /// return the failure time offset; otherwise `None`.
    pub fn sample_failure<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Option<f64> {
        if !self.mtbf_seconds.is_finite() {
            return None;
        }
        let exp = Exp::new(1.0 / self.mtbf_seconds).expect("positive rate");
        let t = exp.sample(rng);
        (t < duration).then_some(t)
    }

    /// Probability that a task of `duration` seconds fails.
    pub fn failure_probability(&self, duration: f64) -> f64 {
        if !self.mtbf_seconds.is_finite() {
            0.0
        } else {
            1.0 - (-duration / self.mtbf_seconds).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(FaultModel::NONE.sample_failure(1e9, &mut rng).is_none());
        }
        assert_eq!(FaultModel::NONE.failure_probability(1e9), 0.0);
    }

    #[test]
    fn empirical_failure_rate_matches_probability() {
        let fm = FaultModel::new(1000.0);
        let duration = 500.0;
        let expect = fm.failure_probability(duration);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let fails = (0..trials).filter(|_| fm.sample_failure(duration, &mut rng).is_some()).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.02, "empirical {rate} vs analytic {expect}");
    }

    #[test]
    fn failure_time_is_within_duration() {
        let fm = FaultModel::new(10.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            if let Some(t) = fm.sample_failure(25.0, &mut rng) {
                assert!((0.0..25.0).contains(&t));
            }
        }
    }

    #[test]
    fn probability_monotone_in_duration() {
        let fm = FaultModel::new(100.0);
        assert!(fm.failure_probability(10.0) < fm.failure_probability(100.0));
        assert!(fm.failure_probability(100.0) < fm.failure_probability(1000.0));
    }
}
