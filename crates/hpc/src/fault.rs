//! Failure injection.
//!
//! Large-scale RE simulations "are more susceptive to both hardware and
//! software failures, which result in failures of individual replicas"
//! (Section 2.1). Tasks fail independently with an exponential time-to-
//! failure; the framework layer decides whether to relaunch or continue.
//! [`HazardModel`] generalises the constant-rate model to time-correlated
//! failure storms (piecewise-constant hazard).

use rand::Rng;
use rand_distr::{Distribution, Exp};

/// Why an MTBF value was rejected by [`FaultModel::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModelError {
    /// MTBF was NaN.
    NaN,
    /// MTBF was zero or negative.
    NonPositive,
    /// MTBF was a positive subnormal: the implied rate overflows.
    Subnormal,
}

impl std::fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModelError::NaN => write!(f, "MTBF must not be NaN"),
            FaultModelError::NonPositive => write!(f, "MTBF must be positive"),
            FaultModelError::Subnormal => {
                write!(f, "MTBF is subnormal; the failure rate would overflow")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// Exponential per-task failure model.
///
/// The sampling distribution is validated and built once at construction,
/// not on every `sample_failure` call.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Mean time between failures for a single running task, in seconds.
    /// `f64::INFINITY` disables failures.
    mtbf_seconds: f64,
    /// Prebuilt exponential distribution; `None` when failures are disabled.
    exp: Option<Exp<f64>>,
}

impl FaultModel {
    pub const NONE: FaultModel = FaultModel { mtbf_seconds: f64::INFINITY, exp: None };

    pub fn new(mtbf_seconds: f64) -> Result<Self, FaultModelError> {
        if mtbf_seconds.is_nan() {
            return Err(FaultModelError::NaN);
        }
        if mtbf_seconds <= 0.0 {
            return Err(FaultModelError::NonPositive);
        }
        if mtbf_seconds.is_infinite() {
            return Ok(FaultModel::NONE);
        }
        if !mtbf_seconds.is_normal() {
            return Err(FaultModelError::Subnormal);
        }
        let exp = Exp::new(1.0 / mtbf_seconds).map_err(|_| FaultModelError::NonPositive)?;
        Ok(FaultModel { mtbf_seconds, exp: Some(exp) })
    }

    /// Mean time between failures in seconds (`INFINITY` when disabled).
    pub fn mtbf_seconds(&self) -> f64 {
        self.mtbf_seconds
    }

    /// Failures per second (0 when disabled).
    pub fn rate(&self) -> f64 {
        if self.mtbf_seconds.is_finite() {
            1.0 / self.mtbf_seconds
        } else {
            0.0
        }
    }

    /// If the task fails before completing `duration` seconds of work,
    /// return the failure time offset; otherwise `None`.
    pub fn sample_failure<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Option<f64> {
        let exp = self.exp?;
        let t = exp.sample(rng);
        (t < duration).then_some(t)
    }

    /// Probability that a task of `duration` seconds fails.
    pub fn failure_probability(&self, duration: f64) -> f64 {
        if !self.mtbf_seconds.is_finite() {
            0.0
        } else {
            1.0 - (-duration / self.mtbf_seconds).exp()
        }
    }
}

/// Time-varying failure hazard: either the classic constant-rate model or a
/// periodic two-phase profile (failure storms).
///
/// The storm profile is a square wave: each period of `period_seconds` opens
/// with a storm window of `storm_fraction * period_seconds` during which the
/// `storm` model's rate applies; the `calm` model's rate applies for the
/// rest. Sampling inverts the integrated hazard H(t): a task fails at the
/// first t where H(t) reaches -ln(U), the standard thinning-free method for
/// piecewise-constant rates.
#[derive(Debug, Clone, Copy)]
pub enum HazardModel {
    /// Time-invariant exponential failures.
    Constant(FaultModel),
    /// Periodic failure storms layered over a calm baseline.
    Storm { calm: FaultModel, storm: FaultModel, period_seconds: f64, storm_fraction: f64 },
}

impl HazardModel {
    pub const NONE: HazardModel = HazardModel::Constant(FaultModel::NONE);

    /// The harshest constant-rate model this hazard can present to a task —
    /// what worst-case capacity planning (the fault-policy lints) should
    /// assume.
    pub fn worst_case(&self) -> FaultModel {
        match self {
            HazardModel::Constant(fm) => *fm,
            HazardModel::Storm { calm, storm, .. } => {
                if storm.rate() >= calm.rate() {
                    *storm
                } else {
                    *calm
                }
            }
        }
    }

    /// If a task starting at absolute time `start` fails before completing
    /// `duration` seconds, return the failure offset from `start`.
    pub fn sample_failure<R: Rng + ?Sized>(
        &self,
        start: f64,
        duration: f64,
        rng: &mut R,
    ) -> Option<f64> {
        match self {
            HazardModel::Constant(fm) => fm.sample_failure(duration, rng),
            HazardModel::Storm { .. } => {
                let u: f64 = rng.gen();
                if u <= f64::MIN_POSITIVE {
                    return Some(0.0);
                }
                let target = -u.ln();
                self.walk_hazard(start, duration, target).1
            }
        }
    }

    /// Probability that a task of `duration` seconds starting at absolute
    /// time `start` fails.
    pub fn failure_probability(&self, start: f64, duration: f64) -> f64 {
        match self {
            HazardModel::Constant(fm) => fm.failure_probability(duration),
            HazardModel::Storm { .. } => {
                let (h, _) = self.walk_hazard(start, duration, f64::INFINITY);
                1.0 - (-h).exp()
            }
        }
    }

    /// Integrate the hazard over `[start, start + duration)`, stopping early
    /// at the offset where the accumulated hazard reaches `target`. Returns
    /// `(accumulated hazard, offset where target was hit)`.
    fn walk_hazard(&self, start: f64, duration: f64, target: f64) -> (f64, Option<f64>) {
        let HazardModel::Storm { calm, storm, period_seconds, storm_fraction } = self else {
            return (0.0, None);
        };
        let period = *period_seconds;
        let boundary = period * storm_fraction;
        let mut t = 0.0;
        let mut h = 0.0;
        while t < duration {
            let phase = (start + t).rem_euclid(period);
            let (rate, phase_end) =
                if phase < boundary { (storm.rate(), boundary) } else { (calm.rate(), period) };
            let seg = (phase_end - phase).min(duration - t);
            if rate > 0.0 && h + rate * seg >= target {
                return (target, Some(t + (target - h) / rate));
            }
            h += rate * seg;
            t += seg;
        }
        (h, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(FaultModel::NONE.sample_failure(1e9, &mut rng).is_none());
        }
        assert_eq!(FaultModel::NONE.failure_probability(1e9), 0.0);
    }

    #[test]
    fn invalid_mtbf_is_a_typed_error() {
        assert_eq!(FaultModel::new(f64::NAN), Err(FaultModelError::NaN));
        assert_eq!(FaultModel::new(0.0), Err(FaultModelError::NonPositive));
        assert_eq!(FaultModel::new(-5.0), Err(FaultModelError::NonPositive));
        assert_eq!(FaultModel::new(f64::MIN_POSITIVE / 2.0), Err(FaultModelError::Subnormal));
        // INFINITY is the documented "disabled" value, not an error.
        let off = FaultModel::new(f64::INFINITY).unwrap();
        assert_eq!(off.rate(), 0.0);
    }

    impl PartialEq for FaultModel {
        fn eq(&self, other: &Self) -> bool {
            self.mtbf_seconds == other.mtbf_seconds
        }
    }

    #[test]
    fn empirical_failure_rate_matches_probability() {
        let fm = FaultModel::new(1000.0).unwrap();
        let duration = 500.0;
        let expect = fm.failure_probability(duration);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let fails = (0..trials).filter(|_| fm.sample_failure(duration, &mut rng).is_some()).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.02, "empirical {rate} vs analytic {expect}");
    }

    #[test]
    fn failure_time_is_within_duration() {
        let fm = FaultModel::new(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            if let Some(t) = fm.sample_failure(25.0, &mut rng) {
                assert!((0.0..25.0).contains(&t));
            }
        }
    }

    #[test]
    fn probability_monotone_in_duration() {
        let fm = FaultModel::new(100.0).unwrap();
        assert!(fm.failure_probability(10.0) < fm.failure_probability(100.0));
        assert!(fm.failure_probability(100.0) < fm.failure_probability(1000.0));
    }

    fn storm() -> HazardModel {
        HazardModel::Storm {
            calm: FaultModel::new(10_000.0).unwrap(),
            storm: FaultModel::new(50.0).unwrap(),
            period_seconds: 1000.0,
            storm_fraction: 0.2,
        }
    }

    #[test]
    fn storm_probability_depends_on_phase() {
        let h = storm();
        // Entirely inside the storm window vs entirely in the calm phase.
        let in_storm = h.failure_probability(10.0, 100.0);
        let in_calm = h.failure_probability(400.0, 100.0);
        assert!(in_storm > 10.0 * in_calm, "storm {in_storm} vs calm {in_calm}");
        // Matches the constant-rate closed forms on each phase.
        let fm_storm = FaultModel::new(50.0).unwrap();
        assert!((in_storm - fm_storm.failure_probability(100.0)).abs() < 1e-12);
    }

    #[test]
    fn storm_hazard_integrates_across_periods() {
        let h = storm();
        // One full period: 200 s at rate 1/50 + 800 s at rate 1/10_000.
        let expect = 1.0 - (-(200.0_f64 / 50.0 + 800.0 / 10_000.0)).exp();
        let p = h.failure_probability(0.0, 1000.0);
        assert!((p - expect).abs() < 1e-12, "{p} vs {expect}");
        // Phase-shifted start covers the same total hazard over a full period.
        let p_shift = h.failure_probability(333.0, 1000.0);
        assert!((p_shift - expect).abs() < 1e-12);
    }

    #[test]
    fn storm_sampling_matches_analytic_probability() {
        let h = storm();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let duration = 300.0;
        let start = 900.0; // spans calm tail + storm head of the next period
        let expect = h.failure_probability(start, duration);
        let fails =
            (0..trials).filter(|_| h.sample_failure(start, duration, &mut rng).is_some()).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.02, "empirical {rate} vs analytic {expect}");
        for _ in 0..1000 {
            if let Some(t) = h.sample_failure(start, duration, &mut rng) {
                assert!((0.0..duration).contains(&t));
            }
        }
    }

    #[test]
    fn worst_case_picks_the_harsher_phase() {
        assert_eq!(storm().worst_case().mtbf_seconds(), 50.0);
        let c = HazardModel::Constant(FaultModel::new(123.0).unwrap());
        assert_eq!(c.worst_case().mtbf_seconds(), 123.0);
    }
}
