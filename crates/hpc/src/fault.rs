//! Failure injection.
//!
//! Large-scale RE simulations "are more susceptive to both hardware and
//! software failures, which result in failures of individual replicas"
//! (Section 2.1). Tasks fail independently with an exponential time-to-
//! failure; the framework layer decides whether to relaunch or continue.
//! [`HazardModel`] generalises the constant-rate model to time-correlated
//! failure storms (piecewise-constant hazard).

use rand::Rng;
use rand_distr::{Distribution, Exp};

/// Why an MTBF value was rejected by [`FaultModel::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultModelError {
    /// MTBF was NaN.
    NaN,
    /// MTBF was zero or negative.
    NonPositive,
    /// MTBF was a positive subnormal: the implied rate overflows.
    Subnormal,
}

impl std::fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModelError::NaN => write!(f, "MTBF must not be NaN"),
            FaultModelError::NonPositive => write!(f, "MTBF must be positive"),
            FaultModelError::Subnormal => {
                write!(f, "MTBF is subnormal; the failure rate would overflow")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// Exponential per-task failure model.
///
/// The sampling distribution is validated and built once at construction,
/// not on every `sample_failure` call.
#[derive(Debug, Clone, Copy)]
pub struct FaultModel {
    /// Mean time between failures for a single running task, in seconds.
    /// `f64::INFINITY` disables failures.
    mtbf_seconds: f64,
    /// Prebuilt exponential distribution; `None` when failures are disabled.
    exp: Option<Exp<f64>>,
}

impl FaultModel {
    pub const NONE: FaultModel = FaultModel { mtbf_seconds: f64::INFINITY, exp: None };

    pub fn new(mtbf_seconds: f64) -> Result<Self, FaultModelError> {
        if mtbf_seconds.is_nan() {
            return Err(FaultModelError::NaN);
        }
        if mtbf_seconds <= 0.0 {
            return Err(FaultModelError::NonPositive);
        }
        if mtbf_seconds.is_infinite() {
            return Ok(FaultModel::NONE);
        }
        if !mtbf_seconds.is_normal() {
            return Err(FaultModelError::Subnormal);
        }
        let exp = Exp::new(1.0 / mtbf_seconds).map_err(|_| FaultModelError::NonPositive)?;
        Ok(FaultModel { mtbf_seconds, exp: Some(exp) })
    }

    /// Mean time between failures in seconds (`INFINITY` when disabled).
    pub fn mtbf_seconds(&self) -> f64 {
        self.mtbf_seconds
    }

    /// Failures per second (0 when disabled).
    pub fn rate(&self) -> f64 {
        if self.mtbf_seconds.is_finite() {
            1.0 / self.mtbf_seconds
        } else {
            0.0
        }
    }

    /// If the task fails before completing `duration` seconds of work,
    /// return the failure time offset; otherwise `None`.
    pub fn sample_failure<R: Rng + ?Sized>(&self, duration: f64, rng: &mut R) -> Option<f64> {
        let exp = self.exp?;
        let t = exp.sample(rng);
        (t < duration).then_some(t)
    }

    /// Probability that a task of `duration` seconds fails.
    pub fn failure_probability(&self, duration: f64) -> f64 {
        if !self.mtbf_seconds.is_finite() {
            0.0
        } else {
            1.0 - (-duration / self.mtbf_seconds).exp()
        }
    }

    /// Mean wall time a *failed* attempt occupies its cores before the
    /// failure fires: `E[T | T < d]` for the exponential failure time,
    /// `1/λ − d·e^{−λd}/(1 − e^{−λd})`. Zero when failures are disabled.
    pub fn mean_failure_offset(&self, duration: f64) -> f64 {
        let p = self.failure_probability(duration);
        if p <= 0.0 {
            return 0.0;
        }
        self.mtbf_seconds - duration * (1.0 - p) / p
    }

    /// Expected wall-time inflation of a `duration`-second segment under a
    /// relaunch-on-failure policy with up to `retries` resubmissions
    /// (`None` = unbounded): failed attempts burn `E[T | T < d]` seconds
    /// each before the replacement starts, so the expected total is
    /// `d + E[#failures]·E[T | T < d]`, returned as a multiplier ≥ 1.
    ///
    /// This is the planner's Eq. 1 relaunch term — a closed form, not a
    /// simulation, so it ignores wave re-packing of relaunched tasks
    /// (second-order at the failure rates the `C044` validation admits).
    pub fn expected_relaunch_inflation(&self, duration: f64, retries: Option<u32>) -> f64 {
        let p = self.failure_probability(duration);
        if p <= 0.0 || duration <= 0.0 {
            return 1.0;
        }
        // Expected failed attempts: sum of p^k for k = 1..=attempts-1 with
        // `attempts = retries + 1` total tries (geometric when unbounded).
        let failures = match retries {
            None => p / (1.0 - p),
            Some(r) => {
                let mut sum = 0.0;
                let mut pk = p;
                for _ in 0..=r {
                    sum += pk;
                    pk *= p;
                }
                sum
            }
        };
        1.0 + failures * self.mean_failure_offset(duration) / duration
    }
}

/// Time-varying failure hazard: either the classic constant-rate model or a
/// periodic two-phase profile (failure storms).
///
/// The storm profile is a square wave: each period of `period_seconds` opens
/// with a storm window of `storm_fraction * period_seconds` during which the
/// `storm` model's rate applies; the `calm` model's rate applies for the
/// rest. Sampling inverts the integrated hazard H(t): a task fails at the
/// first t where H(t) reaches -ln(U), the standard thinning-free method for
/// piecewise-constant rates.
#[derive(Debug, Clone, Copy)]
pub enum HazardModel {
    /// Time-invariant exponential failures.
    Constant(FaultModel),
    /// Periodic failure storms layered over a calm baseline.
    Storm { calm: FaultModel, storm: FaultModel, period_seconds: f64, storm_fraction: f64 },
}

impl HazardModel {
    pub const NONE: HazardModel = HazardModel::Constant(FaultModel::NONE);

    /// The harshest constant-rate model this hazard can present to a task —
    /// what worst-case capacity planning (the fault-policy lints) should
    /// assume.
    pub fn worst_case(&self) -> FaultModel {
        match self {
            HazardModel::Constant(fm) => *fm,
            HazardModel::Storm { calm, storm, .. } => {
                if storm.rate() >= calm.rate() {
                    *storm
                } else {
                    *calm
                }
            }
        }
    }

    /// The constant-rate model with this hazard's *time-averaged* rate —
    /// what expected-cost prediction (the campaign planner) should charge
    /// for tasks whose start times are spread across whole storm periods:
    /// `λ̄ = λ_calm·(1 − f) + λ_storm·f`.
    pub fn mean_model(&self) -> FaultModel {
        match self {
            HazardModel::Constant(fm) => *fm,
            HazardModel::Storm { calm, storm, storm_fraction, .. } => {
                let rate = calm.rate() * (1.0 - storm_fraction) + storm.rate() * storm_fraction;
                if rate > 0.0 {
                    // A mean of two valid rates is a valid rate.
                    FaultModel::new(1.0 / rate).unwrap_or(FaultModel::NONE)
                } else {
                    FaultModel::NONE
                }
            }
        }
    }

    /// If a task starting at absolute time `start` fails before completing
    /// `duration` seconds, return the failure offset from `start`.
    pub fn sample_failure<R: Rng + ?Sized>(
        &self,
        start: f64,
        duration: f64,
        rng: &mut R,
    ) -> Option<f64> {
        match self {
            HazardModel::Constant(fm) => fm.sample_failure(duration, rng),
            HazardModel::Storm { .. } => {
                let u: f64 = rng.gen();
                if u <= f64::MIN_POSITIVE {
                    return Some(0.0);
                }
                let target = -u.ln();
                self.walk_hazard(start, duration, target).1
            }
        }
    }

    /// Probability that a task of `duration` seconds starting at absolute
    /// time `start` fails.
    pub fn failure_probability(&self, start: f64, duration: f64) -> f64 {
        match self {
            HazardModel::Constant(fm) => fm.failure_probability(duration),
            HazardModel::Storm { .. } => {
                let (h, _) = self.walk_hazard(start, duration, f64::INFINITY);
                1.0 - (-h).exp()
            }
        }
    }

    /// Integrate the hazard over `[start, start + duration)`, stopping early
    /// at the offset where the accumulated hazard reaches `target`. Returns
    /// `(accumulated hazard, offset where target was hit)`.
    fn walk_hazard(&self, start: f64, duration: f64, target: f64) -> (f64, Option<f64>) {
        let HazardModel::Storm { calm, storm, period_seconds, storm_fraction } = self else {
            return (0.0, None);
        };
        let period = *period_seconds;
        let boundary = period * storm_fraction;
        let mut t = 0.0;
        let mut h = 0.0;
        while t < duration {
            let phase = (start + t).rem_euclid(period);
            let (rate, phase_end) =
                if phase < boundary { (storm.rate(), boundary) } else { (calm.rate(), period) };
            let seg = (phase_end - phase).min(duration - t);
            if rate > 0.0 && h + rate * seg >= target {
                return (target, Some(t + (target - h) / rate));
            }
            h += rate * seg;
            t += seg;
        }
        (h, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_never_fails() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(FaultModel::NONE.sample_failure(1e9, &mut rng).is_none());
        }
        assert_eq!(FaultModel::NONE.failure_probability(1e9), 0.0);
    }

    #[test]
    fn invalid_mtbf_is_a_typed_error() {
        assert_eq!(FaultModel::new(f64::NAN), Err(FaultModelError::NaN));
        assert_eq!(FaultModel::new(0.0), Err(FaultModelError::NonPositive));
        assert_eq!(FaultModel::new(-5.0), Err(FaultModelError::NonPositive));
        assert_eq!(FaultModel::new(f64::MIN_POSITIVE / 2.0), Err(FaultModelError::Subnormal));
        // INFINITY is the documented "disabled" value, not an error.
        let off = FaultModel::new(f64::INFINITY).unwrap();
        assert_eq!(off.rate(), 0.0);
    }

    impl PartialEq for FaultModel {
        fn eq(&self, other: &Self) -> bool {
            self.mtbf_seconds == other.mtbf_seconds
        }
    }

    #[test]
    fn empirical_failure_rate_matches_probability() {
        let fm = FaultModel::new(1000.0).unwrap();
        let duration = 500.0;
        let expect = fm.failure_probability(duration);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 20_000;
        let fails = (0..trials).filter(|_| fm.sample_failure(duration, &mut rng).is_some()).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.02, "empirical {rate} vs analytic {expect}");
    }

    #[test]
    fn failure_time_is_within_duration() {
        let fm = FaultModel::new(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            if let Some(t) = fm.sample_failure(25.0, &mut rng) {
                assert!((0.0..25.0).contains(&t));
            }
        }
    }

    #[test]
    fn probability_monotone_in_duration() {
        let fm = FaultModel::new(100.0).unwrap();
        assert!(fm.failure_probability(10.0) < fm.failure_probability(100.0));
        assert!(fm.failure_probability(100.0) < fm.failure_probability(1000.0));
    }

    fn storm() -> HazardModel {
        HazardModel::Storm {
            calm: FaultModel::new(10_000.0).unwrap(),
            storm: FaultModel::new(50.0).unwrap(),
            period_seconds: 1000.0,
            storm_fraction: 0.2,
        }
    }

    #[test]
    fn storm_probability_depends_on_phase() {
        let h = storm();
        // Entirely inside the storm window vs entirely in the calm phase.
        let in_storm = h.failure_probability(10.0, 100.0);
        let in_calm = h.failure_probability(400.0, 100.0);
        assert!(in_storm > 10.0 * in_calm, "storm {in_storm} vs calm {in_calm}");
        // Matches the constant-rate closed forms on each phase.
        let fm_storm = FaultModel::new(50.0).unwrap();
        assert!((in_storm - fm_storm.failure_probability(100.0)).abs() < 1e-12);
    }

    #[test]
    fn storm_hazard_integrates_across_periods() {
        let h = storm();
        // One full period: 200 s at rate 1/50 + 800 s at rate 1/10_000.
        let expect = 1.0 - (-(200.0_f64 / 50.0 + 800.0 / 10_000.0)).exp();
        let p = h.failure_probability(0.0, 1000.0);
        assert!((p - expect).abs() < 1e-12, "{p} vs {expect}");
        // Phase-shifted start covers the same total hazard over a full period.
        let p_shift = h.failure_probability(333.0, 1000.0);
        assert!((p_shift - expect).abs() < 1e-12);
    }

    #[test]
    fn storm_sampling_matches_analytic_probability() {
        let h = storm();
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let duration = 300.0;
        let start = 900.0; // spans calm tail + storm head of the next period
        let expect = h.failure_probability(start, duration);
        let fails =
            (0..trials).filter(|_| h.sample_failure(start, duration, &mut rng).is_some()).count();
        let rate = fails as f64 / trials as f64;
        assert!((rate - expect).abs() < 0.02, "empirical {rate} vs analytic {expect}");
        for _ in 0..1000 {
            if let Some(t) = h.sample_failure(start, duration, &mut rng) {
                assert!((0.0..duration).contains(&t));
            }
        }
    }

    #[test]
    fn worst_case_picks_the_harsher_phase() {
        assert_eq!(storm().worst_case().mtbf_seconds(), 50.0);
        let c = HazardModel::Constant(FaultModel::new(123.0).unwrap());
        assert_eq!(c.worst_case().mtbf_seconds(), 123.0);
    }

    #[test]
    fn mean_failure_offset_bounds_and_small_p_limit() {
        let fm = FaultModel::new(1000.0).unwrap();
        let w = fm.mean_failure_offset(100.0);
        // A failed 100 s attempt burns between 0 and 100 seconds; for
        // d ≪ mtbf the conditional failure time is nearly uniform → d/2.
        assert!(w > 0.0 && w < 100.0, "offset {w}");
        assert!((w - 50.0).abs() < 2.0, "small-p limit ≈ d/2, got {w}");
        assert_eq!(FaultModel::NONE.mean_failure_offset(100.0), 0.0);
    }

    #[test]
    fn relaunch_inflation_is_a_multiplier_and_grows_with_retries() {
        let fm = FaultModel::new(200.0).unwrap();
        assert_eq!(FaultModel::NONE.expected_relaunch_inflation(100.0, None), 1.0);
        let r0 = fm.expected_relaunch_inflation(100.0, Some(0));
        let r3 = fm.expected_relaunch_inflation(100.0, Some(3));
        let unbounded = fm.expected_relaunch_inflation(100.0, None);
        assert!(r0 > 1.0);
        assert!(r3 > r0, "{r3} vs {r0}");
        assert!(unbounded >= r3, "{unbounded} vs {r3}");
        // p = 1 − e^{−0.5} ≈ 0.393; unbounded failures p/(1−p) ≈ 0.648,
        // each burning E[T|T<d] < d — inflation stays well under 1 + 0.648.
        assert!(unbounded < 1.648);
    }

    #[test]
    fn mean_model_averages_the_storm_rate() {
        let h = storm(); // calm 1000 s, storm 50 s, fraction 0.25 (see helper)
        let HazardModel::Storm { calm, storm: s, storm_fraction, .. } = h else {
            panic!("helper changed shape");
        };
        let expect = calm.rate() * (1.0 - storm_fraction) + s.rate() * storm_fraction;
        assert!((h.mean_model().rate() - expect).abs() < 1e-15);
        let c = HazardModel::Constant(FaultModel::new(77.0).unwrap());
        assert_eq!(c.mean_model().mtbf_seconds(), 77.0);
        assert_eq!(HazardModel::NONE.mean_model().rate(), 0.0);
    }
}
