//! Core-occupancy timeline: the deterministic list scheduler at the heart of
//! the virtual cluster.
//!
//! Every core has a time at which it becomes free. Scheduling a task that
//! needs `k` cores grabs the `k` earliest-free cores, starts when the last of
//! them is free (and not before the requested earliest start), and occupies
//! them for the task duration. This is exactly the greedy policy a pilot
//! agent applies to its core slots, and it reproduces the batching behaviour
//! of Execution Mode II (more tasks than cores → waves of execution).
//!
//! ## Representation
//!
//! The seed kept one heap entry per core and rebuilt the whole heap on every
//! barrier — O(n) per dispatch and O(n log n) per barrier, which is what
//! made 10⁵-core simulations scheduler-bound. Cores that free at the same
//! instant are interchangeable under the greedy policy, so the timeline now
//! stores *groups*: an [`EventQueue`] of `(free_at, count)` entries whose
//! counts always sum to `n_cores`. A task scheduled on `k` cores pops
//! whole groups until `k` cores are gathered (pushing back the unused
//! remainder of the last group) and pushes one `(end, k)` group — O(g log g)
//! in the number of groups (bounded by in-flight tasks, not cores). When
//! the earliest group is exactly `k` wide — the steady state of equal-width
//! task waves — the pop and push fuse into a single root replacement
//! ([`EventQueue::pop_push`]), one sift instead of two. A barrier just
//! raises a scalar floor (O(1)), and `all_idle_at` reads a running maximum
//! (O(1)).

use crate::events::EventQueue;
use crate::time::SimTime;

/// Occupancy state of a fixed pool of cores.
#[derive(Debug, Clone)]
pub struct CoreTimeline {
    /// Min-heap of `(free_at, core_count)` groups; counts sum to `n_cores`.
    /// FIFO tie-breaking makes equal-time pops deterministic.
    groups: EventQueue<usize>,
    /// Barrier floor: no task may start before this time.
    floor: SimTime,
    /// Running maximum of every scheduled end time and barrier floor —
    /// `all_idle_at` in O(1). Monotone: re-scheduling a popped group always
    /// pushes an end at or after its free time.
    max_free: SimTime,
    n_cores: usize,
    /// Sum of busy core-seconds scheduled so far (for utilization metrics).
    busy_core_seconds: f64,
    recorder: obs::Recorder,
}

/// A scheduled slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    pub start: SimTime,
    pub end: SimTime,
}

impl CoreTimeline {
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "timeline needs at least one core");
        let mut groups = EventQueue::with_capacity(16);
        groups.push(SimTime::ZERO, n_cores);
        CoreTimeline {
            groups,
            floor: SimTime::ZERO,
            max_free: SimTime::ZERO,
            n_cores,
            busy_core_seconds: 0.0,
            recorder: obs::Recorder::default(),
        }
    }

    /// Attach an observability recorder; scheduling decisions are counted
    /// against it (`timeline.tasks_scheduled`, `timeline.barriers`).
    pub fn set_recorder(&mut self, recorder: obs::Recorder) {
        self.recorder = recorder;
    }

    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Schedule a task needing `cores` cores for `duration` seconds, starting
    /// no earlier than `earliest`. Returns the allocated slot.
    ///
    /// Panics if `cores` exceeds the pool (callers must split such workloads;
    /// the pilot layer turns this into a proper error).
    pub fn schedule(&mut self, cores: usize, duration: f64, earliest: SimTime) -> Slot {
        assert!(cores > 0 && cores <= self.n_cores, "task needs {cores} of {} cores", self.n_cores);
        assert!(duration >= 0.0, "negative duration");
        let mut start = earliest.max(self.floor);
        // Fast path: the earliest-free group exactly covers the request —
        // the steady state of equal-width task waves, where every dispatch
        // recycles the group its predecessor pushed. One fused pop+push,
        // one sift, no slot churn.
        if let Some((free_at, &count)) = self.groups.peek() {
            if count == cores {
                let start = start.max(free_at);
                let end = start + duration;
                self.groups.pop_push(end, cores);
                self.max_free = self.max_free.max(end);
                self.busy_core_seconds += duration * cores as f64;
                self.recorder.count("timeline.tasks_scheduled", 1);
                return Slot { start, end };
            }
        }
        // Pop earliest-free groups until `cores` cores are gathered; groups
        // pop in free-time order, so the last pop dominates the start time.
        let mut remaining = cores;
        while remaining > 0 {
            let (free_at, count) = self.groups.pop().expect("group counts sum to n_cores");
            start = start.max(free_at);
            if count > remaining {
                self.groups.push(free_at, count - remaining);
                remaining = 0;
            } else {
                remaining -= count;
            }
        }
        let end = start + duration;
        self.groups.push(end, cores);
        self.max_free = self.max_free.max(end);
        self.busy_core_seconds += duration * cores as f64;
        self.recorder.count("timeline.tasks_scheduled", 1);
        Slot { start, end }
    }

    /// The time at which all cores are idle (= completion of the last task).
    pub fn all_idle_at(&self) -> SimTime {
        self.max_free
    }

    /// Earliest time any core is free.
    pub fn next_free_at(&self) -> SimTime {
        self.groups.peek_time().map_or(self.floor, |t| t.max(self.floor))
    }

    /// Impose a global barrier: no core may start new work before `t`
    /// (used between the MD and exchange phases of the synchronous pattern).
    /// O(1): the floor is folded into start times at the next `schedule`.
    pub fn barrier(&mut self, t: SimTime) {
        self.recorder.count("timeline.barriers", 1);
        self.floor = self.floor.max(t);
        self.max_free = self.max_free.max(t);
    }

    /// Total busy core-seconds scheduled so far.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_core_seconds
    }

    /// Utilization over `[0, horizon]`: busy core-seconds / (cores × horizon).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let denom = self.n_cores as f64 * horizon.as_secs();
        if denom <= 0.0 {
            0.0
        } else {
            (self.busy_core_seconds / denom).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequentializes_when_pool_is_full() {
        let mut tl = CoreTimeline::new(2);
        let a = tl.schedule(1, 10.0, SimTime::ZERO);
        let b = tl.schedule(1, 10.0, SimTime::ZERO);
        let c = tl.schedule(1, 5.0, SimTime::ZERO);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        // Third task waits for the first free core.
        assert_eq!(c.start.as_secs(), 10.0);
        assert_eq!(c.end.as_secs(), 15.0);
    }

    #[test]
    fn multicore_task_waits_for_enough_cores() {
        let mut tl = CoreTimeline::new(4);
        tl.schedule(3, 7.0, SimTime::ZERO); // cores 0-2 busy until 7
        let wide = tl.schedule(2, 1.0, SimTime::ZERO); // needs 2: one free now, one at 7
        assert_eq!(wide.start.as_secs(), 7.0);
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut tl = CoreTimeline::new(1);
        let s = tl.schedule(1, 1.0, SimTime::seconds(100.0));
        assert_eq!(s.start.as_secs(), 100.0);
    }

    #[test]
    fn barrier_delays_subsequent_work() {
        let mut tl = CoreTimeline::new(4);
        tl.schedule(4, 3.0, SimTime::ZERO);
        tl.barrier(SimTime::seconds(10.0));
        let s = tl.schedule(1, 1.0, SimTime::ZERO);
        assert_eq!(s.start.as_secs(), 10.0);
    }

    #[test]
    fn barrier_raises_idle_time_of_idle_pool() {
        let mut tl = CoreTimeline::new(4);
        tl.barrier(SimTime::seconds(5.0));
        assert_eq!(tl.all_idle_at().as_secs(), 5.0);
        assert_eq!(tl.next_free_at().as_secs(), 5.0);
        // A later barrier must not lower it.
        tl.barrier(SimTime::seconds(2.0));
        assert_eq!(tl.all_idle_at().as_secs(), 5.0);
    }

    #[test]
    fn partial_group_reuse_keeps_remainder_free() {
        // A 3-core task splits the idle 4-core group; the leftover core
        // still accepts work at t=0.
        let mut tl = CoreTimeline::new(4);
        tl.schedule(3, 7.0, SimTime::ZERO);
        let s = tl.schedule(1, 1.0, SimTime::ZERO);
        assert_eq!(s.start, SimTime::ZERO);
    }

    #[test]
    fn mode_ii_batching_shape() {
        // 8 equal tasks on 2 cores: 4 waves; makespan = 4 * duration.
        let mut tl = CoreTimeline::new(2);
        for _ in 0..8 {
            tl.schedule(1, 5.0, SimTime::ZERO);
        }
        assert_eq!(tl.all_idle_at().as_secs(), 20.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut tl = CoreTimeline::new(2);
        tl.schedule(1, 10.0, SimTime::ZERO);
        tl.schedule(1, 10.0, SimTime::ZERO);
        assert_eq!(tl.busy_core_seconds(), 20.0);
        assert!((tl.utilization(SimTime::seconds(10.0)) - 1.0).abs() < 1e-12);
        assert!((tl.utilization(SimTime::seconds(20.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recorder_counts_schedules_and_barriers() {
        let rec = obs::Recorder::enabled();
        let mut tl = CoreTimeline::new(2);
        tl.set_recorder(rec.clone());
        tl.schedule(1, 1.0, SimTime::ZERO);
        tl.schedule(2, 1.0, SimTime::ZERO);
        tl.barrier(SimTime::seconds(5.0));
        let counters = rec.counters();
        assert_eq!(counters.get("timeline.tasks_scheduled"), Some(&2));
        assert_eq!(counters.get("timeline.barriers"), Some(&1));
    }

    #[test]
    #[should_panic]
    fn oversized_task_panics() {
        let mut tl = CoreTimeline::new(2);
        tl.schedule(3, 1.0, SimTime::ZERO);
    }

    proptest::proptest! {
        #[test]
        fn makespan_at_least_work_over_cores(
            n_cores in 1usize..16,
            durations in proptest::collection::vec(0.1f64..50.0, 1..40),
        ) {
            let mut tl = CoreTimeline::new(n_cores);
            let total: f64 = durations.iter().sum();
            let longest = durations.iter().copied().fold(0.0f64, f64::max);
            for d in &durations {
                tl.schedule(1, *d, SimTime::ZERO);
            }
            let makespan = tl.all_idle_at().as_secs();
            // Classic bounds: max(work/cores, longest) <= makespan <= work.
            proptest::prop_assert!(makespan >= total / n_cores as f64 - 1e-9);
            proptest::prop_assert!(makespan >= longest - 1e-9);
            proptest::prop_assert!(makespan <= total + 1e-9);
        }

        /// The group representation against a per-core reference scheduler
        /// (the seed's representation): identical slots for random mixed
        /// workloads with barriers.
        #[test]
        fn group_heap_matches_per_core_reference(
            n_cores in 1usize..12,
            ops in proptest::collection::vec((1usize..6, 0.0f64..20.0, 0.0f64..30.0, proptest::bool::ANY), 1..60),
        ) {
            let mut tl = CoreTimeline::new(n_cores);
            // Reference: explicit per-core free times, greedy k-earliest.
            let mut free = vec![0.0f64; n_cores];
            for &(cores_raw, duration, earliest, do_barrier) in &ops {
                let cores = cores_raw.min(n_cores);
                if do_barrier {
                    let t = tl.all_idle_at();
                    tl.barrier(t + 1.0);
                    let rt = free.iter().copied().fold(0.0f64, f64::max) + 1.0;
                    for f in &mut free {
                        *f = f.max(rt);
                    }
                }
                let slot = tl.schedule(cores, duration, SimTime::seconds(earliest));
                free.sort_by(f64::total_cmp);
                let start = free[cores - 1].max(earliest);
                let end = start + duration;
                for f in free.iter_mut().take(cores) {
                    *f = end;
                }
                proptest::prop_assert!((slot.start.as_secs() - start).abs() < 1e-9,
                    "start {} vs reference {start}", slot.start.as_secs());
                proptest::prop_assert!((slot.end.as_secs() - end).abs() < 1e-9);
            }
            let ref_makespan = free.iter().copied().fold(0.0f64, f64::max);
            proptest::prop_assert!((tl.all_idle_at().as_secs() - ref_makespan).abs() < 1e-9);
        }
    }
}
