//! Core-occupancy timeline: the deterministic list scheduler at the heart of
//! the virtual cluster.
//!
//! Every core has a time at which it becomes free. Scheduling a task that
//! needs `k` cores grabs the `k` earliest-free cores, starts when the last of
//! them is free (and not before the requested earliest start), and occupies
//! them for the task duration. This is exactly the greedy policy a pilot
//! agent applies to its core slots, and it reproduces the batching behaviour
//! of Execution Mode II (more tasks than cores → waves of execution).

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Occupancy state of a fixed pool of cores.
#[derive(Debug, Clone)]
pub struct CoreTimeline {
    free_at: BinaryHeap<Reverse<SimTime>>,
    n_cores: usize,
    /// Sum of busy core-seconds scheduled so far (for utilization metrics).
    busy_core_seconds: f64,
    recorder: obs::Recorder,
}

/// A scheduled slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slot {
    pub start: SimTime,
    pub end: SimTime,
}

impl CoreTimeline {
    pub fn new(n_cores: usize) -> Self {
        assert!(n_cores > 0, "timeline needs at least one core");
        let mut free_at = BinaryHeap::with_capacity(n_cores);
        for _ in 0..n_cores {
            free_at.push(Reverse(SimTime::ZERO));
        }
        CoreTimeline {
            free_at,
            n_cores,
            busy_core_seconds: 0.0,
            recorder: obs::Recorder::default(),
        }
    }

    /// Attach an observability recorder; scheduling decisions are counted
    /// against it (`timeline.tasks_scheduled`, `timeline.barriers`).
    pub fn set_recorder(&mut self, recorder: obs::Recorder) {
        self.recorder = recorder;
    }

    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Schedule a task needing `cores` cores for `duration` seconds, starting
    /// no earlier than `earliest`. Returns the allocated slot.
    ///
    /// Panics if `cores` exceeds the pool (callers must split such workloads;
    /// the pilot layer turns this into a proper error).
    pub fn schedule(&mut self, cores: usize, duration: f64, earliest: SimTime) -> Slot {
        assert!(cores > 0 && cores <= self.n_cores, "task needs {cores} of {} cores", self.n_cores);
        assert!(duration >= 0.0, "negative duration");
        let mut grabbed = Vec::with_capacity(cores);
        for _ in 0..cores {
            grabbed.push(self.free_at.pop().expect("heap has n_cores entries").0);
        }
        let start = grabbed.iter().fold(earliest, |acc, t| acc.max(*t));
        let end = start + duration;
        for _ in 0..cores {
            self.free_at.push(Reverse(end));
        }
        self.busy_core_seconds += duration * cores as f64;
        self.recorder.count("timeline.tasks_scheduled", 1);
        Slot { start, end }
    }

    /// The time at which all cores are idle (= completion of the last task).
    pub fn all_idle_at(&self) -> SimTime {
        self.free_at.iter().map(|Reverse(t)| *t).fold(SimTime::ZERO, SimTime::max)
    }

    /// Earliest time any core is free.
    pub fn next_free_at(&self) -> SimTime {
        self.free_at.peek().map_or(SimTime::ZERO, |Reverse(t)| *t)
    }

    /// Impose a global barrier: no core may start new work before `t`
    /// (used between the MD and exchange phases of the synchronous pattern).
    pub fn barrier(&mut self, t: SimTime) {
        self.recorder.count("timeline.barriers", 1);
        let mut new_heap = BinaryHeap::with_capacity(self.n_cores);
        for Reverse(free) in self.free_at.drain() {
            new_heap.push(Reverse(free.max(t)));
        }
        self.free_at = new_heap;
    }

    /// Total busy core-seconds scheduled so far.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_core_seconds
    }

    /// Utilization over `[0, horizon]`: busy core-seconds / (cores × horizon).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let denom = self.n_cores as f64 * horizon.as_secs();
        if denom <= 0.0 {
            0.0
        } else {
            (self.busy_core_seconds / denom).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequentializes_when_pool_is_full() {
        let mut tl = CoreTimeline::new(2);
        let a = tl.schedule(1, 10.0, SimTime::ZERO);
        let b = tl.schedule(1, 10.0, SimTime::ZERO);
        let c = tl.schedule(1, 5.0, SimTime::ZERO);
        assert_eq!(a.start, SimTime::ZERO);
        assert_eq!(b.start, SimTime::ZERO);
        // Third task waits for the first free core.
        assert_eq!(c.start.as_secs(), 10.0);
        assert_eq!(c.end.as_secs(), 15.0);
    }

    #[test]
    fn multicore_task_waits_for_enough_cores() {
        let mut tl = CoreTimeline::new(4);
        tl.schedule(3, 7.0, SimTime::ZERO); // cores 0-2 busy until 7
        let wide = tl.schedule(2, 1.0, SimTime::ZERO); // needs 2: one free now, one at 7
        assert_eq!(wide.start.as_secs(), 7.0);
    }

    #[test]
    fn earliest_constraint_respected() {
        let mut tl = CoreTimeline::new(1);
        let s = tl.schedule(1, 1.0, SimTime::seconds(100.0));
        assert_eq!(s.start.as_secs(), 100.0);
    }

    #[test]
    fn barrier_delays_subsequent_work() {
        let mut tl = CoreTimeline::new(4);
        tl.schedule(4, 3.0, SimTime::ZERO);
        tl.barrier(SimTime::seconds(10.0));
        let s = tl.schedule(1, 1.0, SimTime::ZERO);
        assert_eq!(s.start.as_secs(), 10.0);
    }

    #[test]
    fn mode_ii_batching_shape() {
        // 8 equal tasks on 2 cores: 4 waves; makespan = 4 * duration.
        let mut tl = CoreTimeline::new(2);
        for _ in 0..8 {
            tl.schedule(1, 5.0, SimTime::ZERO);
        }
        assert_eq!(tl.all_idle_at().as_secs(), 20.0);
    }

    #[test]
    fn utilization_accounting() {
        let mut tl = CoreTimeline::new(2);
        tl.schedule(1, 10.0, SimTime::ZERO);
        tl.schedule(1, 10.0, SimTime::ZERO);
        assert_eq!(tl.busy_core_seconds(), 20.0);
        assert!((tl.utilization(SimTime::seconds(10.0)) - 1.0).abs() < 1e-12);
        assert!((tl.utilization(SimTime::seconds(20.0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recorder_counts_schedules_and_barriers() {
        let rec = obs::Recorder::enabled();
        let mut tl = CoreTimeline::new(2);
        tl.set_recorder(rec.clone());
        tl.schedule(1, 1.0, SimTime::ZERO);
        tl.schedule(2, 1.0, SimTime::ZERO);
        tl.barrier(SimTime::seconds(5.0));
        let counters = rec.counters();
        assert_eq!(counters.get("timeline.tasks_scheduled"), Some(&2));
        assert_eq!(counters.get("timeline.barriers"), Some(&1));
    }

    #[test]
    #[should_panic]
    fn oversized_task_panics() {
        let mut tl = CoreTimeline::new(2);
        tl.schedule(3, 1.0, SimTime::ZERO);
    }

    proptest::proptest! {
        #[test]
        fn makespan_at_least_work_over_cores(
            n_cores in 1usize..16,
            durations in proptest::collection::vec(0.1f64..50.0, 1..40),
        ) {
            let mut tl = CoreTimeline::new(n_cores);
            let total: f64 = durations.iter().sum();
            let longest = durations.iter().copied().fold(0.0f64, f64::max);
            for d in &durations {
                tl.schedule(1, *d, SimTime::ZERO);
            }
            let makespan = tl.all_idle_at().as_secs();
            // Classic bounds: max(work/cores, longest) <= makespan <= work.
            proptest::prop_assert!(makespan >= total / n_cores as f64 - 1e-9);
            proptest::prop_assert!(makespan >= longest - 1e-9);
            proptest::prop_assert!(makespan <= total + 1e-9);
        }
    }
}
