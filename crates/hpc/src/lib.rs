//! # hpc — the virtual-cluster substrate
//!
//! A discrete-event model of the HPC resources the paper ran on (Stampede,
//! SuperMIC): core-occupancy timelines, a parallel-filesystem transfer
//! model, batch-queue waits, failure injection, and task-duration models
//! calibrated to the paper's measured timings.
//!
//! Orchestration behaviour (who waits for whom at barriers, how Execution
//! Mode II batches replicas onto scarce cores) is *computed exactly* by the
//! [`timeline::CoreTimeline`] list scheduler; only task durations come from
//! the calibrated [`perfmodel`] plus lognormal straggler noise.

pub mod cluster;
pub mod events;
pub mod fault;
pub mod filesystem;
pub mod perfmodel;
pub mod pool;
pub mod queue;
pub mod scenario;
pub mod time;
pub mod timeline;

pub use cluster::{ClusterSpec, FilesystemSpec};
pub use events::EventQueue;
pub use fault::{FaultModel, FaultModelError, HazardModel};
pub use filesystem::SharedFilesystem;
pub use perfmodel::{EngineKind, ExchangeKind, PerfModel};
pub use pool::{CorePool, PoolError};
pub use scenario::Scenario;
pub use time::SimTime;
pub use timeline::{CoreTimeline, Slot};
