//! Adversarial stress scenarios.
//!
//! A [`Scenario`] is a config-level description of a hostile environment,
//! layered on top of the baseline fault and performance models: failure
//! storms (time-correlated bursts), heterogeneous node speeds, shared-
//! filesystem slowdowns and straggler injection. The simulated executor
//! applies the scenario when charging task durations; the pre-flight lints
//! and trace analytics reason about the same description, so a scenario's
//! symptoms are both generated and diagnosed from one source of truth.

use crate::cluster::ClusterSpec;
use crate::fault::{FaultModel, FaultModelError, HazardModel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A named stress scenario with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "kebab-case", rename_all_fields = "kebab-case")]
pub enum Scenario {
    /// Periodic bursts of failures: during a storm window the task MTBF
    /// drops to `storm_mtbf_seconds`; outside it the config's baseline
    /// `fault-mtbf-seconds` (or no failures) applies.
    FailureStorm {
        storm_mtbf_seconds: f64,
        period_seconds: f64,
        /// Fraction of each period spent in the storm, in (0, 1].
        storm_fraction: f64,
    },
    /// A stable subset of replicas lands on slow nodes: every MD segment of
    /// an affected replica runs `slowdown`× longer.
    HeterogeneousNodes {
        /// Fraction of replicas pinned to slow nodes, in [0, 1].
        slow_fraction: f64,
        /// Duration multiplier for affected replicas (>= 1).
        slowdown: f64,
    },
    /// Shared-filesystem degradation: metadata latency multiplied by
    /// `latency_factor`, bandwidth multiplied by `bandwidth_factor`.
    SlowFilesystem {
        /// Multiplier on filesystem latency (>= 1).
        latency_factor: f64,
        /// Multiplier on filesystem bandwidth, in (0, 1].
        bandwidth_factor: f64,
    },
    /// Memoryless stragglers: each task independently runs `slowdown`×
    /// longer with probability `fraction`.
    Stragglers {
        /// Per-task probability of straggling, in (0, 1].
        fraction: f64,
        /// Duration multiplier for straggling tasks (>= 1).
        slowdown: f64,
    },
}

impl Scenario {
    /// Short stable name (used in diagnostics and analyze findings).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::FailureStorm { .. } => "failure-storm",
            Scenario::HeterogeneousNodes { .. } => "heterogeneous-nodes",
            Scenario::SlowFilesystem { .. } => "slow-filesystem",
            Scenario::Stragglers { .. } => "stragglers",
        }
    }

    /// Validate parameters; the message is surfaced as a config diagnostic.
    pub fn check(&self) -> Result<(), String> {
        fn finite_positive(v: f64, what: &str) -> Result<(), String> {
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("{what} must be a positive finite number, got {v}"));
            }
            Ok(())
        }
        match *self {
            Scenario::FailureStorm { storm_mtbf_seconds, period_seconds, storm_fraction } => {
                FaultModel::new(storm_mtbf_seconds)
                    .map_err(|e| format!("storm-mtbf-seconds: {e}"))?;
                finite_positive(period_seconds, "period-seconds")?;
                if !(storm_fraction > 0.0 && storm_fraction <= 1.0) {
                    return Err(format!("storm-fraction must be in (0, 1], got {storm_fraction}"));
                }
                Ok(())
            }
            Scenario::HeterogeneousNodes { slow_fraction, slowdown } => {
                if !(0.0..=1.0).contains(&slow_fraction) {
                    return Err(format!("slow-fraction must be in [0, 1], got {slow_fraction}"));
                }
                finite_positive(slowdown, "slowdown")?;
                if slowdown < 1.0 {
                    return Err(format!("slowdown must be >= 1, got {slowdown}"));
                }
                Ok(())
            }
            Scenario::SlowFilesystem { latency_factor, bandwidth_factor } => {
                finite_positive(latency_factor, "latency-factor")?;
                if latency_factor < 1.0 {
                    return Err(format!("latency-factor must be >= 1, got {latency_factor}"));
                }
                if !(bandwidth_factor > 0.0 && bandwidth_factor <= 1.0) {
                    return Err(format!(
                        "bandwidth-factor must be in (0, 1], got {bandwidth_factor}"
                    ));
                }
                Ok(())
            }
            Scenario::Stragglers { fraction, slowdown } => {
                if !(fraction > 0.0 && fraction <= 1.0) {
                    return Err(format!("fraction must be in (0, 1], got {fraction}"));
                }
                finite_positive(slowdown, "slowdown")?;
                if slowdown < 1.0 {
                    return Err(format!("slowdown must be >= 1, got {slowdown}"));
                }
                Ok(())
            }
        }
    }

    /// The failure hazard this scenario implies over the baseline model.
    pub fn hazard(&self, base: FaultModel) -> Result<HazardModel, FaultModelError> {
        match *self {
            Scenario::FailureStorm { storm_mtbf_seconds, period_seconds, storm_fraction } => {
                Ok(HazardModel::Storm {
                    calm: base,
                    storm: FaultModel::new(storm_mtbf_seconds)?,
                    period_seconds,
                    storm_fraction,
                })
            }
            _ => Ok(HazardModel::Constant(base)),
        }
    }

    /// Scale a cluster description in place (filesystem scenarios only).
    pub fn apply_to_cluster(&self, spec: &mut ClusterSpec) {
        if let Scenario::SlowFilesystem { latency_factor, bandwidth_factor } = *self {
            spec.fs.latency *= latency_factor;
            spec.fs.bandwidth *= bandwidth_factor;
        }
    }

    /// Multiplicative duration factor for one task. `replica` keys the
    /// stable slow-node membership (heterogeneous scenario); per-task
    /// straggler draws come from the caller's unit-scoped `rng`, so the
    /// outcome is a pure function of the unit identity.
    pub fn speed_factor<R: Rng + ?Sized>(
        &self,
        replica: Option<usize>,
        seed: u64,
        rng: &mut R,
    ) -> f64 {
        match *self {
            Scenario::HeterogeneousNodes { slow_fraction, slowdown } => match replica {
                Some(r) => {
                    let h = mix64(seed ^ 0x4E0D_E5_u64 ^ (r as u64).wrapping_mul(0x9E37)) as f64
                        / u64::MAX as f64;
                    if h < slow_fraction {
                        slowdown
                    } else {
                        1.0
                    }
                }
                None => 1.0,
            },
            Scenario::Stragglers { fraction, slowdown } => {
                if rng.gen::<f64>() < fraction {
                    slowdown
                } else {
                    1.0
                }
            }
            _ => 1.0,
        }
    }
}

/// splitmix64 finalizer: a cheap avalanche for stable membership hashing.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parameter_validation() {
        assert!(Scenario::FailureStorm {
            storm_mtbf_seconds: 50.0,
            period_seconds: 1000.0,
            storm_fraction: 0.2
        }
        .check()
        .is_ok());
        assert!(Scenario::FailureStorm {
            storm_mtbf_seconds: -1.0,
            period_seconds: 1000.0,
            storm_fraction: 0.2
        }
        .check()
        .is_err());
        assert!(Scenario::FailureStorm {
            storm_mtbf_seconds: 50.0,
            period_seconds: 1000.0,
            storm_fraction: 1.5
        }
        .check()
        .is_err());
        assert!(Scenario::HeterogeneousNodes { slow_fraction: 0.25, slowdown: 2.0 }
            .check()
            .is_ok());
        assert!(Scenario::HeterogeneousNodes { slow_fraction: 0.25, slowdown: 0.5 }
            .check()
            .is_err());
        assert!(Scenario::SlowFilesystem { latency_factor: 8.0, bandwidth_factor: 0.25 }
            .check()
            .is_ok());
        assert!(Scenario::SlowFilesystem { latency_factor: 0.5, bandwidth_factor: 0.25 }
            .check()
            .is_err());
        assert!(Scenario::Stragglers { fraction: 0.1, slowdown: 4.0 }.check().is_ok());
        assert!(Scenario::Stragglers { fraction: 0.0, slowdown: 4.0 }.check().is_err());
    }

    #[test]
    fn heterogeneous_membership_is_stable_and_fractional() {
        let sc = Scenario::HeterogeneousNodes { slow_fraction: 0.25, slowdown: 3.0 };
        let mut rng = StdRng::seed_from_u64(0);
        let n = 1000;
        let slow: Vec<usize> =
            (0..n).filter(|&r| sc.speed_factor(Some(r), 77, &mut rng) > 1.0).collect();
        // Roughly a quarter of replicas are slow, and membership is a pure
        // function of (seed, replica): re-querying gives the same answer.
        assert!((150..350).contains(&slow.len()), "{} slow replicas", slow.len());
        for &r in slow.iter().take(20) {
            assert_eq!(sc.speed_factor(Some(r), 77, &mut rng), 3.0);
        }
        // Tasks with no replica identity (exchanges) are never slowed.
        assert_eq!(sc.speed_factor(None, 77, &mut rng), 1.0);
    }

    #[test]
    fn straggler_draws_follow_the_fraction() {
        let sc = Scenario::Stragglers { fraction: 0.1, slowdown: 8.0 };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let hits = (0..n).filter(|_| sc.speed_factor(None, 0, &mut rng) > 1.0).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "straggler rate {rate}");
    }

    #[test]
    fn slow_filesystem_scales_cluster_spec() {
        let sc = Scenario::SlowFilesystem { latency_factor: 10.0, bandwidth_factor: 0.5 };
        let mut spec = ClusterSpec::supermic();
        let (lat0, bw0) = (spec.fs.latency, spec.fs.bandwidth);
        sc.apply_to_cluster(&mut spec);
        assert_eq!(spec.fs.latency, lat0 * 10.0);
        assert_eq!(spec.fs.bandwidth, bw0 * 0.5);
        // Non-filesystem scenarios leave the cluster untouched.
        let mut spec2 = ClusterSpec::supermic();
        Scenario::Stragglers { fraction: 0.1, slowdown: 2.0 }.apply_to_cluster(&mut spec2);
        assert_eq!(spec2.fs.latency, lat0);
    }

    #[test]
    fn storm_hazard_worst_case_is_the_storm_phase() {
        let sc = Scenario::FailureStorm {
            storm_mtbf_seconds: 50.0,
            period_seconds: 500.0,
            storm_fraction: 0.3,
        };
        let hz = sc.hazard(FaultModel::new(5000.0).unwrap()).unwrap();
        assert_eq!(hz.worst_case().mtbf_seconds(), 50.0);
        // Non-storm scenarios pass the baseline through unchanged.
        let sc2 = Scenario::Stragglers { fraction: 0.1, slowdown: 2.0 };
        let hz2 = sc2.hazard(FaultModel::new(5000.0).unwrap()).unwrap();
        assert_eq!(hz2.worst_case().mtbf_seconds(), 5000.0);
    }

    #[test]
    fn serde_kebab_case_round_trip() {
        let sc = Scenario::FailureStorm {
            storm_mtbf_seconds: 50.0,
            period_seconds: 1000.0,
            storm_fraction: 0.2,
        };
        let json = serde_json::to_string(&sc).unwrap();
        assert!(json.contains("\"kind\":\"failure-storm\""), "{json}");
        assert!(json.contains("storm-mtbf-seconds"), "{json}");
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sc);
    }
}
