//! Shared parallel-filesystem performance model.
//!
//! The paper's `T_data` term is dominated by intra-cluster staging through
//! the parallel filesystem ("largest contributing factor is performance of a
//! parallel file system"). We model a transfer as latency (metadata, open,
//! close) plus streaming at the per-stream share of aggregate bandwidth.

use crate::cluster::FilesystemSpec;

/// A stateless transfer-time calculator over a [`FilesystemSpec`].
#[derive(Debug, Clone, Copy)]
pub struct SharedFilesystem {
    pub spec: FilesystemSpec,
}

impl SharedFilesystem {
    pub fn new(spec: FilesystemSpec) -> Self {
        SharedFilesystem { spec }
    }

    /// Bandwidth available to each of `streams` concurrent transfers.
    pub fn per_stream_bandwidth(&self, streams: usize) -> f64 {
        let streams = streams.max(1);
        // Up to stripe_width streams run at the striped share; beyond that
        // they divide the aggregate.
        let effective = streams.max(self.spec.stripe_width);
        self.spec.bandwidth / effective as f64
    }

    /// Wall time for one transfer of `bytes`, with `streams` concurrent
    /// transfers in flight cluster-wide.
    pub fn transfer_seconds(&self, bytes: u64, streams: usize) -> f64 {
        self.spec.latency + bytes as f64 / self.per_stream_bandwidth(streams)
    }

    /// Wall time to move `n_files` files of `bytes` each, all launched
    /// concurrently (they complete together under fair sharing).
    pub fn bulk_transfer_seconds(&self, n_files: usize, bytes: u64) -> f64 {
        if n_files == 0 {
            return 0.0;
        }
        self.transfer_seconds(bytes, n_files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SharedFilesystem {
        SharedFilesystem::new(FilesystemSpec { latency: 0.01, bandwidth: 1e9, stripe_width: 10 })
    }

    #[test]
    fn latency_floor() {
        let f = fs();
        assert!((f.transfer_seconds(0, 1) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn under_stripe_width_streams_share_stripes() {
        let f = fs();
        // 1 stream and 10 streams both get bandwidth/10 per stream.
        assert_eq!(f.per_stream_bandwidth(1), 1e8);
        assert_eq!(f.per_stream_bandwidth(10), 1e8);
    }

    #[test]
    fn contention_beyond_stripe_width() {
        let f = fs();
        assert_eq!(f.per_stream_bandwidth(100), 1e7);
        let t10 = f.transfer_seconds(1_000_000, 10);
        let t100 = f.transfer_seconds(1_000_000, 100);
        assert!(t100 > t10, "more streams must be slower per stream");
    }

    #[test]
    fn bulk_transfer_monotone_in_files() {
        let f = fs();
        let mut prev = 0.0;
        for n in [1usize, 10, 100, 1000] {
            let t = f.bulk_transfer_seconds(n, 100_000);
            assert!(t >= prev);
            prev = t;
        }
        assert_eq!(f.bulk_transfer_seconds(0, 100_000), 0.0);
    }
}
