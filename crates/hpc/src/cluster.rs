//! Cluster descriptions and presets for the machines the paper used.

use serde::{Deserialize, Serialize};

/// Static description of an HPC resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub name: String,
    pub nodes: usize,
    pub cores_per_node: usize,
    /// Relative per-core speed (1.0 = the SuperMIC Ivy Bridge cores the
    /// paper's timings are calibrated against).
    pub core_speed: f64,
    /// Per-task launch latency contributed by the resource manager (seconds).
    pub task_launch_latency: f64,
    /// Shared-filesystem parameters.
    pub fs: FilesystemSpec,
}

/// Parallel-filesystem performance model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FilesystemSpec {
    /// Per-operation latency in seconds (metadata + open/close).
    pub latency: f64,
    /// Aggregate bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Number of concurrent streams the FS sustains at full aggregate
    /// bandwidth; beyond this, streams share.
    pub stripe_width: usize,
}

impl ClusterSpec {
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// TACC Stampede (Sandy Bridge, 16 cores/node) — the paper's M-REMD and
    /// multi-core-replica experiments ran here.
    pub fn stampede() -> Self {
        ClusterSpec {
            name: "stampede".into(),
            nodes: 6400,
            cores_per_node: 16,
            core_speed: 0.85,
            task_launch_latency: 0.10,
            fs: FilesystemSpec { latency: 0.012, bandwidth: 60e9, stripe_width: 160 },
        }
    }

    /// LSU SuperMIC (Ivy Bridge, 20 cores/node) — the paper's 1-D REMD and
    /// overhead-characterization experiments ran here.
    pub fn supermic() -> Self {
        ClusterSpec {
            name: "supermic".into(),
            nodes: 360,
            cores_per_node: 20,
            core_speed: 1.0,
            task_launch_latency: 0.08,
            fs: FilesystemSpec { latency: 0.010, bandwidth: 40e9, stripe_width: 112 },
        }
    }

    /// A small departmental cluster (the paper's motivating Execution Mode II
    /// scenario: 128 cores, 10 000 replicas).
    pub fn small_cluster(cores: usize) -> Self {
        let cores_per_node = 16;
        ClusterSpec {
            name: format!("small-{cores}"),
            nodes: cores.div_ceil(cores_per_node),
            cores_per_node,
            core_speed: 0.9,
            task_launch_latency: 0.15,
            fs: FilesystemSpec { latency: 0.02, bandwidth: 5e9, stripe_width: 16 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let s = ClusterSpec::stampede();
        assert!(s.total_cores() >= 100_000, "Stampede had >100k cores");
        let m = ClusterSpec::supermic();
        assert_eq!(m.cores_per_node, 20);
        assert!(m.total_cores() >= 7000);
    }

    #[test]
    fn small_cluster_rounds_nodes_up() {
        let c = ClusterSpec::small_cluster(130);
        assert!(c.total_cores() >= 130);
        assert_eq!(c.nodes, 9);
    }
}
