//! Criterion microbenchmarks for the exchange algorithms: Metropolis
//! criteria, pairing and multi-dimensional group decomposition at
//! paper-scale replica counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exchange::metropolis::{acceptance_probability, temperature_delta};
use exchange::multidim::ParamGrid;
use exchange::pairing::{select_pairs, PairingStrategy};
use exchange::param::Dimension;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_metropolis_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("metropolis_sweep");
    for &n in &[64usize, 1728] {
        let mut rng = StdRng::seed_from_u64(1);
        let temps: Vec<f64> = (0..n).map(|i| 273.0 * 1.001f64.powi(i as i32)).collect();
        let energies: Vec<f64> = (0..n).map(|_| rng.gen_range(-200.0..0.0)).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..n - 1 {
                    let d = temperature_delta(temps[i], energies[i], temps[i + 1], energies[i + 1]);
                    acc += acceptance_probability(d);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_pairing(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairing");
    for strategy in [PairingStrategy::NeighborAlternating, PairingStrategy::Random] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| {
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| black_box(select_pairs(s, 1728, 3, &mut rng)))
            },
        );
    }
    group.finish();
}

fn bench_group_decomposition(c: &mut Criterion) {
    let grid = ParamGrid::new(vec![
        Dimension::temperature_geometric(273.0, 373.0, 12),
        Dimension::salt_linear(0.0, 1.0, 12),
        Dimension::umbrella_uniform("phi", 12, 0.02),
    ])
    .unwrap();
    c.bench_function("tsu_1728_groups_all_dims", |b| {
        b.iter(|| {
            for d in 0..3 {
                black_box(grid.groups_for_dimension(d).len());
            }
        })
    });
}

criterion_group!(benches, bench_metropolis_sweep, bench_pairing, bench_group_decomposition);
criterion_main!(benches);
