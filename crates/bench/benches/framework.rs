//! Criterion benchmarks over the whole framework: wall time to execute a
//! complete simulated REMD cycle at increasing replica counts (this measures
//! the orchestration machinery — DES scheduling, staging, exchange math —
//! not the virtual MD durations), plus the tightly-integrated baseline.

use baselines::integrated::{run_integrated_tremd, IntegratedConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repex::config::SimulationConfig;
use repex::simulation::RemdSimulation;
use std::hint::black_box;

fn bench_sync_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_tremd_run");
    group.sample_size(10);
    for &n in &[16usize, 64, 216] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = SimulationConfig::t_remd(n, 600, 1);
                cfg.surrogate_steps = 5;
                let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
                black_box(report.makespan)
            })
        });
    }
    group.finish();
}

fn bench_async_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_tremd_run");
    group.sample_size(10);
    for &n in &[16usize, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut cfg = SimulationConfig::t_remd(n, 600, 2);
                cfg.pattern = repex::config::Pattern::Asynchronous { tick_fraction: 0.25 };
                cfg.surrogate_steps = 5;
                let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
                black_box(report.makespan)
            })
        });
    }
    group.finish();
}

fn bench_integrated_baseline(c: &mut Criterion) {
    c.bench_function("integrated_tremd_64", |b| {
        b.iter(|| {
            let cfg = IntegratedConfig { surrogate_steps: 5, ..IntegratedConfig::new(64, 600, 1) };
            black_box(run_integrated_tremd(&cfg).average_tc())
        })
    });
}

criterion_group!(benches, bench_sync_cycle, bench_async_run, bench_integrated_baseline);
criterion_main!(benches);
