//! Criterion microbenchmarks for the MD substrate: force evaluation (serial
//! vs Rayon-parallel) and neighbor search (cell list vs O(N²)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdsim::models::{dipeptide_forcefield, solvated_alanine_dipeptide};
use mdsim::neighbor::{all_pairs, CellList};
use mdsim::Vec3;
use std::hint::black_box;

fn bench_energy_forces(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy_forces");
    group.sample_size(10);
    for &atoms in &[500usize, 2881] {
        let sys = solvated_alanine_dipeptide(atoms, 1);
        let ff = dipeptide_forcefield();
        let mut forces = vec![Vec3::ZERO; atoms];
        group.bench_with_input(BenchmarkId::new("serial", atoms), &atoms, |b, _| {
            b.iter(|| black_box(ff.energy_forces(&sys, &mut forces)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", atoms), &atoms, |b, _| {
            b.iter(|| black_box(ff.energy_forces_par(&sys, &mut forces)))
        });
    }
    group.finish();
}

fn bench_neighbor_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_search");
    group.sample_size(10);
    for &atoms in &[500usize, 2881] {
        let sys = solvated_alanine_dipeptide(atoms, 2);
        group.bench_with_input(BenchmarkId::new("cell_list", atoms), &atoms, |b, _| {
            b.iter(|| {
                let cl = CellList::build(&sys.state.positions, &sys.pbc, 9.0);
                black_box(cl.pairs().len())
            })
        });
        group.bench_with_input(BenchmarkId::new("all_pairs_scan", atoms), &atoms, |b, &n| {
            b.iter(|| {
                let mut hits = 0usize;
                for (i, j) in all_pairs(n) {
                    let d = sys.pbc.min_image(
                        sys.state.positions[i as usize],
                        sys.state.positions[j as usize],
                    );
                    if d.norm_sq() < 81.0 {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_energy_forces, bench_neighbor_search);
criterion_main!(benches);
