//! Verlet neighbor-cache microbenchmarks: per-step force evaluation with a
//! persistent skin cache vs. the seed behavior of rebuilding the pair list
//! from scratch on every evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdsim::models::{dipeptide_forcefield, solvated_alanine_dipeptide};
use mdsim::{EvalContext, Vec3};
use std::hint::black_box;

fn bench_neighbor_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_cache");
    group.sample_size(10);
    for &atoms in &[400usize, 2000, 8000] {
        let sys = solvated_alanine_dipeptide(atoms, 7);
        let ff = dipeptide_forcefield();
        let mut forces = vec![Vec3::ZERO; atoms];

        // Seed behavior: a throwaway context per call rebuilds the cell list
        // and candidate pairs every evaluation (skin 0 = no extra pairs).
        group.bench_with_input(BenchmarkId::new("rebuild_every_step", atoms), &atoms, |b, _| {
            b.iter(|| {
                let mut ctx = EvalContext::with_skin(0.0);
                black_box(ff.energy_forces_ctx(&sys, &mut ctx, &mut forces))
            })
        });

        // Cached: one persistent context; after the warm-up call every
        // evaluation reuses the stored pair list (steady-state reuse).
        let mut ctx = EvalContext::new();
        ff.energy_forces_ctx(&sys, &mut ctx, &mut forces);
        group.bench_with_input(BenchmarkId::new("skin_cached", atoms), &atoms, |b, _| {
            b.iter(|| black_box(ff.energy_forces_ctx(&sys, &mut ctx, &mut forces)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighbor_cache);
criterion_main!(benches);
