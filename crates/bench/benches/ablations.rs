//! Criterion benchmarks for substrate design choices called out in
//! DESIGN.md: the pilot's list scheduler, the staging area, and the restart
//! file round trip (the per-cycle serialization cost each replica pays).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpc::timeline::CoreTimeline;
use hpc::SimTime;
use mdsim::io::restart::{read_restart, write_restart};
use mdsim::State;
use pilot::staging::StagingArea;
use std::hint::black_box;

fn bench_timeline_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("timeline_schedule");
    for &(cores, tasks) in &[(128usize, 1728usize), (1728, 1728), (112, 10_000)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{cores}c_{tasks}t")),
            &(cores, tasks),
            |b, &(cores, tasks)| {
                b.iter(|| {
                    let mut tl = CoreTimeline::new(cores);
                    for _ in 0..tasks {
                        tl.schedule(1, 139.6, SimTime::ZERO);
                    }
                    black_box(tl.all_idle_at())
                })
            },
        );
    }
    group.finish();
}

fn bench_staging_area(c: &mut Criterion) {
    c.bench_function("staging_put_get_1728", |b| {
        let payload = "x".repeat(2048);
        b.iter(|| {
            let s = StagingArea::new();
            for i in 0..1728 {
                s.put_text(format!("r{i:05}_c0000.mdinfo"), payload.clone());
            }
            let mut total = 0usize;
            for i in 0..1728 {
                total += s.get_text(&format!("r{i:05}_c0000.mdinfo")).unwrap().len();
            }
            black_box(total)
        })
    });
}

fn bench_restart_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("restart_roundtrip");
    for &atoms in &[7usize, 2881] {
        let mut st = State::zeros(atoms);
        for (i, p) in st.positions.iter_mut().enumerate() {
            *p = mdsim::Vec3::new(i as f64 * 0.1, -(i as f64) * 0.2, 42.0);
        }
        group.bench_with_input(BenchmarkId::from_parameter(atoms), &atoms, |b, _| {
            b.iter(|| {
                let text = write_restart("bench", &st);
                black_box(read_restart(&text).unwrap().n_atoms())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeline_scheduling, bench_staging_area, bench_restart_roundtrip);
criterion_main!(benches);
