//! Shared sweep helpers for the figure/table binaries.

use repex::config::{DimensionConfig, EngineChoice, Pattern, SimulationConfig};
use repex::report::SimulationReport;
use repex::simulation::RemdSimulation;

/// The replica-count sweep used by Figs. 5–9 (4³..12³ for M-REMD).
pub const REPLICA_SWEEP: [usize; 5] = [64, 216, 512, 1000, 1728];

/// Per-dimension counts behind the M-REMD sweep (n³ = the totals above).
pub const PER_DIM_SWEEP: [usize; 5] = [4, 6, 8, 10, 12];

/// Core counts of the strong-scaling experiment (Fig. 10).
pub const STRONG_CORES: [usize; 5] = [112, 224, 432, 864, 1728];

/// The 1-D exchange families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OneDKind {
    Temperature,
    Umbrella,
    Salt,
}

impl OneDKind {
    pub fn letter(self) -> char {
        match self {
            OneDKind::Temperature => 'T',
            OneDKind::Umbrella => 'U',
            OneDKind::Salt => 'S',
        }
    }

    pub fn dimension(self, count: usize) -> DimensionConfig {
        match self {
            OneDKind::Temperature => {
                DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count }
            }
            OneDKind::Umbrella => {
                DimensionConfig::Umbrella { dihedral: "phi".into(), count, k_deg: 0.02 }
            }
            OneDKind::Salt => DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count },
        }
    }
}

/// A fast simulated-backend 1-D config matching the paper's 1-D experiments:
/// SuperMIC, sander, 6000 steps between exchanges, 2881-atom cost scale,
/// Execution Mode I (cores = replicas).
pub fn one_d_config(kind: OneDKind, n_replicas: usize, cycles: u64) -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(n_replicas, 6000, cycles);
    cfg.title = format!("{}-REMD {n_replicas} replicas", kind.letter());
    cfg.dimensions = vec![kind.dimension(n_replicas)];
    cfg.surrogate_steps = 5;
    cfg
}

/// The Fig. 9/10 TSU M-REMD config on Stampede.
pub fn tsu_config(per_dim: usize, cycles: u64, cores: Option<usize>) -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(per_dim, 6000, cycles);
    cfg.title = format!("TSU-REMD {per_dim}x{per_dim}x{per_dim}");
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: per_dim },
        DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: per_dim },
        DimensionConfig::Umbrella { dihedral: "phi".into(), count: per_dim, k_deg: 0.02 },
    ];
    cfg.resource.cluster = "stampede".into();
    cfg.resource.cores = cores;
    cfg.surrogate_steps = 5;
    cfg
}

/// The Fig. 12 TUU multi-core-replica config (216 replicas, 64 366 atoms,
/// 20 000 steps, Amber on Stampede — `sander` at 1 core/replica,
/// `pmemd.MPI` beyond, exactly as the paper switches executables).
pub fn tuu_multicore_config(cores_per_replica: usize, cycles: u64) -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(6, 20_000, cycles);
    cfg.title = format!("TUU-REMD 216 replicas, {cores_per_replica} cores/replica");
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 6 },
        DimensionConfig::Umbrella { dihedral: "phi".into(), count: 6, k_deg: 0.02 },
        DimensionConfig::Umbrella { dihedral: "psi".into(), count: 6, k_deg: 0.02 },
    ];
    cfg.cost_atoms = Some(64_366);
    cfg.resource.cluster = "stampede".into();
    cfg.resource.cores_per_replica = cores_per_replica;
    cfg.surrogate_steps = 5;
    cfg
}

/// The Fig. 8 NAMD weak-scaling config (4000 steps between exchanges).
pub fn namd_config(n_replicas: usize, cycles: u64) -> SimulationConfig {
    let mut cfg = one_d_config(OneDKind::Temperature, n_replicas, cycles);
    cfg.title = format!("T-REMD (NAMD) {n_replicas} replicas");
    cfg.engine = EngineChoice::Namd;
    cfg.steps_per_cycle = 4000;
    cfg
}

/// The Fig. 13 utilization configs (sync vs async T-REMD, SuperMIC, Mode I).
pub fn utilization_config(n_replicas: usize, pattern: Pattern, cycles: u64) -> SimulationConfig {
    let mut cfg = one_d_config(OneDKind::Temperature, n_replicas, cycles);
    cfg.pattern = pattern;
    cfg.title = format!(
        "{} T-REMD {n_replicas}",
        if matches!(pattern, Pattern::Synchronous) { "sync" } else { "async" }
    );
    cfg
}

/// Run a configuration, panicking with context on error (bench binaries
/// want loud failures).
pub fn run(cfg: SimulationConfig) -> SimulationReport {
    let title = cfg.title.clone();
    RemdSimulation::new(cfg)
        .unwrap_or_else(|e| panic!("{title}: bad config: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("{title}: run failed: {e}"))
}

/// Like [`run`], but with structured tracing enabled: returns the report
/// together with the recorder holding the run's event stream and counters.
/// Figure binaries that decompose `Tc` (Fig. 5) or reconstruct utilization
/// (Fig. 13) read from the recorder so the plot and the trace agree.
pub fn run_traced(cfg: SimulationConfig) -> (SimulationReport, obs::Recorder) {
    let title = cfg.title.clone();
    let recorder = obs::Recorder::enabled();
    let report = RemdSimulation::new(cfg)
        .unwrap_or_else(|e| panic!("{title}: bad config: {e}"))
        .with_recorder(recorder.clone())
        .run()
        .unwrap_or_else(|e| panic!("{title}: run failed: {e}"));
    (report, recorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_consistent() {
        for (per_dim, total) in PER_DIM_SWEEP.iter().zip(REPLICA_SWEEP) {
            assert_eq!(per_dim.pow(3), total);
        }
    }

    #[test]
    fn configs_validate() {
        one_d_config(OneDKind::Temperature, 64, 4).validate().unwrap();
        one_d_config(OneDKind::Umbrella, 216, 4).validate().unwrap();
        one_d_config(OneDKind::Salt, 64, 4).validate().unwrap();
        tsu_config(4, 4, None).validate().unwrap();
        tsu_config(12, 4, Some(112)).validate().unwrap();
        tuu_multicore_config(16, 2).validate().unwrap();
        namd_config(64, 4).validate().unwrap();
        utilization_config(120, Pattern::Asynchronous { tick_fraction: 0.25 }, 3)
            .validate()
            .unwrap();
    }

    #[test]
    fn strong_scaling_configs_select_mode_ii() {
        for cores in &STRONG_CORES[..4] {
            let cfg = tsu_config(12, 2, Some(*cores));
            assert_eq!(cfg.execution_mode().unwrap(), 2, "{cores} cores");
        }
        assert_eq!(tsu_config(12, 2, Some(1728)).execution_mode().unwrap(), 1);
    }

    #[test]
    fn quick_run_smoke() {
        let mut cfg = one_d_config(OneDKind::Temperature, 8, 1);
        cfg.steps_per_cycle = 600;
        let report = run(cfg);
        assert_eq!(report.cycles.len(), 1);
    }

    #[test]
    fn traced_run_captures_the_cycle_structure() {
        let mut cfg = one_d_config(OneDKind::Temperature, 8, 2);
        cfg.steps_per_cycle = 600;
        let (report, recorder) = run_traced(cfg);
        assert_eq!(report.cycles.len(), 2);
        let breakdowns = recorder.cycle_breakdowns();
        assert_eq!(breakdowns.len(), 2);
        for (cycle, bd) in report.cycles.iter().zip(&breakdowns) {
            assert!((cycle.timing.total() - bd.total()).abs() < 1e-9);
        }
    }
}
