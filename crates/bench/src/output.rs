//! Result emission: every figure binary prints to stdout and writes the same
//! text into `results/<name>.txt` so EXPERIMENTS.md can reference stable
//! artifacts. Perf-trajectory binaries additionally write `BENCH_*.json`
//! records at the repo root via [`write_bench_json`], stamped with
//! provenance metadata ([`bench_meta`]) so points are comparable across
//! machines and commits.

use serde_json::Value;
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Directory the binaries write into (repo-relative).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// The repository root (parent of `results/`).
pub fn repo_root() -> PathBuf {
    let mut p = results_dir();
    p.pop();
    p
}

/// Provenance block every `BENCH_*.json` record carries: toolchain, commit,
/// thread count and wall-clock stamp. Numbers measured under different
/// thread counts are not comparable — `repex analyze --bench` warns on that.
pub fn bench_meta() -> Value {
    let unix = SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    serde_json::json!({
        "rustc_version": command_line("rustc", &["--version"]),
        "git_rev": command_line("git", &["rev-parse", "--short", "HEAD"]),
        "n_threads": rayon::current_num_threads(),
        "timestamp": unix,
    })
}

fn command_line(cmd: &str, args: &[&str]) -> String {
    match Command::new(cmd).args(args).current_dir(repo_root()).output() {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_string(),
        _ => "unknown".into(),
    }
}

/// Write a `BENCH_*.json` payload at the repo root.
pub fn write_bench_json(filename: &str, payload: &Value) {
    let path = repo_root().join(filename);
    let body = serde_json::to_string_pretty(payload).expect("bench payload serializes");
    match fs::write(&path, body) {
        Ok(()) => eprintln!("[written: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Print `content` and persist it under `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[written: {}]", path.display());
        }
    }
}

/// A PASS/FAIL line for the shape checks each binary performs against the
/// paper's qualitative claims.
pub fn check(label: &str, ok: bool) -> String {
    format!("[{}] {label}", if ok { "PASS" } else { "FAIL" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_repo_root_results() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists(), "repo root");
    }

    #[test]
    fn check_formatting() {
        assert_eq!(check("x", true), "[PASS] x");
        assert_eq!(check("y", false), "[FAIL] y");
    }

    #[test]
    fn bench_meta_has_provenance_fields() {
        let meta = bench_meta();
        for key in ["rustc_version", "git_rev", "n_threads", "timestamp"] {
            assert!(meta.get(key).is_some(), "missing {key}");
        }
        assert!(meta["n_threads"].as_u64().unwrap() >= 1);
    }
}
