//! Result emission: every figure binary prints to stdout and writes the same
//! text into `results/<name>.txt` so EXPERIMENTS.md can reference stable
//! artifacts.

use std::fs;
use std::path::PathBuf;

/// Directory the binaries write into (repo-relative).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    p
}

/// Print `content` and persist it under `results/<name>.txt`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = fs::write(&path, content) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[written: {}]", path.display());
        }
    }
}

/// A PASS/FAIL line for the shape checks each binary performs against the
/// paper's qualitative claims.
pub fn check(label: &str, ok: bool) -> String {
    format!("[{}] {label}", if ok { "PASS" } else { "FAIL" })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_repo_root_results() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.parent().unwrap().join("Cargo.toml").exists(), "repo root");
    }

    #[test]
    fn check_formatting() {
        assert_eq!(check("x", true), "[PASS] x");
        assert_eq!(check("y", false), "[FAIL] y");
    }
}
