//! # bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! per-experiment index); shared sweep helpers live here. Criterion
//! microbenchmarks for the substrates are under `benches/`.

pub mod experiments;
pub mod output;

pub use experiments::*;
pub use output::*;
