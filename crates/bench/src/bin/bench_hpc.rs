//! Discrete-event engine throughput: seed scheduler vs indexed event queue.
//!
//! Replays a synchronous replica-exchange workload — waves of 16-core MD
//! tasks followed by an exchange barrier at `all_idle_at() + overhead` — on
//! two scheduler implementations:
//!
//! - **seed**: the pre-rewrite `CoreTimeline` (one `BinaryHeap` entry per
//!   core, O(k log n) dispatch, drain-and-rebuild barrier, O(n)
//!   `all_idle_at`), inlined below verbatim as the measured "before";
//! - **indexed**: the current `hpc::timeline::CoreTimeline` backed by the
//!   pooled [`hpc::EventQueue`] of `(free_at, count)` core groups (O(g log g)
//!   dispatch in in-flight tasks, O(1) barrier and `all_idle_at`).
//!
//! Both engines must agree on the final makespan at every size — the bench
//! doubles as an equivalence check. Events/sec counts scheduler events
//! processed (task dispatches + barriers); each engine's wall time is the
//! best of three trials to damp shared-runner noise. Writes `BENCH_hpc.json` at the
//! repo root and `results/bench_hpc.txt`. Pass `--quick` for the reduced CI
//! sizes (10^3 and 10^4 cores).

use bench::output::{bench_meta, check, emit, write_bench_json};
use hpc::timeline::CoreTimeline;
use hpc::SimTime;
use serde_json::json;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::time::Instant;

/// The seed's per-core-heap timeline, kept here as the measured baseline.
struct SeedTimeline {
    free_at: BinaryHeap<Reverse<SimTime>>,
    n_cores: usize,
}

impl SeedTimeline {
    fn new(n_cores: usize) -> Self {
        let mut free_at = BinaryHeap::with_capacity(n_cores);
        for _ in 0..n_cores {
            free_at.push(Reverse(SimTime::ZERO));
        }
        SeedTimeline { free_at, n_cores }
    }
}

/// The scheduler surface the workload exercises.
trait Engine {
    fn schedule(&mut self, cores: usize, duration: f64, earliest: SimTime) -> SimTime;
    fn all_idle_at(&self) -> SimTime;
    fn barrier(&mut self, t: SimTime);
}

impl Engine for SeedTimeline {
    fn schedule(&mut self, cores: usize, duration: f64, earliest: SimTime) -> SimTime {
        let mut grabbed = Vec::with_capacity(cores);
        for _ in 0..cores {
            grabbed.push(self.free_at.pop().expect("heap has n_cores entries").0);
        }
        let start = grabbed.iter().fold(earliest, |acc, t| acc.max(*t));
        let end = start + duration;
        for _ in 0..cores {
            self.free_at.push(Reverse(end));
        }
        end
    }

    fn all_idle_at(&self) -> SimTime {
        self.free_at.iter().map(|Reverse(t)| *t).fold(SimTime::ZERO, SimTime::max)
    }

    fn barrier(&mut self, t: SimTime) {
        let mut new_heap = BinaryHeap::with_capacity(self.n_cores);
        for Reverse(free) in self.free_at.drain() {
            new_heap.push(Reverse(free.max(t)));
        }
        self.free_at = new_heap;
    }
}

impl Engine for CoreTimeline {
    fn schedule(&mut self, cores: usize, duration: f64, earliest: SimTime) -> SimTime {
        CoreTimeline::schedule(self, cores, duration, earliest).end
    }

    fn all_idle_at(&self) -> SimTime {
        CoreTimeline::all_idle_at(self)
    }

    fn barrier(&mut self, t: SimTime) {
        CoreTimeline::barrier(self, t);
    }
}

const CORES_PER_TASK: usize = 16;

/// Synchronous RE pattern: each cycle dispatches one 16-core task per
/// replica, waits for the wave, charges a 1 s exchange barrier. Durations
/// are deterministic and slightly heterogeneous so waves stay ragged.
/// Returns (makespan, events processed, elapsed seconds).
fn run_workload<E: Engine>(engine: &mut E, cores: usize, cycles: usize) -> (f64, u64, f64) {
    let replicas = cores / CORES_PER_TASK;
    let mut events = 0u64;
    let mut now = SimTime::ZERO;
    let t0 = Instant::now();
    for cycle in 0..cycles {
        for replica in 0..replicas {
            let duration = 100.0 + ((replica * 37 + cycle * 11) % 17) as f64;
            engine.schedule(CORES_PER_TASK, duration, now);
            events += 1;
        }
        now = engine.all_idle_at() + 1.0;
        engine.barrier(now);
        events += 1;
    }
    (engine.all_idle_at().as_secs(), events, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[(usize, usize)] = if quick {
        &[(1_000, 50), (10_000, 12)]
    } else {
        &[(1_000, 200), (10_000, 50), (100_000, 10)]
    };

    let mut out = String::new();
    let _ =
        writeln!(out, "DES engine — scheduler events/sec, seed per-core heap vs indexed groups\n");

    let mut rows = Vec::new();
    let mut speedup_ok = true;
    let mut makespans_ok = true;
    // Best-of-N wall time per engine: throughput benches on shared runners
    // see multi-x run-to-run noise, and the fastest trial is the least
    // contended one. Makespans and event counts are deterministic.
    const TRIALS: usize = 3;
    for &(cores, cycles) in sizes {
        let (mut mk_seed, mut ev, mut secs_seed) = (0.0, 0, f64::INFINITY);
        for _ in 0..TRIALS {
            let mut seed = SeedTimeline::new(cores);
            let (mk, e, secs) = run_workload(&mut seed, cores, cycles);
            (mk_seed, ev) = (mk, e);
            secs_seed = secs_seed.min(secs);
        }
        let (mut mk_idx, mut secs_idx) = (0.0, f64::INFINITY);
        for _ in 0..TRIALS {
            let mut indexed = CoreTimeline::new(cores);
            let (mk, ev2, secs) = run_workload(&mut indexed, cores, cycles);
            assert_eq!(ev, ev2);
            mk_idx = mk;
            secs_idx = secs_idx.min(secs);
        }
        let eps_seed = ev as f64 / secs_seed;
        let eps_idx = ev as f64 / secs_idx;
        let speedup = eps_idx / eps_seed;
        makespans_ok &= (mk_seed - mk_idx).abs() < 1e-6;
        if cores >= 10_000 {
            speedup_ok &= speedup >= 5.0;
        }
        let _ = writeln!(
            out,
            "cores={cores:6}  seed {eps_seed:10.0} ev/s  indexed {eps_idx:10.0} ev/s  (x{speedup:.1})  \
             makespan {mk_idx:.1}s"
        );
        rows.push(json!({
            "cores": cores,
            "cycles": cycles,
            "events": ev,
            "events_per_sec_seed": eps_seed,
            "events_per_sec_indexed": eps_idx,
            "speedup": speedup,
            "makespan_secs": mk_idx,
        }));
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "{}", check("indexed engine >= 5x events/sec at 10^4 cores", speedup_ok));
    let _ = writeln!(out, "{}", check("seed and indexed engines agree on makespan", makespans_ok));

    let payload = json!({
        "bench": "hpc_event_engine",
        "unit": "events_per_sec",
        "status": "measured",
        "quick": quick,
        "meta": bench_meta(),
        "sizes": rows,
        "checks": {
            "indexed_speedup_ge_5_at_10k_cores": speedup_ok,
            "makespans_agree": makespans_ok,
        },
    });
    write_bench_json("BENCH_hpc.json", &payload);

    emit("bench_hpc", &out);
}
