//! Figure 5 — characterization of overheads.
//!
//! Data times per exchange type, RepEx overhead (1-D and 3-D) and RP
//! overhead for runs of 64..1728 replicas on SuperMIC, single-core replicas,
//! Execution Mode I, synchronous pattern.

use analysis::tables::{f1, TextTable};
use bench::experiments::{one_d_config, run, run_traced, OneDKind, PER_DIM_SWEEP, REPLICA_SWEEP};
use bench::output::{check, emit};
use repex::config::DimensionConfig;
use std::fmt::Write as _;

fn main() {
    let cycles = 2;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 5 — Characterization of overheads (SuperMIC, Mode I, sync)");
    let _ = writeln!(out, "Per-cycle averages over {cycles} cycles.\n");

    let mut table = TextTable::new(vec![
        "Replicas",
        "T data(s)",
        "U data(s)",
        "S data(s)",
        "RepEx ovh 1D(s)",
        "RepEx ovh 3D(s)",
        "RP ovh(s)",
    ]);

    let mut t_data = Vec::new();
    let mut u_data = Vec::new();
    let mut s_data = Vec::new();
    let mut repex_1d = Vec::new();
    let mut repex_3d = Vec::new();
    let mut rp = Vec::new();

    let mut max_trace_drift: f64 = 0.0;
    let mut max_path_drift: f64 = 0.0;
    for (i, &n) in REPLICA_SWEEP.iter().enumerate() {
        // 1-D runs per exchange type supply per-type data times; the T run
        // also supplies the 1-D RepEx overhead and the RP overhead. The T
        // run is traced, and its overheads are read from the event stream
        // (the aggregator is the single source of truth for Eq. 1 terms).
        let (t_report, t_rec) = run_traced(one_d_config(OneDKind::Temperature, n, cycles));
        let t = obs::average_breakdown(&t_rec.cycle_breakdowns());
        max_trace_drift =
            max_trace_drift.max((t.total() - t_report.average_timing().total()).abs());
        // The longest chain through a synchronous cycle's phase events must
        // reproduce that cycle's Eq. 1 total (the phases tile the cycle).
        let events = t_rec.events();
        for (cp, b) in
            obs::cycle_critical_paths(&events).iter().zip(&obs::cycle_breakdowns(&events))
        {
            max_path_drift = max_path_drift.max((cp.path.total - b.total()).abs());
        }
        let u = run(one_d_config(OneDKind::Umbrella, n, cycles)).average_timing();
        let s = run(one_d_config(OneDKind::Salt, n, cycles)).average_timing();
        // A TUU 3-D run at the same total replica count supplies the 3-D
        // RepEx overhead (TUU keeps the exchange cheap so this stays fast).
        let per_dim = PER_DIM_SWEEP[i];
        let mut cfg3 = one_d_config(OneDKind::Temperature, per_dim, 1);
        cfg3.title = format!("TUU {n}");
        cfg3.dimensions = vec![
            DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: per_dim },
            DimensionConfig::Umbrella { dihedral: "phi".into(), count: per_dim, k_deg: 0.02 },
            DimensionConfig::Umbrella { dihedral: "psi".into(), count: per_dim, k_deg: 0.02 },
        ];
        let three = run(cfg3).average_timing();

        t_data.push(t.t_data);
        u_data.push(u.t_data);
        s_data.push(s.t_data);
        repex_1d.push(t.t_repex_over);
        repex_3d.push(three.t_repex_over);
        // The 1-D T run launches N tasks once per cycle.
        rp.push(t.t_rp_over);

        table.add_row(vec![
            format!("{n}"),
            f1(t.t_data),
            f1(u.t_data),
            f1(s.t_data),
            f1(t.t_repex_over),
            f1(three.t_repex_over),
            f1(t.t_rp_over),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let last = REPLICA_SWEEP.len() - 1;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "data times ordered T < U < S at every count (S max {:.1}s; paper: 6.3s)",
                s_data[last]
            ),
            (0..=last).all(|i| t_data[i] < u_data[i] && u_data[i] < s_data[i])
                && (s_data[last] - 6.3).abs() < 1.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "3-D RepEx overhead exceeds 1-D at every replica count",
            (0..=last).all(|i| repex_3d[i] > repex_1d[i])
        )
    );
    let ratio = rp[last] / rp[0];
    let n_ratio = REPLICA_SWEEP[last] as f64 / REPLICA_SWEEP[0] as f64;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "RP overhead proportional to replicas ({:.1}s -> {:.1}s, x{:.1} for x{:.0} replicas)",
                rp[0], rp[last], ratio, n_ratio
            ),
            ratio > 0.5 * n_ratio && rp[last] > 35.0 && rp[last] < 60.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("all overheads stay below ~75s (max RP {:.1}s)", rp[last]),
            rp.iter().chain(&s_data).chain(&repex_3d).all(|v| *v < 75.0)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "event-derived Tc matches the legacy report (max drift {max_trace_drift:.2e}s)"
            ),
            max_trace_drift < 1e-9
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "per-cycle critical path equals the Eq. 1 total (max drift {max_path_drift:.2e}s)"
            ),
            max_path_drift < 1e-9
        )
    );

    emit("fig05_overheads", &out);
}
