//! Extension experiment — GPU replicas.
//!
//! The paper (Section 5): "Our preliminary results show that RepEx can
//! easily be extended to support use of GPUs for simulation phase … support
//! for GPUs is already available on Stampede." We compare the same T-REMD
//! workload with `sander` (1 core/replica), `pmemd.MPI` (16 cores/replica)
//! and `pmemd.cuda` (one GPU/replica).

use analysis::tables::{f1, TextTable};
use bench::output::{check, emit};
use repex::config::SimulationConfig;
use repex::simulation::RemdSimulation;
use std::fmt::Write as _;

fn run(label: &str, cores_per_replica: usize, gpu: bool) -> (String, f64, f64) {
    let mut cfg = SimulationConfig::t_remd(64, 20_000, 2);
    cfg.title = label.to_string();
    cfg.cost_atoms = Some(64_366);
    cfg.resource.cluster = "stampede".into();
    cfg.resource.cores_per_replica = cores_per_replica;
    cfg.resource.use_gpu = gpu;
    cfg.surrogate_steps = 5;
    let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
    let avg = report.average_timing();
    (label.to_string(), avg.t_md, avg.total())
}

fn main() {
    let mut out = String::new();
    let _ =
        writeln!(out, "Extension — GPU replicas (T-REMD, 64 replicas, 64366 atoms, 20000 steps)");
    let _ = writeln!(out, "Same configuration; only the executable/resource binding changes.\n");

    let rows = vec![
        run("sander (1 core/replica)", 1, false),
        run("pmemd.MPI (16 cores/replica)", 16, false),
        run("pmemd.cuda (1 GPU/replica)", 1, true),
    ];
    let mut table = TextTable::new(vec!["Executable", "MD (s)", "Tc (s)"]);
    for (label, md, tc) in &rows {
        table.add_row(vec![label.clone(), f1(*md), f1(*tc)]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let sander_md = rows[0].1;
    let mpi_md = rows[1].1;
    let gpu_md = rows[2].1;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "one GPU outruns 16 CPU cores for this system ({:.0}s vs {:.0}s)",
                gpu_md, mpi_md
            ),
            gpu_md < mpi_md
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("GPU speedup over sander in the ~25-30x band ({:.1}x)", sander_md / gpu_md),
            sander_md / gpu_md > 20.0 && sander_md / gpu_md < 35.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "exchange phase unchanged: the GPU binding only touches the MD tasks",
            (rows[2].2 - rows[2].1) > 0.0
        )
    );

    emit("ablate_gpu", &out);
}
