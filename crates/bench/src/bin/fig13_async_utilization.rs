//! Figure 13 — utilization of the synchronous vs asynchronous RE patterns.
//!
//! 1-D T-REMD with the Amber engine, Execution Mode I, replica counts
//! {120, 240, 480, 960}. Utilization (Eq. 4) is the achieved MD throughput
//! per CPU-hour relative to the ideal where CPUs only run MD. The paper
//! finds sync ≈ 10% above async when the async transition criterion is a
//! fixed real-time tick.

use analysis::tables::{f1, TextTable};
use bench::experiments::{run_traced, utilization_config};
use bench::output::{check, emit};
use repex::config::Pattern;
use std::fmt::Write as _;

const SWEEP: [usize; 4] = [120, 240, 480, 960];

/// Run one traced configuration and recompute Eq. 4 utilization from the
/// event stream (successful MD busy core-seconds over cores × makespan).
/// Records the worst drift against the report's own figure in `max_drift`,
/// and clears `health_exact` if the acceptance counters replayed from the
/// `ExchangeOutcome` events diverge from the in-process exchange stats.
fn traced(
    n: usize,
    pattern: Pattern,
    cycles: u64,
    max_drift: &mut f64,
    health_exact: &mut bool,
) -> f64 {
    let (report, rec) = run_traced(utilization_config(n, pattern, cycles));
    let events = rec.events();
    let busy = obs::md_busy_core_seconds(&events);
    let derived = (busy / (report.pilot_cores as f64 * report.makespan) * 100.0).min(100.0);
    *max_drift = max_drift.max((derived - report.utilization_percent).abs());
    let health = obs::exchange_health(&events);
    *health_exact &= health.len() == report.acceptance.len()
        && health.iter().zip(&report.acceptance).all(|(h, (letter, s))| {
            h.kind == *letter && h.attempts == s.attempts && h.accepted == s.accepted
        });
    derived
}

fn main() {
    let cycles = 4;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 13 — Utilization, sync vs async T-REMD (SuperMIC, Mode I)");
    let _ = writeln!(out, "Utilization = % of ideal MD time (ns/day) per CPU hour (Eq. 4).\n");

    let mut table = TextTable::new(vec!["Cores,Replicas", "Sync (%)", "Async (%)", "Gap (%)"]);
    let mut sync_u = Vec::new();
    let mut async_u = Vec::new();
    let mut max_drift: f64 = 0.0;
    let mut health_exact = true;
    for &n in &SWEEP {
        let s = traced(n, Pattern::Synchronous, cycles, &mut max_drift, &mut health_exact);
        let a = traced(
            n,
            Pattern::Asynchronous { tick_fraction: 0.25 },
            cycles,
            &mut max_drift,
            &mut health_exact,
        );
        sync_u.push(s);
        async_u.push(a);
        table.add_row(vec![format!("{n}, {n}"), f1(s), f1(a), f1(s - a)]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            "sync utilization higher than async at every replica count",
            sync_u.iter().zip(&async_u).all(|(s, a)| s > a)
        )
    );
    let gaps: Vec<f64> = sync_u.iter().zip(&async_u).map(|(s, a)| s - a).collect();
    let mean_gap = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("gap is roughly 10% (mean {:.1}%)", mean_gap),
            mean_gap > 4.0 && mean_gap < 20.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "async utilization roughly invariant of replica count ({:.1}..{:.1}%)",
                async_u.iter().cloned().fold(f64::MAX, f64::min),
                async_u.iter().cloned().fold(f64::MIN, f64::max)
            ),
            {
                // Our sync line declines with N because the calibrated
                // Fig. 5 overheads grow linearly in N (see EXPERIMENTS.md);
                // the async line is the flat one, as in the paper.
                let spread = async_u.iter().cloned().fold(f64::MIN, f64::max)
                    - async_u.iter().cloned().fold(f64::MAX, f64::min);
                spread < 10.0
            }
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("sync utilization in the 60-90% band ({:.1}%)", sync_u[0]),
            sync_u.iter().all(|s| *s > 55.0 && *s < 95.0)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("trace-derived utilization matches the report (max drift {max_drift:.2e}%)"),
            max_drift < 1e-6
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "trace-derived acceptance counters equal the in-process exchange stats",
            health_exact
        )
    );

    emit("fig13_async_utilization", &out);
}
