//! Ablation — pairing strategy: alternating nearest-neighbour vs random
//! pairing. Nearest-neighbour should win on acceptance ratio and ladder
//! mixing (round trips), because distant temperature pairs rarely accept.

use analysis::tables::{f1, f2, TextTable};
use analysis::timeseries::round_trip_times;
use bench::experiments::{one_d_config, run, OneDKind};
use bench::output::{check, emit};
use exchange::pairing::PairingStrategy;
use std::fmt::Write as _;

fn main() {
    let n = 16;
    let cycles = 150;
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — pairing strategy (T-REMD, {n} replicas, {cycles} cycles)");
    let _ = writeln!(out, "Acceptance ratio and total ladder round trips per strategy.\n");

    let mut table =
        TextTable::new(vec!["Strategy", "Acceptance", "Round trips", "Mean RT (cycles)"]);
    let mut results = Vec::new();
    for (name, strategy) in [
        ("neighbor-alternating", PairingStrategy::NeighborAlternating),
        ("random", PairingStrategy::Random),
    ] {
        let mut cfg = one_d_config(OneDKind::Temperature, n, cycles);
        cfg.steps_per_cycle = 600;
        cfg.pairing = strategy;
        cfg.surrogate_steps = 40;
        let report = run(cfg);
        let acc = report.acceptance[0].1.ratio();
        // Mean round-trip time across replicas that completed at least one.
        let rts: Vec<f64> = report
            .rung_history
            .iter()
            .filter_map(|walk| round_trip_times(walk, n).map(|s| s.mean_cycles))
            .collect();
        let mean_rt =
            if rts.is_empty() { f64::NAN } else { rts.iter().sum::<f64>() / rts.len() as f64 };
        results.push((name, acc, report.round_trips));
        table.add_row(vec![
            name.to_string(),
            f2(acc),
            format!("{}", report.round_trips),
            if mean_rt.is_nan() { "-".to_string() } else { f1(mean_rt) },
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "nearest-neighbour acceptance exceeds random pairing ({:.2} vs {:.2})",
                results[0].1, results[1].1
            ),
            results[0].1 > results[1].1
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check("both strategies produce valid exchanges", results.iter().all(|(_, a, _)| *a > 0.0))
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "both strategies traverse the ladder ({} and {} round trips)",
                results[0].2, results[1].2
            ),
            results[0].2 > 0 && results[1].2 > 0
        )
    );
    let _ = writeln!(
        out,
        "\nNote: with the reduced model's high distant-pair acceptance ({:.0}%), random\n\
         pairing teleports replicas across the ladder and wins on raw round trips; in\n\
         production REMD distant acceptance collapses and nearest-neighbour dominates —\n\
         which is why it is the framework default.",
        results[1].1 * 100.0
    );

    emit("ablate_pairing", &out);
}
