//! Figure 12 — REMD with multi-core replicas.
//!
//! TUU-REMD (one T, two U dimensions), 216 replicas of the 64 366-atom
//! solvated dipeptide, 20 000 steps per cycle, on Stampede. Cores per
//! replica grows 1 → 64; the framework switches from `sander` to
//! `pmemd.MPI` as the paper does. The paper plots single-core MD times
//! divided by 10 to fit; we print both.

use analysis::tables::{f1, TextTable};
use bench::experiments::{run, tuu_multicore_config};
use bench::output::{check, emit};
use std::fmt::Write as _;

const CORES_PER_REPLICA: [usize; 5] = [1, 16, 32, 48, 64];

fn main() {
    let cycles = 2;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12 — Multi-core replicas (TUU-REMD, 216 replicas, 64366 atoms)");
    let _ = writeln!(out, "Stampede, 20000 steps/cycle, Mode I; executable switches with cores.\n");

    let mut table = TextTable::new(vec![
        "Cores, Replicas",
        "Cores/replica",
        "Executable",
        "MD (s)",
        "MD/10 (s)",
    ]);
    let mut md = Vec::new();
    for &cpr in &CORES_PER_REPLICA {
        let avg = run(tuu_multicore_config(cpr, cycles)).average_timing();
        // One cycle covers 3 dimension passes; report per-pass MD time to
        // match the paper's per-segment bars.
        let per_pass = avg.t_md / 3.0;
        md.push(per_pass);
        table.add_row(vec![
            format!("{}, 216", 216 * cpr),
            format!("{cpr}"),
            (if cpr == 1 { "sander" } else { "pmemd.MPI" }).to_string(),
            f1(per_pass),
            f1(per_pass / 10.0),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("single-core sander MD in the 10000s range ({:.0}s; paper ≈ 10x the plotted ~1000s bar)", md[0]),
            md[0] > 8_000.0 && md[0] < 16_000.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "substantial drop using multiple cores per replica ({:.0}s → {:.0}s at 16)",
                md[0], md[1]
            ),
            md[1] < md[0] / 8.0
        )
    );
    let gain_16_32 = md[1] / md[2];
    let gain_32_64 = md[2] / md[4];
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "further cores show sub-linear gains for this small system (16→32: x{:.2}, 32→64: x{:.2})",
                gain_16_32, gain_32_64
            ),
            gain_16_32 < 1.95 && gain_32_64 < 1.9 && gain_32_64 < gain_16_32 + 0.2
        )
    );
    let monotone = md.windows(2).all(|w| w[1] < w[0]);
    let _ =
        writeln!(out, "{}", check("MD time monotonically decreasing in cores/replica", monotone));

    emit("fig12_multicore", &out);
}
