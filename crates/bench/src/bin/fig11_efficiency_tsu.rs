//! Figure 11 — parallel efficiency for TSU-REMD on Stampede:
//! (a) weak scaling (Eq. 2), (b) strong scaling (Eq. 3).

use analysis::tables::{f1, TextTable};
use bench::experiments::{run, tsu_config, PER_DIM_SWEEP, REPLICA_SWEEP, STRONG_CORES};
use bench::output::{check, emit};
use repex::timing::{strong_efficiency, weak_efficiency};
use std::fmt::Write as _;

fn main() {
    let cycles = 2;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 11 — Parallel efficiency, TSU-REMD on Stampede");

    // (a) weak scaling.
    let _ = writeln!(out, "\n(a) Weak scaling (Eq. 2; base = 64 replicas on 64 cores)\n");
    let mut table_a = TextTable::new(vec!["Cores", "Efficiency (%)"]);
    let mut weak = Vec::new();
    let mut base_tc = 0.0;
    for (i, &per_dim) in PER_DIM_SWEEP.iter().enumerate() {
        let tc = run(tsu_config(per_dim, cycles, None)).average_tc();
        if i == 0 {
            base_tc = tc;
        }
        let e = weak_efficiency(base_tc, tc).expect("positive cycle times from a completed run");
        weak.push(e);
        table_a.add_row(vec![format!("{}", REPLICA_SWEEP[i]), f1(e)]);
    }
    out.push_str(&table_a.render());

    // (b) strong scaling.
    let _ = writeln!(out, "\n(b) Strong scaling (Eq. 3; 1728 replicas, base = 112 cores)\n");
    let mut table_b = TextTable::new(vec!["Cores", "Efficiency (%)"]);
    let mut strong = Vec::new();
    let mut tc112 = 0.0;
    for (i, &cores) in STRONG_CORES.iter().enumerate() {
        let tc = run(tsu_config(12, cycles, Some(cores))).average_tc();
        if i == 0 {
            tc112 = tc;
        }
        let e = strong_efficiency(tc112, STRONG_CORES[0], tc, cores)
            .expect("positive cycle times from a completed run");
        strong.push(e);
        table_b.add_row(vec![format!("{cores}"), f1(e)]);
    }
    out.push_str(&table_b.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("weak efficiency decreases with cores ({:.1}% → {:.1}%)", weak[0], weak[4]),
            weak.windows(2).all(|w| w[1] <= w[0] + 1.0)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "weak efficiency stays above 50% (min {:.1}%)",
                weak.iter().cloned().fold(f64::MAX, f64::min)
            ),
            weak.iter().all(|e| *e > 50.0)
        )
    );
    let min_strong = strong.iter().cloned().fold(f64::MAX, f64::min);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "strong efficiency dips then recovers at cores = replicas ({:.1}% at 1728 vs min {:.1}%)",
                strong[4], min_strong
            ),
            strong[4] > min_strong && min_strong < strong[0]
        )
    );

    emit("fig11_efficiency_tsu", &out);
}
