//! Figure 4 — validation: free-energy profile of the alanine-dipeptide
//! backbone torsions at six temperatures from 3-D (T × U(φ) × U(ψ)) REMD.
//!
//! Paper setup: 6 temperature windows 273–373 K (geometric), 8 × 8 umbrella
//! windows uniform over the circle with k = 0.02 kcal·mol⁻¹·deg⁻²,
//! 384 replicas, exchange every 20 000 steps, 90 cycles on 400 cores.
//!
//! Our run keeps the ensemble structure identical but integrates a surrogate
//! number of real steps per segment on the reduced dipeptide, then builds
//! F(φ, ψ) per temperature with WHAM (the vFEP substitute). Pass `--full`
//! for a longer production run.

use analysis::fes::{render_ascii, wham_fes_min_count, BiasedWindow};
use analysis::tables::{f2, TextTable};
use bench::output::{check, emit};
use repex::config::{DimensionConfig, Pattern, SimulationConfig, Workload};
use repex::simulation::RemdSimulation;
use std::fmt::Write as _;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (cycles, surrogate, stride) = if full { (60, 1200, 40) } else { (24, 600, 40) };

    let mut cfg = SimulationConfig::t_remd(6, 20_000, cycles);
    cfg.title = "Fig. 4 validation: TUU 6x8x8".into();
    cfg.pattern = Pattern::Synchronous;
    cfg.dimensions = vec![
        DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 6 },
        DimensionConfig::Umbrella { dihedral: "phi".into(), count: 8, k_deg: 0.02 },
        DimensionConfig::Umbrella { dihedral: "psi".into(), count: 8, k_deg: 0.02 },
    ];
    cfg.workload = Some(Workload::DipeptideVacuum);
    cfg.cost_atoms = Some(2881);
    cfg.surrogate_steps = surrogate;
    cfg.sample_stride = stride;
    cfg.sample_warmup = surrogate / 2; // re-equilibrate after exchanges
    cfg.production_after_cycle = cycles / 3; // paper: last portion is production
    cfg.resource.cores = Some(400); // the paper used 400 cores (25 nodes)
    cfg.resource.cluster = "stampede".into();
    cfg.seed = 20_160_101;

    let mut out = String::new();
    let _ = writeln!(out, "Figure 4 — Free energy profile of alanine dipeptide backbone torsions");
    let _ = writeln!(
        out,
        "3-D TUU-REMD: 6 T (273-373 K geometric) x 8 U(phi) x 8 U(psi) = 384 replicas"
    );
    let _ = writeln!(
        out,
        "{} cycles, {} sampled steps/segment, 400 cores (Execution Mode I on Stampede)\n",
        cycles, surrogate
    );

    let report = RemdSimulation::new(cfg).expect("valid config").run().expect("run succeeds");

    // Acceptance ratios per dimension.
    let mut acc_table = TextTable::new(vec!["Dimension", "Attempts", "Accepted", "Ratio"]);
    for (letter, stats) in &report.acceptance {
        acc_table.add_row(vec![
            format!("{letter}"),
            format!("{}", stats.attempts),
            format!("{}", stats.accepted),
            f2(stats.ratio()),
        ]);
    }
    out.push_str(&acc_table.render());
    let _ = writeln!(
        out,
        "\n(paper: ~3% acceptance in T, ~25% in U — our reduced 7-atom model has a far\n\
         smaller heat capacity than 2881 solvated atoms, so T-acceptance is higher; see\n\
         EXPERIMENTS.md)\n"
    );

    // Build per-temperature WHAM surfaces from the window samples.
    let temps: Vec<f64> = {
        let mut t: Vec<f64> = report.window_samples.iter().map(|w| w.temperature).collect();
        t.sort_by(|a, b| a.partial_cmp(b).unwrap());
        t.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        t
    };
    assert_eq!(temps.len(), 6, "six temperature levels");
    let bins = 12;
    let mut ranges = Vec::new();
    for &t in &temps {
        let windows: Vec<BiasedWindow> = report
            .window_samples
            .iter()
            .filter(|w| (w.temperature - t).abs() < 1e-6)
            .map(|w| {
                let phi = w.restraints.iter().find(|r| r.0 == "phi").expect("phi window");
                let psi = w.restraints.iter().find(|r| r.0 == "psi").expect("psi window");
                // Transit filter: a replica that just swapped umbrella
                // windows spends the first part of the segment travelling to
                // the new center; those are not equilibrium samples of this
                // window and poison the reweighting. Keep samples within
                // 8 kcal/mol of bias energy under their own window.
                let samples = w
                    .samples
                    .iter()
                    .copied()
                    .filter(|&(phi_r, psi_r)| {
                        let dphi = mdsim::units::angle_diff_deg(phi_r.to_degrees(), phi.1);
                        let dpsi = mdsim::units::angle_diff_deg(psi_r.to_degrees(), psi.1);
                        phi.2 * (dphi * dphi + dpsi * dpsi) < 8.0
                    })
                    .collect();
                BiasedWindow {
                    phi_center_deg: phi.1,
                    psi_center_deg: Some(psi.1),
                    k_deg: phi.2,
                    samples,
                }
            })
            .collect();
        assert_eq!(windows.len(), 64, "8x8 umbrella windows per temperature");
        let n_samples: usize = windows.iter().map(|w| w.samples.len()).sum();
        let fes = wham_fes_min_count(&windows, t, bins, 1e-5, 3000, 25);
        // Robust corrugation statistic: the 95th percentile of finite F.
        let range = fes.finite_quantile(0.95);
        ranges.push((t, range, fes.coverage()));
        let _ = writeln!(
            out,
            "T = {:.0} K   ({} samples, coverage {:.0}%, F range (95th pct) {:.1} kcal/mol)",
            t,
            n_samples,
            fes.coverage() * 100.0,
            range
        );
        out.push_str(&render_ascii(&fes, &[1.0, 2.0, 4.0, 6.0, 9.0, 12.0]));
        let _ = writeln!(out);
    }

    // Shape checks.
    let _ = writeln!(
        out,
        "{}",
        check(
            "all six temperatures produce a structured surface (range > 2 kcal/mol)",
            ranges.iter().all(|(_, r, _)| *r > 2.0)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "umbrella sampling covers most of the torus at every T (min coverage {:.0}%)",
                ranges.iter().map(|(_, _, c)| c * 100.0).fold(f64::MAX, f64::min)
            ),
            ranges.iter().all(|(_, _, c)| *c > 0.75)
        )
    );
    let cold = ranges.first().unwrap().1;
    let hot = ranges.last().unwrap().1;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "contour scale comparable to the paper's 0-16 kcal/mol (cold {:.1}, hot {:.1})",
                cold, hot
            ),
            cold > 2.0 && cold < 25.0 && hot < 25.0
        )
    );
    let range_hi = ranges.iter().map(|(_, r, _)| *r).fold(f64::MIN, f64::max);
    let range_lo = ranges.iter().map(|(_, r, _)| *r).fold(f64::MAX, f64::min);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "surfaces share basin structure across temperatures (ranges {:.1}..{:.1} kcal/mol)",
                range_lo, range_hi
            ),
            range_hi / range_lo < 4.0
        )
    );
    let t_acc = report.acceptance.iter().find(|(l, _)| *l == 'T').unwrap().1.ratio();
    let u_acc = report.acceptance.iter().find(|(l, _)| *l == 'U').unwrap().1.ratio();
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("exchanges occur in all dimensions (T {:.2}, U {:.2})", t_acc, u_acc),
            t_acc > 0.0 && u_acc > 0.0
        )
    );

    let _ = writeln!(out, "\n{}", report.summary());
    emit("fig04_validation", &out);
}
