//! Extension experiment — multi-resource (federated) execution.
//!
//! The paper's final proposed extension: "RepEx can be extended to use
//! multiple HPC resources simultaneously for a single REMD simulation."
//! We run the same 128-replica T-REMD on one 128-core cluster and federated
//! across two 64-core clusters, quantifying the WAN + global-barrier price.

use analysis::tables::{f1, TextTable};
use bench::output::{check, emit};
use repex::config::SimulationConfig;
use repex::emm::federation::{run_federated, ClusterShare, WanModel};
use repex::simulation::RemdSimulation;
use std::fmt::Write as _;

fn base(n: usize, cycles: u64) -> SimulationConfig {
    let mut cfg = SimulationConfig::t_remd(n, 6000, cycles);
    cfg.surrogate_steps = 5;
    cfg
}

fn main() {
    let n = 128;
    let cycles = 3;
    let mut out = String::new();
    let _ = writeln!(out, "Extension — federated execution ({n}-replica T-REMD, {cycles} cycles)");
    let _ = writeln!(out, "One 128-core cluster vs two 64-core clusters over a 1 GbE WAN.\n");

    let single = {
        let mut cfg = base(n, cycles);
        cfg.resource.cores = Some(n);
        RemdSimulation::new(cfg).unwrap().run().unwrap()
    };
    let shares = vec![
        ClusterShare { cluster: "supermic".into(), cores: 64 },
        ClusterShare { cluster: "stampede".into(), cores: 64 },
    ];
    let fed = run_federated(&base(n, cycles), &shares, WanModel::default()).unwrap();

    let mut table = TextTable::new(vec!["Setup", "Avg Tc (s)", "WAN (s)", "Cross-cluster swaps"]);
    table.add_row(vec![
        "single cluster (128 cores)".to_string(),
        f1(single.average_tc()),
        "0.0".to_string(),
        "-".to_string(),
    ]);
    table.add_row(vec![
        "federated (64 + 64 cores)".to_string(),
        f1(fed.average_tc()),
        f1(fed.wan_seconds),
        format!("{}", fed.cross_cluster_swaps),
    ]);
    out.push_str(&table.render());

    let _ = writeln!(out);
    let premium = (fed.average_tc() - single.average_tc()) / single.average_tc() * 100.0;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("federation completes the same workload (premium {:.1}%)", premium),
            fed.cycles.len() == cycles as usize
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(&format!("the premium stays modest (<15%): {:.1}%", premium), premium < 15.0)
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("WAN traffic is accounted ({:.1}s total)", fed.wan_seconds),
            fed.wan_seconds > 0.0
        )
    );
    let _ = writeln!(
        out,
        "\nFederation lets a user assemble {n} concurrent replicas from two half-size\n\
         allocations — the Execution-Mode flexibility argument extended across\n\
         machines, at the cost of WAN staging and a slowest-cluster barrier."
    );

    emit("ablate_multicluster", &out);
}
