//! Figure 7 — parallel efficiency (% of linear scaling) for 1-D REMD.
//!
//! Weak-scaling efficiency (Eq. 2) with the 64-core run as the 100%
//! reference, for T-, S- and U-REMD plus the no-exchange baseline, on
//! SuperMIC with the Amber engine. The paper's plot extends to 2744
//! replicas for this figure.

use analysis::tables::{f1, TextTable};
use baselines::no_exchange_config;
use bench::experiments::{one_d_config, run, OneDKind};
use bench::output::{check, emit};
use repex::timing::weak_efficiency;
use std::fmt::Write as _;

const SWEEP: [usize; 6] = [64, 216, 512, 1000, 1728, 2744];

fn main() {
    let cycles = 3;
    let mut out = String::new();
    let _ =
        writeln!(out, "Figure 7 — Parallel efficiency (% of linear scaling), 1-D REMD, SuperMIC");
    let _ = writeln!(
        out,
        "Weak scaling, Eq. 2: Ew = T(64)/T(N) x 100; base = 64 replicas on 64 cores.\n"
    );

    let kinds: [(&str, Option<OneDKind>); 4] = [
        ("T-REMD", Some(OneDKind::Temperature)),
        ("S-REMD", Some(OneDKind::Salt)),
        ("U-REMD", Some(OneDKind::Umbrella)),
        ("No exchange", None),
    ];
    let mut table = TextTable::new(vec!["Cores", "T-REMD", "S-REMD", "U-REMD", "No exchange"]);
    let mut eff = vec![vec![0.0; SWEEP.len()]; kinds.len()];
    for (ki, (_, kind)) in kinds.iter().enumerate() {
        let mut base_tc = 0.0;
        for (ni, &n) in SWEEP.iter().enumerate() {
            let cfg = match kind {
                Some(k) => one_d_config(*k, n, cycles),
                None => no_exchange_config(one_d_config(OneDKind::Temperature, n, cycles)),
            };
            let tc = run(cfg).average_tc();
            if ni == 0 {
                base_tc = tc;
            }
            eff[ki][ni] =
                weak_efficiency(base_tc, tc).expect("positive cycle times from a completed run");
        }
    }
    for (ni, &n) in SWEEP.iter().enumerate() {
        table.add_row(vec![
            format!("{n}"),
            f1(eff[0][ni]),
            f1(eff[1][ni]),
            f1(eff[2][ni]),
            f1(eff[3][ni]),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let last = SWEEP.len() - 1;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "efficiency decreases with core count for all exchange types (T: {:.1}% at 2744)",
                eff[0][last]
            ),
            (0..3).all(|k| eff[k][last] < eff[k][0])
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("S-REMD efficiency lowest (S {:.1}% vs T {:.1}%)", eff[1][last], eff[0][last]),
            eff[1][last] < eff[0][last] && eff[1][last] < eff[2][last]
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("no-exchange baseline stays highest ({:.1}%)", eff[3][last]),
            (0..3).all(|k| eff[3][last] >= eff[k][last] - 1.0)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("T and U efficiencies similar ({:.1}% vs {:.1}%)", eff[0][last], eff[2][last]),
            (eff[0][last] - eff[2][last]).abs() < 8.0
        )
    );

    emit("fig07_efficiency_1d", &out);
}
