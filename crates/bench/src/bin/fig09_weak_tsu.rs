//! Figure 9 — multi-dimensional (TSU) REMD weak scaling on Stampede.
//!
//! Replicas per dimension 4..12 (totals 64..1728), cores = replicas
//! (Execution Mode I), single-core replicas, Amber engine, 6000 steps per
//! cycle per dimension. Cycle time decomposes into MD and per-dimension
//! exchange (T, S, U).

use analysis::tables::{f1, TextTable};
use bench::experiments::{run, tsu_config, PER_DIM_SWEEP, REPLICA_SWEEP};
use bench::output::{check, emit};
use std::fmt::Write as _;

fn main() {
    let cycles = 2;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — TSU-REMD weak scaling (Stampede, Amber, Mode I)");
    let _ = writeln!(out, "Average of {cycles} cycles; one MD phase per dimension per cycle.\n");

    let mut table = TextTable::new(vec![
        "Cores,Replicas",
        "MD (s)",
        "T exch D1 (s)",
        "S exch D2 (s)",
        "U exch D3 (s)",
    ]);
    let mut md = Vec::new();
    let mut t_ex = Vec::new();
    let mut s_ex = Vec::new();
    let mut u_ex = Vec::new();
    for (&per_dim, &total) in PER_DIM_SWEEP.iter().zip(&REPLICA_SWEEP) {
        let avg = run(tsu_config(per_dim, cycles, None)).average_timing();
        assert_eq!(avg.t_ex.len(), 3);
        md.push(avg.t_md);
        t_ex.push(avg.t_ex[0].1);
        s_ex.push(avg.t_ex[1].1);
        u_ex.push(avg.t_ex[2].1);
        table.add_row(vec![
            format!("{total}, {total}"),
            f1(avg.t_md),
            f1(avg.t_ex[0].1),
            f1(avg.t_ex[1].1),
            f1(avg.t_ex[2].1),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let md_mean = md.iter().sum::<f64>() / md.len() as f64;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "MD times nearly identical (mean {:.1}s; paper ≈495s across 3 dimensions)",
                md_mean
            ),
            md.iter().all(|m| (m - md_mean).abs() < 0.08 * md_mean)
                && (md_mean - 495.0).abs() < 0.12 * 495.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("near-linear exchange growth in all dims (T {:.1}→{:.1}s)", t_ex[0], t_ex[4]),
            t_ex[4] > 8.0 * t_ex[0] && u_ex[4] > 8.0 * u_ex[0] && s_ex[4] > 4.0 * s_ex[0]
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "T and U exchange similar, S much larger (S {:.1}s vs T {:.1}s at 1728)",
                s_ex[4], t_ex[4]
            ),
            (0..5).all(|i| s_ex[i] > 2.0 * t_ex[i].max(u_ex[i]))
                && (t_ex[4] - u_ex[4]).abs() < 0.5 * t_ex[4]
        )
    );

    emit("fig09_weak_tsu", &out);
}
