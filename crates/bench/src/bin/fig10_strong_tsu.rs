//! Figure 10 — multi-dimensional (TSU) REMD strong scaling on Stampede.
//!
//! Replicas fixed at 1728 (12 per dimension); pilot cores grow 112 → 1728.
//! All but the last point run in Execution Mode II (batched waves of
//! replicas). "Allocating more CPUs reduces the Tc."

use analysis::tables::{f1, TextTable};
use bench::experiments::{run, tsu_config, STRONG_CORES};
use bench::output::{check, emit};
use std::fmt::Write as _;

fn main() {
    let cycles = 2;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10 — TSU-REMD strong scaling (Stampede, 1728 replicas)");
    let _ = writeln!(out, "Average of {cycles} cycles; Execution Mode II except the last point.\n");

    let mut table = TextTable::new(vec![
        "Cores,Replicas",
        "Mode",
        "MD (s)",
        "T exch D1 (s)",
        "S exch D2 (s)",
        "U exch D3 (s)",
    ]);
    let mut md = Vec::new();
    let mut t_ex = Vec::new();
    let mut s_ex = Vec::new();
    let mut u_ex = Vec::new();
    for &cores in &STRONG_CORES {
        let report = run(tsu_config(12, cycles, Some(cores)));
        let avg = report.average_timing();
        md.push(avg.t_md);
        t_ex.push(avg.t_ex[0].1);
        s_ex.push(avg.t_ex[1].1);
        u_ex.push(avg.t_ex[2].1);
        table.add_row(vec![
            format!("{cores}, 1728"),
            format!("{}", report.execution_mode),
            f1(avg.t_md),
            f1(avg.t_ex[0].1),
            f1(avg.t_ex[1].1),
            f1(avg.t_ex[2].1),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let halving = md.windows(2).map(|w| w[0] / w[1]).collect::<Vec<_>>();
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "MD time falls nearly proportionally with cores (ratios {:?})",
                halving.iter().map(|r| (r * 100.0).round() / 100.0).collect::<Vec<_>>()
            ),
            halving.iter().all(|r| *r > 1.5 && *r < 2.6)
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "T/U exchange nearly constant across core counts (T {:.1}..{:.1}s)",
                t_ex.iter().cloned().fold(f64::MAX, f64::min),
                t_ex.iter().cloned().fold(f64::MIN, f64::max)
            ),
            {
                let t_spread = t_ex.iter().cloned().fold(f64::MIN, f64::max)
                    - t_ex.iter().cloned().fold(f64::MAX, f64::min);
                let u_spread = u_ex.iter().cloned().fold(f64::MIN, f64::max)
                    - u_ex.iter().cloned().fold(f64::MAX, f64::min);
                t_spread < 0.35 * t_ex[0] && u_spread < 0.35 * u_ex[0]
            }
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "S exchange ≈1800s at 112 cores, falling with cores ({:.0}s → {:.0}s)",
                s_ex[0], s_ex[4]
            ),
            (s_ex[0] - 1800.0).abs() < 0.25 * 1800.0 && s_ex[4] < 0.4 * s_ex[0]
        )
    );

    emit("fig10_strong_tsu", &out);
}
