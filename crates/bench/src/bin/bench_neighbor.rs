//! MD hot-path performance record: force kernel + neighbor cache.
//!
//! Two before/after comparisons on short serial Langevin runs of the
//! solvated dipeptide model:
//!
//! - **kernel**: the scalar pair-at-a-time kernel (`EvalMode::SerialScalar`,
//!   the seed's inner loop) against the blocked SoA kernel
//!   (`EvalMode::Serial`) — both with the Verlet cache enabled;
//! - **cache**: the SoA run with the evaluation context invalidated before
//!   every step (the rebuild-every-step behavior) against the cached run.
//!
//! Also verifies, via the global cell-list build counter, that a batched
//! S-exchange single-point evaluation builds the pair list once per batch.
//!
//! Writes the machine-readable record to `BENCH_neighbor.json` at the repo
//! root (schema: `meta` provenance block + per-size rows; validated by the
//! CI bench-smoke job) and the human-readable summary to
//! `results/bench_neighbor.txt`. Pass `--quick` for the reduced CI sizes.

use bench::output::{bench_meta, check, emit, write_bench_json};
use mdsim::engine::{MdEngine, SanderEngine, SinglePointRequest};
use mdsim::integrator::{EvalMode, Integrator, LangevinBaoab};
use mdsim::models::{dipeptide_forcefield, solvated_alanine_dipeptide};
use mdsim::neighbor::cell_list_builds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-N trials: throughput benches on shared runners see multi-x
/// run-to-run noise, and the fastest trial is the least contended one.
const TRIALS: usize = 3;

fn steps_per_sec(atoms: usize, steps: u64, mode: EvalMode, rebuild_every_step: bool) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..TRIALS {
        let mut sys = solvated_alanine_dipeptide(atoms, 11);
        let ff = dipeptide_forcefield();
        let mut rng = StdRng::seed_from_u64(17);
        sys.assign_maxwell_boltzmann(300.0, &mut rng);
        let mut integ = LangevinBaoab::new(0.001, 300.0, 2.0);
        // Warm up (first build, buffer allocation) outside the timed window.
        integ.step(&mut sys, &ff, mode, &mut rng);
        let t0 = Instant::now();
        for _ in 0..steps {
            if rebuild_every_step {
                integ.invalidate();
            }
            integ.step(&mut sys, &ff, mode, &mut rng);
        }
        best = best.max(steps as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[(usize, u64)] =
        if quick { &[(400, 60), (2000, 30)] } else { &[(400, 400), (2000, 120), (8000, 40)] };

    let mut out = String::new();
    let _ = writeln!(out, "MD hot paths — steps/sec, scalar vs SoA kernel and cache on/off\n");

    let mut rows = Vec::new();
    let mut kernel_ok = true;
    for &(atoms, steps) in sizes {
        let scalar = steps_per_sec(atoms, steps, EvalMode::SerialScalar, false);
        let soa = steps_per_sec(atoms, steps, EvalMode::Serial, false);
        let nocache = steps_per_sec(atoms, steps, EvalMode::Serial, true);
        let kernel_speedup = soa / scalar;
        let cache_speedup = soa / nocache;
        if atoms >= 1000 {
            kernel_ok &= kernel_speedup >= 1.5;
        }
        let _ = writeln!(
            out,
            "N={atoms:5}  scalar {scalar:9.1}  soa {soa:9.1}  (x{kernel_speedup:.2})  \
             rebuild-every-step {nocache:9.1}  (cache x{cache_speedup:.2})"
        );
        rows.push(json!({
            "atoms": atoms,
            "steps": steps,
            "steps_per_sec_scalar": scalar,
            "steps_per_sec_soa": soa,
            "steps_per_sec_rebuild_every_step": nocache,
            "kernel_speedup": kernel_speedup,
            "cache_speedup": cache_speedup,
        }));
    }

    // S-exchange shape: four single-points on the same coordinates through
    // the engine batch API must build the cell list exactly once.
    let sys = solvated_alanine_dipeptide(2000, 5);
    let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
    let requests = [
        SinglePointRequest::new(0.0, 7.0, &[]),
        SinglePointRequest::new(0.15, 7.0, &[]),
        SinglePointRequest::new(0.5, 7.0, &[]),
        SinglePointRequest::new(2.0, 7.0, &[]),
    ];
    let builds_before = cell_list_builds();
    let _ = engine.single_points_with(&sys, &requests);
    let batch_builds = cell_list_builds() - builds_before;

    let _ = writeln!(out);
    let _ =
        writeln!(out, "{}", check("SoA kernel >= 1.5x scalar steps/sec at >= 1k atoms", kernel_ok));
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("S-exchange batch of 4 builds the cell list once (got {batch_builds})"),
            batch_builds == 1
        )
    );

    let payload = json!({
        "bench": "neighbor_cache",
        "unit": "steps_per_sec",
        "status": "measured",
        "quick": quick,
        "meta": bench_meta(),
        "sizes": rows,
        "s_exchange_batch": { "requests": 4, "cell_list_builds": batch_builds },
        "checks": {
            "soa_speedup_ge_1_5_at_1k": kernel_ok,
            "s_exchange_single_build": batch_builds == 1,
        },
    });
    write_bench_json("BENCH_neighbor.json", &payload);

    emit("bench_neighbor", &out);
}
