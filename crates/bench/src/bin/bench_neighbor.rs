//! Neighbor-cache performance record.
//!
//! Measures steps/sec of short serial Langevin runs with the persistent
//! Verlet cache ("after") against the same run with the evaluation context
//! invalidated before every step, which restores the seed's
//! rebuild-every-step behavior ("before"). Also verifies, via the global
//! cell-list build counter, that a batched S-exchange single-point
//! evaluation builds the pair list once for the whole batch.
//!
//! Writes the machine-readable record to `BENCH_neighbor.json` at the repo
//! root and the human-readable summary to `results/bench_neighbor.txt`.

use bench::output::{check, emit, results_dir};
use mdsim::engine::{MdEngine, SanderEngine, SinglePointRequest};
use mdsim::integrator::{EvalMode, Integrator, LangevinBaoab};
use mdsim::models::{dipeptide_forcefield, solvated_alanine_dipeptide};
use mdsim::neighbor::cell_list_builds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::fmt::Write as _;
use std::time::Instant;

fn steps_per_sec(atoms: usize, steps: u64, rebuild_every_step: bool) -> f64 {
    let mut sys = solvated_alanine_dipeptide(atoms, 11);
    let ff = dipeptide_forcefield();
    let mut rng = StdRng::seed_from_u64(17);
    sys.assign_maxwell_boltzmann(300.0, &mut rng);
    let mut integ = LangevinBaoab::new(0.001, 300.0, 2.0);
    // Warm up (first build, buffer allocation) outside the timed window.
    integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
    let t0 = Instant::now();
    for _ in 0..steps {
        if rebuild_every_step {
            integ.invalidate();
        }
        integ.step(&mut sys, &ff, EvalMode::Serial, &mut rng);
    }
    steps as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let mut out = String::new();
    let _ = writeln!(out, "Neighbor cache — steps/sec, rebuild-every-step vs skin-cached\n");

    let mut rows = Vec::new();
    let mut speedup_8000 = 0.0;
    for &(atoms, steps) in &[(400usize, 400u64), (2000, 120), (8000, 40)] {
        let before = steps_per_sec(atoms, steps, true);
        let after = steps_per_sec(atoms, steps, false);
        let speedup = after / before;
        if atoms == 8000 {
            speedup_8000 = speedup;
        }
        let _ = writeln!(
            out,
            "N={atoms:5}  before {before:9.1} steps/s  after {after:9.1} steps/s  x{speedup:.2}"
        );
        rows.push(json!({
            "atoms": atoms,
            "steps": steps,
            "steps_per_sec_before": before,
            "steps_per_sec_after": after,
            "speedup": speedup,
        }));
    }

    // S-exchange shape: four single-points on the same coordinates through
    // the engine batch API must build the cell list exactly once.
    let sys = solvated_alanine_dipeptide(2000, 5);
    let engine = SanderEngine::new(dipeptide_forcefield().nonbonded);
    let requests = [
        SinglePointRequest::new(0.0, 7.0, &[]),
        SinglePointRequest::new(0.15, 7.0, &[]),
        SinglePointRequest::new(0.5, 7.0, &[]),
        SinglePointRequest::new(2.0, 7.0, &[]),
    ];
    let builds_before = cell_list_builds();
    let _ = engine.single_points_with(&sys, &requests);
    let batch_builds = cell_list_builds() - builds_before;

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("N=8000 per-step speedup >= 2x (got x{speedup_8000:.2})"),
            speedup_8000 >= 2.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("S-exchange batch of 4 builds the cell list once (got {batch_builds})"),
            batch_builds == 1
        )
    );

    let payload = json!({
        "bench": "neighbor_cache",
        "unit": "steps_per_sec",
        "status": "measured",
        "sizes": rows,
        "s_exchange_batch": { "requests": 4, "cell_list_builds": batch_builds },
    });
    let root = {
        let mut p = results_dir();
        p.pop();
        p
    };
    let path = root.join("BENCH_neighbor.json");
    match std::fs::write(&path, serde_json::to_string_pretty(&payload).expect("serialize")) {
        Ok(()) => eprintln!("[written: {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    emit("bench_neighbor", &out);
}
