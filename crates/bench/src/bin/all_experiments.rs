//! Run every figure/table binary in sequence (the paper-regeneration
//! harness). Each binary also writes its output under `results/`.

use std::path::PathBuf;
use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "table1_comparison",
    "fig04_validation",
    "fig05_overheads",
    "fig06_weak_1d",
    "fig07_efficiency_1d",
    "fig08_namd",
    "fig09_weak_tsu",
    "fig10_strong_tsu",
    "fig11_efficiency_tsu",
    "fig12_multicore",
    "fig13_async_utilization",
    "ablate_straggler",
];

const EXTRA: [&str; 5] = [
    "ablate_batch_fraction",
    "ablate_pairing",
    "ablate_gpu",
    "ablate_multicluster",
    "ablate_ladder_opt",
];

fn main() {
    let self_path = std::env::current_exe().expect("current exe");
    let bin_dir: PathBuf = self_path.parent().expect("bin dir").to_path_buf();
    let mut failures = Vec::new();
    let all: Vec<&str> = EXPERIMENTS.iter().chain(EXTRA.iter()).copied().collect();
    for name in &all {
        let path = bin_dir.join(name);
        println!("\n=== {name} ===================================================");
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{name}: exited with {s}");
                failures.push(*name);
            }
            Err(e) => {
                eprintln!(
                    "{name}: failed to launch ({e}); build with `cargo build --release -p bench`"
                );
                failures.push(*name);
            }
        }
    }
    println!("\n================================================================");
    if failures.is_empty() {
        println!("All {} experiments completed; outputs in results/.", all.len());
    } else {
        println!("Failed: {failures:?}");
        std::process::exit(1);
    }
}
