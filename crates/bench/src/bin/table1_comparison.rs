//! Table 1 — comparison of molecular simulation software packages with
//! integrated REMD capability. RepEx's row is derived from this
//! implementation's actual capabilities (dimension limit probed from the
//! code) so the table cannot drift from the library.

use bench::output::{check, emit};
use repex::capabilities::{render_table1_markdown, repex_capabilities, table1};
use std::fmt::Write as _;

fn main() {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — REMD package comparison\n");
    out.push_str(&render_table1_markdown());

    let _ = writeln!(out);
    let repex = repex_capabilities();
    let _ = writeln!(
        out,
        "{}",
        check(
            "paper row: 3 dims / 3 exchange params; this implementation: 3 dims / 4 (pH added)",
            repex::capabilities::paper_repex_row().exchange_params == 3
                && repex.n_dims == 3
                && repex.exchange_params == 4
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "RepEx is the only package with >2 dims, both patterns and multiple engines",
            table1().iter().all(|p| {
                let complete =
                    p.n_dims >= 3 && p.sync_pattern && p.async_pattern && p.md_engines.len() > 1;
                complete == (p.name == "RepEx")
            })
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "Charm++/NAMD MCA has the widest core scaling but no async pattern",
            table1()
                .iter()
                .find(|p| p.name == "Charm++/NAMD MCA")
                .map(|p| !p.async_pattern)
                .unwrap_or(false)
        )
    );

    emit("table1_comparison", &out);
}
