//! Figure 6 — one-dimensional REMD weak scaling.
//!
//! Decomposition of average simulation cycle times into MD time and exchange
//! time for U-REMD, S-REMD and T-REMD on SuperMIC, Execution Mode I,
//! single-core replicas, 6000 steps between exchanges, replicas = cores ∈
//! {64, 216, 512, 1000, 1728}.

use analysis::tables::{f1, TextTable};
use bench::experiments::{one_d_config, run, OneDKind, REPLICA_SWEEP};
use bench::output::{check, emit};
use std::fmt::Write as _;

fn main() {
    let cycles = 4; // the paper averages 4 cycles
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — 1-D REMD weak scaling (SuperMIC, sander, 6000 steps/cycle)");
    let _ = writeln!(out, "Average of {cycles} cycles; cores = replicas (Execution Mode I).\n");

    let mut table = TextTable::new(vec![
        "Cores,Replicas",
        "U MD(s)",
        "U EX(s)",
        "S MD(s)",
        "S EX(s)",
        "T MD(s)",
        "T EX(s)",
    ]);
    // Keyed [kind][n] -> (md, ex).
    let mut md = [[0.0; REPLICA_SWEEP.len()]; 3];
    let mut ex = [[0.0; REPLICA_SWEEP.len()]; 3];
    let kinds = [OneDKind::Umbrella, OneDKind::Salt, OneDKind::Temperature];
    for (ki, kind) in kinds.iter().enumerate() {
        for (ni, &n) in REPLICA_SWEEP.iter().enumerate() {
            let report = run(one_d_config(*kind, n, cycles));
            let avg = report.average_timing();
            md[ki][ni] = avg.t_md;
            ex[ki][ni] = avg.t_ex_total();
        }
    }
    for (ni, &n) in REPLICA_SWEEP.iter().enumerate() {
        table.add_row(vec![
            format!("{n}, {n}"),
            f1(md[0][ni]),
            f1(ex[0][ni]),
            f1(md[1][ni]),
            f1(ex[1][ni]),
            f1(md[2][ni]),
            f1(ex[2][ni]),
        ]);
    }
    out.push_str(&table.render());

    // Shape checks against the paper's observations.
    let _ = writeln!(out);
    let md_all: Vec<f64> = md.iter().flatten().cloned().collect();
    let md_mean = md_all.iter().sum::<f64>() / md_all.len() as f64;
    let md_flat = md_all.iter().all(|m| (m - md_mean).abs() < 0.08 * md_mean);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "MD time nearly identical across types/counts (mean {:.1}s; paper: 139.6s)",
                md_mean
            ),
            md_flat && (md_mean - 139.6).abs() < 0.12 * 139.6
        )
    );
    let t_linear = ex[2][4] / ex[2][0];
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("T/U exchange grow nearly linearly (T: {:.1}s -> {:.1}s)", ex[2][0], ex[2][4]),
            t_linear > 10.0 && ex[0][4] > 10.0 * ex[0][0] / 2.0
        )
    );
    let s_dominates = (0..REPLICA_SWEEP.len()).all(|i| ex[1][i] > 2.0 * ex[2][i]);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "S exchange substantially longer than T/U (S {:.1}s vs T {:.1}s at 1728)",
                ex[1][4], ex[2][4]
            ),
            s_dominates
        )
    );
    let tu_similar =
        (0..REPLICA_SWEEP.len()).all(|i| (ex[0][i] - ex[2][i]).abs() < 0.5 * ex[2][i].max(1.0));
    let _ = writeln!(out, "{}", check("T and U exchange timings similar", tu_similar));

    emit("fig06_weak_1d", &out);
}
