//! Ablation — barrier cost under straggler noise: how the synchronous
//! pattern's cycle time grows with task-duration variance, and how the
//! asynchronous pattern absorbs it. This isolates the design argument of
//! Section 2.1 ("large mismatch in performance" favours async).

use analysis::tables::{f2, TextTable};
use bench::output::{check, emit};
use repex::config::{Pattern, SimulationConfig};
use repex::simulation::build_ctx;
use std::fmt::Write as _;

fn run_with_sigma(pattern: Pattern, sigma: f64, n: usize) -> f64 {
    let mut cfg = SimulationConfig::t_remd(n, 6000, 3);
    cfg.pattern = pattern;
    cfg.surrogate_steps = 5;
    let mut ctx = build_ctx(cfg).unwrap();
    ctx.perf.noise.md_sigma = sigma;
    // Re-wrap through the public driver by running the pattern directly.
    match pattern {
        Pattern::Synchronous => {
            repex::emm::sync::run_sync(&mut ctx).unwrap();
        }
        Pattern::Asynchronous { .. } => {
            repex::emm::asynchronous::run_async(&mut ctx).unwrap();
        }
    }
    let makespan = ctx.pilot.executor.now().as_secs();
    ctx.md_core_seconds / (ctx.pilot.cores() as f64 * makespan) * 100.0
}

fn main() {
    let n = 128;
    let sigmas = [0.0, 0.01, 0.03, 0.08, 0.15, 0.30];
    let mut out = String::new();
    let _ =
        writeln!(out, "Ablation — utilization vs straggler noise (T-REMD, {n} replicas, Mode I)");
    let _ = writeln!(out, "Lognormal sigma on MD task durations; sync barrier vs async ticks.\n");

    let mut table = TextTable::new(vec!["sigma", "Sync util (%)", "Async util (%)"]);
    let mut sync_u = Vec::new();
    let mut async_u = Vec::new();
    for &s in &sigmas {
        let su = run_with_sigma(Pattern::Synchronous, s, n);
        let au = run_with_sigma(Pattern::Asynchronous { tick_fraction: 0.25 }, s, n);
        sync_u.push(su);
        async_u.push(au);
        table.add_row(vec![f2(s), f2(su), f2(au)]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let sync_drop = sync_u[0] - sync_u[sigmas.len() - 1];
    let async_drop = async_u[0] - async_u[sigmas.len() - 1];
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("sync utilization degrades with noise (drop {:.1}%)", sync_drop),
            sync_drop > 3.0
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "async degrades less than sync under heavy noise ({:.1}% vs {:.1}% drop)",
                async_drop, sync_drop
            ),
            async_drop < sync_drop
        )
    );

    emit("ablate_straggler", &out);
}
