//! Ablation — adaptive temperature-ladder optimization, closed loop.
//!
//! The paper's core pitch is that decoupling RE logic from the engine lets
//! domain scientists iterate on REMD algorithms. This experiment closes the
//! loop: start from a deliberately lopsided ladder, run a few cycles, read
//! the framework's per-pair acceptance statistics, re-space the ladder with
//! `exchange::ladder_opt`, and repeat — watching the acceptance spread
//! shrink. No engine code was touched to build this.

use analysis::tables::{f2, TextTable};
use bench::output::{check, emit};
use exchange::ladder_opt::{respace_temperature_ladder, PairAcceptance};
use repex::config::{DimensionConfig, SimulationConfig};
use repex::simulation::RemdSimulation;
use std::fmt::Write as _;

fn acceptance_spread(pairs: &[exchange::stats::AcceptanceStats]) -> (f64, f64, f64) {
    let ratios: Vec<f64> = pairs.iter().map(|s| s.ratio()).collect();
    let lo = ratios.iter().cloned().fold(f64::MAX, f64::min);
    let hi = ratios.iter().cloned().fold(f64::MIN, f64::max);
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    (lo, hi, mean)
}

fn main() {
    // Deliberately bad: one huge gap, the rest bunched together. Wide
    // ladder so acceptance differences actually show on the small model.
    let mut temps: Vec<f64> = vec![260.0, 900.0, 1000.0, 1080.0, 1150.0, 1200.0];
    let cycles = 30;
    let target = 0.5;

    let mut out = String::new();
    let _ = writeln!(out, "Ablation — adaptive temperature-ladder optimization");
    let _ = writeln!(
        out,
        "Start: lopsided 6-rung ladder {temps:?}; {cycles} cycles per round; target acceptance {target}.\n"
    );

    let mut table = TextTable::new(vec!["Round", "Min acc", "Max acc", "Spread", "Ladder (K)"]);
    let mut spreads = Vec::new();
    for round in 0..5 {
        let mut cfg = SimulationConfig::t_remd(temps.len(), 600, cycles);
        cfg.title = format!("ladder-opt round {round}");
        cfg.dimensions = vec![DimensionConfig::TemperatureList { temps_k: temps.clone() }];
        cfg.surrogate_steps = 40;
        cfg.seed = 1000 + round as u64;
        let report = RemdSimulation::new(cfg).unwrap().run().unwrap();
        assert_eq!(report.pair_acceptance.len(), temps.len() - 1);
        let (lo, hi, _mean) = acceptance_spread(&report.pair_acceptance);
        spreads.push(hi - lo);
        table.add_row(vec![
            format!("{round}"),
            f2(lo),
            f2(hi),
            f2(hi - lo),
            format!("{:?}", temps.iter().map(|t| t.round()).collect::<Vec<_>>()),
        ]);
        // Re-space for the next round.
        let mut pa = PairAcceptance::new(temps.len());
        pa.stats = report.pair_acceptance.clone();
        temps = respace_temperature_ladder(&temps, &pa, target).unwrap();
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "acceptance spread shrinks under optimization ({:.2} -> {:.2})",
                spreads[0],
                spreads[spreads.len() - 1]
            ),
            spreads[spreads.len() - 1] < spreads[0] * 0.6
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            "endpoints preserved across rounds",
            (temps[0] - 260.0).abs() < 1e-6 && (temps[temps.len() - 1] - 1200.0).abs() < 1e-6
        )
    );

    emit("ablate_ladder_opt", &out);
}
