//! Ablation — Execution Mode II core fraction: cycle time and core-hour
//! cost as the pilot shrinks to 1/2, 1/4, … 1/16 of the replica count (the
//! geometric series the paper suggests for the core:replica ratio).

use analysis::tables::{f1, f2, TextTable};
use bench::experiments::{one_d_config, run, OneDKind};
use bench::output::{check, emit};
use std::fmt::Write as _;

fn main() {
    let n = 256;
    let fractions = [1, 2, 4, 8, 16]; // pilot cores = n / fraction
    let mut out = String::new();
    let _ = writeln!(out, "Ablation — Execution Mode II batching (T-REMD, {n} replicas, SuperMIC)");
    let _ = writeln!(out, "Pilot cores shrink by the paper's geometric series; same workload.\n");

    let mut table = TextTable::new(vec![
        "Core fraction",
        "Cores",
        "Mode",
        "Tc (s)",
        "Tc x cores (core-s)",
        "Tc vs Mode I",
    ]);
    let mut tcs = Vec::new();
    let mut core_seconds = Vec::new();
    let mut base_tc = 0.0;
    for &f in &fractions {
        let cores = n / f;
        let mut cfg = one_d_config(OneDKind::Temperature, n, 2);
        cfg.resource.cores = Some(cores);
        let report = run(cfg);
        let tc = report.average_tc();
        if f == 1 {
            base_tc = tc;
        }
        tcs.push(tc);
        core_seconds.push(tc * cores as f64);
        table.add_row(vec![
            format!("1/{f}"),
            format!("{cores}"),
            format!("{}", report.execution_mode),
            f1(tc),
            f1(tc * cores as f64),
            f2(tc / base_tc),
        ]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{}",
        check(
            "cycle time grows roughly with the inverse core fraction",
            tcs.windows(2).all(|w| w[1] > w[0] * 1.4)
        )
    );
    // Core-hours: Mode II pays the Mode II scheduling penalty + exchange
    // serialization but amortizes the idle exchange-phase cores less badly.
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "core-second cost varies less than 3x across fractions ({:.0} .. {:.0})",
                core_seconds.iter().cloned().fold(f64::MAX, f64::min),
                core_seconds.iter().cloned().fold(f64::MIN, f64::max)
            ),
            {
                let lo = core_seconds.iter().cloned().fold(f64::MAX, f64::min);
                let hi = core_seconds.iter().cloned().fold(f64::MIN, f64::max);
                hi / lo < 3.0
            }
        )
    );
    let _ = writeln!(
        out,
        "\nThe paper's flagship flexibility scenario: \"if only a small HPC cluster\n\
         comprising 128 cores is available, user still can perform a simulation\n\
         involving 10000 replicas\" — the same configuration with cores=128 runs\n\
         unchanged, just slower."
    );

    emit("ablate_batch_fraction", &out);
}
