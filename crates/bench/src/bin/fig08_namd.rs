//! Figure 8 — T-REMD with the NAMD engine.
//!
//! Demonstrates engine independence: the identical framework configuration
//! with `engine = namd` (NAMD-2.10 analogue, 4000 steps between exchanges)
//! on SuperMIC, weak scaling, single-core replicas.

use analysis::tables::{f1, TextTable};
use bench::experiments::{namd_config, run, REPLICA_SWEEP};
use bench::output::{check, emit};
use std::fmt::Write as _;

fn main() {
    let cycles = 4;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8 — T-REMD with the NAMD engine (SuperMIC, 4000 steps/cycle)");
    let _ = writeln!(out, "Average of {cycles} cycles; cores = replicas.\n");

    let mut table = TextTable::new(vec!["Cores,Replicas", "MD (s)", "Exchange (s)"]);
    let mut md = Vec::new();
    let mut ex = Vec::new();
    for &n in &REPLICA_SWEEP {
        let avg = run(namd_config(n, cycles)).average_timing();
        md.push(avg.t_md);
        ex.push(avg.t_ex_total());
        table.add_row(vec![format!("{n}, {n}"), f1(avg.t_md), f1(avg.t_ex_total())]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out);
    let md_mean = md.iter().sum::<f64>() / md.len() as f64;
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("MD times nearly equal for all pairs (mean {:.1}s; paper ≈215s)", md_mean),
            md.iter().all(|m| (m - md_mean).abs() < 0.08 * md_mean)
                && (md_mean - 215.0).abs() < 0.15 * 215.0
        )
    );
    // "Growth rate for exchange times can't be characterized as monomial":
    // successive ratios should NOT follow a clean power law.
    let ratios: Vec<f64> = ex.windows(2).map(|w| w[1] / w[0]).collect();
    let n_ratios: Vec<f64> = REPLICA_SWEEP.windows(2).map(|w| w[1] as f64 / w[0] as f64).collect();
    let exponents: Vec<f64> = ratios.iter().zip(&n_ratios).map(|(r, n)| r.ln() / n.ln()).collect();
    let exp_spread = exponents.iter().cloned().fold(f64::MIN, f64::max)
        - exponents.iter().cloned().fold(f64::MAX, f64::min);
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!("exchange growth non-monomial (local exponents spread {:.2})", exp_spread),
            exp_spread > 0.1
        )
    );
    let _ = writeln!(
        out,
        "{}",
        check(
            &format!(
                "exchange remains a small fraction of MD (max {:.1}s vs {:.1}s)",
                ex.last().unwrap(),
                md_mean
            ),
            ex.iter().all(|e| *e < 0.25 * md_mean)
        )
    );

    emit("fig08_namd", &out);
}
