//! Structured diagnostics shared by configuration validation and the
//! `lint` static analyzer.
//!
//! A [`Diagnostic`] is a typed finding about a simulation plan: a stable
//! code (`C0xx` for config validity, `L1xx`–`L6xx` for lint rules, `A1xx`
//! for trace analysis), a severity, a human message, an optional
//! JSON-pointer-style path into the config document (kebab-case keys, e.g.
//! `/resource/cores`) and an optional fix-it hint. The CLI renders these
//! uniformly (`repex check`, `repex analyze`) and maps them onto one exit
//! code convention: 0 = clean, 1 = Error-level findings, 2 = usage error.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is. Ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum Severity {
    /// Informational: a prediction or note, nothing to fix.
    Info,
    /// The plan runs but will likely waste resources or sample poorly.
    Warning,
    /// The plan is invalid or guaranteed to misbehave; `repex run` refuses
    /// it unless forced.
    Error,
}

impl Severity {
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One typed finding about a simulation plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code, e.g. `C020` or `L401`.
    pub code: String,
    pub severity: Severity,
    pub message: String,
    /// JSON-pointer-style path into the config document (kebab-case keys),
    /// e.g. `/dimensions/0/count`. `None` for whole-document findings.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub path: Option<String>,
    /// Suggested fix.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub hint: Option<String>,
}

impl Diagnostic {
    pub fn new(severity: Severity, code: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.to_string(),
            severity,
            message: message.into(),
            path: None,
            hint: None,
        }
    }

    pub fn error(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Error, code, message)
    }

    pub fn warning(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warning, code, message)
    }

    pub fn info(code: &str, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Info, code, message)
    }

    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = Some(hint.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.label(), self.code, self.message)?;
        if let Some(path) = &self.path {
            write!(f, " (at {path})")?;
        }
        Ok(())
    }
}

/// The worst severity present, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Whether any finding is Error-level.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Counts by severity: (errors, warnings, infos).
pub fn severity_counts(diags: &[Diagnostic]) -> (usize, usize, usize) {
    let mut c = (0, 0, 0);
    for d in diags {
        match d.severity {
            Severity::Error => c.0 += 1,
            Severity::Warning => c.1 += 1,
            Severity::Info => c.2 += 1,
        }
    }
    c
}

/// Sort findings most-severe first, stable within a severity (rule order).
pub fn sort_by_severity(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| b.severity.cmp(&a.severity));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_ordered() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.label(), "error");
    }

    #[test]
    fn display_includes_code_and_path() {
        let d = Diagnostic::error("C020", "steps-per-cycle must be positive")
            .with_path("/steps-per-cycle")
            .with_hint("set steps-per-cycle to a positive integer");
        let s = d.to_string();
        assert!(s.contains("error[C020]"), "{s}");
        assert!(s.contains("/steps-per-cycle"), "{s}");
    }

    #[test]
    fn helpers_summarize() {
        let diags = vec![
            Diagnostic::info("L001", "predicted cycle time 12 s"),
            Diagnostic::warning("L101", "last wave 25% utilized"),
            Diagnostic::error("C001", "dimensions list is empty"),
        ];
        assert_eq!(max_severity(&diags), Some(Severity::Error));
        assert!(has_errors(&diags));
        assert_eq!(severity_counts(&diags), (1, 1, 1));
        let mut sorted = diags.clone();
        sort_by_severity(&mut sorted);
        assert_eq!(sorted[0].code, "C001");
        assert_eq!(sorted[2].code, "L001");
        assert_eq!(max_severity(&[]), None);
    }

    #[test]
    fn json_schema_shape() {
        let d = Diagnostic::warning("L401", "predicted acceptance 0.02 below 0.05")
            .with_path("/dimensions/0");
        let v: serde_json::Value = serde_json::to_value(&d).unwrap();
        assert_eq!(v["code"], "L401");
        assert_eq!(v["severity"], "warning");
        assert_eq!(v["path"], "/dimensions/0");
        assert!(v.get("hint").is_none(), "absent hint is omitted");
        let back: Diagnostic = serde_json::from_value(v).unwrap();
        assert_eq!(back, d);
    }
}
