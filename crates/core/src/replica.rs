//! The replica object: one independent copy of the physical system walking
//! through parameter space.

use exchange::multidim::ParamGrid;
use exchange::param::ExchangeParam;
use mdsim::{DihedralRestraint, System};
use parking_lot::Mutex;
use std::sync::Arc;

/// A replica: identity, current grid slot, and the shared microstate handle
/// that MD and exchange tasks operate on.
pub struct Replica {
    /// Stable identity (never changes).
    pub id: usize,
    /// Current grid slot = the parameter set this replica holds right now.
    /// Exchanges swap slots between replicas.
    pub slot: usize,
    /// The physical microstate. `Arc<Mutex<_>>` so task payloads (which may
    /// run on worker threads under the local executor) can own a handle.
    pub system: Arc<Mutex<System>>,
    /// MD segments completed.
    pub segments_done: u64,
    /// Failures observed (for fault-policy bookkeeping).
    pub failures: u32,
    /// Whether the last MD segment failed and was not recovered — a stale
    /// replica sits out the next exchange.
    pub stale: bool,
}

impl Replica {
    pub fn new(id: usize, slot: usize, system: System) -> Self {
        Replica {
            id,
            slot,
            system: Arc::new(Mutex::new(system)),
            segments_done: 0,
            failures: 0,
            stale: false,
        }
    }
}

/// The parameters a slot implies, split by how the engine consumes them.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotParams {
    /// Thermostat temperature (defaults to `default_temperature` when no T
    /// dimension exists).
    pub temperature: f64,
    /// Salt concentration in mol/L (0 when no S dimension).
    pub salt_molar: f64,
    /// Solvent pH (7.0 when no pH dimension).
    pub ph: f64,
    /// All umbrella restraints (one per U dimension).
    pub restraints: Vec<DihedralRestraint>,
}

impl SlotParams {
    /// Resolve a slot's full parameter set from the grid.
    pub fn resolve(grid: &ParamGrid, slot: usize, default_temperature: f64) -> SlotParams {
        let coords = grid.coords_of(slot);
        let params = grid.params_at(&coords);
        let mut out = SlotParams {
            temperature: default_temperature,
            salt_molar: 0.0,
            ph: 7.0,
            restraints: Vec::new(),
        };
        for p in &params {
            match p {
                ExchangeParam::Temperature(t) => out.temperature = *t,
                ExchangeParam::Salt(c) => out.salt_molar = *c,
                ExchangeParam::Ph(v) => out.ph = *v,
                ExchangeParam::Umbrella { .. } => {
                    out.restraints.push(p.as_restraint().expect("umbrella param"))
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exchange::param::Dimension;
    use mdsim::models::alanine_dipeptide;

    fn grid() -> ParamGrid {
        ParamGrid::new(vec![
            Dimension::temperature_geometric(273.0, 373.0, 4),
            Dimension::salt_linear(0.0, 0.6, 3),
            Dimension::umbrella_uniform("phi", 4, 0.02),
        ])
        .unwrap()
    }

    #[test]
    fn resolve_combines_all_dimensions() {
        let g = grid();
        let slot = g.slot_of(&[1, 2, 3]);
        let p = SlotParams::resolve(&g, slot, 300.0);
        assert!((p.temperature - g.dims[0].ladder[1].scalar()).abs() < 1e-12);
        assert!((p.salt_molar - 0.6).abs() < 1e-12);
        assert_eq!(p.restraints.len(), 1);
        assert_eq!(p.restraints[0].dihedral, "phi");
    }

    #[test]
    fn default_temperature_when_no_t_dimension() {
        let g = ParamGrid::new(vec![Dimension::umbrella_uniform("phi", 8, 0.02)]).unwrap();
        let p = SlotParams::resolve(&g, 3, 310.0);
        assert_eq!(p.temperature, 310.0);
        assert_eq!(p.salt_molar, 0.0);
        assert_eq!(p.ph, 7.0);
        assert_eq!(p.restraints.len(), 1);
    }

    #[test]
    fn two_umbrella_dimensions_give_two_restraints() {
        let g = ParamGrid::new(vec![
            Dimension::umbrella_uniform("phi", 4, 0.02),
            Dimension::umbrella_uniform("psi", 4, 0.02),
        ])
        .unwrap();
        let p = SlotParams::resolve(&g, g.slot_of(&[1, 2]), 300.0);
        assert_eq!(p.restraints.len(), 2);
        assert_eq!(p.restraints[0].dihedral, "phi");
        assert_eq!(p.restraints[1].dihedral, "psi");
    }

    #[test]
    fn ph_dimension_resolves() {
        let g = ParamGrid::new(vec![
            Dimension::temperature_geometric(280.0, 320.0, 2),
            Dimension::ph_linear(4.0, 9.0, 3),
        ])
        .unwrap();
        let p = SlotParams::resolve(&g, g.slot_of(&[1, 2]), 300.0);
        assert_eq!(p.ph, 9.0);
        assert!(p.temperature > 300.0);
    }

    #[test]
    fn replica_construction() {
        let r = Replica::new(7, 7, alanine_dipeptide());
        assert_eq!(r.id, 7);
        assert_eq!(r.slot, 7);
        assert_eq!(r.segments_done, 0);
        assert!(!r.stale);
        assert_eq!(r.system.lock().n_atoms(), mdsim::models::BACKBONE_ATOMS);
    }
}
