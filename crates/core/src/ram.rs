//! Remote Application Modules (RAM): the exchange calculators.
//!
//! RAMs "execute on \[the\] HPC cluster" — here, inside compute-unit payloads.
//! The exchange math is always real: T-exchange parses the replicas' staged
//! `mdinfo` files; U-exchange evaluates each window's bias on the partner's
//! actual coordinates; S-exchange performs the four single-point energy
//! evaluations per candidate pair through the engine (the cost the paper
//! singles out as dominating S-REMD).

use crate::task::ExchangeReport;
use exchange::metropolis::{
    hamiltonian_delta, metropolis_accept, temperature_delta, umbrella_delta,
};
use exchange::pairing::{select_pairs, PairingStrategy};
use exchange::param::ExchangeParam;
use exchange::stats::AcceptanceStats;
use mdsim::engine::{MdEngine, SinglePointRequest};
use mdsim::{DihedralRestraint, System};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Per-slot data the exchange needs.
pub struct SlotInput {
    /// Grid slot (ladder position within the group is the index in
    /// `GroupInput::slots`).
    pub slot: usize,
    /// Replica currently occupying the slot.
    pub replica: usize,
    /// Staged-file base name for this replica's latest cycle
    /// (`<base>.mdinfo` must exist for T-exchange).
    pub file_base: String,
    /// The rung's parameter in the exchanging dimension.
    pub param: ExchangeParam,
    /// Thermostat temperature at this slot (shared across the group except
    /// in a T dimension).
    pub temperature: f64,
    /// Salt concentration at this slot.
    pub salt_molar: f64,
    /// Solvent pH at this slot.
    pub ph: f64,
    /// All restraints at this slot (for S single-points).
    pub restraints: Vec<DihedralRestraint>,
    /// Microstate handle.
    pub system: Arc<Mutex<System>>,
    /// Whether this slot's occupant is stale (failed MD, sits out).
    pub stale: bool,
}

/// One exchange group: a 1-D sub-ladder (ordered by rung).
pub struct GroupInput {
    pub slots: Vec<SlotInput>,
}

/// The whole exchange task for one dimension.
pub struct ExchangeInput {
    pub dim: usize,
    pub cycle: u64,
    pub strategy: PairingStrategy,
    pub seed: u64,
    pub groups: Vec<GroupInput>,
    /// Staging area holding the replicas' mdinfo files.
    pub staging: pilot::staging::StagingArea,
}

/// Execute the exchange: returns accepted swaps as (slot_a, slot_b) pairs.
pub fn run_exchange(
    input: ExchangeInput,
    engine: Arc<dyn MdEngine>,
) -> Result<ExchangeReport, String> {
    let mut swaps = Vec::new();
    let mut stats = AcceptanceStats::default();
    let mut pair_outcomes = Vec::new();
    let mut rng = StdRng::seed_from_u64(
        input.seed ^ input.cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (input.dim as u64) << 56,
    );
    for group in &input.groups {
        let n = group.slots.len();
        for (a, b) in select_pairs(input.strategy, n, input.cycle, &mut rng) {
            let sa = &group.slots[a];
            let sb = &group.slots[b];
            if sa.stale || sb.stale {
                continue; // fault policy Continue: failed replicas sit out
            }
            let delta = pair_delta(sa, sb, &input.staging, engine.as_ref())?;
            let accepted = metropolis_accept(delta, &mut rng);
            stats.record(accepted);
            pair_outcomes.push((sa.slot.min(sb.slot), sa.slot.max(sb.slot), accepted));
            if accepted {
                swaps.push((sa.slot, sb.slot));
            }
        }
    }
    Ok(ExchangeReport { dim: input.dim, swaps, stats, pair_outcomes })
}

/// The Metropolis `delta` for one candidate pair, per exchange type.
fn pair_delta(
    sa: &SlotInput,
    sb: &SlotInput,
    staging: &pilot::staging::StagingArea,
    engine: &dyn MdEngine,
) -> Result<f64, String> {
    match (&sa.param, &sb.param) {
        (ExchangeParam::Temperature(ta), ExchangeParam::Temperature(tb)) => {
            // Physical potential energies from the staged mdinfo files.
            let ea =
                crate::amm::amber::read_staged_mdinfo(staging, &sa.file_base)?.physical_potential();
            let eb =
                crate::amm::amber::read_staged_mdinfo(staging, &sb.file_base)?.physical_potential();
            Ok(temperature_delta(*ta, ea, *tb, eb))
        }
        (ExchangeParam::Umbrella { .. }, ExchangeParam::Umbrella { .. }) => {
            let ra = sa.param.as_restraint().expect("umbrella param");
            let rb = sb.param.as_restraint().expect("umbrella param");
            let (phi_a, phi_b) = {
                let sys_a = sa.system.lock();
                let sys_b = sb.system.lock();
                (
                    sys_a
                        .named_dihedral_angle(&ra.dihedral)
                        .ok_or_else(|| format!("missing dihedral {}", ra.dihedral))?,
                    sys_b
                        .named_dihedral_angle(&rb.dihedral)
                        .ok_or_else(|| format!("missing dihedral {}", rb.dihedral))?,
                )
            };
            // u_x_of_y: window x's bias on replica-at-slot-y's coordinates.
            let u_a_of_a = ra.energy_at(phi_a);
            let u_a_of_b = ra.energy_at(phi_b);
            let u_b_of_a = rb.energy_at(phi_a);
            let u_b_of_b = rb.energy_at(phi_b);
            Ok(umbrella_delta(sa.temperature, u_a_of_a, u_a_of_b, u_b_of_a, u_b_of_b))
        }
        (ExchangeParam::Salt(ca), ExchangeParam::Salt(cb)) => {
            // Four single-point energies through the engine — the expensive
            // part of S-REMD exchange. Batched per system so each replica's
            // pair list is built once and shared by both parameter sets.
            let requests = [
                SinglePointRequest::new(*ca, sa.ph, &sa.restraints),
                SinglePointRequest::new(*cb, sb.ph, &sb.restraints),
            ];
            let sys_a = sa.system.lock();
            let sys_b = sb.system.lock();
            let on_a = engine.single_points_with(&sys_a, &requests);
            let on_b = engine.single_points_with(&sys_b, &requests);
            Ok(hamiltonian_delta(
                sa.temperature,
                on_a[0].total(),
                on_b[0].total(),
                on_a[1].total(),
                on_b[1].total(),
            ))
        }
        (ExchangeParam::Ph(pa), ExchangeParam::Ph(pb)) => {
            // pH exchange is a Hamiltonian exchange over the pH-dependent
            // effective charges of the titratable sites (the paper's
            // proposed extension; same structure as constant-pH REMD).
            // Batched like S-exchange: one pair list per system.
            let requests = [
                SinglePointRequest::new(sa.salt_molar, *pa, &sa.restraints),
                SinglePointRequest::new(sb.salt_molar, *pb, &sb.restraints),
            ];
            let sys_a = sa.system.lock();
            let sys_b = sb.system.lock();
            let on_a = engine.single_points_with(&sys_a, &requests);
            let on_b = engine.single_points_with(&sys_b, &requests);
            Ok(hamiltonian_delta(
                sa.temperature,
                on_a[0].total(),
                on_b[0].total(),
                on_a[1].total(),
                on_b[1].total(),
            ))
        }
        (pa, pb) => Err(format!(
            "mismatched exchange parameters in one dimension: {:?} vs {:?}",
            pa.letter(),
            pb.letter()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdsim::engine::SanderEngine;
    use mdsim::io::mdinfo::MdInfo;
    use mdsim::models::{alanine_dipeptide, dipeptide_forcefield};
    use pilot::staging::StagingArea;

    fn engine() -> Arc<dyn MdEngine> {
        Arc::new(SanderEngine::new(dipeptide_forcefield().nonbonded))
    }

    fn stage_mdinfo(staging: &StagingArea, base: &str, eptot: f64) {
        let info = MdInfo {
            nstep: 100,
            time_ps: 1.0,
            temperature: 300.0,
            etot: eptot,
            ektot: 0.0,
            eptot,
            bond: eptot,
            angle: 0.0,
            dihed: 0.0,
            vdwaals: 0.0,
            eel: 0.0,
            restraint: 0.0,
        };
        staging.put_text(format!("{base}.mdinfo"), info.render());
    }

    fn t_slot(rung: usize, t: f64, base: &str) -> SlotInput {
        SlotInput {
            slot: rung,
            replica: rung,
            file_base: base.to_string(),
            param: ExchangeParam::Temperature(t),
            temperature: t,
            salt_molar: 0.0,
            ph: 7.0,
            restraints: vec![],
            system: Arc::new(Mutex::new(alanine_dipeptide())),
            stale: false,
        }
    }

    #[test]
    fn favorable_temperature_swap_is_accepted() {
        let staging = StagingArea::new();
        // Cold replica holds much higher energy: swap always accepted.
        stage_mdinfo(&staging, "a", 100.0);
        stage_mdinfo(&staging, "b", -100.0);
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups: vec![GroupInput { slots: vec![t_slot(0, 300.0, "a"), t_slot(1, 400.0, "b")] }],
            staging,
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.swaps, vec![(0, 1)]);
        assert_eq!(report.stats.attempts, 1);
        assert_eq!(report.stats.accepted, 1);
    }

    #[test]
    fn very_unfavorable_temperature_swap_is_rejected() {
        let staging = StagingArea::new();
        stage_mdinfo(&staging, "a", -10_000.0);
        stage_mdinfo(&staging, "b", 10_000.0);
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups: vec![GroupInput { slots: vec![t_slot(0, 300.0, "a"), t_slot(1, 301.0, "b")] }],
            staging,
        };
        let report = run_exchange(input, engine()).unwrap();
        assert!(report.swaps.is_empty());
        assert_eq!(report.stats.attempts, 1);
        assert_eq!(report.stats.accepted, 0);
    }

    #[test]
    fn stale_replicas_sit_out() {
        let staging = StagingArea::new();
        stage_mdinfo(&staging, "a", 100.0);
        stage_mdinfo(&staging, "b", -100.0);
        let mut slot_a = t_slot(0, 300.0, "a");
        slot_a.stale = true;
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups: vec![GroupInput { slots: vec![slot_a, t_slot(1, 400.0, "b")] }],
            staging,
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.stats.attempts, 0, "stale pair not attempted");
        assert!(report.swaps.is_empty());
    }

    #[test]
    fn missing_mdinfo_is_an_error() {
        let staging = StagingArea::new();
        stage_mdinfo(&staging, "a", 0.0);
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups: vec![GroupInput {
                slots: vec![t_slot(0, 300.0, "a"), t_slot(1, 330.0, "missing")],
            }],
            staging,
        };
        assert!(run_exchange(input, engine()).is_err());
    }

    fn u_slot(rung: usize, center: f64, sys: System) -> SlotInput {
        SlotInput {
            slot: rung,
            replica: rung,
            file_base: format!("u{rung}"),
            param: ExchangeParam::Umbrella {
                dihedral: "phi".into(),
                center_deg: center,
                k_deg: 0.02,
            },
            temperature: 300.0,
            salt_molar: 0.0,
            ph: 7.0,
            restraints: vec![DihedralRestraint::new("phi", 0.02, center)],
            system: Arc::new(Mutex::new(sys)),
            stale: false,
        }
    }

    #[test]
    fn umbrella_exchange_runs_and_records_stats() {
        // Two adjacent windows on identical coordinates: cross terms equal
        // self terms, delta = 0, always accepted.
        let sys = alanine_dipeptide();
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 2,
            groups: vec![GroupInput {
                slots: vec![u_slot(0, 0.0, sys.clone()), u_slot(1, 0.0, sys.clone())],
            }],
            staging: StagingArea::new(),
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.stats.attempts, 1);
        assert_eq!(report.stats.accepted, 1, "identical windows exchange freely");
    }

    fn s_slot(rung: usize, salt: f64) -> SlotInput {
        SlotInput {
            slot: rung,
            replica: rung,
            file_base: format!("s{rung}"),
            param: ExchangeParam::Salt(salt),
            temperature: 300.0,
            salt_molar: salt,
            ph: 7.0,
            restraints: vec![],
            system: Arc::new(Mutex::new(alanine_dipeptide())),
            stale: false,
        }
    }

    #[test]
    fn salt_exchange_with_identical_coordinates_accepts() {
        // Same coordinates in both replicas: e_a_of_b == e_a_of_a, delta = 0.
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 3,
            groups: vec![GroupInput { slots: vec![s_slot(0, 0.0), s_slot(1, 1.0)] }],
            staging: StagingArea::new(),
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.stats.accepted, 1);
    }

    fn ph_slot(rung: usize, ph: f64) -> SlotInput {
        SlotInput {
            slot: rung,
            replica: rung,
            file_base: format!("p{rung}"),
            param: ExchangeParam::Ph(ph),
            temperature: 300.0,
            salt_molar: 0.0,
            ph,
            restraints: vec![],
            system: Arc::new(Mutex::new(alanine_dipeptide())),
            stale: false,
        }
    }

    #[test]
    fn ph_exchange_with_identical_coordinates_accepts() {
        // Same coordinates: cross terms equal self terms, delta = 0.
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 4,
            groups: vec![GroupInput { slots: vec![ph_slot(0, 4.0), ph_slot(1, 9.0)] }],
            staging: StagingArea::new(),
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.stats.accepted, 1);
    }

    #[test]
    fn ph_changes_single_point_energy_of_titratable_system() {
        let e = engine();
        let sys = alanine_dipeptide();
        let lo = e.single_point_with(&sys, 0.0, 3.0, &[]).total();
        let hi = e.single_point_with(&sys, 0.0, 11.0, &[]).total();
        assert!((lo - hi).abs() > 1e-9, "titratable sites must respond to pH");
    }

    #[test]
    fn mismatched_params_in_dimension_error() {
        let staging = StagingArea::new();
        stage_mdinfo(&staging, "a", 0.0);
        let mixed = GroupInput { slots: vec![t_slot(0, 300.0, "a"), s_slot(1, 0.5)] };
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups: vec![mixed],
            staging,
        };
        assert!(run_exchange(input, engine()).is_err());
    }

    #[test]
    fn multiple_groups_all_processed() {
        let staging = StagingArea::new();
        for g in 0..3 {
            stage_mdinfo(&staging, &format!("g{g}a"), 50.0);
            stage_mdinfo(&staging, &format!("g{g}b"), -50.0);
        }
        let groups = (0..3)
            .map(|g| GroupInput {
                slots: vec![
                    t_slot(2 * g, 300.0, &format!("g{g}a")),
                    t_slot(2 * g + 1, 400.0, &format!("g{g}b")),
                ],
            })
            .collect();
        let input = ExchangeInput {
            dim: 0,
            cycle: 0,
            strategy: PairingStrategy::NeighborAlternating,
            seed: 1,
            groups,
            staging,
        };
        let report = run_exchange(input, engine()).unwrap();
        assert_eq!(report.stats.attempts, 3);
        assert_eq!(report.swaps.len(), 3);
    }
}
