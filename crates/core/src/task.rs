//! Task payload results flowing back from compute units.

use exchange::stats::AcceptanceStats;

/// What a completed unit's payload returns to the framework.
#[derive(Debug, Clone)]
pub enum TaskResult {
    Md(MdTaskReport),
    Exchange(ExchangeReport),
}

/// Result of one replica's MD segment.
#[derive(Debug, Clone)]
pub struct MdTaskReport {
    pub replica: usize,
    pub slot: usize,
    pub cycle: u64,
    /// Total potential energy at segment end (kcal/mol).
    pub potential: f64,
    /// Potential excluding restraint bias (what T-exchange uses).
    pub physical_potential: f64,
    /// Instantaneous temperature at segment end.
    pub measured_temperature: f64,
    /// Sampled (phi, psi) in radians, empty unless sampling is enabled.
    pub trace: Vec<(f64, f64)>,
}

/// Result of one dimension's exchange phase.
#[derive(Debug, Clone)]
pub struct ExchangeReport {
    /// Dimension index the exchange ran in.
    pub dim: usize,
    /// Accepted swaps as pairs of grid slots whose occupants trade places.
    pub swaps: Vec<(usize, usize)>,
    pub stats: AcceptanceStats,
    /// Every attempted pair: (slot_lo, slot_hi, accepted). Feeds per-pair
    /// acceptance statistics (ladder optimization).
    pub pair_outcomes: Vec<(usize, usize, bool)>,
}

impl TaskResult {
    pub fn as_md(&self) -> Option<&MdTaskReport> {
        match self {
            TaskResult::Md(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_exchange(&self) -> Option<&ExchangeReport> {
        match self {
            TaskResult::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let md = TaskResult::Md(MdTaskReport {
            replica: 1,
            slot: 2,
            cycle: 3,
            potential: -10.0,
            physical_potential: -12.0,
            measured_temperature: 305.0,
            trace: vec![],
        });
        assert!(md.as_md().is_some());
        assert!(md.as_exchange().is_none());
        let ex = TaskResult::Exchange(ExchangeReport {
            dim: 0,
            swaps: vec![(0, 1)],
            stats: AcceptanceStats::default(),
            pair_outcomes: vec![(0, 1, true)],
        });
        assert!(ex.as_exchange().is_some());
        assert!(ex.as_md().is_none());
    }
}
