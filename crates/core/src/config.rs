//! Simulation and resource configuration.
//!
//! The paper's usability requirement: REMD runs "must be fully specified by
//! configuration files … with a minimal set of parameters". RepEx-rs
//! simulations are described by a JSON document ([`SimulationConfig`])
//! covering the physics (dimensions, steps, engine) and a resource section
//! (cluster, cores, backend) — the two halves the framework deliberately
//! decouples.

use crate::diag::{Diagnostic, Severity};
use exchange::multidim::ParamGrid;
use exchange::pairing::PairingStrategy;
use exchange::param::Dimension;
use hpc::perfmodel::{EngineKind, PerfModel};
use hpc::ClusterSpec;
use serde::{Deserialize, Serialize};

/// Which MD engine family (and executable) runs the simulation phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum EngineChoice {
    /// Amber family: `sander` for 1 core/replica, `pmemd.MPI` otherwise
    /// (`pmemd.cuda` when `resource.use-gpu` is set).
    Amber,
    /// NAMD (`namd2`).
    Namd,
    /// GROMACS (`gmx mdrun`) — the Section 5 engine extension.
    Gromacs,
}

/// Synchronization pattern (Section 3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", rename_all_fields = "kebab-case")]
pub enum Pattern {
    /// Global barrier between simulation and exchange phases.
    Synchronous,
    /// No barrier; replicas transition to exchange on a fixed real-time
    /// tick. `tick_fraction` is the tick interval as a fraction of the
    /// nominal MD segment time.
    Asynchronous { tick_fraction: f64 },
}

/// What to do when a replica's MD task fails (Section 1: RepEx "can either
/// continue a simulation in case of replica failure or can relaunch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", rename_all_fields = "kebab-case")]
pub enum FaultPolicy {
    /// The failed replica sits out this cycle's exchange and resumes from
    /// its previous restart next cycle.
    Continue,
    /// Relaunch the failed task, up to `max_retries` times per task.
    Relaunch { max_retries: u32 },
}

/// The physical model replicas simulate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", rename_all_fields = "kebab-case")]
pub enum Workload {
    /// Reduced 7-atom alanine dipeptide in vacuum (cheap enough for real
    /// sampling at paper-scale replica counts).
    DipeptideVacuum,
    /// Solvated dipeptide with the given total atom count.
    DipeptideSolvated { atoms: usize },
}

impl Workload {
    /// Atom count charged to the performance model. For the vacuum model
    /// this is overridden by `cost_atoms` so virtual timings reflect the
    /// paper's solvated systems.
    pub fn real_atoms(&self) -> usize {
        match self {
            Workload::DipeptideVacuum => mdsim::models::BACKBONE_ATOMS,
            Workload::DipeptideSolvated { atoms } => *atoms,
        }
    }
}

/// One dimension in the config file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", rename_all_fields = "kebab-case", tag = "type")]
pub enum DimensionConfig {
    Temperature {
        min_k: f64,
        max_k: f64,
        count: usize,
    },
    /// Explicit (possibly non-geometric) temperature rungs — what the
    /// adaptive ladder optimizer produces.
    TemperatureList {
        temps_k: Vec<f64>,
    },
    Umbrella {
        dihedral: String,
        count: usize,
        k_deg: f64,
    },
    Salt {
        min_molar: f64,
        max_molar: f64,
        count: usize,
    },
    /// pH-exchange dimension (the paper's Section 5 extension).
    Ph {
        min_ph: f64,
        max_ph: f64,
        count: usize,
    },
}

impl DimensionConfig {
    /// Structural checks this dimension must pass before [`Self::build`]
    /// can run (the ladder constructors assert on bad input). `idx` is the
    /// dimension's position in the config, used for the diagnostic path.
    pub fn check(&self, idx: usize) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let at = |field: &str| format!("/dimensions/{idx}/{field}");
        match self {
            DimensionConfig::Temperature { min_k, max_k, count } => {
                if *count == 0 {
                    out.push(
                        Diagnostic::error("C010", format!("dimension {idx}: zero rungs"))
                            .with_path(at("count"))
                            .with_hint("a dimension needs at least 1 rung (replica per rung)"),
                    );
                }
                if *min_k <= 0.0 || *max_k < *min_k {
                    out.push(
                        Diagnostic::error(
                            "C011",
                            format!(
                                "dimension {idx}: temperature range {min_k}..{max_k} K invalid"
                            ),
                        )
                        .with_path(at("min-k"))
                        .with_hint("require 0 < min-k <= max-k"),
                    );
                }
            }
            DimensionConfig::TemperatureList { temps_k } => {
                if temps_k.is_empty() {
                    out.push(
                        Diagnostic::error("C010", format!("dimension {idx}: zero rungs"))
                            .with_path(at("temps-k"))
                            .with_hint("list at least one temperature"),
                    );
                } else if temps_k[0] <= 0.0 || temps_k.windows(2).any(|w| w[1] <= w[0]) {
                    out.push(
                        Diagnostic::error(
                            "C012",
                            format!(
                                "dimension {idx}: temperatures must be positive and strictly \
                                 increasing (duplicates are not allowed)"
                            ),
                        )
                        .with_path(at("temps-k"))
                        .with_hint("sort the ladder and remove duplicate rungs"),
                    );
                }
            }
            DimensionConfig::Umbrella { count, k_deg, .. } => {
                if *count == 0 {
                    out.push(
                        Diagnostic::error("C010", format!("dimension {idx}: zero rungs"))
                            .with_path(at("count"))
                            .with_hint("a dimension needs at least 1 rung (replica per rung)"),
                    );
                }
                if *k_deg <= 0.0 {
                    out.push(
                        Diagnostic::error(
                            "C013",
                            format!("dimension {idx}: force constant k-deg must be positive"),
                        )
                        .with_path(at("k-deg")),
                    );
                }
            }
            DimensionConfig::Salt { min_molar, max_molar, count } => {
                if *count == 0 {
                    out.push(
                        Diagnostic::error("C010", format!("dimension {idx}: zero rungs"))
                            .with_path(at("count"))
                            .with_hint("a dimension needs at least 1 rung (replica per rung)"),
                    );
                }
                if *min_molar < 0.0 || *max_molar < *min_molar {
                    out.push(
                        Diagnostic::error(
                            "C011",
                            format!(
                                "dimension {idx}: salt range {min_molar}..{max_molar} M invalid"
                            ),
                        )
                        .with_path(at("min-molar"))
                        .with_hint("require 0 <= min-molar <= max-molar"),
                    );
                }
            }
            DimensionConfig::Ph { min_ph, max_ph, count } => {
                if *count == 0 {
                    out.push(
                        Diagnostic::error("C010", format!("dimension {idx}: zero rungs"))
                            .with_path(at("count"))
                            .with_hint("a dimension needs at least 1 rung (replica per rung)"),
                    );
                }
                if *max_ph < *min_ph {
                    out.push(
                        Diagnostic::error(
                            "C011",
                            format!("dimension {idx}: pH range {min_ph}..{max_ph} invalid"),
                        )
                        .with_path(at("min-ph")),
                    );
                }
            }
        }
        out
    }

    /// Rung count of this dimension.
    pub fn count(&self) -> usize {
        match self {
            DimensionConfig::Temperature { count, .. }
            | DimensionConfig::Umbrella { count, .. }
            | DimensionConfig::Salt { count, .. }
            | DimensionConfig::Ph { count, .. } => *count,
            DimensionConfig::TemperatureList { temps_k } => temps_k.len(),
        }
    }

    pub fn build(&self) -> Dimension {
        match self {
            DimensionConfig::Temperature { min_k, max_k, count } => {
                Dimension::temperature_geometric(*min_k, *max_k, *count)
            }
            DimensionConfig::TemperatureList { temps_k } => Dimension::temperature_list(temps_k),
            DimensionConfig::Umbrella { dihedral, count, k_deg } => {
                Dimension::umbrella_uniform(dihedral, *count, *k_deg)
            }
            DimensionConfig::Salt { min_molar, max_molar, count } => {
                Dimension::salt_linear(*min_molar, *max_molar, *count)
            }
            DimensionConfig::Ph { min_ph, max_ph, count } => {
                Dimension::ph_linear(*min_ph, *max_ph, *count)
            }
        }
    }
}

/// Where and how the workload executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct ResourceConfig {
    /// Cluster preset name: `supermic`, `stampede`, or `small:<cores>`.
    pub cluster: String,
    /// Pilot cores. `None` = enough for all replicas concurrently
    /// (Execution Mode I); fewer cores select Execution Mode II.
    pub cores: Option<usize>,
    /// Cores per replica (multi-core replicas, Section 4.5).
    pub cores_per_replica: usize,
    /// `"simulated"` (virtual cluster) or `"local"` (real threads).
    pub backend: String,
    /// Run MD on GPUs (one GPU per replica; Amber family switches to
    /// `pmemd.cuda`). The paper's Section 5: GPU support "is already
    /// available on Stampede".
    #[serde(default)]
    pub use_gpu: bool,
}

impl Default for ResourceConfig {
    fn default() -> Self {
        ResourceConfig {
            cluster: "supermic".into(),
            cores: None,
            cores_per_replica: 1,
            backend: "simulated".into(),
            use_gpu: false,
        }
    }
}

/// The complete simulation description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub struct SimulationConfig {
    pub title: String,
    pub engine: EngineChoice,
    pub pattern: Pattern,
    pub dimensions: Vec<DimensionConfig>,
    /// MD steps between exchange attempts.
    pub steps_per_cycle: u64,
    /// Number of cycles (exchange attempts per dimension sweep).
    pub n_cycles: u64,
    #[serde(default = "default_dt")]
    pub dt_ps: f64,
    #[serde(default = "default_gamma")]
    pub gamma_ps: f64,
    /// Thermostat temperature when no T dimension is present.
    #[serde(default = "default_temperature")]
    pub base_temperature: f64,
    #[serde(default)]
    pub workload: Option<Workload>,
    /// Atom count charged to the virtual-cluster performance model
    /// (defaults to the workload's real atom count).
    #[serde(default)]
    pub cost_atoms: Option<usize>,
    /// Real MD steps integrated per segment under the simulated backend
    /// (virtual time is still charged for `steps_per_cycle`).
    #[serde(default = "default_surrogate")]
    pub surrogate_steps: u64,
    /// Record (phi, psi) samples every this many integrated steps
    /// (0 = off).
    #[serde(default)]
    pub sample_stride: u64,
    /// Skip sampling during the first steps of each segment
    /// (re-equilibration after exchanges).
    #[serde(default)]
    pub sample_warmup: u64,
    /// Discard samples from cycles before this one (equilibration; the
    /// paper analyzes "the last 1 ns of production data").
    #[serde(default)]
    pub production_after_cycle: u64,
    #[serde(default = "default_fault_policy")]
    pub fault_policy: FaultPolicy,
    /// Mean time between failures injected per running task, in seconds
    /// (`None` = no failure injection). Pairs with `fault-policy`.
    #[serde(default)]
    pub fault_mtbf_seconds: Option<f64>,
    /// Stress scenario layered over the simulated cluster: failure storms,
    /// heterogeneous node speeds, filesystem slowdowns or straggler
    /// injection (`None` = nominal cluster). Simulated backend only.
    #[serde(default)]
    pub scenario: Option<hpc::Scenario>,
    /// Asynchronous pattern only: minimum number of ready replicas before a
    /// tick flushes an exchange round (a FIFO-style window; `None` = flush
    /// whatever is ready). Must be at least 2 when set.
    #[serde(default)]
    pub async_min_ready: Option<usize>,
    #[serde(default = "default_pairing")]
    pub pairing: PairingStrategy,
    #[serde(default)]
    pub seed: u64,
    #[serde(default)]
    pub resource: ResourceConfig,
    /// Skip the exchange phase entirely (the "No exchange" baseline of
    /// Fig. 7).
    #[serde(default)]
    pub no_exchange: bool,
    /// Energy-minimize each replica's starting structure before assigning
    /// velocities (standard equilibration-protocol hygiene).
    #[serde(default)]
    pub minimize_first: bool,
    /// Print a run-health progress line every N cycles (0 = off): Tc
    /// p50/p99, per-dimension acceptance, cumulative straggler flags.
    #[serde(default)]
    pub progress_every: u64,
}

fn default_dt() -> f64 {
    0.002
}
fn default_gamma() -> f64 {
    5.0
}
fn default_temperature() -> f64 {
    300.0
}
fn default_surrogate() -> u64 {
    200
}
fn default_fault_policy() -> FaultPolicy {
    FaultPolicy::Continue
}
fn default_pairing() -> PairingStrategy {
    PairingStrategy::NeighborAlternating
}

impl SimulationConfig {
    /// A minimal 1-D T-REMD config, the starting point most callers tweak.
    pub fn t_remd(n_replicas: usize, steps: u64, cycles: u64) -> Self {
        SimulationConfig {
            title: format!("T-REMD {n_replicas} replicas"),
            engine: EngineChoice::Amber,
            pattern: Pattern::Synchronous,
            dimensions: vec![DimensionConfig::Temperature {
                min_k: 273.0,
                max_k: 373.0,
                count: n_replicas,
            }],
            steps_per_cycle: steps,
            n_cycles: cycles,
            dt_ps: default_dt(),
            gamma_ps: default_gamma(),
            base_temperature: default_temperature(),
            workload: Some(Workload::DipeptideVacuum),
            cost_atoms: Some(2881),
            surrogate_steps: default_surrogate(),
            sample_stride: 0,
            sample_warmup: 0,
            production_after_cycle: 0,
            fault_policy: default_fault_policy(),
            fault_mtbf_seconds: None,
            scenario: None,
            async_min_ready: None,
            pairing: default_pairing(),
            seed: 1,
            resource: ResourceConfig {
                cluster: "supermic".into(),
                cores: None,
                cores_per_replica: 1,
                backend: "simulated".into(),
                use_gpu: false,
            },
            no_exchange: false,
            minimize_first: false,
            progress_every: 0,
        }
    }

    /// Build the parameter grid from the dimension configs.
    pub fn build_grid(&self) -> Result<ParamGrid, String> {
        ParamGrid::new(self.dimensions.iter().map(|d| d.build()).collect())
    }

    /// Number of replicas (= grid slots).
    pub fn n_replicas(&self) -> Result<usize, String> {
        Ok(self.build_grid()?.n_slots())
    }

    /// Parse from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("config parse error: {e}"))
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("config serializes")
    }

    /// Resolve the cluster preset, with any configured scenario's
    /// cluster-level effects (filesystem slowdown) applied — so the lints,
    /// the data-staging model and the drivers all see the stressed cluster.
    pub fn cluster(&self) -> Result<hpc::ClusterSpec, String> {
        let mut spec = cluster_preset(self.resource.cluster.as_str())?;
        if let Some(sc) = &self.scenario {
            sc.apply_to_cluster(&mut spec);
        }
        Ok(spec)
    }

    /// Sanity-check the whole document. Thin wrapper over
    /// [`Self::validate_diagnostics`]: the first Error-level finding becomes
    /// the `Err` message.
    pub fn validate(&self) -> Result<(), String> {
        match self.validate_diagnostics().into_iter().find(|d| d.severity == Severity::Error) {
            Some(d) => Err(d.message),
            None => Ok(()),
        }
    }

    /// Structural validation as typed diagnostics (`C0xx` codes). The `lint`
    /// crate folds these into its report; [`Self::validate`] surfaces the
    /// first error for callers that only need pass/fail.
    pub fn validate_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        if self.dimensions.is_empty() {
            out.push(
                Diagnostic::error("C001", "dimensions list is empty")
                    .with_path("/dimensions")
                    .with_hint("declare at least one exchange dimension"),
            );
        }
        for (i, d) in self.dimensions.iter().enumerate() {
            out.extend(d.check(i));
        }
        if self.steps_per_cycle == 0 {
            out.push(
                Diagnostic::error("C020", "steps-per-cycle must be positive")
                    .with_path("/steps-per-cycle"),
            );
        }
        if self.n_cycles == 0 {
            out.push(Diagnostic::error("C021", "n-cycles must be positive").with_path("/n-cycles"));
        }
        if self.dt_ps <= 0.0 {
            out.push(Diagnostic::error("C022", "dt-ps must be positive").with_path("/dt-ps"));
        }
        if self.resource.cores_per_replica == 0 {
            out.push(
                Diagnostic::error("C030", "cores-per-replica must be positive")
                    .with_path("/resource/cores-per-replica"),
            );
        }
        // The grid (and anything needing the replica count) only exists once
        // the per-dimension structure is sound.
        let mut grid = None;
        if !crate::diag::has_errors(&out) {
            match self.build_grid() {
                Ok(g) => grid = Some(g),
                // Sound dimensions can still fail grid assembly (>3 dims).
                Err(e) => out.push(Diagnostic::error("C002", e).with_path("/dimensions")),
            }
        }
        let cluster = match self.cluster() {
            Ok(c) => Some(c),
            Err(e) => {
                out.push(Diagnostic::error("C031", e).with_path("/resource/cluster"));
                None
            }
        };
        if let (Some(grid), Some(cluster)) = (&grid, &cluster) {
            let n = grid.n_slots();
            if let Some(cores) = self.resource.cores {
                if cores == 0 {
                    out.push(
                        Diagnostic::error("C032", "cores must be positive")
                            .with_path("/resource/cores"),
                    );
                } else {
                    if cores < self.resource.cores_per_replica {
                        out.push(
                            Diagnostic::error(
                                "C033",
                                format!(
                                    "pilot cores {cores} < cores-per-replica {}",
                                    self.resource.cores_per_replica
                                ),
                            )
                            .with_path("/resource/cores"),
                        );
                    }
                    if cores > cluster.total_cores() {
                        out.push(
                            Diagnostic::error(
                                "C034",
                                format!(
                                    "pilot cores {cores} exceed cluster capacity {}",
                                    cluster.total_cores()
                                ),
                            )
                            .with_path("/resource/cores"),
                        );
                    }
                }
            } else {
                let needed = n * self.resource.cores_per_replica;
                if needed > cluster.total_cores() {
                    out.push(
                        Diagnostic::error(
                            "C035",
                            format!(
                                "Execution Mode I needs {needed} cores but {} has {}; set \
                                 resource.cores for Execution Mode II",
                                cluster.name,
                                cluster.total_cores()
                            ),
                        )
                        .with_path("/resource/cores")
                        .with_hint("set resource.cores below the replica total for Mode II"),
                    );
                }
            }
            if matches!(self.pattern, Pattern::Asynchronous { .. }) && grid.n_dims() > 1 {
                out.push(
                    Diagnostic::error(
                        "C040",
                        "the asynchronous pattern currently supports 1-D REMD only",
                    )
                    .with_path("/pattern"),
                );
            }
        }
        if let Pattern::Asynchronous { tick_fraction } = self.pattern {
            if tick_fraction <= 0.0 {
                out.push(
                    Diagnostic::error("C041", "async tick-fraction must be positive")
                        .with_path("/pattern/tick-fraction"),
                );
            }
        }
        if let Some(m) = self.async_min_ready {
            if m < 2 {
                out.push(
                    Diagnostic::error("C042", "async-min-ready must be at least 2 when set")
                        .with_path("/async-min-ready")
                        .with_hint("an exchange needs at least one candidate pair"),
                );
            }
            if self.pattern == Pattern::Synchronous {
                out.push(
                    Diagnostic::warning(
                        "C043",
                        "async-min-ready has no effect under the synchronous pattern",
                    )
                    .with_path("/async-min-ready"),
                );
            }
        }
        if let Some(mtbf) = self.fault_mtbf_seconds {
            // The typed constructor is the single source of truth for what
            // makes a valid MTBF (rejects NaN and subnormals, not just
            // non-positives).
            if let Err(e) = hpc::FaultModel::new(mtbf) {
                out.push(
                    Diagnostic::error("C044", format!("fault-mtbf-seconds: {e}"))
                        .with_path("/fault-mtbf-seconds"),
                );
            }
        }
        if let Some(sc) = &self.scenario {
            if let Err(e) = sc.check() {
                out.push(
                    Diagnostic::error("C050", format!("scenario {}: {e}", sc.name()))
                        .with_path("/scenario"),
                );
            } else {
                if let hpc::Scenario::FailureStorm { storm_mtbf_seconds, .. } = sc {
                    let base = self.fault_mtbf_seconds.unwrap_or(f64::INFINITY);
                    if *storm_mtbf_seconds >= base {
                        out.push(
                            Diagnostic::warning(
                                "C051",
                                "failure-storm MTBF is no lower than the baseline \
                                 fault-mtbf-seconds; the storm adds no stress",
                            )
                            .with_path("/scenario"),
                        );
                    }
                }
                if self.resource.backend != "simulated" {
                    out.push(
                        Diagnostic::warning(
                            "C052",
                            "scenarios model the virtual cluster; the local backend ignores them",
                        )
                        .with_path("/scenario"),
                    );
                }
            }
        }
        match self.resource.backend.as_str() {
            "simulated" | "local" => {}
            other => out.push(
                Diagnostic::error("C036", format!("unknown backend {other:?} (simulated|local)"))
                    .with_path("/resource/backend"),
            ),
        }
        if self.resource.use_gpu && self.resource.cores_per_replica > 1 {
            out.push(
                Diagnostic::error(
                    "C037",
                    "use-gpu assigns one GPU per replica; cores-per-replica must be 1",
                )
                .with_path("/resource/use-gpu"),
            );
        }
        if self.resource.use_gpu && self.engine != EngineChoice::Amber {
            out.push(
                Diagnostic::error(
                    "C038",
                    "GPU support is currently available for the Amber family only",
                )
                .with_path("/resource/use-gpu"),
            );
        }
        out
    }

    /// Pilot core count: explicit, or Mode I default (all replicas
    /// concurrent).
    pub fn pilot_cores(&self) -> Result<usize, String> {
        let n = self.n_replicas()?;
        Ok(self.resource.cores.unwrap_or(n * self.resource.cores_per_replica))
    }

    /// Execution Mode as the paper defines it: Mode I when allocated cores
    /// cover the whole simulation, Mode II otherwise.
    pub fn execution_mode(&self) -> Result<u8, String> {
        let needed = self.n_replicas()? * self.resource.cores_per_replica;
        Ok(if self.pilot_cores()? >= needed { 1 } else { 2 })
    }

    /// The engine-kind charged by the cost model for MD tasks.
    pub fn engine_kind(&self) -> EngineKind {
        match self.engine {
            EngineChoice::Namd => EngineKind::Namd2,
            EngineChoice::Gromacs => EngineKind::GmxMdrun,
            EngineChoice::Amber => {
                if self.resource.use_gpu {
                    EngineKind::PmemdCuda
                } else if self.resource.cores_per_replica > 1 {
                    EngineKind::PmemdMpi
                } else {
                    EngineKind::Sander
                }
            }
        }
    }

    /// Atom count charged to the performance model (`cost_atoms` override,
    /// else the workload's real atom count, else the paper's 2 881).
    pub fn model_atoms(&self) -> usize {
        self.cost_atoms.unwrap_or_else(|| self.workload.as_ref().map_or(2881, |w| w.real_atoms()))
    }

    /// Modeled wall seconds of one MD segment on the given cluster.
    pub fn md_segment_seconds(&self, perf: &PerfModel, cluster: &ClusterSpec) -> f64 {
        perf.md.md_seconds(
            self.engine_kind(),
            self.model_atoms(),
            self.steps_per_cycle,
            self.resource.cores_per_replica,
            cluster.core_speed,
        )
    }
}

/// Resolve a bare cluster preset name (`supermic|stampede|small:<cores>`)
/// without a configuration document — the campaign service uses this to
/// stand up the one shared virtual cluster its tenants multiplex onto.
/// [`SimulationConfig::cluster`] goes through the same table before
/// layering scenario effects on top.
pub fn cluster_preset(name: &str) -> Result<hpc::ClusterSpec, String> {
    if name == "supermic" {
        Ok(hpc::ClusterSpec::supermic())
    } else if name == "stampede" {
        Ok(hpc::ClusterSpec::stampede())
    } else if let Some(cores) = name.strip_prefix("small:") {
        let cores: usize =
            cores.parse().map_err(|_| format!("bad small cluster size {cores:?}"))?;
        Ok(hpc::ClusterSpec::small_cluster(cores))
    } else {
        Err(format!("unknown cluster {name:?} (supermic|stampede|small:<cores>)"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_remd_default_is_valid() {
        let c = SimulationConfig::t_remd(64, 6000, 4);
        c.validate().unwrap();
        assert_eq!(c.n_replicas().unwrap(), 64);
        assert_eq!(c.execution_mode().unwrap(), 1);
        assert_eq!(c.pilot_cores().unwrap(), 64);
    }

    #[test]
    fn json_roundtrip() {
        let c = SimulationConfig::t_remd(16, 1000, 2);
        let text = c.to_json();
        let back = SimulationConfig::from_json(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parse_handwritten_config() {
        let text = r#"{
            "title": "TSU on stampede",
            "engine": "amber",
            "pattern": "synchronous",
            "dimensions": [
                {"type": "temperature", "min-k": 273.0, "max-k": 373.0, "count": 4},
                {"type": "salt", "min-molar": 0.0, "max-molar": 1.0, "count": 4},
                {"type": "umbrella", "dihedral": "phi", "count": 4, "k-deg": 0.02}
            ],
            "steps-per-cycle": 6000,
            "n-cycles": 4,
            "resource": {
                "cluster": "stampede",
                "cores": 112,
                "cores-per-replica": 1,
                "backend": "simulated"
            }
        }"#;
        let c = SimulationConfig::from_json(text).unwrap();
        c.validate().unwrap();
        assert_eq!(c.n_replicas().unwrap(), 64);
        // 112 cores cover all 64 single-core replicas: Execution Mode I.
        assert_eq!(c.execution_mode().unwrap(), 1);
    }

    #[test]
    fn execution_mode_ii_detected() {
        let mut c = SimulationConfig::t_remd(128, 1000, 2);
        c.resource.cores = Some(32);
        c.validate().unwrap();
        assert_eq!(c.execution_mode().unwrap(), 2);
    }

    #[test]
    fn mode_i_too_big_for_cluster_is_rejected() {
        let mut c = SimulationConfig::t_remd(10_000, 1000, 2);
        c.resource.cluster = "small:128".into();
        assert!(c.validate().is_err());
        // But Mode II on the same cluster is the paper's flagship scenario:
        // 10 000 replicas on 128 cores.
        c.resource.cores = Some(128);
        c.validate().unwrap();
        assert_eq!(c.execution_mode().unwrap(), 2);
    }

    #[test]
    fn async_multidim_rejected() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
        c.dimensions.push(DimensionConfig::Salt { min_molar: 0.0, max_molar: 1.0, count: 2 });
        assert!(c.validate().is_err());
    }

    #[test]
    fn bad_values_rejected() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.steps_per_cycle = 0;
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.resource.backend = "cloud".into();
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.resource.cluster = "frontier".into();
        assert!(c.validate().is_err());

        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.resource.cores = Some(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cluster_presets_resolve() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        assert_eq!(c.cluster().unwrap().name, "supermic");
        c.resource.cluster = "small:64".into();
        assert_eq!(c.cluster().unwrap().total_cores(), 64);
    }

    #[test]
    fn multicore_replicas_mode_i_cores() {
        let mut c = SimulationConfig::t_remd(16, 1000, 2);
        c.resource.cores_per_replica = 4;
        assert_eq!(c.pilot_cores().unwrap(), 64);
        assert_eq!(c.execution_mode().unwrap(), 1);
    }

    fn codes(c: &SimulationConfig) -> Vec<String> {
        c.validate_diagnostics().into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn empty_dimension_list_rejected() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.dimensions.clear();
        assert!(c.validate().is_err());
        assert!(codes(&c).contains(&"C001".to_string()));
    }

    #[test]
    fn zero_replica_dimension_rejected_without_panic() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.dimensions = vec![DimensionConfig::Temperature { min_k: 273.0, max_k: 373.0, count: 0 }];
        // Must be a structured error, not a ladder-constructor panic.
        assert!(c.validate().is_err());
        let diags = c.validate_diagnostics();
        let d = diags.iter().find(|d| d.code == "C010").expect("zero-rung diagnostic");
        assert_eq!(d.path.as_deref(), Some("/dimensions/0/count"));
    }

    #[test]
    fn duplicate_temperatures_rejected_without_panic() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.dimensions =
            vec![DimensionConfig::TemperatureList { temps_k: vec![300.0, 300.0, 320.0] }];
        assert!(c.validate().is_err());
        assert!(codes(&c).contains(&"C012".to_string()));
        // Non-increasing is the same defect.
        c.dimensions = vec![DimensionConfig::TemperatureList { temps_k: vec![320.0, 300.0] }];
        assert!(codes(&c).contains(&"C012".to_string()));
        // Empty list is a zero-rung dimension.
        c.dimensions = vec![DimensionConfig::TemperatureList { temps_k: vec![] }];
        assert!(codes(&c).contains(&"C010".to_string()));
    }

    #[test]
    fn bad_ranges_rejected() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.dimensions = vec![DimensionConfig::Temperature { min_k: 373.0, max_k: 273.0, count: 4 }];
        assert!(codes(&c).contains(&"C011".to_string()));
        c.dimensions =
            vec![DimensionConfig::Umbrella { dihedral: "phi".into(), count: 4, k_deg: 0.0 }];
        assert!(codes(&c).contains(&"C013".to_string()));
        c.dimensions = vec![DimensionConfig::Salt { min_molar: -0.5, max_molar: 1.0, count: 4 }];
        assert!(codes(&c).contains(&"C011".to_string()));
    }

    #[test]
    fn async_min_ready_validated() {
        let mut c = SimulationConfig::t_remd(8, 100, 2);
        c.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
        c.async_min_ready = Some(1);
        assert!(codes(&c).contains(&"C042".to_string()));
        c.async_min_ready = Some(4);
        c.validate().unwrap();
        // On a synchronous plan the knob is inert: warn, don't fail.
        c.pattern = Pattern::Synchronous;
        assert!(codes(&c).contains(&"C043".to_string()));
        c.validate().unwrap();
    }

    #[test]
    fn fault_mtbf_validated() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.fault_mtbf_seconds = Some(0.0);
        assert!(c.validate().is_err());
        c.fault_mtbf_seconds = Some(3600.0);
        c.validate().unwrap();
        // The typed constructor catches what the old `<= 0` assert missed.
        c.fault_mtbf_seconds = Some(f64::NAN);
        assert!(codes(&c).contains(&"C044".to_string()));
        c.fault_mtbf_seconds = Some(f64::MIN_POSITIVE / 2.0);
        assert!(codes(&c).contains(&"C044".to_string()));
    }

    #[test]
    fn scenario_parameters_validated() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.scenario = Some(hpc::Scenario::FailureStorm {
            storm_mtbf_seconds: -1.0,
            period_seconds: 600.0,
            storm_fraction: 0.2,
        });
        assert!(codes(&c).contains(&"C050".to_string()));
        assert!(c.validate().is_err());
        c.scenario = Some(hpc::Scenario::Stragglers { fraction: 0.1, slowdown: 3.0 });
        c.validate().unwrap();
    }

    #[test]
    fn calm_storm_and_local_backend_scenarios_warn() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.fault_mtbf_seconds = Some(100.0);
        c.scenario = Some(hpc::Scenario::FailureStorm {
            storm_mtbf_seconds: 500.0, // calmer than the baseline
            period_seconds: 600.0,
            storm_fraction: 0.2,
        });
        assert!(codes(&c).contains(&"C051".to_string()));
        c.validate().unwrap(); // warning, not error

        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.resource.backend = "local".into();
        c.resource.cluster = "small:16".into();
        c.scenario = Some(hpc::Scenario::Stragglers { fraction: 0.1, slowdown: 2.0 });
        assert!(codes(&c).contains(&"C052".to_string()));
        c.validate().unwrap();
    }

    #[test]
    fn scenario_survives_json_roundtrip_and_shapes_the_cluster() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.scenario =
            Some(hpc::Scenario::SlowFilesystem { latency_factor: 10.0, bandwidth_factor: 0.25 });
        let text = c.to_json();
        assert!(text.contains("slow-filesystem"), "kebab-case scenario tag: {text}");
        let back = SimulationConfig::from_json(&text).unwrap();
        assert_eq!(back.scenario, c.scenario);
        // cluster() applies the filesystem degradation.
        let nominal = SimulationConfig::t_remd(8, 100, 1).cluster().unwrap();
        let stressed = c.cluster().unwrap();
        assert!(stressed.fs.latency > nominal.fs.latency * 9.9);
        assert!(stressed.fs.bandwidth < nominal.fs.bandwidth * 0.26);
    }

    #[test]
    fn validate_diagnostics_collects_multiple_findings() {
        let mut c = SimulationConfig::t_remd(8, 100, 1);
        c.steps_per_cycle = 0;
        c.n_cycles = 0;
        c.dt_ps = -1.0;
        let found = codes(&c);
        for code in ["C020", "C021", "C022"] {
            assert!(found.contains(&code.to_string()), "missing {code} in {found:?}");
        }
        // validate() surfaces the first error.
        assert!(c.validate().is_err());
    }

    /// One crafted config per structural code: the registry check
    /// (`tests/it_diag_registry.rs`) requires every cataloged code to be
    /// exercised by at least one test, and this table is the single place
    /// the resource/pattern family (C002, C03x, C04x) is pinned down.
    #[test]
    fn every_structural_code_fires_on_its_crafted_config() {
        let cases: Vec<(&str, fn(&mut SimulationConfig))> = vec![
            ("C002", |c| {
                // Four sound dimensions: grid assembly itself refuses.
                let dim = DimensionConfig::Temperature { min_k: 300.0, max_k: 310.0, count: 2 };
                c.dimensions = vec![dim.clone(), dim.clone(), dim.clone(), dim];
            }),
            ("C030", |c| c.resource.cores_per_replica = 0),
            ("C031", |c| c.resource.cluster = "nonesuch".into()),
            ("C032", |c| c.resource.cores = Some(0)),
            ("C033", |c| {
                c.resource.cores_per_replica = 2;
                c.resource.cores = Some(1);
            }),
            ("C034", |c| c.resource.cores = Some(1_000_000)),
            ("C035", |c| {
                // small:4 rounds up to one 16-core node; 8 replicas at 4
                // cores each need 32 — Mode I cannot fit without `cores`.
                c.resource.cluster = "small:4".into();
                c.resource.cores_per_replica = 4;
                c.resource.cores = None;
            }),
            ("C036", |c| c.resource.backend = "quantum".into()),
            ("C037", |c| {
                c.resource.use_gpu = true;
                c.resource.cores_per_replica = 2;
            }),
            ("C038", |c| {
                c.resource.use_gpu = true;
                c.engine = EngineChoice::Gromacs;
            }),
            ("C040", |c| {
                c.pattern = Pattern::Asynchronous { tick_fraction: 0.25 };
                c.dimensions = vec![
                    DimensionConfig::Temperature { min_k: 280.0, max_k: 320.0, count: 2 },
                    DimensionConfig::Temperature { min_k: 280.0, max_k: 320.0, count: 2 },
                ];
            }),
            ("C041", |c| c.pattern = Pattern::Asynchronous { tick_fraction: 0.0 }),
        ];
        for (code, mutate) in cases {
            let mut c = SimulationConfig::t_remd(8, 600, 2);
            mutate(&mut c);
            let found = codes(&c);
            assert!(found.contains(&code.to_string()), "expected {code}, got {found:?}");
            assert!(c.validate().is_err(), "{code} must be an error");
        }
    }

    #[test]
    fn model_helpers_match_driver_expectations() {
        let c = SimulationConfig::t_remd(8, 6000, 2);
        assert_eq!(c.model_atoms(), 2881);
        assert_eq!(c.engine_kind(), EngineKind::Sander);
        let cluster = c.cluster().unwrap();
        let t = c.md_segment_seconds(&PerfModel::default(), &cluster);
        assert!((t - 139.6).abs() < 1e-9, "sander calibration point: {t}");
    }
}
